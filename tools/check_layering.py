#!/usr/bin/env python3
"""Include-graph layering lint.

Machine-enforces the architecture documented in docs/ARCHITECTURE.md:

  * ``util/`` depends on nothing above it.
  * ``xml/`` sits on util only.
  * ``gen/`` (the XMark document generator) sits on util only.
  * ``query/`` (plan -> optimizer -> exec DAG) sits on util + xml and
    never reaches down into concrete stores.
  * ``store/`` implements the ``query/storage.h`` interface without
    reaching into any other ``query/`` internals.
  * ``rel/`` (relational shredder/operators) sits on store and below.
  * ``xmark/`` (engine / benchmark harness) is the top and may use
    everything.

plus repo-wide source contracts:

  * No raw ``std::mutex`` / ``std::condition_variable`` / ``<mutex>``
    outside ``src/util`` — all locking goes through the annotated
    ``util::Mutex`` wrappers (util/mutex.h) so Clang's
    ``-Wthread-safety`` analysis covers every critical section.
  * Any file declaring a ``util::Mutex`` member must include
    ``util/thread_annotations.h`` (directly or via util/mutex.h), i.e.
    the GUARDED_BY vocabulary is always in scope where locks live.

Intra-``query/`` sub-layering (plan -> optimizer -> exec) is also
checked: plan.h must not include optimizer.h/exec.h, optimizer.h must
not include exec.h.

Exit status 0 = clean, 1 = violations (printed one per line), 2 = usage
error. ``--self-test`` runs the checker against a synthetic tree that
contains one violation of every rule and verifies each is caught.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)

# Layer -> set of layers it may include from (its own layer is always
# allowed). Directories under src/ not named here are an error, so a new
# top-level directory forces an explicit layering decision.
ALLOWED_DEPS = {
    "util": set(),
    "xml": {"util"},
    "gen": {"util"},
    "query": {"util", "xml"},
    # store/ may additionally include exactly query/storage.h — handled
    # as a special case below, not via this table.
    "store": {"util", "xml"},
    "rel": {"store", "util", "xml"},
    "xmark": {"gen", "query", "rel", "store", "util", "xml"},
}

# The single query/ header that lower layers may implement against.
STORAGE_INTERFACE = "query/storage.h"
STORAGE_IMPLEMENTORS = {"store", "rel"}

# query/ internal sub-layering: header stem -> stems its *header* must not
# include. Headers define the dependency DAG; the .cc files may need
# complete downstream types (plan.cc owns per-run executor state through
# unique_ptr<HashJoinExec> etc., whose destructors require exec.h).
QUERY_SUBLAYER_FORBIDDEN = {
    "plan": {"optimizer", "exec", "evaluator"},
    "optimizer": {"exec", "evaluator"},
    # The fusion pass is pure plan lowering: it may see ast/plan/storage
    # but never the executor it feeds.
    "pipeline": {"exec", "evaluator"},
}

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable\b|condition_variable_any|lock_guard|unique_lock|"
    r"scoped_lock|shared_lock)"
)
MUTEX_MEMBER_RE = re.compile(r"\butil::Mutex\b|\bMutex\s+\w+_?\s*;")


def strip_comments(text: str) -> str:
    """Removes // and /* */ comments (string literals with comment-like
    content are rare enough in this tree not to matter for a lint)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)
    text = re.sub(r"//[^\n]*", "", text)
    return text


def layer_of(include: str) -> str | None:
    """Maps an #include "a/b.h" path to its top-level layer, or None for
    paths outside src/ (e.g. bench/bench_util.h)."""
    head = include.split("/", 1)[0]
    return head if head in ALLOWED_DEPS else None


def check_tree(root: pathlib.Path) -> list[str]:
    errors: list[str] = []
    src = root / "src"
    if not src.is_dir():
        return [f"{root}: no src/ directory"]

    for path in sorted(src.rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        layer = path.relative_to(src).parts[0]
        if layer not in ALLOWED_DEPS:
            errors.append(
                f"{rel}: directory src/{layer}/ has no layering entry in "
                f"tools/check_layering.py — declare its dependencies")
            continue
        raw = path.read_text(encoding="utf-8", errors="replace")
        text = strip_comments(raw)

        # --- include-graph rules -------------------------------------
        for inc in INCLUDE_RE.findall(text):
            inc_layer = layer_of(inc)
            if inc_layer is None:
                # System or third-party header (<...> never matches) or a
                # path outside src/; <>-includes are not captured at all.
                errors.append(
                    f"{rel}: includes \"{inc}\" which is outside the src/ "
                    f"layer graph")
                continue
            if inc_layer == layer:
                continue
            if layer in STORAGE_IMPLEMENTORS and inc_layer == "query":
                if inc != STORAGE_INTERFACE:
                    errors.append(
                        f"{rel}: stores may only implement "
                        f"\"{STORAGE_INTERFACE}\", not reach into \"{inc}\"")
                continue  # storage.h itself is the sanctioned interface
            if inc_layer not in ALLOWED_DEPS[layer]:
                errors.append(
                    f"{rel}: layer '{layer}' must not include \"{inc}\" "
                    f"(allowed: {', '.join(sorted(ALLOWED_DEPS[layer] | {layer}))})")

        # query/ sub-layering: plan below optimizer below exec.
        if layer == "query" and path.suffix == ".h":
            stem = path.stem
            forbidden = QUERY_SUBLAYER_FORBIDDEN.get(stem, set())
            for inc in INCLUDE_RE.findall(text):
                inc_stem = pathlib.PurePosixPath(inc).stem
                if inc.startswith("query/") and inc_stem in forbidden:
                    errors.append(
                        f"{rel}: query sub-layer '{stem}' must not include "
                        f"\"{inc}\" (plan -> optimizer -> exec is one-way)")

        # --- locking contracts ---------------------------------------
        if layer != "util":
            m = RAW_MUTEX_RE.search(text)
            if m:
                errors.append(
                    f"{rel}: raw {m.group(0)} outside src/util — use the "
                    f"annotated util::Mutex / util::MutexLock / util::CondVar "
                    f"(util/mutex.h) so -Wthread-safety sees the lock")
            if re.search(r"#\s*include\s*<(mutex|condition_variable|"
                         r"shared_mutex)>", text):
                errors.append(
                    f"{rel}: includes a raw locking header outside src/util "
                    f"— include \"util/mutex.h\" instead")
            if (re.search(r"\butil::Mutex\b", text)
                    and "util/mutex.h" not in text):
                errors.append(
                    f"{rel}: uses util::Mutex without including "
                    f"\"util/mutex.h\"")

    return errors


# ---------------------------------------------------------------------
# Self-test: synthesize a tree with one violation per rule and check the
# lint reports each (and passes a clean twin).
# ---------------------------------------------------------------------

SELF_TEST_BAD = {
    # util reaching up: forbidden.
    "src/util/bad_up.h": '#include "query/plan.h"\n',
    # store reaching into query internals (beyond storage.h): forbidden.
    "src/store/bad_store.cc":
        '#include "query/storage.h"\n#include "query/optimizer.h"\n',
    # query reaching down into a concrete store: forbidden.
    "src/query/bad_query.h": '#include "store/dom_store.h"\n',
    # raw std::mutex outside util: forbidden.
    "src/xmark/bad_lock.cc": "#include <mutex>\nstd::mutex mu;\n",
    # query sub-layering: plan must not include exec.
    "src/query/plan.h": '#include "query/exec.h"\n',
    # unknown directory: must force a layering decision.
    "src/rogue/new_layer.cc": "int x;\n",
}

SELF_TEST_CLEAN = {
    "src/util/mutex.h": "struct Mutex {};\n",
    "src/xml/names.h": '#include "util/mutex.h"\n',
    "src/query/storage.h": '#include "xml/names.h"\n',
    "src/store/dom_store.h": '#include "query/storage.h"\n',
    "src/xmark/engine.h":
        '#include "store/dom_store.h"\n#include "util/mutex.h"\n'
        "util::Mutex stats_mu;\n",
}

SELF_TEST_EXPECT = [
    "must not include \"query/plan.h\"",
    "not reach into \"query/optimizer.h\"",
    "must not include \"store/dom_store.h\"",
    "raw std::mutex outside src/util",
    "raw locking header outside src/util",
    "plan -> optimizer -> exec is one-way",
    "no layering entry",
]


def write_tree(root: pathlib.Path, files: dict[str, str]) -> None:
    for rel, content in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(content)


def self_test() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        bad = pathlib.Path(tmp) / "bad"
        write_tree(bad, SELF_TEST_BAD)
        errors = check_tree(bad)
        joined = "\n".join(errors)
        missing = [e for e in SELF_TEST_EXPECT if e not in joined]
        if missing:
            print("self-test FAILED: deliberately bad includes not caught:")
            for e in missing:
                print(f"  expected error containing: {e!r}")
            print("checker output was:")
            print(joined or "  (no errors reported)")
            return 1

        clean = pathlib.Path(tmp) / "clean"
        write_tree(clean, SELF_TEST_CLEAN)
        errors = check_tree(clean)
        if errors:
            print("self-test FAILED: clean tree reported errors:")
            for e in errors:
                print(f"  {e}")
            return 1
    print("check_layering self-test OK "
          f"({len(SELF_TEST_EXPECT)} violation classes caught, clean tree "
          "passes)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".",
                    help="repository root (default: cwd)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the checker catches a synthetic tree of "
                         "deliberate violations")
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve()
    errors = check_tree(root)
    if errors:
        for e in errors:
            print(e)
        print(f"\n{len(errors)} layering violation(s).")
        return 1
    print("layering OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
