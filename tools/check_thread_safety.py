#!/usr/bin/env python3
"""Thread-safety annotation probe.

Proves that the GUARDED_BY / REQUIRES vocabulary in
src/util/thread_annotations.h is wired to a real compile-time analysis:

  1. tests/compile_fail/thread_safety_ok.cc must compile warning-clean
     under ``clang++ -Wthread-safety -Werror=thread-safety``.
  2. tests/compile_fail/thread_safety_bad.cc (unguarded reads/writes of a
     GUARDED_BY member, REQUIRES call without the lock) must FAIL to
     compile, with a -Wthread-safety diagnostic in the output.

Without (2), a broken macro expansion would silently turn the entire
annotation layer into comments and every "clean" build would prove
nothing.

Additionally (PR 8), a pure-Python lint runs BEFORE the clang probes —
so it executes even where clang is absent — and flags any ``util::Mutex``
member declared in ``src/`` that no annotation in the same file ever
names: a mutex nothing is ``GUARDED_BY`` protects nothing, which is
almost always a forgotten annotation (the analysis then silently checks
an empty contract). Mutexes with a deliberate non-field protocol are
allowlisted below with their justification.

Exit codes: 0 = lint and both probes behave (probes may SKIP), 1 = lint
or probe failure, 77 = lint passed but no clang++ found (ctest maps 77
to SKIPPED via SKIP_RETURN_CODE; GCC has no thread-safety analysis, so
there is nothing to probe).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shutil
import subprocess
import sys

# util::Mutex members whose protocol is intentionally not expressible as
# GUARDED_BY on a field in the same file.
UNANNOTATED_MUTEX_ALLOWLIST = {
    # The pool's sleep/wake protocol: wake_mu_ orders pending_ updates
    # against CondVar waits, but pending_ is an atomic also read locklessly
    # on the fast path, so GUARDED_BY would be wrong.
    ("src/util/thread_pool.h", "wake_mu_"),
}

MUTEX_DECL = re.compile(
    r"(?:mutable\s+)?util::Mutex\s+([A-Za-z_][A-Za-z0-9_]*)\s*;")
ANNOTATION = re.compile(
    r"(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|"
    r"RELEASE|EXCLUDES|RETURN_CAPABILITY)\s*\(\s*([A-Za-z_][A-Za-z0-9_.>-]*)")


def lint_unannotated_mutexes(root: pathlib.Path) -> list[str]:
    """Returns one message per util::Mutex member no annotation names."""
    problems = []
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in (".h", ".cc"):
            continue
        rel = path.relative_to(root).as_posix()
        text = path.read_text()
        declared = MUTEX_DECL.findall(text)
        if not declared:
            continue
        referenced = {m.split(".")[-1].split("->")[-1]
                      for m in ANNOTATION.findall(text)}
        for name in declared:
            if name in referenced:
                continue
            if (rel, name) in UNANNOTATED_MUTEX_ALLOWLIST:
                continue
            problems.append(
                f"{rel}: util::Mutex '{name}' is never named by any "
                "GUARDED_BY/REQUIRES/EXCLUDES annotation in this file — "
                "annotate what it protects, or allowlist it with a "
                "justification in tools/check_thread_safety.py")
    return problems

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(22, 13, -1)]

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]


def find_clang(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def compile_probe(clang: str, root: pathlib.Path,
                  probe: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [clang, *FLAGS, f"-I{root / 'src'}",
         str(root / "tests" / "compile_fail" / probe)],
        capture_output=True, text=True)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--clang", default=None,
                    help="clang++ binary (default: search PATH)")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    problems = lint_unannotated_mutexes(root)
    if problems:
        print("FAIL: unannotated mutexes:")
        for p in problems:
            print(f"  {p}")
        return 1
    print("unannotated-mutex lint OK")

    clang = find_clang(args.clang)
    if clang is None:
        print("SKIP: no clang++ on PATH — thread-safety analysis is "
              "clang-only (the CI thread-safety job provides it)")
        return 77

    ok = compile_probe(clang, root, "thread_safety_ok.cc")
    if ok.returncode != 0:
        print("FAIL: the correctly annotated probe did not compile under "
              f"{clang} -Werror=thread-safety:")
        print(ok.stderr)
        return 1

    bad = compile_probe(clang, root, "thread_safety_bad.cc")
    if bad.returncode == 0:
        print("FAIL: thread_safety_bad.cc compiled cleanly — the "
              "annotations are not reaching Clang's analysis (macro "
              "expansion broken?)")
        return 1
    if "thread-safety" not in bad.stderr:
        print("FAIL: thread_safety_bad.cc failed to compile, but not with "
              "a -Wthread-safety diagnostic:")
        print(bad.stderr)
        return 1

    n_diags = bad.stderr.count("error:")
    print(f"thread-safety probe OK under {clang}: annotated probe clean, "
          f"unguarded probe rejected with {n_diags} error(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
