#!/usr/bin/env python3
"""Thread-safety annotation probe.

Proves that the GUARDED_BY / REQUIRES vocabulary in
src/util/thread_annotations.h is wired to a real compile-time analysis:

  1. tests/compile_fail/thread_safety_ok.cc must compile warning-clean
     under ``clang++ -Wthread-safety -Werror=thread-safety``.
  2. tests/compile_fail/thread_safety_bad.cc (unguarded reads/writes of a
     GUARDED_BY member, REQUIRES call without the lock) must FAIL to
     compile, with a -Wthread-safety diagnostic in the output.

Without (2), a broken macro expansion would silently turn the entire
annotation layer into comments and every "clean" build would prove
nothing.

Exit codes: 0 = both probes behave, 1 = probe failure, 77 = no clang++
found (ctest maps 77 to SKIPPED via SKIP_RETURN_CODE; GCC has no
thread-safety analysis, so there is nothing to probe).
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import subprocess
import sys

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(22, 13, -1)]

FLAGS = ["-std=c++20", "-fsyntax-only", "-Wthread-safety",
         "-Werror=thread-safety"]


def find_clang(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for name in CLANG_CANDIDATES:
        if shutil.which(name):
            return name
    return None


def compile_probe(clang: str, root: pathlib.Path,
                  probe: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [clang, *FLAGS, f"-I{root / 'src'}",
         str(root / "tests" / "compile_fail" / probe)],
        capture_output=True, text=True)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    ap.add_argument("--clang", default=None,
                    help="clang++ binary (default: search PATH)")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    clang = find_clang(args.clang)
    if clang is None:
        print("SKIP: no clang++ on PATH — thread-safety analysis is "
              "clang-only (the CI thread-safety job provides it)")
        return 77

    ok = compile_probe(clang, root, "thread_safety_ok.cc")
    if ok.returncode != 0:
        print("FAIL: the correctly annotated probe did not compile under "
              f"{clang} -Werror=thread-safety:")
        print(ok.stderr)
        return 1

    bad = compile_probe(clang, root, "thread_safety_bad.cc")
    if bad.returncode == 0:
        print("FAIL: thread_safety_bad.cc compiled cleanly — the "
              "annotations are not reaching Clang's analysis (macro "
              "expansion broken?)")
        return 1
    if "thread-safety" not in bad.stderr:
        print("FAIL: thread_safety_bad.cc failed to compile, but not with "
              "a -Wthread-safety diagnostic:")
        print(bad.stderr)
        return 1

    n_diags = bad.stderr.count("error:")
    print(f"thread-safety probe OK under {clang}: annotated probe clean, "
          f"unguarded probe rejected with {n_diags} error(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
