// Concurrent query serving throughput: N client threads, each with its own
// EngineSession against one shared loaded store, draining a mixed Q1-Q20
// workload. Reports QPS and latency percentiles per thread count — the
// serving-side scaling the paper's single-user protocol (Tables 2/3) never
// measures, enabled by immutable-after-load stores, the shared plan cache
// and per-run evaluator state.
//
// Flags:
//   --sf=0.05          scaling factor of the generated document
//   --system=D         engine (A..F; G reloads per query and serves poorly
//                      by design, but is accepted for contrast)
//   --threads=0        max client threads (0 = hardware_concurrency);
//                      measures 1, 2, 4, ... up to the max
//   --iters=3          passes over the query mix per client thread
//   --parallel-exec    additionally enable intra-query morsel parallelism
//   --deadline-ms=0    per-query deadline applied to every client session
//                      (0 = no deadline); queries killed by the deadline
//                      are counted per StatusCode, not treated as fatal
//   --corpus=0         documents in the catalog (0 = single-document
//                      protocol). With N > 0 the workload mixes
//                      doc("corpus-XX.xml")-scoped queries (round-robin
//                      over the corpus) with collection() fan-out queries
//                      (every 5th query), exercising catalog routing and
//                      cross-document concatenation under concurrency
//   --json             machine-readable output (docs/BENCHMARKS.md schema)

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xmark/queries.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

// One request of the serving mix: a benchmark query, possibly rewritten
// to a catalog scope (doc("corpus-XX.xml") or collection()).
struct WorkItem {
  int query = 0;
  std::string text;
  bool collection = false;
};

// The serving mix: every benchmark query. Heavier queries (Q10-Q12)
// dominate tail latency exactly as construction/join-heavy requests would
// in a real mixed workload. With `corpus_documents` > 0 every 5th query
// fans out over the whole corpus via collection() and the rest bind one
// document round-robin, so concurrent clients hit disjoint documents and
// the shared fan-out path at once.
std::vector<WorkItem> Workload(size_t corpus_documents) {
  std::vector<WorkItem> items;
  for (int q = 1; q <= 20; ++q) {
    WorkItem item;
    item.query = q;
    if (corpus_documents == 0) {
      item.text = std::string(GetQuery(q).text);
    } else if (q % 5 == 0) {
      item.collection = true;
      item.text = RewriteEntryCalls(GetQuery(q).text, "collection()");
    } else {
      const size_t doc = static_cast<size_t>(q) % corpus_documents;
      item.text = RewriteEntryCalls(
          GetQuery(q).text,
          StringPrintf("doc(\"corpus-%02zu.xml\")", doc));
    }
    items.push_back(std::move(item));
  }
  return items;
}

struct RunResult {
  unsigned threads = 0;
  size_t queries = 0;  // completed queries (outcomes.ok)
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t plan_cache_hits = 0;    // delta across this run
  uint64_t plan_cache_misses = 0;  // delta across this run
  QueryOutcomes outcomes;          // per-StatusCode deltas for this run
};

// Governed rejections are expected outcomes of a deadline run, not bench
// failures; anything else (parse error, internal error) still aborts.
bool IsGovernedRejection(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

double Percentile(std::vector<double>* latencies, double p) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t idx = std::min(
      latencies->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies->size())));
  return (*latencies)[idx];
}

// One throughput measurement: `threads` clients, each with a private
// session, each running `iters` passes over the workload. Each client
// offsets its start position in the mix so concurrent clients are not in
// lock-step on the same query.
StatusOr<RunResult> MeasureThreads(Engine* engine, unsigned threads,
                                   int iters,
                                   const std::vector<WorkItem>& workload,
                                   const query::RunOptions& run_options) {
  std::vector<std::unique_ptr<EngineSession>> sessions;
  for (unsigned t = 0; t < threads; ++t) {
    XMARK_ASSIGN_OR_RETURN(auto session, engine->CreateSession());
    (*session).set_run_options(run_options);
    sessions.push_back(std::move(session));
  }
  const query::PlanCacheStats before = engine->plan_cache_stats();
  const QueryOutcomes outcomes_before = engine->outcomes();

  std::vector<std::vector<double>> latencies(threads);
  std::vector<Status> failures(threads, Status::OK());
  PhaseTimer wall;
  {
    std::vector<std::thread> clients;
    clients.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      clients.emplace_back([&, t] {
        EngineSession* session = sessions[t].get();
        std::vector<double>& lat = latencies[t];
        lat.reserve(workload.size() * static_cast<size_t>(iters));
        for (int pass = 0; pass < iters; ++pass) {
          for (size_t i = 0; i < workload.size(); ++i) {
            const WorkItem& item =
                workload[(i + t * 7) % workload.size()];  // de-phase clients
            PhaseTimer timer;
            auto result = session->Run(item.text);
            if (!result.ok()) {
              // Governed rejections (deadline, budget) are counted in the
              // shared outcome counters; latency is only recorded for
              // completed queries.
              if (!IsGovernedRejection(result.status())) {
                failures[t] = result.status();
                return;
              }
              continue;
            }
            lat.push_back(timer.ElapsedWallMillis());
          }
        }
      });
    }
    for (std::thread& c : clients) c.join();
  }
  RunResult out;
  out.wall_ms = wall.ElapsedWallMillis();
  for (const Status& st : failures) {
    if (!st.ok()) return st;
  }

  std::vector<double> merged;
  for (const auto& lat : latencies) {
    merged.insert(merged.end(), lat.begin(), lat.end());
  }
  const query::PlanCacheStats after = engine->plan_cache_stats();
  const QueryOutcomes outcomes_after = engine->outcomes();
  out.outcomes.ok = outcomes_after.ok - outcomes_before.ok;
  out.outcomes.deadline_exceeded =
      outcomes_after.deadline_exceeded - outcomes_before.deadline_exceeded;
  out.outcomes.cancelled = outcomes_after.cancelled - outcomes_before.cancelled;
  out.outcomes.resource_exhausted = outcomes_after.resource_exhausted -
                                    outcomes_before.resource_exhausted;
  out.outcomes.invalid_query =
      outcomes_after.invalid_query - outcomes_before.invalid_query;
  out.outcomes.other_error =
      outcomes_after.other_error - outcomes_before.other_error;
  out.threads = threads;
  out.queries = merged.size();
  out.qps = out.wall_ms > 0
                ? 1000.0 * static_cast<double>(merged.size()) / out.wall_ms
                : 0;
  out.p50_ms = Percentile(&merged, 0.50);
  out.p99_ms = Percentile(&merged, 0.99);
  out.plan_cache_hits = after.hits - before.hits;
  out.plan_cache_misses = after.misses - before.misses;
  return out;
}

SystemId ParseSystem(int argc, char** argv) {
  const std::string prefix = "--system=";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind(prefix, 0) == 0) {
      const char label = argv[i][prefix.size()];
      for (SystemId id : kAllSystems) {
        if (SystemLabel(id) == label) return id;
      }
    }
  }
  return SystemId::kD;
}

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  const int iters = FlagInt(argc, argv, "iters", 3);
  const bool json = FlagBool(argc, argv, "json");
  const bool parallel_exec = FlagBool(argc, argv, "parallel-exec");
  const int deadline_ms = FlagInt(argc, argv, "deadline-ms", 0);
  const size_t corpus =
      static_cast<size_t>(std::max(0, FlagInt(argc, argv, "corpus", 0)));
  const unsigned hardware = std::thread::hardware_concurrency();
  unsigned max_threads =
      static_cast<unsigned>(FlagInt(argc, argv, "threads", 0));
  if (max_threads == 0) max_threads = std::max(1u, hardware);
  const SystemId system = ParseSystem(argc, argv);

  BenchmarkRunner runner(sf);
  if (corpus > 0) runner.set_corpus_documents(corpus);
  const Status st = runner.LoadSystem(system);
  if (!st.ok()) {
    std::fprintf(stderr, "load %c: %s\n", SystemLabel(system),
                 st.ToString().c_str());
    return 1;
  }
  Engine* engine = runner.engine(system);
  if (parallel_exec) {
    query::EvaluatorOptions opts = engine->evaluator_options();
    opts.parallel_exec.enabled = true;
    engine->set_evaluator_options(opts);
  }

  const std::vector<WorkItem> workload = Workload(corpus);
  size_t collection_queries = 0;
  for (const WorkItem& item : workload) {
    if (item.collection) ++collection_queries;
  }
  // Warmup: one serial pass primes the plan cache (and the allocator), so
  // measured runs see steady-state serving.
  {
    auto warm = engine->CreateSession();
    if (!warm.ok()) {
      std::fprintf(stderr, "session: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
    for (const WorkItem& item : workload) {
      auto result = (*warm)->Run(item.text);
      if (!result.ok()) {
        std::fprintf(stderr, "warmup Q%d: %s\n", item.query,
                     result.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t < max_threads; t *= 2) thread_counts.push_back(t);
  thread_counts.push_back(max_threads);

  query::RunOptions run_options;
  run_options.deadline_ms = deadline_ms;

  std::vector<RunResult> runs;
  for (unsigned threads : thread_counts) {
    auto result = MeasureThreads(engine, threads, iters, workload,
                                 run_options);
    if (!result.ok()) {
      std::fprintf(stderr, "%u threads: %s\n", threads,
                   result.status().ToString().c_str());
      return 1;
    }
    runs.push_back(*result);
  }

  if (!json) {
    std::printf("=== Concurrent serving throughput: system %c, sf %g ===\n",
                SystemLabel(system), sf);
    std::printf("hardware_concurrency %u, %d passes over Q1-Q20 per "
                "client, parallel_exec %s\n\n",
                hardware, iters, parallel_exec ? "on" : "off");
    if (deadline_ms > 0) {
      std::printf("per-query deadline: %d ms\n", deadline_ms);
    }
    if (corpus > 0) {
      std::printf("corpus: %zu documents (%zu collection() queries per "
                  "pass, rest doc()-scoped round-robin)\n",
                  corpus, collection_queries);
    }
    TablePrinter table({"threads", "queries", "wall (ms)", "QPS",
                        "p50 (ms)", "p99 (ms)", "cache hits", "misses",
                        "deadline", "resource"});
    for (const RunResult& run : runs) {
      table.AddRow({std::to_string(run.threads),
                    std::to_string(run.queries),
                    StringPrintf("%.1f", run.wall_ms),
                    StringPrintf("%.1f", run.qps),
                    StringPrintf("%.2f", run.p50_ms),
                    StringPrintf("%.2f", run.p99_ms),
                    std::to_string(run.plan_cache_hits),
                    std::to_string(run.plan_cache_misses),
                    std::to_string(run.outcomes.deadline_exceeded),
                    std::to_string(run.outcomes.resource_exhausted)});
    }
    std::printf("%s", table.ToString().c_str());
    if (runs.size() > 1) {
      std::printf("\nscaling: %.2fx QPS at %u threads vs 1 thread\n",
                  runs.back().qps / std::max(1e-6, runs.front().qps),
                  runs.back().threads);
    }
  } else {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(std::string_view("throughput"));
    w.Key("scale").Value(sf);
    const char label[2] = {SystemLabel(system), '\0'};
    w.Key("system").Value(std::string_view(label));
    w.Key("hardware_concurrency").Value(static_cast<int64_t>(hardware));
    w.Key("iters").Value(iters);
    w.Key("parallel_exec").Value(parallel_exec);
    w.Key("deadline_ms").Value(deadline_ms);
    w.Key("corpus_documents").Value(corpus);
    w.Key("collection_queries").Value(collection_queries);
    w.Key("catalog_bytes").Value(engine->StorageBytes());
    w.Key("runs").BeginArray();
    for (const RunResult& run : runs) {
      w.BeginObject();
      w.Key("threads").Value(static_cast<int64_t>(run.threads));
      w.Key("queries").Value(run.queries);
      w.Key("wall_ms").Value(run.wall_ms);
      w.Key("qps").Value(run.qps);
      w.Key("p50_ms").Value(run.p50_ms);
      w.Key("p99_ms").Value(run.p99_ms);
      w.Key("plan_cache_hits").Value(static_cast<int64_t>(run.plan_cache_hits));
      w.Key("plan_cache_misses")
          .Value(static_cast<int64_t>(run.plan_cache_misses));
      w.Key("outcomes").BeginObject();
      w.Key("ok").Value(static_cast<int64_t>(run.outcomes.ok));
      w.Key("deadline_exceeded")
          .Value(static_cast<int64_t>(run.outcomes.deadline_exceeded));
      w.Key("cancelled").Value(static_cast<int64_t>(run.outcomes.cancelled));
      w.Key("resource_exhausted")
          .Value(static_cast<int64_t>(run.outcomes.resource_exhausted));
      w.Key("invalid_query")
          .Value(static_cast<int64_t>(run.outcomes.invalid_query));
      w.Key("other_error")
          .Value(static_cast<int64_t>(run.outcomes.other_error));
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
