// Reproduces Table 2 of the paper: detailed compilation vs execution
// timings of Q1 and Q2 on the relational systems A, B, C, broken down as
// CPU% within each phase and as phase share of total time.
//
// The paper's observation to reproduce: System A (monolithic edge table,
// tiny catalog) spends a smaller share of its time compiling than System B
// (fragmented mapping, large catalog), but pays more per data access during
// execution; the DTD-derived schema of System C buys favorable execution.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/table_printer.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  const int reps = FlagInt(argc, argv, "reps", 5);
  std::printf("=== Table 2: Compile vs execute phases, Q1/Q2 on A, B, C ===\n");
  std::printf("scaling factor %g, best of %d runs\n\n", sf, reps);
  std::printf("Paper values (Compilation total%% / Execution total%%):\n");
  std::printf("  Q1: A 25/75, B 51/49, C 29/71\n");
  std::printf("  Q2: A 13/87, B 20/80, C 16/84\n\n");

  BenchmarkRunner runner(sf);
  TablePrinter table({"Query", "System", "Compile CPU%", "Compile total%",
                      "Execute CPU%", "Execute total%", "Compile ms",
                      "Execute ms", "Catalog probes"});

  // Sub-millisecond phases need loop amplification for stable CPU
  // fractions: compile and execute are each timed over many iterations.
  const int compile_loops = 2000 * std::max(1, reps);
  const int execute_loops = 25 * std::max(1, reps);

  for (int q : {1, 2}) {
    for (SystemId id : {SystemId::kA, SystemId::kB, SystemId::kC}) {
      const Status st = runner.LoadSystem(id);
      if (!st.ok()) return 1;
      Engine* engine = runner.engine(id);
      const QuerySpec& spec = GetQuery(q);

      PhaseTimer compile_timer;
      size_t catalog_probes = 0;
      for (int i = 0; i < compile_loops; ++i) {
        auto prepared = engine->Prepare(spec.text);
        if (!prepared.ok()) {
          std::fprintf(stderr, "prepare failed: %s\n",
                       prepared.status().ToString().c_str());
          return 1;
        }
        catalog_probes = prepared->catalog_probes;
      }
      const double compile_wall =
          compile_timer.ElapsedWallMillis() / compile_loops;
      const double compile_cpu =
          compile_timer.ElapsedCpuMillis() / compile_loops;

      auto prepared = engine->Prepare(spec.text);
      if (!prepared.ok()) return 1;
      // Adaptive: iterate until at least 50 ms accumulated so the CPU
      // clock granularity cannot distort the percentages.
      PhaseTimer exec_timer;
      int executed = 0;
      while (executed < execute_loops ||
             exec_timer.ElapsedWallMillis() < 50.0) {
        auto result = engine->Execute(*prepared);
        if (!result.ok()) {
          std::fprintf(stderr, "execute failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        ++executed;
      }
      const double exec_wall = exec_timer.ElapsedWallMillis() / executed;
      const double exec_cpu = exec_timer.ElapsedCpuMillis() / executed;

      const double total = compile_wall + exec_wall;
      table.AddRow(
          {StringPrintf("Q%d", q), std::string(1, SystemLabel(id)),
           StringPrintf("%.0f%%", std::min(100.0, 100.0 * compile_cpu /
                                      std::max(1e-9, compile_wall))),
           StringPrintf("%.0f%%", 100.0 * compile_wall / total),
           StringPrintf("%.0f%%", std::min(100.0,
                        100.0 * exec_cpu / std::max(1e-9, exec_wall))),
           StringPrintf("%.0f%%", 100.0 * exec_wall / total),
           StringPrintf("%.4f", compile_wall),
           StringPrintf("%.4f", exec_wall),
           std::to_string(catalog_probes)});
    }
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("shape check: B's catalog (one entry per path) forces more "
              "metadata probes than A's two-relation catalog, so B's\n"
              "compile share of total time should exceed A's on both "
              "queries (paper: 51%% vs 25%% on Q1).\n");
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
