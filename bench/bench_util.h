#ifndef XMARK_BENCH_BENCH_UTIL_H_
#define XMARK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/string_util.h"

namespace xmark::bench {

/// Parses "--name=value" from argv; returns `def` when absent.
inline double FlagDouble(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

inline int FlagInt(int argc, char** argv, const char* name, int def) {
  return static_cast<int>(FlagDouble(argc, argv, name, def));
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// "12.3 MB"-style size rendering.
inline std::string HumanBytes(size_t bytes) {
  if (bytes >= (size_t{1} << 30)) {
    return StringPrintf("%.2f GB", static_cast<double>(bytes) / (1 << 30));
  }
  if (bytes >= (size_t{1} << 20)) {
    return StringPrintf("%.2f MB", static_cast<double>(bytes) / (1 << 20));
  }
  if (bytes >= (size_t{1} << 10)) {
    return StringPrintf("%.1f KB", static_cast<double>(bytes) / (1 << 10));
  }
  return StringPrintf("%zu B", bytes);
}

}  // namespace xmark::bench

#endif  // XMARK_BENCH_BENCH_UTIL_H_
