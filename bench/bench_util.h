#ifndef XMARK_BENCH_BENCH_UTIL_H_
#define XMARK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/string_util.h"

namespace xmark::bench {

/// Parses "--name=value" from argv; returns `def` when absent.
inline double FlagDouble(int argc, char** argv, const char* name, double def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

inline int FlagInt(int argc, char** argv, const char* name, int def) {
  return static_cast<int>(FlagDouble(argc, argv, name, def));
}

inline bool FlagBool(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

/// Minimal JSON emitter for machine-readable benchmark output (--json).
/// Handles comma placement; the caller is responsible for balanced
/// Begin/End calls. Numbers are emitted with enough precision for ms
/// timings; strings are escaped for the characters benchmark names use.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(std::string_view name) {
    Comma();
    AppendString(name);
    out_ += ':';
    pending_value_ = true;
    return *this;
  }
  JsonWriter& Value(double v) {
    Comma();
    out_ += StringPrintf("%.4f", v);
    return *this;
  }
  JsonWriter& Value(int64_t v) {
    Comma();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(size_t v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(int v) { return Value(static_cast<int64_t>(v)); }
  JsonWriter& Value(bool v) {
    Comma();
    out_ += v ? "true" : "false";
    return *this;
  }
  JsonWriter& Value(std::string_view v) {
    Comma();
    AppendString(v);
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char c) {
    Comma();
    out_ += c;
    needs_comma_.push_back(false);
    return *this;
  }
  JsonWriter& Close(char c) {
    out_ += c;
    needs_comma_.pop_back();
    return *this;
  }
  void Comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value follows its key directly
    }
    if (!needs_comma_.empty()) {
      if (needs_comma_.back()) out_ += ',';
      needs_comma_.back() = true;
    }
  }
  void AppendString(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        default:
          out_ += c;
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> needs_comma_;
  bool pending_value_ = false;
};

/// Replaces every `document("auction.xml")` entry call of a benchmark
/// query with `replacement` — corpus benches point Q1-Q20 at a specific
/// catalog document (`doc("corpus-03.xml")`) or at the whole corpus
/// (`collection()`).
inline std::string RewriteEntryCalls(std::string_view query_text,
                                     std::string_view replacement) {
  constexpr std::string_view kNeedle = "document(\"auction.xml\")";
  std::string out;
  size_t pos = 0;
  while (true) {
    const size_t hit = query_text.find(kNeedle, pos);
    if (hit == std::string_view::npos) break;
    out.append(query_text.substr(pos, hit - pos));
    out.append(replacement);
    pos = hit + kNeedle.size();
  }
  out.append(query_text.substr(pos));
  return out;
}

/// "12.3 MB"-style size rendering.
inline std::string HumanBytes(size_t bytes) {
  if (bytes >= (size_t{1} << 30)) {
    return StringPrintf("%.2f GB", static_cast<double>(bytes) / (1 << 30));
  }
  if (bytes >= (size_t{1} << 20)) {
    return StringPrintf("%.2f MB", static_cast<double>(bytes) / (1 << 20));
  }
  if (bytes >= (size_t{1} << 10)) {
    return StringPrintf("%.1f KB", static_cast<double>(bytes) / (1 << 10));
  }
  return StringPrintf("%zu B", bytes);
}

}  // namespace xmark::bench

#endif  // XMARK_BENCH_BENCH_UTIL_H_
