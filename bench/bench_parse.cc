// Reproduces the parser baseline of section 7: "it took the XML parser
// expat 4.9 seconds ... to scan the benchmark document" (100 MB, 550 MHz
// Pentium III) — i.e. ~20 MB/s tokenization with no semantic actions.
// We time our SAX scanner (tokenization + entity decoding, no-op handler)
// and the full DOM build for comparison.

#include <benchmark/benchmark.h>

#include "gen/generator.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace xmark::bench {
namespace {

const std::string& Doc(double scale) {
  static std::map<double, std::string>* const kDocs =
      new std::map<double, std::string>();
  auto it = kDocs->find(scale);
  if (it == kDocs->end()) {
    gen::GeneratorOptions opts;
    opts.scale = scale;
    it = kDocs->emplace(scale, gen::XmlGen(opts).GenerateToString()).first;
  }
  return it->second;
}

class NullHandler : public xml::SaxHandler {
 public:
  Status OnStartElement(std::string_view,
                        const std::vector<xml::SaxAttribute>&) override {
    return Status::OK();
  }
  Status OnEndElement(std::string_view) override { return Status::OK(); }
  Status OnCharacters(std::string_view) override { return Status::OK(); }
};

void BM_SaxScan(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  const std::string& doc = Doc(scale);
  for (auto _ : state) {
    NullHandler handler;
    xml::SaxParser parser;
    const Status st = parser.Parse(doc, &handler);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
  state.counters["doc_bytes"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_SaxScan)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_DomBuild(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  const std::string& doc = Doc(scale);
  for (auto _ : state) {
    auto parsed = xml::Document::Parse(doc);
    if (!parsed.ok()) state.SkipWithError(parsed.status().ToString().c_str());
    benchmark::DoNotOptimize(parsed->num_nodes());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_DomBuild)->Arg(10)->Arg(50)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf("\npaper baseline: expat scanned the 100 MB document in 4.9 s "
              "(~20 MB/s on a 550 MHz Pentium III).\n"
              "Scale the bytes_per_second counters above against that "
              "figure; the shape check is simply that scanning is\n"
              "linear in document size and far cheaper than any bulkload in "
              "Table 1.\n");
  return 0;
}
