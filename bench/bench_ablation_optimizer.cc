// Ablation bench for the design choices DESIGN.md calls out: each engine
// feature is toggled on the same store and the affected queries re-timed.
// This grounds the Table 3 contrasts in their mechanisms:
//   - structural summary / tag index  -> Q6, Q7 (regular path expressions)
//   - ID index                        -> Q1 (exact match)
//   - hash-join decorrelation         -> Q8, Q9 (reference chasing)
//   - lazy let evaluation             -> Q12 (pruned value join)
// plus a rel-operator microbenchmark of hash join vs nested loops on the
// shredded closed_auction |x| person join (the Q8 shape).

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "rel/operators.h"
#include "rel/shredder.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xmark/queries.h"

namespace xmark::bench {
namespace {

double TimeQuery(const query::StorageAdapter* store,
                 const query::EvaluatorOptions& opts, int q) {
  auto parsed = query::ParseQueryText(GetQuery(q).text);
  XMARK_CHECK(parsed.ok());
  query::Evaluator evaluator(store, opts);
  // Best-of-3 CPU time: single cold wall-clock runs are dominated by
  // first-touch warmup and scheduler noise at sub-millisecond scales.
  double best = 0;
  for (int r = 0; r < 3; ++r) {
    PhaseTimer timer;
    auto result = evaluator.Run(*parsed);
    XMARK_CHECK(result.ok());
    const double ms = timer.ElapsedCpuMillis();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  const bool json = FlagBool(argc, argv, "json");
  // Ablation flag: run every row's baseline without pipeline fusion, so
  // the other feature contrasts can be read against the unfused executor.
  const bool no_pipelines = FlagBool(argc, argv, "no-compiled-pipelines");
  if (!json) {
    std::printf("=== Ablation: optimizer features on the native store ===\n");
    std::printf("scaling factor %g%s\n\n", sf,
                no_pipelines ? " (compiled pipelines off)" : "");
  }

  gen::GeneratorOptions gopts;
  gopts.scale = sf;
  const std::string doc_text = gen::XmlGen(gopts).GenerateToString();

  store::DomStore::Options dopts;  // all indexes built
  auto store = store::DomStore::Load(doc_text, dopts);
  XMARK_CHECK(store.ok());

  query::EvaluatorOptions all_on;  // defaults: everything enabled
  all_on.compiled_pipelines = !no_pipelines;

  struct Ablation {
    const char* feature;
    std::vector<int> queries;
    query::EvaluatorOptions off;
    query::EvaluatorOptions on;  // baseline for this row (default: all on)
  };
  std::vector<Ablation> ablations;
  {
    Ablation a{"structural summary + tag index", {6, 7}, all_on};
    a.off.use_path_index = false;
    a.off.use_tag_index = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"ID index", {1}, all_on};
    a.off.use_id_index = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"hash-join decorrelation", {8, 9}, all_on};
    a.off.hash_join = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"sort-merge band join", {11, 12}, all_on};
    a.off.band_join = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"arena result construction", {10, 13, 19}, all_on};
    a.off.arena_construction = false;
    ablations.push_back(std::move(a));
  }
  // The band join removes Q11/Q12's inner loop entirely, so the lazy-let
  // and invariant-cache rows time both sides with it off — these features
  // prune/memoize that loop, which is what the ablation must isolate.
  {
    Ablation a{"lazy let evaluation", {12}, all_on};
    a.on.band_join = false;
    a.off.band_join = false;
    a.off.lazy_let = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"invariant-path caching", {11}, all_on};
    a.on.band_join = false;
    a.off.band_join = false;
    a.off.cache_invariant_paths = false;
    ablations.push_back(std::move(a));
  }
  {
    Ablation a{"compiled pipelines", {1, 5, 6, 14}, all_on};
    a.on.compiled_pipelines = true;  // fused even under --no-compiled-pipelines
    a.off.compiled_pipelines = false;
    ablations.push_back(std::move(a));
  }

  TablePrinter table({"Feature", "Query", "on (ms)", "off (ms)", "speedup"});
  for (const Ablation& ab : ablations) {
    for (int q : ab.queries) {
      const double on_ms = TimeQuery(store->get(), ab.on, q);
      const double off_ms = TimeQuery(store->get(), ab.off, q);
      table.AddRow({ab.feature, StringPrintf("Q%d", q),
                    StringPrintf("%.2f", on_ms), StringPrintf("%.2f", off_ms),
                    StringPrintf("%.1fx", off_ms / std::max(0.001, on_ms))});
    }
  }
  if (!json) std::printf("%s\n", table.ToString().c_str());

  // Compiled-pipeline contrast on the edge store — the mapping whose
  // dense preorder arrays feed the raw fused drains (the PR 9 acceptance
  // numbers). Same tree, fused queries, pipelines on vs off.
  struct PipeRow {
    int query;
    double pipeline_ms;
    double no_pipeline_ms;
  };
  std::vector<PipeRow> pipe_rows;
  {
    auto edge = store::EdgeStore::Load(doc_text);
    XMARK_CHECK(edge.ok());
    query::EvaluatorOptions fused;  // defaults: everything on
    query::EvaluatorOptions unfused = fused;
    unfused.compiled_pipelines = false;
    for (int q : {1, 5, 6, 14}) {
      PipeRow row{q, TimeQuery(edge->get(), fused, q),
                  TimeQuery(edge->get(), unfused, q)};
      pipe_rows.push_back(row);
    }
  }
  if (!json) {
    std::printf("--- compiled pipelines: edge store, fused queries ---\n");
    TablePrinter pt({"Query", "pipeline (ms)", "no pipeline (ms)", "speedup"});
    for (const PipeRow& r : pipe_rows) {
      pt.AddRow({StringPrintf("Q%d", r.query),
                 StringPrintf("%.2f", r.pipeline_ms),
                 StringPrintf("%.2f", r.no_pipeline_ms),
                 StringPrintf("%.2fx", r.no_pipeline_ms /
                                           std::max(0.001, r.pipeline_ms))});
    }
    std::printf("%s\n", pt.ToString().c_str());
  }

  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(std::string_view("ablation_optimizer"));
    w.Key("scale").Value(sf);
    w.Key("no_compiled_pipelines").Value(no_pipelines);
    w.Key("compiled_pipelines").BeginObject();
    w.Key("store").Value(std::string_view("edge table"));
    w.Key("queries").BeginArray();
    for (const PipeRow& r : pipe_rows) {
      w.BeginObject();
      w.Key("query").Value(r.query);
      w.Key("pipeline_ms").Value(r.pipeline_ms);
      w.Key("no_pipeline_ms").Value(r.no_pipeline_ms);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  // rel-operator microbench: person |x| closed_auction (the Q8 join) as a
  // hash join vs a nested-loop join.
  std::printf("--- rel operators: hash join vs nested loops (Q8 shape) ---\n");
  auto parsed_doc = xml::Document::Parse(doc_text);
  XMARK_CHECK(parsed_doc.ok());
  auto tables = rel::ShredAuctionDocument(*parsed_doc);
  XMARK_CHECK(tables.ok());
  const int pid = tables->persons->ColumnIndex("id");
  const int buyer = tables->closed_auctions->ColumnIndex("buyer");

  PhaseTimer hash_timer;
  rel::HashJoin hash_join(
      std::make_unique<rel::TableScan>(tables->persons.get()),
      std::make_unique<rel::TableScan>(tables->closed_auctions.get()),
      static_cast<size_t>(pid),
      static_cast<size_t>(buyer) + 0);
  auto hash_rows = rel::Collect(&hash_join);
  XMARK_CHECK(hash_rows.ok());
  const double hash_ms = hash_timer.ElapsedWallMillis();

  PhaseTimer nl_timer;
  const size_t person_cols = tables->persons->num_columns();
  rel::NestedLoopJoin nl_join(
      std::make_unique<rel::TableScan>(tables->persons.get()),
      std::make_unique<rel::TableScan>(tables->closed_auctions.get()),
      [&](const rel::Row& l, const rel::Row& r) {
        (void)person_cols;
        return std::get<std::string>(l[pid]) ==
               std::get<std::string>(r[buyer]);
      });
  auto nl_rows = rel::Collect(&nl_join);
  XMARK_CHECK(nl_rows.ok());
  const double nl_ms = nl_timer.ElapsedWallMillis();

  std::printf("hash join: %.2f ms (%zu rows), nested loops: %.2f ms "
              "(%zu rows), speedup %.1fx\n",
              hash_ms, hash_rows->size(), nl_ms, nl_rows->size(),
              nl_ms / std::max(0.001, hash_ms));
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
