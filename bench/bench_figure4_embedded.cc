// Reproduces Figure 4 of the paper: all twenty queries on the embedded
// query processor (System G) at document sizes 100 kB (factor 0.001) and
// 1 MB (factor 0.01) — "the largest sizes we could sensibly execute".
//
// Shape to check: a large constant per-query floor (the embedded processor
// re-loads the document and copies results for every query), with every
// query on the 1 MB document slower than on the 100 kB document.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/table_printer.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

int Main(int argc, char** argv) {
  const int reps = FlagInt(argc, argv, "reps", 3);
  std::printf("=== Figure 4: Embedded query processor (System G) ===\n");
  std::printf("documents: factor 0.001 (~100 kB) and 0.01 (~1 MB), best of "
              "%d runs\n\n",
              reps);

  BenchmarkRunner small(0.001);
  BenchmarkRunner large(0.01);
  std::printf("small document: %s, large document: %s\n\n",
              HumanBytes(small.document().size()).c_str(),
              HumanBytes(large.document().size()).c_str());

  TablePrinter table({"Query", "100 kB doc (ms)", "1 MB doc (ms)", "ratio",
                      "items (1 MB)"});
  double small_min = 1e30, small_max = 0;
  for (int q = 1; q <= 20; ++q) {
    auto ts = small.RunQuery(SystemId::kG, q, reps);
    auto tl = large.RunQuery(SystemId::kG, q, reps);
    if (!ts.ok() || !tl.ok()) {
      std::fprintf(stderr, "Q%d failed: %s %s\n", q,
                   ts.ok() ? "" : ts.status().ToString().c_str(),
                   tl.ok() ? "" : tl.status().ToString().c_str());
      return 1;
    }
    small_min = std::min(small_min, ts->total_ms());
    small_max = std::max(small_max, ts->total_ms());
    table.AddRow({StringPrintf("Q%d", q),
                  StringPrintf("%.2f", ts->total_ms()),
                  StringPrintf("%.2f", tl->total_ms()),
                  StringPrintf("%.1fx", tl->total_ms() /
                                            std::max(0.001, ts->total_ms())),
                  std::to_string(tl->result_items)});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("paper: on the 100 kB document no query took longer than 5 s "
              "and none was faster than 2.5 s — a 2x band dominated\n"
              "by the constant embedded-processor overhead. measured band: "
              "%.2f ms .. %.2f ms (%.1fx)\n",
              small_min, small_max, small_max / std::max(0.001, small_min));
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
