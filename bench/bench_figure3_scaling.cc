// Reproduces Figure 3 of the paper: document size as a function of the
// scaling factor ("tiny" 0.1 -> 10 MB ... "huge" 100 -> 10 GB), plus the
// xmlgen efficiency claims of section 4.5 (linear time, constant memory).
//
// Default run sweeps small factors so it finishes in seconds; pass
// --full to also measure factor 1.0 (the paper's "standard" 100 MB point).

#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generator.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace xmark::bench {
namespace {

int Main(int argc, char** argv) {
  const bool full = FlagBool(argc, argv, "full");

  std::printf("=== Figure 3: Scaling the benchmark document ===\n");
  std::printf("Paper: factor 0.1 -> 10 MB, 1 -> 100 MB, 10 -> 1 GB, "
              "100 -> 10 GB (linear)\n\n");

  std::vector<double> factors = {0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1};
  if (full) factors.push_back(1.0);

  TablePrinter table({"factor", "size", "bytes/factor", "gen time",
                      "entities"});
  double base_ratio = 0;
  for (double f : factors) {
    gen::GeneratorOptions opts;
    opts.scale = f;
    gen::XmlGen gen(opts);
    PhaseTimer timer;
    const size_t bytes = gen.MeasureSize();
    const double ms = timer.ElapsedWallMillis();
    const double ratio = static_cast<double>(bytes) / f;
    if (base_ratio == 0) base_ratio = ratio;
    table.AddRow({StringPrintf("%g", f), HumanBytes(bytes),
                  StringPrintf("%.3g", ratio),
                  StringPrintf("%.1f ms", ms),
                  std::to_string(gen.counts().TotalEntities())});
  }
  std::printf("%s\n", table.ToString().c_str());

  // Linearity check: bytes/factor should be roughly constant.
  gen::GeneratorOptions small_opts, big_opts;
  small_opts.scale = 0.01;
  big_opts.scale = 0.08;
  const double small_size =
      static_cast<double>(gen::XmlGen(small_opts).MeasureSize());
  const double big_size =
      static_cast<double>(gen::XmlGen(big_opts).MeasureSize());
  std::printf("linearity: size(0.08)/size(0.01) = %.2f (ideal 8.00)\n",
              big_size / small_size);

  // Extrapolated factor-1.0 size (the paper calibrates "slightly more than
  // 100 MB").
  std::printf("extrapolated size at factor 1.0: %s\n",
              HumanBytes(static_cast<size_t>(big_size / 0.08)).c_str());
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
