// Reproduces Table 1 of the paper: database sizes and bulkload times for
// the mass-storage systems A-F. Absolute values differ from the paper
// (550 MHz Pentium III + disk vs this machine + main memory); the shape to
// check is the spread: the native store (D) loads fastest and stays
// smallest, the fragmented mapping (B) and the heavier native mappings
// carry the most overhead.

#include <cstdio>

#include "bench/bench_util.h"
#include "util/table_printer.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

struct PaperRow {
  char system;
  const char* size;
  const char* bulkload;
};

constexpr PaperRow kPaperTable1[] = {
    {'A', "241 MB", "414 s"}, {'B', "280 MB", "781 s"},
    {'C', "238 MB", "548 s"}, {'D', "142 MB", "50 s"},
    {'E', "302 MB", "96 s"},  {'F', "345 MB", "215 s"},
};

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  std::printf("=== Table 1: Database sizes and bulkload times ===\n");
  std::printf("scaling factor %g (paper used 1.0 = 100 MB)\n\n", sf);

  BenchmarkRunner runner(sf);
  std::printf("document: %s\n\n", HumanBytes(runner.document().size()).c_str());

  TablePrinter table({"System", "Size", "Bulkload time", "Catalog entries",
                      "Paper size", "Paper bulkload"});
  for (size_t i = 0; i < kMassStorageSystems.size(); ++i) {
    const SystemId id = kMassStorageSystems[i];
    const Status st = runner.LoadSystem(id);
    if (!st.ok()) {
      std::fprintf(stderr, "load %c failed: %s\n", SystemLabel(id),
                   st.ToString().c_str());
      return 1;
    }
    const LoadInfo& info = runner.load_info(id);
    table.AddRow({std::string(1, SystemLabel(id)),
                  HumanBytes(info.database_bytes),
                  StringPrintf("%.1f ms", info.bulkload_ms),
                  std::to_string(info.catalog_entries),
                  kPaperTable1[i].size, kPaperTable1[i].bulkload});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("shape checks (paper):\n");
  const auto ratio = [&](SystemId a, SystemId b) {
    return runner.load_info(a).bulkload_ms / runner.load_info(b).bulkload_ms;
  };
  std::printf("  D loads fastest of all systems (paper: 50 s minimum): "
              "D/A = %.2fx, D/B = %.2fx\n",
              ratio(SystemId::kD, SystemId::kA),
              ratio(SystemId::kD, SystemId::kB));
  std::printf("  B is the slowest relational bulkload (paper: 781 s): "
              "B/A = %.2fx, B/C = %.2fx\n",
              ratio(SystemId::kB, SystemId::kA),
              ratio(SystemId::kB, SystemId::kC));
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
