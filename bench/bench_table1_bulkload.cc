// Reproduces Table 1 of the paper: database sizes and bulkload times for
// the mass-storage systems A-F. Absolute values differ from the paper
// (550 MHz Pentium III + disk vs this machine + main memory); the shape to
// check is the spread: the native store (D) loads fastest and stays
// smallest, the fragmented mapping (B) and the heavier native mappings
// carry the most overhead.
//
// PR 3 adds the parallel bulkload pipeline: every system loads twice, once
// with --threads workers (default hardware_concurrency) and once with the
// threads=1 serial ablation, and the speedup column isolates the pipeline.
// --json emits the machine-readable form archived as BENCH_PR3.json.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "util/table_printer.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

struct PaperRow {
  char system;
  const char* size;
  const char* bulkload;
};

constexpr PaperRow kPaperTable1[] = {
    {'A', "241 MB", "414 s"}, {'B', "280 MB", "781 s"},
    {'C', "238 MB", "548 s"}, {'D', "142 MB", "50 s"},
    {'E', "302 MB", "96 s"},  {'F', "345 MB", "215 s"},
};

// Best-of-reps bulkload at the given thread count.
double LoadBest(BenchmarkRunner& runner, SystemId id, unsigned threads,
                int reps, Status* status) {
  runner.set_load_threads(threads);
  double best = 0;
  for (int r = 0; r < reps; ++r) {
    runner.UnloadSystem(id);
    *status = runner.LoadSystem(id);
    if (!status->ok()) return 0;
    const double ms = runner.load_info(id).bulkload_ms;
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  const int reps = FlagInt(argc, argv, "reps", 1);
  const int threads_flag = FlagInt(argc, argv, "threads", 0);
  if (threads_flag < 0) {
    std::fprintf(stderr, "--threads must be >= 0 (0 = hardware)\n");
    return 1;
  }
  const unsigned threads = static_cast<unsigned>(threads_flag);
  const bool json = FlagBool(argc, argv, "json");
  const unsigned hw = std::thread::hardware_concurrency();
  const unsigned effective = threads != 0 ? threads : (hw == 0 ? 1 : hw);

  BenchmarkRunner runner(sf);
  if (!json) {
    std::printf("=== Table 1: Database sizes and bulkload times ===\n");
    std::printf("scaling factor %g (paper used 1.0 = 100 MB), "
                "threads %u (hardware %u), serial ablation threads=1\n\n",
                sf, effective, hw);
    std::printf("document: %s\n\n",
                HumanBytes(runner.document().size()).c_str());
  }

  struct Result {
    SystemId id;
    double parallel_ms = 0;
    double serial_ms = 0;
    size_t bytes = 0;
    size_t catalog = 0;
  };
  std::vector<Result> results;
  for (const SystemId id : kMassStorageSystems) {
    Result res;
    res.id = id;
    Status st = Status::OK();
    res.serial_ms = LoadBest(runner, id, 1, reps, &st);
    if (st.ok()) res.parallel_ms = LoadBest(runner, id, effective, reps, &st);
    if (!st.ok()) {
      std::fprintf(stderr, "load %c failed: %s\n", SystemLabel(id),
                   st.ToString().c_str());
      return 1;
    }
    res.bytes = runner.load_info(id).database_bytes;
    res.catalog = runner.load_info(id).catalog_entries;
    results.push_back(res);
  }

  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(std::string_view("table1_bulkload"));
    w.Key("scale").Value(sf);
    w.Key("reps").Value(reps);
    w.Key("threads").Value(static_cast<int64_t>(effective));
    w.Key("hardware_concurrency").Value(static_cast<int64_t>(hw));
    w.Key("document_bytes").Value(runner.document().size());
    w.Key("systems").BeginArray();
    for (const Result& res : results) {
      w.BeginObject();
      w.Key("system").Value(std::string(1, SystemLabel(res.id)));
      w.Key("database_bytes").Value(res.bytes);
      w.Key("catalog_entries").Value(res.catalog);
      w.Key("bulkload_ms").Value(res.parallel_ms);
      w.Key("bulkload_serial_ms").Value(res.serial_ms);
      w.Key("speedup").Value(
          res.parallel_ms > 0 ? res.serial_ms / res.parallel_ms : 0.0);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
    return 0;
  }

  TablePrinter table({"System", "Size", "Bulkload time", "Serial (t=1)",
                      "Speedup", "Catalog entries", "Paper size",
                      "Paper bulkload"});
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& res = results[i];
    table.AddRow({std::string(1, SystemLabel(res.id)), HumanBytes(res.bytes),
                  StringPrintf("%.1f ms", res.parallel_ms),
                  StringPrintf("%.1f ms", res.serial_ms),
                  StringPrintf("%.2fx", res.parallel_ms > 0
                                            ? res.serial_ms / res.parallel_ms
                                            : 0.0),
                  std::to_string(res.catalog), kPaperTable1[i].size,
                  kPaperTable1[i].bulkload});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("shape checks (paper):\n");
  const auto ratio = [&](SystemId a, SystemId b) {
    double ams = 0, bms = 0;
    for (const Result& res : results) {
      if (res.id == a) ams = res.parallel_ms;
      if (res.id == b) bms = res.parallel_ms;
    }
    return ams / bms;
  };
  std::printf("  D loads fastest of all systems (paper: 50 s minimum): "
              "D/A = %.2fx, D/B = %.2fx\n",
              ratio(SystemId::kD, SystemId::kA),
              ratio(SystemId::kD, SystemId::kB));
  std::printf("  B is the slowest relational bulkload (paper: 781 s): "
              "B/A = %.2fx, B/C = %.2fx\n",
              ratio(SystemId::kB, SystemId::kA),
              ratio(SystemId::kB, SystemId::kC));
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
