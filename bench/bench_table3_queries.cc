// Reproduces Table 3 of the paper: per-query execution times (ms) of the
// queries discussed in section 7 on the six mass-storage systems A-F,
// extended with the Q15/Q16 long-path observation ("Systems A, B and C
// needed about 8 times longer to execute Q16 than ... Q15").
//
// Shape to check against the paper (not absolute numbers):
//   - Q1 cheap everywhere; C/D lead (id lookup through schema/index).
//   - Q2/Q3 hit the relational mappings; C is the best relational system.
//   - Q6/Q7 collapse on D (structural summary), expensive elsewhere.
//   - Q8/Q9 cheap on hash-join systems; Q9 > Q8.
//   - Q10 dominated by result construction; fragmented B suffers most.
//   - Q11/Q12 giant theta joins; Q12 < Q11 (lazy-let pruning).
//   - Q17/Q20 moderate everywhere.

#include <cstdio>

#include "bench/bench_util.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "xmark/runner.h"

namespace xmark::bench {
namespace {

// Zero-copy + planner ablation on one engine: every query timed with all
// fast paths on, with only the arena construction off (isolating the
// ConstructPlan templates on Q10/Q13/Q19), with only the band join off
// (isolating the sort-merge band join on Q11/Q12), with the descendant
// cursors additionally off (isolating the interval-encoded descendant
// scans), and with every fast path off (the seed's per-access allocation
// behavior) — same store, same tree.
struct AblationResult {
  double fast_ms[20] = {};
  double no_arena_ms[20] = {};  // arena construction off, rest on
  double no_band_ms[20] = {};   // band join off, rest on
  double no_desc_ms[20] = {};   // band join + descendant cursors off
  double slow_ms[20] = {};
  double fast_total = 0;
  double no_arena_total = 0;
  double no_band_total = 0;
  double no_desc_total = 0;
  double slow_total = 0;
  // Heap-allocated constructed nodes per query (nodes_constructed minus
  // nodes_arena_allocated): the fast run vs the arena-off run is the
  // Q10-class allocation-count contrast CI pins (>=3x on Q10).
  int64_t construct_heap_fast[20] = {};
  int64_t construct_heap_no_arena[20] = {};
  int64_t cursor_scans = 0;
  int64_t descendant_scans = 0;
  int64_t pipeline_batches_fused = 0;  // batches through compiled pipelines
  int64_t virtual_batches = 0;         // batches through virtual NodeScan
  int64_t band_joins_built = 0;   // band domains sorted (fast run)
  int64_t band_join_rows = 0;     // rows answered by band probes (fast run)
  int64_t nodes_constructed = 0;        // constructed nodes (fast run)
  int64_t nodes_arena_allocated = 0;    // arena subset (fast run)
  int64_t construct_templates_built = 0;  // templates lowered (fast run)
  int64_t allocations_avoided = 0;
  int64_t compare_allocs_fast = 0;
  int64_t compare_allocs_slow = 0;
  int64_t sequence_heap_spills = 0;  // SBO misses across Q1-Q20 (fast run)
};

AblationResult RunAblation(Engine* engine, int reps) {
  AblationResult out;
  query::EvaluatorOptions fast = engine->evaluator_options();
  fast.zero_copy_strings = true;
  fast.child_cursors = true;
  fast.descendant_cursors = true;
  fast.band_join = true;
  fast.arena_construction = true;
  query::EvaluatorOptions no_arena = fast;
  no_arena.arena_construction = false;
  query::EvaluatorOptions no_band = fast;
  no_band.band_join = false;
  query::EvaluatorOptions no_desc = no_band;
  no_desc.descendant_cursors = false;
  query::EvaluatorOptions slow = no_desc;
  slow.zero_copy_strings = false;
  slow.child_cursors = false;
  slow.arena_construction = false;

  const query::EvaluatorOptions* variants[] = {&fast, &no_arena, &no_band,
                                               &no_desc, &slow};
  for (int q = 1; q <= 20; ++q) {
    auto parsed = query::ParseQueryText(GetQuery(q).text);
    XMARK_CHECK(parsed.ok());
    for (int variant = 0; variant < 5; ++variant) {
      query::Evaluator evaluator(engine->store(), *variants[variant]);
      double best = 0;
      for (int r = 0; r < reps; ++r) {
        PhaseTimer timer;
        auto result = evaluator.Run(*parsed);
        XMARK_CHECK(result.ok());
        // CPU time, not wall: the ablation isolates CPU-bound evaluator
        // work, and best-of-CPU is stable on noisy shared hardware where
        // wall-clock scatter exceeds the single-feature contrasts.
        const double ms = timer.ElapsedCpuMillis();
        if (r == 0 || ms < best) best = ms;
      }
      const query::Evaluator::Stats& stats = evaluator.stats();
      if (variant == 0) {
        out.fast_ms[q - 1] = best;
        out.fast_total += best;
        out.construct_heap_fast[q - 1] =
            stats.nodes_constructed - stats.nodes_arena_allocated;
        out.cursor_scans += stats.cursor_scans;
        out.descendant_scans += stats.descendant_scans;
        out.pipeline_batches_fused += stats.pipeline_batches_fused;
        out.virtual_batches += stats.virtual_batches;
        out.band_joins_built += stats.band_joins_built;
        out.band_join_rows += stats.band_join_rows;
        out.nodes_constructed += stats.nodes_constructed;
        out.nodes_arena_allocated += stats.nodes_arena_allocated;
        out.construct_templates_built += stats.construct_templates_built;
        out.allocations_avoided += stats.allocations_avoided;
        out.compare_allocs_fast += stats.compare_allocs;
        out.sequence_heap_spills += stats.sequence_heap_spills;
      } else if (variant == 1) {
        out.no_arena_ms[q - 1] = best;
        out.no_arena_total += best;
        out.construct_heap_no_arena[q - 1] =
            stats.nodes_constructed - stats.nodes_arena_allocated;
      } else if (variant == 2) {
        out.no_band_ms[q - 1] = best;
        out.no_band_total += best;
      } else if (variant == 3) {
        out.no_desc_ms[q - 1] = best;
        out.no_desc_total += best;
      } else {
        out.slow_ms[q - 1] = best;
        out.slow_total += best;
        out.compare_allocs_slow += stats.compare_allocs;
      }
    }
  }
  return out;
}

// --explain: dump the optimizer's plan for Q1-Q20 against the edge store
// with every optimization on (the configuration the CI fallback check
// pins).
int DumpPlans(double sf) {
  BenchmarkRunner runner(sf);
  const Status st = runner.LoadSystem(SystemId::kA);
  if (!st.ok()) {
    std::fprintf(stderr, "load A: %s\n", st.ToString().c_str());
    return 1;
  }
  Engine* engine = runner.engine(SystemId::kA);
  query::EvaluatorOptions all_on;  // defaults: every optimization enabled
  engine->set_evaluator_options(all_on);
  for (int q = 1; q <= 20; ++q) {
    auto text = engine->Explain(GetQuery(q).text);
    if (!text.ok()) {
      std::fprintf(stderr, "explain Q%d: %s\n", q,
                   text.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Q%d ===\n%s\n", q, text->c_str());
  }
  return 0;
}

struct PaperRow {
  int query;
  double ms[6];  // A..F
};

// Table 3 of the paper (ms, scaling factor 1.0 on 550 MHz hardware).
constexpr PaperRow kPaperTable3[] = {
    {1, {689, 784, 257, 120, 1597, 2814}},
    {2, {3171, 1971, 707, 2900, 4659, 7481}},
    {3, {41030, 6389, 1942, 3900, 4630, 8074}},
    {5, {259, 221, 237, 160, 246, 204}},
    {6, {293, 331, 509, 10, 336, 508}},
    {7, {719, 741, 1520, 10, 287, 2845}},
    {8, {1684, 1466, 667, 470, 3849, 9143}},
    {9, {3530, 10189, 92534, 980, 5994, 13698}},
    {10, {3414285, 86886, 1568, 22000, 54721, 69422}},
    {11, {205675, 2551760, 2533738, 8700, 602223, 741730}},
    {12, {126127, 965118, 976026, 7500, 268644, 270577}},
    {17, {1008, 1117, 240, 250, 2103, 3598}},
    {20, {821, 939, 1254, 620, 1065, 1759}},
};

int Main(int argc, char** argv) {
  const double sf = FlagDouble(argc, argv, "sf", 0.05);
  const int reps = FlagInt(argc, argv, "reps", 1);
  const bool json = FlagBool(argc, argv, "json");
  const bool no_fastpath = FlagBool(argc, argv, "no-fastpath");
  const bool no_band_join = FlagBool(argc, argv, "no-band-join");
  const bool no_arena_construct = FlagBool(argc, argv, "no-arena-construct");
  // With --reps > 1 the repetitions compile through the shared plan cache
  // (first rep pays the full parse + catalog + lowering, later reps hit
  // the cache) instead of re-parsing per iteration.
  // --no-prepared-cache restores the re-parse-per-rep behavior.
  const bool prepared_cache =
      reps > 1 && !FlagBool(argc, argv, "no-prepared-cache");
  if (FlagBool(argc, argv, "explain")) return DumpPlans(sf);
  if (!json) {
    std::printf("=== Table 3: Query performance (ms), systems A-F ===\n");
    std::printf("scaling factor %g (paper used 1.0)\n\n", sf);
  }

  BenchmarkRunner runner(sf);
  runner.set_use_prepared_cache(prepared_cache);
  for (SystemId id : kMassStorageSystems) {
    const Status st = runner.LoadSystem(id);
    if (!st.ok()) {
      std::fprintf(stderr, "load %c: %s\n", SystemLabel(id),
                   st.ToString().c_str());
      return 1;
    }
    if (no_fastpath || no_band_join || no_arena_construct) {
      Engine* engine = runner.engine(id);
      query::EvaluatorOptions opts = engine->evaluator_options();
      if (no_fastpath) {
        // Ablation flag: run the whole benchmark with the seed's
        // per-access allocation behavior (no views, no cursors, no band
        // rewrites, no arena construction).
        opts.zero_copy_strings = false;
        opts.child_cursors = false;
        opts.descendant_cursors = false;
        opts.band_join = false;
        opts.arena_construction = false;
      }
      if (no_band_join) opts.band_join = false;
      if (no_arena_construct) opts.arena_construction = false;
      engine->set_evaluator_options(opts);
    }
  }

  TablePrinter table(
      {"Query", "A", "B", "C", "D", "E", "F", "items", "paper (A..F)"});
  std::map<int, std::array<double, 6>> measured;
  std::map<int, std::array<double, 6>> first_compile;
  std::map<int, std::array<double, 6>> cached_compile;
  std::map<int, size_t> result_items;
  for (const PaperRow& row : kPaperTable3) {
    std::vector<std::string> cells{StringPrintf("Q%d", row.query)};
    size_t items = 0;
    for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
      auto timing = runner.RunQuery(kMassStorageSystems[s], row.query, reps);
      if (!timing.ok()) {
        std::fprintf(stderr, "Q%d on %c: %s\n", row.query,
                     SystemLabel(kMassStorageSystems[s]),
                     timing.status().ToString().c_str());
        return 1;
      }
      measured[row.query][s] = timing->total_ms();
      first_compile[row.query][s] = timing->first_compile_ms;
      cached_compile[row.query][s] = timing->cached_compile_ms;
      cells.push_back(StringPrintf("%.1f", timing->total_ms()));
      items = timing->result_items;
    }
    result_items[row.query] = items;
    cells.push_back(std::to_string(items));
    cells.push_back(StringPrintf("%.0f %.0f %.0f %.0f %.0f %.0f",
                                 row.ms[0], row.ms[1], row.ms[2], row.ms[3],
                                 row.ms[4], row.ms[5]));
    table.AddRow(std::move(cells));
  }
  if (!json) std::printf("%s\n", table.ToString().c_str());

  if (prepared_cache && !json) {
    // Compile-cost amortization: totals across the Table 3 queries, first
    // repetition (full compile, cache miss) vs best cached repetition
    // (one shard-map probe).
    std::printf("--- prepared-query cache: compile ms across Table 3 "
                "queries, first vs cached rep ---\n");
    for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
      double first_total = 0;
      double cached_total = 0;
      for (const PaperRow& row : kPaperTable3) {
        first_total += first_compile[row.query][s];
        cached_total += cached_compile[row.query][s];
      }
      const auto stats =
          runner.engine(kMassStorageSystems[s])->plan_cache_stats();
      std::printf("  %c: first %.3f ms, cached %.3f ms (%.1fx; cache "
                  "hits=%llu misses=%llu)\n",
                  SystemLabel(kMassStorageSystems[s]), first_total,
                  cached_total, first_total / std::max(1e-6, cached_total),
                  static_cast<unsigned long long>(stats.hits),
                  static_cast<unsigned long long>(stats.misses));
    }
    std::printf("\n");
  }

  // Section 7's Q15/Q16 long-path observation.
  TablePrinter paths({"Query", "A", "B", "C", "D", "E", "F", "items"});
  std::map<int, std::array<double, 6>> path_ms;
  for (int q : {15, 16}) {
    std::vector<std::string> cells{StringPrintf("Q%d", q)};
    size_t items = 0;
    for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
      auto timing = runner.RunQuery(kMassStorageSystems[s], q, reps);
      if (!timing.ok()) return 1;
      path_ms[q][s] = timing->total_ms();
      cells.push_back(StringPrintf("%.1f", timing->total_ms()));
      items = timing->result_items;
    }
    result_items[q] = items;
    cells.push_back(std::to_string(items));
    paths.AddRow(std::move(cells));
  }
  if (!json) {
    std::printf("--- Q15/Q16 path-length observation (section 7) ---\n");
    std::printf("%s", paths.ToString().c_str());
    std::printf("paper: Q16 took ~8x longer than Q15 on A, B, C. measured: "
                "A %.1fx, B %.1fx, C %.1fx\n\n",
                path_ms[16][0] / std::max(0.001, path_ms[15][0]),
                path_ms[16][1] / std::max(0.001, path_ms[15][1]),
                path_ms[16][2] / std::max(0.001, path_ms[15][2]));

    // Shape checks.
    auto m = [&](int q, int s) { return measured[q][s]; };
    std::printf("shape checks (see EXPERIMENTS.md for discussion):\n");
    std::printf("  Q6 on D vs A: %.2fx faster (paper: 29x)\n",
                m(6, 0) / std::max(0.001, m(6, 3)));
    std::printf("  Q7 on D vs F: %.2fx faster (paper: 284x)\n",
                m(7, 5) / std::max(0.001, m(7, 3)));
    std::printf("  Q3 relational best is C: C=%.1f vs A=%.1f, B=%.1f\n",
                m(3, 2), m(3, 0), m(3, 1));
    std::printf("  Q12 < Q11 on lazy-let systems: A %.2fx, D %.2fx\n",
                m(11, 0) / std::max(0.001, m(12, 0)),
                m(11, 3) / std::max(0.001, m(12, 3)));
    std::printf("  Q9 > Q8 everywhere: A %.1fx, D %.1fx, F %.1fx\n",
                m(9, 0) / std::max(0.001, m(8, 0)),
                m(9, 3) / std::max(0.001, m(8, 3)),
                m(9, 5) / std::max(0.001, m(8, 5)));
  }

  // Zero-copy storage-access ablation on the edge store (system A): the
  // same tree, Q1-Q20, with the view/cursor fast paths on vs off.
  const int ablation_reps = reps > 2 ? reps : 2;
  const AblationResult ab =
      RunAblation(runner.engine(SystemId::kA), ablation_reps);
  const double reduction =
      100.0 * (ab.slow_total - ab.fast_total) / std::max(0.001, ab.slow_total);
  if (!json) {
    std::printf("\n--- zero-copy ablation: edge store, Q1-Q20, best of %d ---\n",
                ablation_reps);
    TablePrinter at({"Query", "fast (ms)", "no arena construct (ms)",
                     "no band join (ms)", "no desc cursors (ms)",
                     "no fast paths (ms)", "speedup"});
    for (int q = 1; q <= 20; ++q) {
      at.AddRow({StringPrintf("Q%d", q),
                 StringPrintf("%.2f", ab.fast_ms[q - 1]),
                 StringPrintf("%.2f", ab.no_arena_ms[q - 1]),
                 StringPrintf("%.2f", ab.no_band_ms[q - 1]),
                 StringPrintf("%.2f", ab.no_desc_ms[q - 1]),
                 StringPrintf("%.2f", ab.slow_ms[q - 1]),
                 StringPrintf("%.2fx", ab.slow_ms[q - 1] /
                                           std::max(0.001, ab.fast_ms[q - 1]))});
    }
    std::printf("%s", at.ToString().c_str());
    std::printf("total: %.1f ms -> %.1f ms (no arena construct %.1f ms; no "
                "band join %.1f ms; no desc cursors %.1f ms; %.1f%% "
                "reduction)\n",
                ab.slow_total, ab.fast_total, ab.no_arena_total,
                ab.no_band_total, ab.no_desc_total, reduction);
    std::printf("band join: Q11 %.2fx, Q12 %.2fx (%lld domains built, "
                "%lld rows by binary search)\n",
                ab.no_band_ms[10] / std::max(0.001, ab.fast_ms[10]),
                ab.no_band_ms[11] / std::max(0.001, ab.fast_ms[11]),
                static_cast<long long>(ab.band_joins_built),
                static_cast<long long>(ab.band_join_rows));
    std::printf("arena construction: Q10 %.2fx cpu, constructed-node heap "
                "allocations %lld -> %lld (%lld arena nodes, %lld "
                "templates)\n",
                ab.no_arena_ms[9] / std::max(0.001, ab.fast_ms[9]),
                static_cast<long long>(ab.construct_heap_no_arena[9]),
                static_cast<long long>(ab.construct_heap_fast[9]),
                static_cast<long long>(ab.nodes_arena_allocated),
                static_cast<long long>(ab.construct_templates_built));
    std::printf("stats: %lld cursor scans, %lld descendant scans, "
                "%lld allocations avoided, "
                "compare-path materializations %lld -> %lld, "
                "%lld sequence heap spills\n",
                static_cast<long long>(ab.cursor_scans),
                static_cast<long long>(ab.descendant_scans),
                static_cast<long long>(ab.allocations_avoided),
                static_cast<long long>(ab.compare_allocs_slow),
                static_cast<long long>(ab.compare_allocs_fast),
                static_cast<long long>(ab.sequence_heap_spills));
    std::printf("pipelines: %lld fused batches, %lld virtual batches "
                "(fused fraction %.1f%%)\n",
                static_cast<long long>(ab.pipeline_batches_fused),
                static_cast<long long>(ab.virtual_batches),
                100.0 * static_cast<double>(ab.pipeline_batches_fused) /
                    std::max<double>(1.0, static_cast<double>(
                                              ab.pipeline_batches_fused +
                                              ab.virtual_batches)));
  }

  if (json) {
    JsonWriter w;
    w.BeginObject();
    w.Key("bench").Value(std::string_view("table3_queries"));
    w.Key("scale").Value(sf);
    w.Key("reps").Value(reps);
    w.Key("no_fastpath").Value(no_fastpath);
    w.Key("no_band_join").Value(no_band_join);
    w.Key("no_arena_construct").Value(no_arena_construct);
    w.Key("prepared_cache").Value(prepared_cache);
    w.Key("queries").BeginArray();
    auto emit_query = [&](int q, const std::array<double, 6>& ms) {
      w.BeginObject();
      w.Key("query").Value(q);
      w.Key("items").Value(result_items[q]);
      w.Key("ms").BeginObject();
      for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
        const char label[2] = {SystemLabel(kMassStorageSystems[s]), '\0'};
        w.Key(label).Value(ms[s]);
      }
      w.EndObject();
      if (prepared_cache && first_compile.count(q)) {
        w.Key("first_compile_ms").BeginObject();
        for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
          const char label[2] = {SystemLabel(kMassStorageSystems[s]), '\0'};
          w.Key(label).Value(first_compile[q][s]);
        }
        w.EndObject();
        w.Key("cached_compile_ms").BeginObject();
        for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
          const char label[2] = {SystemLabel(kMassStorageSystems[s]), '\0'};
          w.Key(label).Value(cached_compile[q][s]);
        }
        w.EndObject();
      }
      w.EndObject();
    };
    for (const PaperRow& row : kPaperTable3) emit_query(row.query,
                                                        measured[row.query]);
    for (int q : {15, 16}) emit_query(q, path_ms[q]);
    w.EndArray();
    if (prepared_cache) {
      w.Key("plan_cache").BeginObject();
      for (size_t s = 0; s < kMassStorageSystems.size(); ++s) {
        const auto stats =
            runner.engine(kMassStorageSystems[s])->plan_cache_stats();
        const char label[2] = {SystemLabel(kMassStorageSystems[s]), '\0'};
        w.Key(label).BeginObject();
        w.Key("hits").Value(static_cast<int64_t>(stats.hits));
        w.Key("misses").Value(static_cast<int64_t>(stats.misses));
        w.EndObject();
      }
      w.EndObject();
    }
    w.Key("ablation").BeginObject();
    w.Key("store").Value(std::string_view("edge table"));
    w.Key("reps").Value(ablation_reps);
    w.Key("queries").BeginArray();
    for (int q = 1; q <= 20; ++q) {
      w.BeginObject();
      w.Key("query").Value(q);
      w.Key("fast_ms").Value(ab.fast_ms[q - 1]);
      w.Key("no_arena_construct_ms").Value(ab.no_arena_ms[q - 1]);
      w.Key("no_band_join_ms").Value(ab.no_band_ms[q - 1]);
      w.Key("no_descendant_cursors_ms").Value(ab.no_desc_ms[q - 1]);
      w.Key("no_fastpath_ms").Value(ab.slow_ms[q - 1]);
      w.Key("construct_heap_nodes_fast").Value(ab.construct_heap_fast[q - 1]);
      w.Key("construct_heap_nodes_no_arena")
          .Value(ab.construct_heap_no_arena[q - 1]);
      w.EndObject();
    }
    w.EndArray();
    w.Key("fast_total_ms").Value(ab.fast_total);
    w.Key("no_arena_construct_total_ms").Value(ab.no_arena_total);
    w.Key("no_band_join_total_ms").Value(ab.no_band_total);
    w.Key("no_descendant_cursors_total_ms").Value(ab.no_desc_total);
    w.Key("no_fastpath_total_ms").Value(ab.slow_total);
    w.Key("reduction_pct").Value(reduction);
    w.Key("cursor_scans").Value(ab.cursor_scans);
    w.Key("descendant_scans").Value(ab.descendant_scans);
    w.Key("pipeline_batches_fused").Value(ab.pipeline_batches_fused);
    w.Key("virtual_batches").Value(ab.virtual_batches);
    w.Key("band_joins_built").Value(ab.band_joins_built);
    w.Key("band_join_rows").Value(ab.band_join_rows);
    w.Key("nodes_constructed").Value(ab.nodes_constructed);
    w.Key("nodes_arena_allocated").Value(ab.nodes_arena_allocated);
    w.Key("construct_templates_built").Value(ab.construct_templates_built);
    w.Key("sequence_heap_spills").Value(ab.sequence_heap_spills);
    w.Key("allocations_avoided").Value(ab.allocations_avoided);
    w.Key("compare_allocs_fast").Value(ab.compare_allocs_fast);
    w.Key("compare_allocs_no_fastpath").Value(ab.compare_allocs_slow);
    w.EndObject();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace xmark::bench

int main(int argc, char** argv) { return xmark::bench::Main(argc, argv); }
