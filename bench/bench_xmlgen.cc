// Benchmarks the xmlgen document generator against the efficiency claims
// of section 4.5: "requires less than 2 MB of main-memory, and produces
// documents of sizes of 100 MB and 1 GB in 33.4 and 335.5 seconds" (i.e.
// ~3 MB/s on 450 MHz hardware, linear in output size, constant memory).

#include <benchmark/benchmark.h>

#include "gen/generator.h"
#include "gen/text_generator.h"
#include "gen/writer.h"
#include "util/prng.h"

namespace xmark::bench {
namespace {

void BM_Generate(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  gen::GeneratorOptions opts;
  opts.scale = scale;
  gen::XmlGen gen(opts);
  size_t bytes = 0;
  for (auto _ : state) {
    gen::CountingSink sink;
    const Status st = gen.Generate(&sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    bytes = sink.bytes();
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
  state.counters["doc_bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_Generate)->Arg(5)->Arg(20)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_TextGeneration(benchmark::State& state) {
  gen::TextGenerator text;
  Prng prng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(text.Words(prng, 50));
  }
}
BENCHMARK(BM_TextGeneration);

void BM_PrngThroughput(benchmark::State& state) {
  Prng prng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prng.NextU64());
  }
}
BENCHMARK(BM_PrngThroughput);

void BM_PersonEmission(benchmark::State& state) {
  // Isolates one entity kind: persons per second.
  gen::GeneratorOptions opts;
  opts.scale = 0.01;
  gen::XmlGen gen(opts);
  for (auto _ : state) {
    gen::CountingSink sink;
    const Status st = gen.Generate(&sink);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
  }
  state.counters["entities_per_iter"] =
      static_cast<double>(gen.counts().TotalEntities());
}
BENCHMARK(BM_PersonEmission)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace xmark::bench

BENCHMARK_MAIN();
