#include "rel/operators.h"

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "rel/shredder.h"
#include "rel/table.h"
#include "xml/dom.h"

namespace xmark::rel {
namespace {

Table MakePeople() {
  Table t({{"id", ColumnType::kString},
           {"age", ColumnType::kInt64},
           {"income", ColumnType::kDouble}});
  EXPECT_TRUE(t.AppendRow({std::string("p0"), int64_t{30}, 50000.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("p1"), int64_t{25}, 20000.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("p2"), int64_t{41}, 90000.0}).ok());
  return t;
}

Table MakeSales() {
  Table t({{"buyer", ColumnType::kString}, {"price", ColumnType::kDouble}});
  EXPECT_TRUE(t.AppendRow({std::string("p0"), 10.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("p2"), 20.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("p0"), 30.0}).ok());
  EXPECT_TRUE(t.AppendRow({std::string("px"), 40.0}).ok());
  return t;
}

TEST(TableTest, SchemaAndAccess) {
  Table t = MakePeople();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.ColumnIndex("age"), 1);
  EXPECT_EQ(t.ColumnIndex("missing"), -1);
  EXPECT_EQ(t.StringAt(0, 1), "p1");
  EXPECT_EQ(t.Int64At(1, 2), 41);
  EXPECT_DOUBLE_EQ(t.DoubleAt(2, 0), 50000.0);
}

TEST(TableTest, TypeMismatchRejected) {
  Table t({{"x", ColumnType::kInt64}});
  EXPECT_FALSE(t.AppendRow({3.5}).ok());
  EXPECT_FALSE(t.AppendRow({std::string("no")}).ok());
  EXPECT_FALSE(t.AppendRow({int64_t{1}, int64_t{2}}).ok());  // arity
  EXPECT_TRUE(t.AppendRow({int64_t{1}}).ok());
}

TEST(ValueTest, CompareAndRender) {
  EXPECT_EQ(CompareValues(int64_t{2}, 2.0), 0);
  EXPECT_LT(CompareValues(int64_t{1}, 2.0), 0);
  EXPECT_GT(CompareValues(std::string("b"), std::string("a")), 0);
  EXPECT_LT(CompareValues(2.0, std::string("a")), 0);  // numbers first
  EXPECT_EQ(ValueToString(int64_t{7}), "7");
  EXPECT_EQ(ValueToString(2.5), "2.5");
  EXPECT_EQ(ValueToString(std::string("s")), "s");
}

TEST(ScanTest, ProducesAllRows) {
  Table t = MakePeople();
  TableScan scan(&t);
  auto rows = Collect(&scan);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ(std::get<std::string>((*rows)[0][0]), "p0");
}

TEST(FilterTest, KeepsMatching) {
  Table t = MakePeople();
  Filter plan(std::make_unique<TableScan>(&t), [](const Row& row) {
    return std::get<int64_t>(row[1]) >= 30;
  });
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(ProjectTest, ComputesColumns) {
  Table t = MakePeople();
  Project plan(std::make_unique<TableScan>(&t), [](const Row& row) -> Row {
    return {std::get<std::string>(row[0]),
            std::get<double>(row[2]) / 1000.0};
  });
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][1]), 50.0);
}

TEST(HashJoinTest, JoinsOnKeys) {
  Table people = MakePeople();
  Table sales = MakeSales();
  HashJoin join(std::make_unique<TableScan>(&people),
                std::make_unique<TableScan>(&sales), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // p0 matches twice, p2 once, p1 and px never.
  EXPECT_EQ(rows->size(), 3u);
  for (const Row& row : *rows) {
    EXPECT_EQ(std::get<std::string>(row[0]), std::get<std::string>(row[3]));
  }
}

TEST(HashJoinTest, EmptyInputs) {
  Table people = MakePeople();
  Table empty({{"buyer", ColumnType::kString},
               {"price", ColumnType::kDouble}});
  HashJoin join(std::make_unique<TableScan>(&people),
                std::make_unique<TableScan>(&empty), 0, 0);
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(NestedLoopJoinTest, MatchesHashJoinOnEquality) {
  Table people = MakePeople();
  Table sales = MakeSales();
  HashJoin hash(std::make_unique<TableScan>(&people),
                std::make_unique<TableScan>(&sales), 0, 0);
  NestedLoopJoin nested(
      std::make_unique<TableScan>(&people),
      std::make_unique<TableScan>(&sales),
      [](const Row& l, const Row& r) {
        return std::get<std::string>(l[0]) == std::get<std::string>(r[0]);
      });
  auto h = Collect(&hash);
  auto n = Collect(&nested);
  ASSERT_TRUE(h.ok() && n.ok());
  EXPECT_EQ(h->size(), n->size());
}

TEST(NestedLoopJoinTest, ThetaJoin) {
  Table people = MakePeople();
  Table sales = MakeSales();
  NestedLoopJoin join(std::make_unique<TableScan>(&people),
                      std::make_unique<TableScan>(&sales),
                      [](const Row& l, const Row& r) {
                        return std::get<double>(l[2]) >
                               1000.0 * std::get<double>(r[1]);
                      });
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  // incomes {50000,20000,90000} vs 1000*price {10000,20000,30000,40000}:
  // p0: 4 wait- 50000>10000,50000>20000,50000>30000,50000>40000 -> 4
  // p1: 20000>10000 -> 1 ; p2: all 4.
  EXPECT_EQ(rows->size(), 9u);
}

TEST(SortTest, OrdersByKey) {
  Table t = MakePeople();
  Sort plan(std::make_unique<TableScan>(&t), {{1, false}});
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][1]), 25);
  EXPECT_EQ(std::get<int64_t>((*rows)[2][1]), 41);
}

TEST(SortTest, DescendingAndStable) {
  Table t = MakePeople();
  Sort plan(std::make_unique<TableScan>(&t), {{1, true}});
  auto rows = Collect(&plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][1]), 41);
}

TEST(AggregateTest, GlobalAggregates) {
  Table sales = MakeSales();
  Aggregate agg(std::make_unique<TableScan>(&sales), {},
                {{Aggregate::Func::kCount, 0},
                 {Aggregate::Func::kSum, 1},
                 {Aggregate::Func::kMin, 1},
                 {Aggregate::Func::kMax, 1}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 4);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][1]), 100.0);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][2]), 10.0);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][3]), 40.0);
}

TEST(AggregateTest, GroupBy) {
  Table sales = MakeSales();
  Aggregate agg(std::make_unique<TableScan>(&sales), {0},
                {{Aggregate::Func::kCount, 0},
                 {Aggregate::Func::kSum, 1}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);  // p0, p2, px
  // Deterministic (sorted) group order: p0, p2, px.
  EXPECT_EQ(std::get<std::string>((*rows)[0][0]), "p0");
  EXPECT_EQ(std::get<int64_t>((*rows)[0][1]), 2);
  EXPECT_DOUBLE_EQ(std::get<double>((*rows)[0][2]), 40.0);
}

TEST(AggregateTest, EmptyInputGlobalProducesZeroRow) {
  Table empty({{"x", ColumnType::kDouble}});
  Aggregate agg(std::make_unique<TableScan>(&empty), {},
                {{Aggregate::Func::kCount, 0}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 0);
}

TEST(ComposedPlanTest, FilterJoinAggregate) {
  Table people = MakePeople();
  Table sales = MakeSales();
  // SELECT count(*) FROM people JOIN sales ON id=buyer WHERE age >= 30.
  auto filtered = std::make_unique<Filter>(
      std::make_unique<TableScan>(&people),
      [](const Row& row) { return std::get<int64_t>(row[1]) >= 30; });
  auto joined = std::make_unique<HashJoin>(
      std::move(filtered), std::make_unique<TableScan>(&sales), 0, 0);
  Aggregate agg(std::move(joined), {}, {{Aggregate::Func::kCount, 0}});
  auto rows = Collect(&agg);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(std::get<int64_t>((*rows)[0][0]), 3);  // p0 x2 + p2 x1
}

TEST(ShredderTest, TablesMatchGeneratorCounts) {
  gen::GeneratorOptions options;
  options.scale = 0.002;
  gen::XmlGen gen(options);
  auto doc = xml::Document::Parse(gen.GenerateToString());
  ASSERT_TRUE(doc.ok());
  auto tables = ShredAuctionDocument(*doc);
  ASSERT_TRUE(tables.ok());
  EXPECT_EQ(tables->persons->num_rows(),
            static_cast<size_t>(gen.counts().persons));
  EXPECT_EQ(tables->items->num_rows(),
            static_cast<size_t>(gen.counts().items));
  EXPECT_EQ(tables->open_auctions->num_rows(),
            static_cast<size_t>(gen.counts().open_auctions));
  EXPECT_EQ(tables->closed_auctions->num_rows(),
            static_cast<size_t>(gen.counts().closed_auctions));
}

TEST(ShredderTest, ParallelShredMatchesSerial) {
  // The chunked shred (per-chunk row batches appended in chunk order)
  // must reproduce the serial document-order tables exactly.
  gen::GeneratorOptions options;
  options.scale = 0.002;
  auto doc = xml::Document::Parse(gen::XmlGen(options).GenerateToString());
  ASSERT_TRUE(doc.ok());
  auto serial = ShredAuctionDocument(*doc, store::LoadOptions{1});
  ASSERT_TRUE(serial.ok());
  auto expect_tables_equal = [](const Table& a, const Table& b) {
    ASSERT_EQ(a.num_rows(), b.num_rows());
    ASSERT_EQ(a.num_columns(), b.num_columns());
    for (size_t row = 0; row < a.num_rows(); ++row) {
      for (size_t col = 0; col < a.num_columns(); ++col) {
        EXPECT_EQ(ValueToString(a.ValueAt(col, row)),
                  ValueToString(b.ValueAt(col, row)))
            << "row " << row << " col " << col;
      }
    }
  };
  for (const unsigned threads : {2u, 8u}) {
    auto parallel = ShredAuctionDocument(*doc, store::LoadOptions{threads});
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    expect_tables_equal(*serial->persons, *parallel->persons);
    expect_tables_equal(*serial->items, *parallel->items);
    expect_tables_equal(*serial->open_auctions, *parallel->open_auctions);
    expect_tables_equal(*serial->closed_auctions,
                        *parallel->closed_auctions);
  }
}

TEST(ShredderTest, ReferencesJoinCleanly) {
  gen::GeneratorOptions options;
  options.scale = 0.002;
  auto doc = xml::Document::Parse(gen::XmlGen(options).GenerateToString());
  ASSERT_TRUE(doc.ok());
  auto tables = ShredAuctionDocument(*doc);
  ASSERT_TRUE(tables.ok());
  // Every closed_auction.item joins an items.id row (referential
  // integrity, paper §4.5).
  HashJoin join(
      std::make_unique<TableScan>(tables->closed_auctions.get()),
      std::make_unique<TableScan>(tables->items.get()),
      static_cast<size_t>(tables->closed_auctions->ColumnIndex("item")),
      static_cast<size_t>(tables->items->ColumnIndex("id")));
  auto rows = Collect(&join);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), tables->closed_auctions->num_rows());
}

}  // namespace
}  // namespace xmark::rel
