// NEGATIVE thread-safety probe — this file must NOT compile under
// clang++ -Wthread-safety -Werror=thread-safety.
//
// tools/check_thread_safety.py compiles it and asserts failure: that is
// the proof the GUARDED_BY vocabulary in util/thread_annotations.h is
// actually wired to Clang's analysis (a silent no-op macro set would
// "pass" every build while checking nothing). The expected diagnostic is
// -Wthread-safety-analysis: "reading variable 'value' requires holding
// mutex 'mu'".
//
// This file is intentionally excluded from the normal build (the tests/
// glob takes tests/*.cc, not tests/compile_fail/).

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  xmark::util::Mutex mu;
  int value GUARDED_BY(mu) = 0;

  // BAD: reads a guarded member with no lock held.
  int ReadUnguarded() { return value; }

  // BAD: writes a guarded member with no lock held.
  void WriteUnguarded(int v) { value = v; }

  // BAD: claims to need no lock but calls a REQUIRES function.
  void IncrementLocked() REQUIRES(mu) { ++value; }
  void CallWithoutLock() { IncrementLocked(); }
};

}  // namespace

int main() {
  Counter c;
  c.WriteUnguarded(1);
  c.CallWithoutLock();
  return c.ReadUnguarded();
}
