// POSITIVE thread-safety probe — must compile warning-clean under
// clang++ -Wthread-safety -Werror=thread-safety (and under GCC, where
// the annotations are no-ops).
//
// The twin of thread_safety_bad.cc: together they prove the analysis
// accepts the annotated idioms this repo actually uses (MutexLock
// scopes, REQUIRES helpers, CondVar waits) and rejects the unguarded
// ones. tools/check_thread_safety.py runs both.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

struct Counter {
  xmark::util::Mutex mu;
  xmark::util::CondVar nonzero;
  int value GUARDED_BY(mu) = 0;

  int Read() {
    xmark::util::MutexLock lock(mu);
    return value;
  }

  void IncrementLocked() REQUIRES(mu) { ++value; }

  void Increment() EXCLUDES(mu) {
    xmark::util::MutexLock lock(mu);
    IncrementLocked();
    nonzero.NotifyAll();
  }

  // CondVar::Wait is REQUIRES(mu): holding the lock across the wait is
  // the annotated contract, mirroring ThreadPool::WorkerLoop. The guarded
  // predicate is re-checked with the lock held after every wakeup.
  int WaitNonzero() {
    xmark::util::MutexLock lock(mu);
    while (value == 0) nonzero.Wait(mu);
    return value;
  }
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read() == 1 ? 0 : 1;
}
