#include "gen/text_generator.h"

#include <gtest/gtest.h>

#include "gen/wordlist.h"
#include "util/string_util.h"
#include "xml/dom.h"

namespace xmark::gen {
namespace {

TEST(WordListTest, HasExactly17000Words) {
  EXPECT_EQ(WordList::Instance().size(), WordList::kVocabularySize);
  EXPECT_EQ(WordList::kVocabularySize, 17000u);
}

TEST(WordListTest, WordsAreUniqueAndNonEmpty) {
  const WordList& wl = WordList::Instance();
  std::set<std::string> seen;
  for (size_t i = 0; i < wl.size(); ++i) {
    ASSERT_FALSE(wl.word(i).empty());
    ASSERT_TRUE(seen.insert(wl.word(i)).second) << wl.word(i);
  }
}

TEST(WordListTest, GoldIsHighFrequency) {
  // Q14's probe word must live in the fat head of the Zipf distribution.
  const WordList& wl = WordList::Instance();
  bool found = false;
  for (size_t i = 0; i < 100; ++i) {
    if (wl.word(i) == "gold") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TextGeneratorTest, WordsProducesRequestedCount) {
  TextGenerator gen;
  Prng prng(1);
  const std::string five = gen.Words(prng, 5);
  EXPECT_EQ(xmark::SplitString(five, ' ').size(), 5u);
  Prng prng2(2);
  EXPECT_TRUE(gen.Words(prng2, 0).empty());
}

TEST(TextGeneratorTest, SentenceLengthInRange) {
  TextGenerator gen;
  Prng prng(3);
  for (int i = 0; i < 50; ++i) {
    const auto words = xmark::SplitString(gen.Sentence(prng), ' ');
    EXPECT_GE(words.size(), 8u);
    EXPECT_LE(words.size(), 20u);
  }
}

TEST(TextGeneratorTest, Deterministic) {
  TextGenerator gen;
  Prng a(7, 1), b(7, 1);
  EXPECT_EQ(gen.Words(a, 20), gen.Words(b, 20));
}

std::string EmitFragment(
    const std::function<void(TextGenerator&, XmlWriter&, Prng&)>& emit,
    uint64_t seed) {
  TextGenerator gen;
  Prng prng(seed);
  std::string out;
  StringSink sink(&out);
  XmlWriter writer(&sink);
  writer.StartElement("root");
  emit(gen, writer, prng);
  writer.EndElement();
  return out;
}

TEST(TextGeneratorTest, TextElementIsWellFormed) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::string xml = EmitFragment(
        [](TextGenerator& g, XmlWriter& w, Prng& p) { g.EmitTextElement(w, p); },
        seed);
    auto doc = xml::Document::Parse(xml);
    ASSERT_TRUE(doc.ok()) << doc.status() << "\n" << xml;
    EXPECT_EQ(doc->tag(doc->first_child(doc->root())), "text");
  }
}

TEST(TextGeneratorTest, DescriptionIsWellFormedAndTyped) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    const std::string xml = EmitFragment(
        [](TextGenerator& g, XmlWriter& w, Prng& p) { g.EmitDescription(w, p); },
        seed);
    auto doc = xml::Document::Parse(xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
    const auto desc = doc->first_child(doc->root());
    EXPECT_EQ(doc->tag(desc), "description");
    const auto child = doc->first_child(desc);
    ASSERT_NE(child, xml::kInvalidNode);
    EXPECT_TRUE(doc->tag(child) == "text" || doc->tag(child) == "parlist");
  }
}

TEST(TextGeneratorTest, ParlistDepthBounded) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const std::string xml = EmitFragment(
        [](TextGenerator& g, XmlWriter& w, Prng& p) {
          g.EmitParlist(w, p, 1);
        },
        seed);
    auto doc = xml::Document::Parse(xml);
    ASSERT_TRUE(doc.ok());
    int max_parlist_depth = 0;
    for (xml::NodeId n = 0; n < doc->num_nodes(); ++n) {
      if (doc->IsElement(n) && doc->tag(n) == "parlist") {
        int depth = 0;
        for (xml::NodeId a = n; a != xml::kInvalidNode; a = doc->parent(a)) {
          if (doc->IsElement(a) && doc->tag(a) == "parlist") ++depth;
        }
        max_parlist_depth = std::max(max_parlist_depth, depth);
      }
    }
    EXPECT_LE(max_parlist_depth, TextGenerator::kMaxParlistDepth);
  }
}

TEST(TextGeneratorTest, EmphSometimesContainsKeyword) {
  // The Q15 path ingredient: <emph> with a <keyword> child must occur.
  int hits = 0;
  for (uint64_t seed = 0; seed < 60; ++seed) {
    const std::string xml = EmitFragment(
        [](TextGenerator& g, XmlWriter& w, Prng& p) { g.EmitTextElement(w, p); },
        seed);
    auto doc = xml::Document::Parse(xml);
    ASSERT_TRUE(doc.ok());
    for (xml::NodeId n = 0; n < doc->num_nodes(); ++n) {
      if (!doc->IsElement(n) || doc->tag(n) != "emph") continue;
      for (auto c = doc->first_child(n); c != xml::kInvalidNode;
           c = doc->next_sibling(c)) {
        if (doc->IsElement(c) && doc->tag(c) == "keyword") ++hits;
      }
    }
  }
  EXPECT_GT(hits, 0);
}

TEST(TextGeneratorTest, AnnotationStructure) {
  const std::string xml = EmitFragment(
      [](TextGenerator& g, XmlWriter& w, Prng& p) {
        g.EmitAnnotation(w, p, "person7");
      },
      11);
  auto doc = xml::Document::Parse(xml);
  ASSERT_TRUE(doc.ok());
  const auto ann = doc->first_child(doc->root());
  EXPECT_EQ(doc->tag(ann), "annotation");
  const auto author = doc->first_child(ann);
  EXPECT_EQ(doc->tag(author), "author");
  EXPECT_EQ(*doc->attribute(author, "person"), "person7");
  // Last child is happiness with an integer 1..10.
  xml::NodeId last = author;
  while (doc->next_sibling(last) != xml::kInvalidNode) {
    last = doc->next_sibling(last);
  }
  EXPECT_EQ(doc->tag(last), "happiness");
  const auto value = xmark::ParseInt(doc->StringValue(last));
  ASSERT_TRUE(value.has_value());
  EXPECT_GE(*value, 1);
  EXPECT_LE(*value, 10);
}

}  // namespace
}  // namespace xmark::gen
