// Concurrent serving correctness: N client threads with private
// EngineSessions against one shared loaded store must produce results
// byte-identical to serial execution, the plan cache must compile each
// (query, store, options) key exactly once, sessions must survive engine
// teardown, and shared statistics must merge exactly. Run under
// ThreadSanitizer in CI (-DSANITIZE=thread).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/generator.h"
#include "query/value.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::bench {
namespace {

constexpr unsigned kClientThreads = 4;

// Mixed workload covering every execution feature: id lookup, regular
// paths, tag/path indexes, hash join, band join, ordered access,
// aggregation, template-heavy construction.
const int kWorkload[] = {1, 2, 6, 7, 8, 10, 11, 12, 13, 20};

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    return new std::string(gen::XmlGen(options).GenerateToString());
  }();
  return *kDoc;
}

std::unique_ptr<Engine> LoadedEngine(SystemId id) {
  std::unique_ptr<Engine> engine = Engine::Create(id);
  XMARK_CHECK(engine->Load(TestDocument()).ok());
  return engine;
}

// Serial reference: one result string per workload query, computed through
// the uncached single-threaded path.
std::vector<std::string> SerialResults(Engine* engine) {
  std::vector<std::string> expected;
  for (int q : kWorkload) {
    auto result = engine->Run(GetQuery(q).text);
    XMARK_CHECK(result.ok());
    expected.push_back(query::SerializeSequence(*result));
  }
  return expected;
}

// Runs the workload on `threads` concurrent sessions of `engine`; every
// (thread, query) result must serialize identically to `expected`.
// `passes` > 1 re-runs the mix so later iterations exercise the warm
// plan cache.
void RunConcurrentAndCompare(Engine* engine,
                             const std::vector<std::string>& expected,
                             unsigned threads, int passes) {
  std::vector<std::string> errors(threads);
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < threads; ++t) {
    auto session_or = engine->CreateSession();
    ASSERT_TRUE(session_or.ok()) << session_or.status();
    clients.emplace_back(
        [&, t, session = std::shared_ptr<EngineSession>(
                 std::move(*session_or))] {
          for (int pass = 0; pass < passes; ++pass) {
            for (size_t i = 0; i < std::size(kWorkload); ++i) {
              // De-phase the clients so they are not in lock-step on the
              // same query.
              const size_t pick = (i + t * 3) % std::size(kWorkload);
              auto result = session->Run(GetQuery(kWorkload[pick]).text);
              if (!result.ok()) {
                errors[t] = result.status().ToString();
                return;
              }
              if (query::SerializeSequence(*result) != expected[pick]) {
                errors[t] = "Q" + std::to_string(kWorkload[pick]) +
                            " diverged from serial result";
                return;
              }
            }
          }
        });
  }
  for (std::thread& c : clients) c.join();
  for (unsigned t = 0; t < threads; ++t) {
    EXPECT_EQ(errors[t], "") << "client " << t;
  }
}

TEST(ConcurrentEngine, SessionsMatchSerialByteForByte) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  const std::vector<std::string> expected = SerialResults(engine.get());
  RunConcurrentAndCompare(engine.get(), expected, kClientThreads,
                          /*passes=*/2);
}

TEST(ConcurrentEngine, EdgeStoreSessionsMatchSerial) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kA);
  const std::vector<std::string> expected = SerialResults(engine.get());
  RunConcurrentAndCompare(engine.get(), expected, kClientThreads,
                          /*passes=*/1);
}

TEST(ConcurrentEngine, FragmentedStoreSessionsMatchSerial) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kB);
  const std::vector<std::string> expected = SerialResults(engine.get());
  RunConcurrentAndCompare(engine.get(), expected, kClientThreads,
                          /*passes=*/1);
}

// System G sessions reload the document into a private store per Execute:
// concurrent G clients share nothing but the plan-cache shell (which G
// bypasses) and must still match serial results.
TEST(ConcurrentEngine, ReloadPerQuerySessionsMatchSerial) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kG);
  // Small subset: G reloads the document per query, so the full mix would
  // dominate test time without covering anything new.
  std::vector<std::string> expected;
  const int subset[] = {1, 8, 13};
  for (int q : subset) {
    auto result = engine->Run(GetQuery(q).text);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(query::SerializeSequence(*result));
  }
  std::vector<std::string> errors(2);
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < 2; ++t) {
    auto session_or = engine->CreateSession();
    ASSERT_TRUE(session_or.ok()) << session_or.status();
    clients.emplace_back([&, t, session = std::shared_ptr<EngineSession>(
                                 std::move(*session_or))] {
      for (size_t i = 0; i < std::size(subset); ++i) {
        auto result = session->Run(GetQuery(subset[i]).text);
        if (!result.ok()) {
          errors[t] = result.status().ToString();
          return;
        }
        if (query::SerializeSequence(*result) != expected[i]) {
          errors[t] = "Q" + std::to_string(subset[i]) + " diverged";
          return;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(errors[0], "");
  EXPECT_EQ(errors[1], "");
}

// Morsel-parallel intra-query execution through the serving path: same
// bytes as the serial engine, with concurrent clients on top.
TEST(ConcurrentEngine, ParallelExecSessionsMatchSerial) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  const std::vector<std::string> expected = SerialResults(engine.get());
  query::EvaluatorOptions opts = engine->evaluator_options();
  opts.parallel_exec.enabled = true;
  opts.parallel_exec.threads = 4;
  opts.parallel_exec.min_morsel_ids = 1;  // force morsels at tiny scale
  engine->set_evaluator_options(opts);
  RunConcurrentAndCompare(engine.get(), expected, /*threads=*/2,
                          /*passes=*/1);
}

// Morsel parallelism inside compiled pipelines through the serving path:
// the fused Q1/Q6/Q14 drains on the edge store (raw interval scans +
// chunked descendant morsels) must stay byte-identical to the serial
// engine while concurrent clients share the store and plan cache.
TEST(ConcurrentEngine, MorselPipelineSessionsMatchSerial) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kA);
  std::vector<std::string> expected;
  const int fusable[] = {1, 6, 14};
  for (int q : fusable) {
    auto result = engine->Run(GetQuery(q).text);
    ASSERT_TRUE(result.ok()) << result.status();
    expected.push_back(query::SerializeSequence(*result));
  }
  query::EvaluatorOptions opts = engine->evaluator_options();
  ASSERT_TRUE(opts.compiled_pipelines);  // system A serves fused plans
  opts.parallel_exec.enabled = true;
  opts.parallel_exec.threads = 4;
  opts.parallel_exec.min_morsel_ids = 1;  // force morsels at tiny scale
  engine->set_evaluator_options(opts);
  std::vector<std::string> errors(kClientThreads);
  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kClientThreads; ++t) {
    auto session_or = engine->CreateSession();
    ASSERT_TRUE(session_or.ok()) << session_or.status();
    clients.emplace_back([&, t, session = std::shared_ptr<EngineSession>(
                                 std::move(*session_or))] {
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t i = 0; i < std::size(fusable); ++i) {
          auto result = session->Run(GetQuery(fusable[i]).text);
          if (!result.ok()) {
            errors[t] = result.status().ToString();
            return;
          }
          if (query::SerializeSequence(*result) != expected[i]) {
            errors[t] = "Q" + std::to_string(fusable[i]) +
                        " fused morsel run diverged from serial result";
            return;
          }
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (unsigned t = 0; t < kClientThreads; ++t) {
    EXPECT_EQ(errors[t], "") << "client " << t;
  }
}

// The cache compiles each (query text, store, options) key exactly once:
// with T threads x P passes over W distinct queries, misses == W and
// every other prepare is a hit.
TEST(ConcurrentEngine, PlanCacheCompilesOncePerKey) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  const std::vector<std::string> expected = SerialResults(engine.get());
  ASSERT_EQ(engine->plan_cache_stats().hits, 0u);
  ASSERT_EQ(engine->plan_cache_stats().misses, 0u);  // Engine::Run is uncached

  constexpr int kPasses = 3;
  RunConcurrentAndCompare(engine.get(), expected, kClientThreads, kPasses);

  const query::PlanCacheStats stats = engine->plan_cache_stats();
  const uint64_t total =
      uint64_t{kClientThreads} * kPasses * std::size(kWorkload);
  EXPECT_EQ(stats.misses, std::size(kWorkload));
  EXPECT_EQ(stats.hits, total - std::size(kWorkload));
}

TEST(ConcurrentEngine, PreparedQueryReportsCacheHit) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  auto first = engine->PrepareCached(GetQuery(1).text);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->cache_hit);
  auto second = engine->PrepareCached(GetQuery(1).text);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->cache_hit);
  // Both views resolve to the same shared compilation.
  EXPECT_EQ(first->cached.get(), second->cached.get());
  // Compilation statistics survive the cache round-trip.
  EXPECT_EQ(first->name_tests, second->name_tests);
  EXPECT_EQ(first->catalog_probes, second->catalog_probes);
  // The uncached Table 2 path never touches the cache.
  const query::PlanCacheStats before = engine->plan_cache_stats();
  ASSERT_TRUE(engine->Prepare(GetQuery(1).text).ok());
  const query::PlanCacheStats after = engine->plan_cache_stats();
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
}

// Sessions share the store and serving state by shared_ptr: destroying
// the engine while sessions live must leave them fully functional.
TEST(ConcurrentEngine, SessionOutlivesEngine) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  auto baseline = engine->Run(GetQuery(8).text);
  ASSERT_TRUE(baseline.ok());
  const std::string expected = query::SerializeSequence(*baseline);

  auto session_or = engine->CreateSession();
  ASSERT_TRUE(session_or.ok()) << session_or.status();
  std::unique_ptr<EngineSession> session = std::move(*session_or);
  engine.reset();  // teardown with the session still live

  auto result = session->Run(GetQuery(8).text);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(query::SerializeSequence(*result), expected);
}

// Per-run statistics merge exactly into the shared cumulative counters at
// query completion.
TEST(ConcurrentEngine, CumulativeStatsMergeExactly) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  auto prepared = engine->Prepare(GetQuery(2).text);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(engine->Execute(*prepared).ok());
  const int64_t per_run = engine->last_stats().nodes_visited;
  ASSERT_TRUE(engine->Execute(*prepared).ok());
  ASSERT_TRUE(engine->Execute(*prepared).ok());

  EXPECT_EQ(engine->queries_executed(), 3u);
  EXPECT_EQ(engine->cumulative_stats().nodes_visited, 3 * per_run);
}

// Explain surfaces the serving cache counters.
TEST(ConcurrentEngine, ExplainReportsPlanCacheCounters) {
  std::unique_ptr<Engine> engine = LoadedEngine(SystemId::kD);
  auto before = engine->Explain(GetQuery(1).text);
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_NE(before->find("plan-cache: hits=0 misses=0"), std::string::npos)
      << *before;
  ASSERT_TRUE(engine->PrepareCached(GetQuery(1).text).ok());
  ASSERT_TRUE(engine->PrepareCached(GetQuery(1).text).ok());
  auto after = engine->Explain(GetQuery(1).text);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->find("plan-cache: hits=1 misses=1"), std::string::npos)
      << *after;
}

}  // namespace
}  // namespace xmark::bench
