#include "xmark/engine.h"

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "util/logging.h"
#include "xmark/queries.h"
#include "xmark/result_check.h"

namespace xmark::bench {
namespace {

// One shared document at a scale where all 20 queries return non-trivial
// results but the full 7-engine x 20-query matrix stays fast.
const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions opts;
    opts.scale = 0.01;
    return new std::string(gen::XmlGen(opts).GenerateToString());
  }();
  return *kDoc;
}

Engine* LoadedEngine(SystemId id) {
  static std::map<SystemId, std::unique_ptr<Engine>>* const kEngines =
      new std::map<SystemId, std::unique_ptr<Engine>>();
  auto it = kEngines->find(id);
  if (it == kEngines->end()) {
    auto engine = Engine::Create(id);
    Status st = engine->Load(TestDocument());
    XMARK_CHECK(st.ok());
    it = kEngines->emplace(id, std::move(engine)).first;
  }
  return it->second.get();
}

// Reference results come from the most conservative engine configuration:
// F (no indexes, nested loops) on the native store.
const query::Sequence& ReferenceResult(int query) {
  static std::map<int, query::Sequence>* const kResults =
      new std::map<int, query::Sequence>();
  auto it = kResults->find(query);
  if (it == kResults->end()) {
    auto result = LoadedEngine(SystemId::kF)->Run(GetQuery(query).text);
    XMARK_CHECK(result.ok());
    it = kResults->emplace(query, std::move(result).value()).first;
  }
  return it->second;
}

class AllEnginesAgree
    : public ::testing::TestWithParam<std::tuple<SystemId, int>> {};

TEST_P(AllEnginesAgree, QueryResultMatchesReference) {
  const auto [system, query] = GetParam();
  Engine* engine = LoadedEngine(system);
  auto result = engine->Run(GetQuery(query).text);
  ASSERT_TRUE(result.ok()) << "system " << SystemLabel(system) << " Q"
                           << query << ": " << result.status();
  EquivalenceOptions opts;
  const std::string diff =
      ExplainDifference(ReferenceResult(query), *result, opts);
  EXPECT_TRUE(diff.empty()) << "system " << SystemLabel(system) << " Q"
                            << query << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllEnginesAgree,
    ::testing::Combine(::testing::Values(SystemId::kA, SystemId::kB,
                                         SystemId::kC, SystemId::kD,
                                         SystemId::kE, SystemId::kG),
                       ::testing::Range(1, 21)),
    [](const ::testing::TestParamInfo<std::tuple<SystemId, int>>& info) {
      return std::string(1, SystemLabel(std::get<0>(info.param))) + "_Q" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReferenceResults, AllQueriesReturnSomething) {
  // Sanity on the reference engine itself: queries whose selectivity the
  // generator is tuned for must not come back empty.
  for (int q : {1, 2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18,
                19, 20}) {
    const query::Sequence& result = ReferenceResult(q);
    EXPECT_FALSE(result.empty()) << "Q" << q;
  }
  // Q4 probes two specific persons; at tiny scale it may legitimately be
  // empty, but it must at least evaluate without error (covered above).
}

TEST(EngineMetadata, LabelsAndArchitectures) {
  EXPECT_EQ(SystemLabel(SystemId::kA), 'A');
  EXPECT_EQ(SystemLabel(SystemId::kG), 'G');
  for (SystemId id : kAllSystems) {
    EXPECT_FALSE(SystemArchitecture(id).empty());
  }
}

TEST(EngineMetadata, StorageSizesDiffer) {
  // The physical mappings genuinely differ, so their footprints should too
  // (Table 1's spread).
  const size_t a = LoadedEngine(SystemId::kA)->StorageBytes();
  const size_t d = LoadedEngine(SystemId::kD)->StorageBytes();
  EXPECT_GT(a, 0u);
  EXPECT_GT(d, 0u);
  EXPECT_NE(a, d);
}

TEST(EngineMetadata, CatalogSizesReflectFragmentation) {
  // B's per-path catalog must dwarf A's two-relation catalog.
  EXPECT_GT(LoadedEngine(SystemId::kB)->CatalogEntries(),
            10 * LoadedEngine(SystemId::kA)->CatalogEntries());
}

TEST(Queries, TwentyQueriesExposed) {
  EXPECT_EQ(AllQueries().size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(AllQueries()[i].number, i + 1);
    EXPECT_FALSE(AllQueries()[i].text.empty());
    EXPECT_FALSE(AllQueries()[i].statement.empty());
  }
  EXPECT_EQ(GetQuery(5).category, "Casting");
}

}  // namespace
}  // namespace xmark::bench
