#include "query/value.h"

#include <gtest/gtest.h>

namespace xmark::query {
namespace {

TEST(ItemTest, AtomicKinds) {
  EXPECT_TRUE(Item(true).is_boolean());
  EXPECT_TRUE(Item(3.5).is_number());
  EXPECT_TRUE(Item(std::string("x")).is_string());
  EXPECT_TRUE(Item(3.5).is_atomic());
  EXPECT_FALSE(Item(3.5).is_node());
}

TEST(ItemTest, StringValues) {
  EXPECT_EQ(ItemStringValue(Item(true)), "true");
  EXPECT_EQ(ItemStringValue(Item(false)), "false");
  EXPECT_EQ(ItemStringValue(Item(3.0)), "3");
  EXPECT_EQ(ItemStringValue(Item(3.25)), "3.25");
  EXPECT_EQ(ItemStringValue(Item(std::string("abc"))), "abc");
}

TEST(ItemTest, NumberValues) {
  EXPECT_DOUBLE_EQ(*ItemNumberValue(Item(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(*ItemNumberValue(Item(std::string("42"))), 42.0);
  EXPECT_DOUBLE_EQ(*ItemNumberValue(Item(true)), 1.0);
  EXPECT_FALSE(ItemNumberValue(Item(std::string("abc"))).has_value());
}

TEST(EffectiveBooleanTest, Rules) {
  EXPECT_FALSE(EffectiveBooleanValue({}));
  EXPECT_TRUE(EffectiveBooleanValue({Item(true)}));
  EXPECT_FALSE(EffectiveBooleanValue({Item(false)}));
  EXPECT_TRUE(EffectiveBooleanValue({Item(1.0)}));
  EXPECT_FALSE(EffectiveBooleanValue({Item(0.0)}));
  EXPECT_TRUE(EffectiveBooleanValue({Item(std::string("x"))}));
  EXPECT_FALSE(EffectiveBooleanValue({Item(std::string())}));
}

TEST(ConstructedTest, TextNode) {
  auto node = std::make_shared<ConstructedNode>();
  node->text = "plain & <text>";
  EXPECT_EQ(SerializeItem(Item(ConstructedPtr(node))),
            "plain &amp; &lt;text&gt;");
}

TEST(ConstructedTest, ElementWithAttributesAndChildren) {
  auto child = std::make_shared<ConstructedNode>();
  child->text = "inner";
  auto node = std::make_shared<ConstructedNode>();
  node->tag = "item";
  node->attributes.emplace_back("name", "a \"quoted\" one");
  node->children.emplace_back(ConstructedPtr(child));
  EXPECT_EQ(SerializeItem(Item(ConstructedPtr(node))),
            "<item name=\"a &quot;quoted&quot; one\">inner</item>");
}

TEST(ConstructedTest, EmptyElementSelfCloses) {
  auto node = std::make_shared<ConstructedNode>();
  node->tag = "person";
  node->attributes.emplace_back("id", "p1");
  EXPECT_EQ(SerializeItem(Item(ConstructedPtr(node))),
            "<person id=\"p1\"/>");
}

TEST(ConstructedTest, StringValueConcatenatesText) {
  auto t1 = std::make_shared<ConstructedNode>();
  t1->text = "one ";
  auto inner = std::make_shared<ConstructedNode>();
  inner->tag = "b";
  auto t2 = std::make_shared<ConstructedNode>();
  t2->text = "two";
  inner->children.emplace_back(ConstructedPtr(t2));
  auto node = std::make_shared<ConstructedNode>();
  node->tag = "a";
  node->children.emplace_back(ConstructedPtr(t1));
  node->children.emplace_back(ConstructedPtr(inner));
  EXPECT_EQ(ConstructedStringValue(*node), "one two");
  EXPECT_EQ(ItemStringValue(Item(ConstructedPtr(node))), "one two");
}

TEST(SequenceTest, SerializeSeparators) {
  Sequence seq{Item(1.0), Item(2.0)};
  EXPECT_EQ(SerializeSequence(seq), "1 2");
  auto node = std::make_shared<ConstructedNode>();
  node->tag = "x";
  seq.emplace_back(ConstructedPtr(node));
  EXPECT_EQ(SerializeSequence(seq), "1 2\n<x/>");
}

// The span-based escape scan (bulk copy between escapable bytes) must
// agree with the old per-character loop on every placement of a special
// character: none, leading, trailing, adjacent, and all four entities.
TEST(SerializeTest, EscapeSpanScanCoversAllPlacements) {
  auto esc = [](std::string_view s) {
    auto n = std::make_shared<ConstructedNode>();
    n->text = std::string(s);
    return SerializeItem(Item(ConstructedPtr(n)));
  };
  EXPECT_EQ(esc(""), "");
  EXPECT_EQ(esc("no specials at all"), "no specials at all");
  EXPECT_EQ(esc("&leading"), "&amp;leading");
  EXPECT_EQ(esc("trailing>"), "trailing&gt;");
  EXPECT_EQ(esc("<<>>"), "&lt;&lt;&gt;&gt;");
  EXPECT_EQ(esc("a&b<c>d\"e"), "a&amp;b&lt;c&gt;d&quot;e");
  EXPECT_EQ(esc("&"), "&amp;");
}

// SerializeSequence streams into one pre-reserved buffer: the estimate
// must cover the actual output for atomic-only sequences, so the buffer
// never reallocates while items append.
TEST(SerializeTest, EstimateCoversAtomicOutput) {
  Sequence seq{Item(1.5), Item(true), Item(std::string("atomics stay raw")),
               Item(std::string("plain"))};
  const std::string out = SerializeSequence(seq);
  EXPECT_EQ(out, "1.5 true atomics stay raw plain");
  EXPECT_GE(EstimateSerializedSize(seq), out.size());
}

}  // namespace
}  // namespace xmark::query
