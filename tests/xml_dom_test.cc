#include "xml/dom.h"

#include <gtest/gtest.h>

#include "xml/serializer.h"

namespace xmark::xml {
namespace {

Document MustParse(std::string_view text, bool keep_ws = false) {
  auto result = Document::Parse(text, keep_ws);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DomTest, RootAndStructure) {
  Document doc = MustParse("<a><b/><c>t</c></a>");
  const NodeId root = doc.root();
  ASSERT_NE(root, kInvalidNode);
  EXPECT_EQ(doc.tag(root), "a");
  const NodeId b = doc.first_child(root);
  EXPECT_EQ(doc.tag(b), "b");
  const NodeId c = doc.next_sibling(b);
  EXPECT_EQ(doc.tag(c), "c");
  EXPECT_EQ(doc.next_sibling(c), kInvalidNode);
  const NodeId t = doc.first_child(c);
  EXPECT_EQ(doc.kind(t), NodeKind::kText);
  EXPECT_EQ(doc.text(t), "t");
  EXPECT_EQ(doc.parent(t), c);
  EXPECT_EQ(doc.parent(b), root);
  EXPECT_EQ(doc.parent(root), kInvalidNode);
}

TEST(DomTest, PreorderIdsAreDocumentOrder) {
  Document doc = MustParse("<a><b><d/></b><c/></a>");
  const NodeId a = doc.root();
  const NodeId b = doc.first_child(a);
  const NodeId d = doc.first_child(b);
  const NodeId c = doc.next_sibling(b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, d);
  EXPECT_LT(d, c);
}

TEST(DomTest, Attributes) {
  Document doc = MustParse("<p id=\"person0\" featured=\"yes\"/>");
  const NodeId p = doc.root();
  EXPECT_EQ(doc.attribute_count(p), 2u);
  EXPECT_EQ(*doc.attribute(p, "id"), "person0");
  EXPECT_EQ(*doc.attribute(p, "featured"), "yes");
  EXPECT_FALSE(doc.attribute(p, "missing").has_value());
}

TEST(DomTest, WhitespaceDroppedByDefault) {
  Document doc = MustParse("<a>\n  <b/>\n</a>");
  const NodeId b = doc.first_child(doc.root());
  EXPECT_EQ(doc.tag(b), "b");
  EXPECT_EQ(doc.next_sibling(b), kInvalidNode);
}

TEST(DomTest, WhitespaceKeptOnRequest) {
  Document doc = MustParse("<a> <b/> </a>", /*keep_ws=*/true);
  const NodeId first = doc.first_child(doc.root());
  EXPECT_EQ(doc.kind(first), NodeKind::kText);
}

TEST(DomTest, StringValueConcatenatesDescendantText) {
  Document doc = MustParse("<a>one <b>two</b> three</a>");
  EXPECT_EQ(doc.StringValue(doc.root()), "one two three");
}

TEST(DomTest, StringValueOfTextNode) {
  Document doc = MustParse("<a>plain</a>");
  EXPECT_EQ(doc.StringValue(doc.first_child(doc.root())), "plain");
}

TEST(DomTest, SubtreeEndCoversDescendants) {
  Document doc = MustParse("<a><b><c/><d/></b><e/></a>");
  const NodeId a = doc.root();
  const NodeId b = doc.first_child(a);
  const NodeId e = doc.next_sibling(b);
  EXPECT_EQ(doc.SubtreeEnd(b), e);
  EXPECT_EQ(doc.SubtreeEnd(a), doc.num_nodes());
}

TEST(DomTest, Depth) {
  Document doc = MustParse("<a><b><c/></b></a>");
  const NodeId a = doc.root();
  const NodeId b = doc.first_child(a);
  const NodeId c = doc.first_child(b);
  EXPECT_EQ(doc.Depth(a), 0);
  EXPECT_EQ(doc.Depth(b), 1);
  EXPECT_EQ(doc.Depth(c), 2);
}

TEST(DomTest, AdjacentTextMerged) {
  // Entity references force separate SAX callbacks; the builder merges.
  Document doc = MustParse("<a>x&amp;y</a>");
  const NodeId t = doc.first_child(doc.root());
  EXPECT_EQ(doc.text(t), "x&y");
  EXPECT_EQ(doc.next_sibling(t), kInvalidNode);
}

TEST(DomTest, MemoryBytesPositive) {
  Document doc = MustParse("<a><b>text</b></a>");
  EXPECT_GT(doc.MemoryBytes(), 0u);
}

TEST(SerializerTest, RoundTripSimple) {
  const std::string src = "<a x=\"1\"><b>hi</b><c/></a>";
  Document doc = MustParse(src);
  EXPECT_EQ(SerializeDocument(doc), src);
}

TEST(SerializerTest, EscapesOnOutput) {
  Document doc = MustParse("<a t=\"&lt;&amp;&quot;\">x &lt; y</a>");
  const std::string out = SerializeDocument(doc);
  EXPECT_EQ(out, "<a t=\"&lt;&amp;&quot;\">x &lt; y</a>");
}

TEST(SerializerTest, ReparseYieldsIdenticalSerialization) {
  // Property: serialize(parse(serialize(d))) == serialize(d).
  const std::string src =
      "<site><people><person id=\"person0\"><name>A B</name>"
      "</person></people></site>";
  Document doc = MustParse(src);
  const std::string once = SerializeDocument(doc);
  Document doc2 = MustParse(once);
  EXPECT_EQ(SerializeDocument(doc2), once);
}

TEST(SerializerTest, CanonicalSortsAttributes) {
  Document doc = MustParse("<a zz=\"1\" aa=\"2\"/>");
  SerializeOptions opts;
  opts.canonical = true;
  EXPECT_EQ(SerializeDocument(doc, opts), "<a aa=\"2\" zz=\"1\"/>");
}

TEST(SerializerTest, IndentedOutputParsesBack) {
  Document doc = MustParse("<a><b><c>x</c></b></a>");
  SerializeOptions opts;
  opts.indent = true;
  const std::string pretty = SerializeDocument(doc, opts);
  Document doc2 = MustParse(pretty);
  EXPECT_EQ(SerializeDocument(doc2), "<a><b><c>x</c></b></a>");
}

TEST(DomTest, ParseFileErrorsOnMissingFile) {
  auto result = Document::ParseFile("/nonexistent/path.xml");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(DomTest, EmptyDocumentRejected) {
  EXPECT_FALSE(Document::Parse("").ok());
  EXPECT_FALSE(Document::Parse("   ").ok());
}

}  // namespace
}  // namespace xmark::xml
