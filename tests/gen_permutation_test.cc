#include "gen/permutation.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xmark::gen {
namespace {

class PermutationSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PermutationSizes, IsBijective) {
  const uint64_t n = GetParam();
  RandomPermutation perm(42, n);
  std::set<uint64_t> images;
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t v = perm.Apply(i);
    EXPECT_LT(v, n);
    images.insert(v);
  }
  EXPECT_EQ(images.size(), n);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, PermutationSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 100, 1023, 1024,
                                           1025, 21750));

TEST(PermutationTest, DeterministicForSeed) {
  RandomPermutation a(7, 1000);
  RandomPermutation b(7, 1000);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(a.Apply(i), b.Apply(i));
}

TEST(PermutationTest, DifferentSeedsProduceDifferentPermutations) {
  RandomPermutation a(1, 1000);
  RandomPermutation b(2, 1000);
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.Apply(i) == b.Apply(i)) ++same;
  }
  // Two random permutations of 1000 agree in ~1 position on average.
  EXPECT_LT(same, 10);
}

TEST(PermutationTest, NotIdentity) {
  RandomPermutation perm(42, 1000);
  int fixed = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (perm.Apply(i) == i) ++fixed;
  }
  EXPECT_LT(fixed, 10);
}

TEST(PermutationTest, PartitionSemantics) {
  // The generator's use: first n_open preimages and the rest partition the
  // item id space with no overlap.
  const uint64_t n_open = 24, n_closed = 20;
  RandomPermutation perm(42, n_open + n_closed);
  std::set<uint64_t> open_items, closed_items;
  for (uint64_t j = 0; j < n_open; ++j) open_items.insert(perm.Apply(j));
  for (uint64_t j = 0; j < n_closed; ++j) {
    closed_items.insert(perm.Apply(n_open + j));
  }
  EXPECT_EQ(open_items.size(), n_open);
  EXPECT_EQ(closed_items.size(), n_closed);
  for (uint64_t v : closed_items) EXPECT_EQ(open_items.count(v), 0u);
}

}  // namespace
}  // namespace xmark::gen
