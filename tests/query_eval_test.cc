#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "query/parser.h"
#include "store/dom_store.h"

namespace xmark::query {
namespace {

constexpr std::string_view kDoc = R"(<site>
  <people>
    <person id="person0"><name>Alice</name><age>30</age>
      <profile><income>50000.00</income></profile></person>
    <person id="person1"><name>Bob</name><age>25</age></person>
    <person id="person2"><name>Cara</name><age>41</age>
      <homepage>http://c</homepage></person>
  </people>
  <items>
    <item id="item0"><price>10.50</price><tag>gold ring</tag></item>
    <item id="item1"><price>99.00</price><tag>silver spoon</tag></item>
    <item id="item2"><price>7.25</price><tag>pure gold coin</tag></item>
  </items>
  <sales>
    <sale buyer="person0" item="item1"/>
    <sale buyer="person2" item="item0"/>
    <sale buyer="person0" item="item2"/>
  </sales>
</site>)";

class EvalTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    store::DomStore::Options options;
    auto loaded = store::DomStore::Load(kDoc, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    store_ = loaded->release();
  }

  // Evaluates and serializes; items joined by '|'.
  static std::string Eval(std::string_view text,
                          const EvaluatorOptions& options = {}) {
    auto parsed = ParseQueryText(text);
    if (!parsed.ok()) return "PARSE:" + parsed.status().ToString();
    Evaluator evaluator(store_, options);
    auto result = evaluator.Run(*parsed);
    if (!result.ok()) return "EVAL:" + result.status().ToString();
    std::string out;
    for (size_t i = 0; i < result->size(); ++i) {
      if (i > 0) out += "|";
      out += SerializeItem((*result)[i]);
    }
    return out;
  }

  static store::DomStore* store_;
};

store::DomStore* EvalTest::store_ = nullptr;

TEST_F(EvalTest, AbsolutePaths) {
  EXPECT_EQ(Eval("/site/people/person/name/text()"), "Alice|Bob|Cara");
  EXPECT_EQ(Eval("/site/people/person/@id"), "person0|person1|person2");
}

TEST_F(EvalTest, RootOnlyAndWildcard) {
  EXPECT_EQ(Eval("count(/site/*)"), "3");
  EXPECT_EQ(Eval("count(/site/people/*)"), "3");
}

TEST_F(EvalTest, DescendantAxis) {
  EXPECT_EQ(Eval("count(//person)"), "3");
  EXPECT_EQ(Eval("count(/site//price)"), "3");
  EXPECT_EQ(Eval("count(//nonexistent)"), "0");
}

TEST_F(EvalTest, PositionalPredicates) {
  EXPECT_EQ(Eval("/site/people/person[1]/name/text()"), "Alice");
  EXPECT_EQ(Eval("/site/people/person[3]/name/text()"), "Cara");
  EXPECT_EQ(Eval("/site/people/person[last()]/name/text()"), "Cara");
  EXPECT_EQ(Eval("/site/people/person[4]/name/text()"), "");
}

TEST_F(EvalTest, BooleanPredicates) {
  EXPECT_EQ(Eval("/site/people/person[age > 28]/name/text()"),
            "Alice|Cara");
  EXPECT_EQ(Eval("/site/people/person[homepage]/name/text()"), "Cara");
}

TEST_F(EvalTest, IdPredicateWithAndWithoutIndex) {
  EvaluatorOptions with;
  EvaluatorOptions without;
  without.use_id_index = false;
  const char* q = "/site/people/person[@id = \"person1\"]/name/text()";
  EXPECT_EQ(Eval(q, with), "Bob");
  EXPECT_EQ(Eval(q, without), "Bob");
}

TEST_F(EvalTest, IdIndexStats) {
  auto parsed =
      ParseQueryText("/site/people/person[@id = \"person1\"]/name/text()");
  ASSERT_TRUE(parsed.ok());
  EvaluatorOptions options;
  Evaluator evaluator(store_, options);
  ASSERT_TRUE(evaluator.Run(*parsed).ok());
  EXPECT_GT(evaluator.stats().index_lookups, 0);
}

TEST_F(EvalTest, ArithmeticAndComparison) {
  EXPECT_EQ(Eval("1 + 2 * 3"), "7");
  EXPECT_EQ(Eval("10 div 4"), "2.5");
  EXPECT_EQ(Eval("10 mod 4"), "2");
  EXPECT_EQ(Eval("2 < 10"), "true");
  EXPECT_EQ(Eval("\"2\" < \"10\""), "false");  // string comparison
}

TEST_F(EvalTest, UntypedComparisonCoercion) {
  // Node string-value compared with a number coerces to number.
  EXPECT_EQ(Eval("/site/items/item[price > 50]/@id"), "item1");
}

TEST_F(EvalTest, ExistentialComparisonSemantics) {
  // Any pair may match: ages are {30, 25, 41}.
  EXPECT_EQ(Eval("/site/people/person/age = 25"), "true");
  EXPECT_EQ(Eval("/site/people/person/age = 99"), "false");
}

TEST_F(EvalTest, EmptySequenceArithmetic) {
  EXPECT_EQ(Eval("1 + ()"), "");
  EXPECT_EQ(Eval("count(())"), "0");
}

TEST_F(EvalTest, FlworBasics) {
  EXPECT_EQ(Eval("for $p in /site/people/person return $p/name/text()"),
            "Alice|Bob|Cara");
  EXPECT_EQ(Eval("for $p in /site/people/person where $p/age < 35 "
                 "return $p/name/text()"),
            "Alice|Bob");
}

TEST_F(EvalTest, FlworLet) {
  EXPECT_EQ(Eval("for $p in /site/people/person let $n := $p/name/text() "
                 "where $p/age > 26 return $n"),
            "Alice|Cara");
}

TEST_F(EvalTest, FlworOrderBy) {
  EXPECT_EQ(Eval("for $p in /site/people/person order by $p/name/text() "
                 "descending return $p/name/text()"),
            "Cara|Bob|Alice");
  EXPECT_EQ(Eval("for $p in /site/people/person order by number($p/age) "
                 "return $p/name/text()"),
            "Bob|Alice|Cara");
}

TEST_F(EvalTest, OrderByEmptyKeysFirst) {
  // person1 has no profile/income.
  EXPECT_EQ(Eval("for $p in /site/people/person "
                 "order by zero-or-one($p/homepage) "
                 "return $p/name/text()"),
            "Alice|Bob|Cara");
}

TEST_F(EvalTest, Quantifiers) {
  EXPECT_EQ(Eval("some $p in /site/people/person satisfies $p/age > 40"),
            "true");
  EXPECT_EQ(Eval("every $p in /site/people/person satisfies $p/age > 20"),
            "true");
  EXPECT_EQ(Eval("every $p in /site/people/person satisfies $p/age > 28"),
            "false");
}

TEST_F(EvalTest, NodeOrderBefore) {
  EXPECT_EQ(
      Eval("some $a in //person[@id=\"person0\"], $b in "
           "//person[@id=\"person2\"] satisfies $a << $b"),
      "true");
  EXPECT_EQ(
      Eval("some $a in //person[@id=\"person2\"], $b in "
           "//person[@id=\"person0\"] satisfies $a << $b"),
      "false");
}

TEST_F(EvalTest, Functions) {
  EXPECT_EQ(Eval("count(/site/people/person)"), "3");
  EXPECT_EQ(Eval("empty(/site/people/person)"), "false");
  EXPECT_EQ(Eval("empty(//zzz)"), "true");
  EXPECT_EQ(Eval("not(empty(//person))"), "true");
  EXPECT_EQ(Eval("contains(\"pure gold coin\", \"gold\")"), "true");
  EXPECT_EQ(Eval("starts-with(\"person0\", \"person\")"), "true");
  EXPECT_EQ(Eval("string-length(\"abc\")"), "3");
  EXPECT_EQ(Eval("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Eval("sum(/site/items/item/price)"), "116.75");
  EXPECT_EQ(Eval("min(/site/people/person/age)"), "25");
  EXPECT_EQ(Eval("max(/site/people/person/age)"), "41");
  EXPECT_EQ(Eval("round(2.5)"), "3");
  EXPECT_EQ(Eval("floor(2.9)"), "2");
  EXPECT_EQ(Eval("ceiling(2.1)"), "3");
  EXPECT_EQ(Eval("name(/site/people)"), "people");
  EXPECT_EQ(Eval("string(/site/people/person[1]/name)"), "Alice");
  EXPECT_EQ(Eval("distinct-values((\"a\", \"b\", \"a\"))"), "a|b");
}

TEST_F(EvalTest, ContainsOverNodeStringValue) {
  EXPECT_EQ(Eval("for $i in //item where contains($i/tag, \"gold\") "
                 "return $i/@id"),
            "item0|item2");
}

TEST_F(EvalTest, ElementConstruction) {
  EXPECT_EQ(Eval("<a x=\"1\">hi</a>"), "<a x=\"1\">hi</a>");
  EXPECT_EQ(Eval("<w n=\"{count(//person)}\"/>"), "<w n=\"3\"/>");
  EXPECT_EQ(Eval("<out>{/site/people/person[1]/name}</out>"),
            "<out><name>Alice</name></out>");
}

TEST_F(EvalTest, ConstructorAtomicSpacing) {
  // Adjacent atomics from one expression join with single spaces.
  EXPECT_EQ(Eval("<v>{(1, 2, 3)}</v>"), "<v>1 2 3</v>");
}

TEST_F(EvalTest, ConstructedNodesSerializeEscaped) {
  EXPECT_EQ(Eval("<t>{\"a < b\"}</t>"), "<t>a &lt; b</t>");
}

TEST_F(EvalTest, UserDefinedFunctions) {
  EXPECT_EQ(Eval("declare function local:twice($x) { 2 * $x }; "
                 "local:twice(21)"),
            "42");
  EXPECT_EQ(Eval("declare function local:full($p) { $p/name/text() }; "
                 "for $p in //person return local:full($p)"),
            "Alice|Bob|Cara");
}

TEST_F(EvalTest, HashJoinMatchesNestedLoop) {
  const char* join =
      "for $p in /site/people/person "
      "let $bought := for $s in /site/sales/sale "
      "               where $s/@buyer = $p/@id return $s "
      "return <b p=\"{$p/@id}\">{count($bought)}</b>";
  EvaluatorOptions hash;
  EvaluatorOptions nested;
  nested.hash_join = false;
  EXPECT_EQ(Eval(join, hash), Eval(join, nested));
  EXPECT_EQ(Eval(join, hash),
            "<b p=\"person0\">2</b>|<b p=\"person1\">0</b>|"
            "<b p=\"person2\">1</b>");
}

TEST_F(EvalTest, HashJoinStats) {
  auto parsed = ParseQueryText(
      "for $p in /site/people/person "
      "return count(for $s in /site/sales/sale "
      "             where $s/@buyer = $p/@id return $s)");
  ASSERT_TRUE(parsed.ok());
  EvaluatorOptions options;
  Evaluator evaluator(store_, options);
  ASSERT_TRUE(evaluator.Run(*parsed).ok());
  EXPECT_EQ(evaluator.stats().hash_joins_built, 1);
}

TEST_F(EvalTest, LazyLetSkipsUnusedBindings) {
  // The let body would error (unknown function) if evaluated; laziness
  // plus a false where clause means it never is.
  EvaluatorOptions lazy;
  EXPECT_EQ(Eval("for $p in /site/people/person "
                 "let $boom := unknown-function($p) "
                 "where 1 = 2 return $boom",
                 lazy),
            "");
  EvaluatorOptions eager;
  eager.lazy_let = false;
  const std::string eager_out =
      Eval("for $p in /site/people/person "
           "let $boom := unknown-function($p) "
           "where 1 = 2 return $boom",
           eager);
  EXPECT_NE(eager_out.find("EVAL:"), std::string::npos);
}

TEST_F(EvalTest, CopyResultsProducesEqualSerialization) {
  EvaluatorOptions copy;
  copy.copy_results = true;
  EXPECT_EQ(Eval("/site/people/person[1]", copy),
            Eval("/site/people/person[1]"));
}

TEST_F(EvalTest, IfThenElse) {
  EXPECT_EQ(Eval("if (count(//person) > 2) then \"many\" else \"few\""),
            "many");
}

TEST_F(EvalTest, DocumentFunctionReturnsRoot) {
  EXPECT_EQ(Eval("count(document(\"anything.xml\")/site)"), "1");
}

TEST_F(EvalTest, Errors) {
  EXPECT_NE(Eval("$undefined").find("EVAL:"), std::string::npos);
  EXPECT_NE(Eval("unknown-fn(1)").find("EVAL:"), std::string::npos);
  EXPECT_NE(Eval("1 + \"abc\"").find("EVAL:"), std::string::npos);
}

TEST_F(EvalTest, PathIndexAgreesWithTraversal) {
  EvaluatorOptions indexed;
  EvaluatorOptions plain;
  plain.use_path_index = false;
  plain.use_tag_index = false;
  plain.cache_invariant_paths = false;
  for (const char* q :
       {"/site/people/person/name/text()", "count(//price)",
        "count(/site//tag)", "/site/items/item[2]/@id"}) {
    EXPECT_EQ(Eval(q, indexed), Eval(q, plain)) << q;
  }
}

}  // namespace
}  // namespace xmark::query
