#include "util/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xmark {
namespace {

TEST(PrngTest, DeterministicForSameSeedAndStream) {
  Prng a(123, 4);
  Prng b(123, 4);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(PrngTest, DifferentStreamsDiffer) {
  Prng a(123, 1);
  Prng b(123, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(PrngTest, DifferentSeedsDiffer) {
  Prng a(1, 0);
  Prng b(2, 0);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(PrngTest, ResetReplaysStream) {
  Prng p(77, 9);
  std::vector<uint64_t> first;
  for (int i = 0; i < 50; ++i) first.push_back(p.NextU64());
  p.Reset();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.NextU64(), first[i]);
}

TEST(PrngTest, NextBelowStaysInRange) {
  Prng p(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(p.NextBelow(7), 7u);
  }
}

TEST(PrngTest, NextBelowCoversAllResidues) {
  Prng p(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(p.NextBelow(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PrngTest, NextIntInclusiveBounds) {
  Prng p(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = p.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, NextDoubleInUnitInterval) {
  Prng p(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = p.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(PrngTest, NextDoubleMeanIsHalf) {
  Prng p(9);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += p.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(PrngTest, NextBoolEdgeCases) {
  Prng p(10);
  EXPECT_FALSE(p.NextBool(0.0));
  EXPECT_TRUE(p.NextBool(1.0));
}

TEST(PrngTest, NextBoolProbability) {
  Prng p(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += p.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(PrngTest, SplitIsDeterministicAndIndependent) {
  Prng parent(42, 3);
  Prng c1 = parent.Split(0);
  Prng c2 = parent.Split(1);
  Prng c1_again = Prng(42, 3).Split(0);
  EXPECT_EQ(c1.NextU64(), c1_again.NextU64());
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

TEST(PrngTest, PositionTracksDraws) {
  Prng p(1);
  EXPECT_EQ(p.position(), 0u);
  p.NextU64();
  p.NextU64();
  EXPECT_EQ(p.position(), 2u);
}

// Platform independence proxy: pin a few outputs so any change to the
// algorithm (which would silently change every generated document) fails.
TEST(PrngTest, GoldenValues) {
  Prng p(42, 0);
  EXPECT_EQ(p.NextU64(), Prng(42, 0).NextU64());
  Prng q(0, 0);
  const uint64_t first = q.NextU64();
  Prng r(0, 0);
  EXPECT_EQ(r.NextU64(), first);
  // The sequence must not be trivially zero.
  EXPECT_NE(first, 0u);
}

TEST(PrngTest, UniformityChiSquared) {
  Prng p(1234);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[p.NextBelow(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 degrees of freedom; 99.9th percentile is ~37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace xmark
