#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/prng.h"

namespace xmark {
namespace {

TEST(ExponentialTest, MeanMatchesRate) {
  Prng p(1);
  const double lambda = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += SampleExponential(p, lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.05);
}

TEST(ExponentialTest, NonNegative) {
  Prng p(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(SampleExponential(p, 2.0), 0.0);
  }
}

TEST(NormalTest, MeanAndStddev) {
  Prng p(3);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = SampleNormal(p, 10.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(NormalTest, SymmetricAroundMean) {
  Prng p(4);
  int above = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (SampleNormal(p, 0.0, 1.0) > 0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / n, 0.5, 0.01);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  Prng p(5);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(p)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(ZipfTest, FrequencyRatioFollowsLaw) {
  Prng p(6);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  const int n = 1000000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(p)];
  // Under s=1.0, f(rank1)/f(rank2) ~ 2.
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[1]);
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(ZipfTest, AllRanksInRange) {
  Prng p(7);
  ZipfSampler zipf(10, 1.2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(p), 10u);
  }
}

TEST(DiscreteTest, RespectsWeights) {
  Prng p(8);
  DiscreteSampler sampler({1.0, 3.0, 0.0, 6.0});
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(p)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.3, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.6, 0.01);
}

TEST(DiscreteTest, SingleBucket) {
  Prng p(9);
  DiscreteSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(p), 0u);
}

TEST(DistributionsTest, DeterministicGivenPrngState) {
  Prng a(10, 2);
  Prng b(10, 2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(SampleExponential(a, 1.5), SampleExponential(b, 1.5));
  }
  Prng c(10, 3);
  Prng d(10, 3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(SampleNormal(c, 0, 1), SampleNormal(d, 0, 1));
  }
}

}  // namespace
}  // namespace xmark
