#include "xml/dtd.h"

#include <gtest/gtest.h>

namespace xmark::xml {
namespace {

Dtd MustParse(std::string_view text) {
  auto result = Dtd::Parse(text);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

TEST(DtdTest, ParsesElementWithChildren) {
  Dtd dtd = MustParse("<!ELEMENT a (b, c?, d*)>");
  const DtdElement* a = dtd.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->children, (std::vector<std::string>{"b", "c", "d"}));
  EXPECT_FALSE(a->pcdata);
  EXPECT_FALSE(a->empty);
}

TEST(DtdTest, ParsesPcdata) {
  Dtd dtd = MustParse("<!ELEMENT name (#PCDATA)>");
  const DtdElement* e = dtd.Find("name");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->pcdata);
  EXPECT_TRUE(e->children.empty());
}

TEST(DtdTest, ParsesMixedContent) {
  Dtd dtd = MustParse("<!ELEMENT text (#PCDATA | bold | emph)*>");
  const DtdElement* e = dtd.Find("text");
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->pcdata);
  EXPECT_EQ(e->children, (std::vector<std::string>{"bold", "emph"}));
}

TEST(DtdTest, ParsesEmpty) {
  Dtd dtd = MustParse("<!ELEMENT edge EMPTY>");
  ASSERT_NE(dtd.Find("edge"), nullptr);
  EXPECT_TRUE(dtd.Find("edge")->empty);
}

TEST(DtdTest, ParsesAttlist) {
  Dtd dtd = MustParse(
      "<!ELEMENT item EMPTY>"
      "<!ATTLIST item id ID #REQUIRED featured CDATA #IMPLIED>");
  const DtdElement* item = dtd.Find("item");
  ASSERT_NE(item, nullptr);
  ASSERT_EQ(item->attributes.size(), 2u);
  EXPECT_EQ(item->attributes[0].name, "id");
  EXPECT_EQ(item->attributes[0].type, DtdAttributeType::kId);
  EXPECT_TRUE(item->attributes[0].required);
  EXPECT_EQ(item->attributes[1].name, "featured");
  EXPECT_EQ(item->attributes[1].type, DtdAttributeType::kCData);
  EXPECT_FALSE(item->attributes[1].required);
}

TEST(DtdTest, ParsesIdref) {
  Dtd dtd = MustParse(
      "<!ELEMENT r EMPTY><!ATTLIST r person IDREF #REQUIRED>");
  EXPECT_EQ(dtd.Find("r")->attributes[0].type, DtdAttributeType::kIdRef);
}

TEST(DtdTest, AttlistBeforeElementDeclaration) {
  Dtd dtd = MustParse(
      "<!ATTLIST x id ID #REQUIRED><!ELEMENT x (#PCDATA)>");
  const DtdElement* x = dtd.Find("x");
  ASSERT_NE(x, nullptr);
  EXPECT_TRUE(x->pcdata);
  ASSERT_EQ(x->attributes.size(), 1u);
}

TEST(DtdTest, AllowsChild) {
  Dtd dtd = MustParse("<!ELEMENT a (b, c)>");
  EXPECT_TRUE(dtd.AllowsChild("a", "b"));
  EXPECT_FALSE(dtd.AllowsChild("a", "z"));
  EXPECT_FALSE(dtd.AllowsChild("nope", "b"));
}

TEST(DtdTest, CommentsSkipped) {
  Dtd dtd = MustParse("<!-- hi --><!ELEMENT a (b)><!-- bye -->");
  EXPECT_NE(dtd.Find("a"), nullptr);
}

TEST(DtdTest, RejectsGarbage) {
  EXPECT_FALSE(Dtd::Parse("<!WRONG foo>").ok());
}

// The bundled auction DTD is the contract between the generator and the
// engines; pin its key structural facts.
TEST(AuctionDtdTest, ParsesCompletely) {
  Dtd dtd = MustParse(kAuctionDtd);
  EXPECT_GE(dtd.elements().size(), 50u);
}

TEST(AuctionDtdTest, SiteStructure) {
  Dtd dtd = MustParse(kAuctionDtd);
  const DtdElement* site = dtd.Find("site");
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->children,
            (std::vector<std::string>{"regions", "categories", "catgraph",
                                      "people", "open_auctions",
                                      "closed_auctions"}));
}

TEST(AuctionDtdTest, PersonOptionalHomepage) {
  Dtd dtd = MustParse(kAuctionDtd);
  const DtdElement* person = dtd.Find("person");
  ASSERT_NE(person, nullptr);
  EXPECT_TRUE(dtd.AllowsChild("person", "homepage"));
  EXPECT_NE(person->model.find("homepage?"), std::string::npos);
}

TEST(AuctionDtdTest, ReferencesAreTyped) {
  Dtd dtd = MustParse(kAuctionDtd);
  for (const char* ref : {"itemref", "personref", "seller", "buyer",
                          "author", "incategory", "interest", "watch"}) {
    const DtdElement* e = dtd.Find(ref);
    ASSERT_NE(e, nullptr) << ref;
    EXPECT_TRUE(e->empty) << ref;
    ASSERT_FALSE(e->attributes.empty()) << ref;
    EXPECT_EQ(e->attributes[0].type, DtdAttributeType::kIdRef) << ref;
  }
}

TEST(AuctionDtdTest, IdBearingEntities) {
  Dtd dtd = MustParse(kAuctionDtd);
  for (const char* entity : {"person", "item", "open_auction", "category"}) {
    const DtdElement* e = dtd.Find(entity);
    ASSERT_NE(e, nullptr) << entity;
    bool has_id = false;
    for (const auto& a : e->attributes) {
      if (a.name == "id" && a.type == DtdAttributeType::kId) has_id = true;
    }
    EXPECT_TRUE(has_id) << entity;
  }
}

TEST(AuctionDtdTest, IncomeIsChildOfProfile) {
  // Paper Figure 1 models income under profile; Q11/Q12/Q20 depend on it.
  Dtd dtd = MustParse(kAuctionDtd);
  EXPECT_TRUE(dtd.AllowsChild("profile", "income"));
  EXPECT_TRUE(dtd.Find("income")->pcdata);
}

TEST(AuctionDtdTest, DeepProsePathExists) {
  // Q15's path: ...annotation/description/parlist/listitem/parlist/...
  Dtd dtd = MustParse(kAuctionDtd);
  EXPECT_TRUE(dtd.AllowsChild("closed_auction", "annotation"));
  EXPECT_TRUE(dtd.AllowsChild("annotation", "description"));
  EXPECT_TRUE(dtd.AllowsChild("description", "parlist"));
  EXPECT_TRUE(dtd.AllowsChild("parlist", "listitem"));
  EXPECT_TRUE(dtd.AllowsChild("listitem", "parlist"));
  EXPECT_TRUE(dtd.AllowsChild("listitem", "text"));
  EXPECT_TRUE(dtd.AllowsChild("text", "emph"));
  EXPECT_TRUE(dtd.AllowsChild("emph", "keyword"));
}

}  // namespace
}  // namespace xmark::xml
