// The chunked parallel parse must be indistinguishable from the serial
// parser: same node table (ids, kinds, names, links), same attribute
// table, same text — for documents that use the full markup repertoire
// (comments, CDATA, PIs, entities, self-closing tags) at and around
// chunk boundaries.

#include <gtest/gtest.h>

#include <string>

#include "util/thread_pool.h"
#include "xml/dom.h"

namespace xmark::xml {
namespace {

// Canonical serialization of everything the Document exposes.
std::string Canon(const Document& doc) {
  std::string out;
  out += "nodes " + std::to_string(doc.num_nodes()) + "\n";
  for (NodeId n = 0; n < doc.num_nodes(); ++n) {
    out += std::to_string(n) + ": " +
           (doc.IsElement(n) ? "elem " + std::to_string(doc.name(n)) + "/" +
                                   doc.tag(n)
                             : "text") +
           " p=" + std::to_string(doc.parent(n)) +
           " fc=" + std::to_string(doc.first_child(n)) +
           " ns=" + std::to_string(doc.next_sibling(n)) + " [" +
           std::string(doc.text(n)) + "]";
    for (const DomAttribute& a : doc.attributes(n)) {
      out += " @" + std::to_string(a.name) + "=" + std::string(a.value);
    }
    out += "\n";
  }
  out += "names " + std::to_string(doc.names().size()) + "\n";
  for (NameId i = 0; i < doc.names().size(); ++i) {
    out += doc.names().Spelling(i) + "\n";
  }
  return out;
}

// A document well past the parallel-parse threshold, salted with markup
// that must not confuse the structural pre-scan: comments, CDATA,
// processing instructions, entities (also in attributes), quoted '>' in
// attribute values, and self-closing elements.
std::string BigDocument() {
  std::string doc = "<?xml version=\"1.0\"?>\n<site>\n";
  const char* const sections[] = {"people", "regions", "auctions"};
  for (const char* section : sections) {
    doc += "<" + std::string(section) + ">\n";
    for (int i = 0; i < 900; ++i) {
      const std::string id = std::string(section) + std::to_string(i);
      doc += "<entry id=\"" + id + "\" note=\"a &amp; b > c\">";
      doc += "<name>Name &lt;" + id + "&gt;</name>";
      doc += "<!-- comment between siblings -->";
      doc += "<desc>text <![CDATA[raw <markup> here]]> tail</desc>";
      doc += "<empty/>";
      doc += "<?pi data?>";
      doc += "trailing &#65; text";
      doc += "</entry>\n";
    }
    doc += "</" + std::string(section) + ">\n";
  }
  doc += "</site>\n";
  return doc;
}

TEST(ParallelParseTest, MatchesSerialParse) {
  const std::string text = BigDocument();
  ASSERT_GT(text.size(), 65536u) << "document too small to chunk";
  auto serial = Document::Parse(text);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  for (unsigned threads : {2u, 3u, 8u}) {
    ThreadPool pool(threads);
    ParseOptions opts;
    opts.pool = &pool;
    auto parallel = Document::Parse(text, opts);
    ASSERT_TRUE(parallel.ok())
        << "threads=" << threads << ": " << parallel.status().ToString();
    EXPECT_EQ(Canon(*serial), Canon(*parallel)) << "threads=" << threads;
  }
}

TEST(ParallelParseTest, KeepWhitespaceMatches) {
  const std::string text = BigDocument();
  auto serial = Document::Parse(text, /*keep_whitespace=*/true);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  ParseOptions opts;
  opts.keep_whitespace = true;
  opts.pool = &pool;
  auto parallel = Document::Parse(text, opts);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(Canon(*serial), Canon(*parallel));
}

TEST(ParallelParseTest, SmallDocumentFallsBackToSerial) {
  ThreadPool pool(4);
  ParseOptions opts;
  opts.pool = &pool;
  auto doc = Document::Parse("<a><b x=\"1\">t</b></a>", opts);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->num_nodes(), 3u);
}

TEST(ParallelParseTest, MalformedDocumentStillFails) {
  // Unbalanced tags in a large document: some chunk (or the stitcher)
  // must report the error rather than produce a broken tree.
  std::string text = "<site>";
  for (int i = 0; i < 20000; ++i) {
    text += "<entry id=\"e" + std::to_string(i) + "\"><name>x</name></entry>";
  }
  text += "<unclosed>";
  text += "</site>";
  ThreadPool pool(4);
  ParseOptions opts;
  opts.pool = &pool;
  EXPECT_FALSE(Document::Parse(text, opts).ok());
}

}  // namespace
}  // namespace xmark::xml
