#include "xml/sax_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xmark::xml {
namespace {

/// Records events as strings for easy assertions.
class RecordingHandler : public SaxHandler {
 public:
  Status OnStartElement(std::string_view name,
                        const std::vector<SaxAttribute>& attrs) override {
    std::string e = "start:" + std::string(name);
    for (const auto& a : attrs) {
      e += " " + std::string(a.name) + "=" + std::string(a.value);
    }
    events.push_back(e);
    return Status::OK();
  }
  Status OnEndElement(std::string_view name) override {
    events.push_back("end:" + std::string(name));
    return Status::OK();
  }
  Status OnCharacters(std::string_view text) override {
    events.push_back("text:" + std::string(text));
    return Status::OK();
  }
  Status OnComment(std::string_view text) override {
    events.push_back("comment:" + std::string(text));
    return Status::OK();
  }
  Status OnProcessingInstruction(std::string_view target,
                                 std::string_view data) override {
    events.push_back("pi:" + std::string(target) + ":" + std::string(data));
    return Status::OK();
  }

  std::vector<std::string> events;
};

Status ParseInto(std::string_view doc, RecordingHandler* h) {
  SaxParser parser;
  return parser.Parse(doc, h);
}

TEST(SaxTest, SimpleElement) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a>hi</a>", &h).ok());
  ASSERT_EQ(h.events.size(), 3u);
  EXPECT_EQ(h.events[0], "start:a");
  EXPECT_EQ(h.events[1], "text:hi");
  EXPECT_EQ(h.events[2], "end:a");
}

TEST(SaxTest, NestedElements) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a><b><c/></b></a>", &h).ok());
  EXPECT_EQ(h.events, (std::vector<std::string>{"start:a", "start:b",
                                                "start:c", "end:c", "end:b",
                                                "end:a"}));
}

TEST(SaxTest, Attributes) {
  RecordingHandler h;
  ASSERT_TRUE(
      ParseInto("<person id=\"person0\" featured='yes'/>", &h).ok());
  EXPECT_EQ(h.events[0], "start:person id=person0 featured=yes");
}

TEST(SaxTest, AttributeEntityDecoding) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a t=\"x &amp; y &lt;z&gt;\"/>", &h).ok());
  EXPECT_EQ(h.events[0], "start:a t=x & y <z>");
}

TEST(SaxTest, TextEntityDecoding) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a>1 &lt; 2 &amp;&amp; 3 &gt; 2</a>", &h).ok());
  EXPECT_EQ(h.events[1], "text:1 < 2 && 3 > 2");
}

TEST(SaxTest, NumericCharacterReferences) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a>&#65;&#x42;</a>", &h).ok());
  EXPECT_EQ(h.events[1], "text:AB");
}

TEST(SaxTest, CommentsReported) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a><!-- note --></a>", &h).ok());
  EXPECT_EQ(h.events[1], "comment: note ");
}

TEST(SaxTest, XmlDeclarationSkipped) {
  RecordingHandler h;
  ASSERT_TRUE(
      ParseInto("<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>", &h).ok());
  EXPECT_EQ(h.events[0], "start:a");
}

TEST(SaxTest, ProcessingInstructionReported) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a><?target some data?></a>", &h).ok());
  EXPECT_EQ(h.events[1], "pi:target:some data");
}

TEST(SaxTest, DoctypeSkipped) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto(
      "<!DOCTYPE site SYSTEM \"auction.dtd\" [<!ENTITY x \"y\">]><a/>", &h)
          .ok());
  EXPECT_EQ(h.events[0], "start:a");
}

TEST(SaxTest, CdataPassedThrough) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<a><![CDATA[<raw> & text]]></a>", &h).ok());
  EXPECT_EQ(h.events[1], "text:<raw> & text");
}

TEST(SaxTest, MismatchedTagsRejected) {
  RecordingHandler h;
  Status st = ParseInto("<a><b></a></b>", &h);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(SaxTest, UnclosedElementRejected) {
  RecordingHandler h;
  EXPECT_FALSE(ParseInto("<a><b></b>", &h).ok());
}

TEST(SaxTest, CharacterDataOutsideRootRejected) {
  RecordingHandler h;
  EXPECT_FALSE(ParseInto("hello<a/>", &h).ok());
  RecordingHandler h2;
  EXPECT_FALSE(ParseInto("<a/>junk", &h2).ok());
}

TEST(SaxTest, WhitespaceOutsideRootAllowed) {
  RecordingHandler h;
  EXPECT_TRUE(ParseInto("\n  <a/>\n", &h).ok());
}

TEST(SaxTest, MalformedEntityRejected) {
  RecordingHandler h;
  EXPECT_FALSE(ParseInto("<a>&bogus;</a>", &h).ok());
  RecordingHandler h2;
  EXPECT_FALSE(ParseInto("<a>&amp</a>", &h2).ok());
}

TEST(SaxTest, UnquotedAttributeRejected) {
  RecordingHandler h;
  EXPECT_FALSE(ParseInto("<a x=1/>", &h).ok());
}

TEST(SaxTest, ErrorsReportLineNumbers) {
  RecordingHandler h;
  Status st = ParseInto("<a>\n\n<b></c>\n</a>", &h);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 3"), std::string::npos);
}

TEST(SaxTest, MixedContent) {
  RecordingHandler h;
  ASSERT_TRUE(ParseInto("<t>one <b>two</b> three</t>", &h).ok());
  EXPECT_EQ(h.events, (std::vector<std::string>{
                          "start:t", "text:one ", "start:b", "text:two",
                          "end:b", "text: three", "end:t"}));
}

TEST(SaxTest, HandlerErrorPropagates) {
  class FailingHandler : public RecordingHandler {
   public:
    Status OnCharacters(std::string_view) override {
      return Status::Internal("handler says no");
    }
  };
  FailingHandler h;
  SaxParser parser;
  Status st = parser.Parse("<a>x</a>", &h);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(SaxTest, DeeplyNestedDocument) {
  std::string doc;
  constexpr int kDepth = 2000;
  for (int i = 0; i < kDepth; ++i) doc += "<d>";
  doc += "x";
  for (int i = 0; i < kDepth; ++i) doc += "</d>";
  RecordingHandler h;
  EXPECT_TRUE(ParseInto(doc, &h).ok());
  EXPECT_EQ(h.events.size(), 2 * kDepth + 1u);
}

}  // namespace
}  // namespace xmark::xml
