// Planner-layer tests: golden Explain() text for Q8/Q11/Q12 (hash join vs
// band join chosen), store capability advertisement, and band-join
// semantics (byte-identical to the nested-loop interpreter across every
// comparison direction and operand order).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan.h"
#include "query/value.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"
#include "xmark/queries.h"
#include "xml/dtd.h"

namespace xmark::query {
namespace {

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions opts;
    opts.scale = 0.002;
    return new std::string(gen::XmlGen(opts).GenerateToString());
  }();
  return *kDoc;
}

const store::DomStore& Dom() {
  static const store::DomStore* const kStore = [] {
    store::DomStore::Options options;  // all indexes on
    auto store = store::DomStore::Load(TestDocument(), options);
    XMARK_CHECK(store.ok());
    return store->release();
  }();
  return *kStore;
}

const store::EdgeStore& Edge() {
  static const store::EdgeStore* const kStore = [] {
    auto store = store::EdgeStore::Load(TestDocument());
    XMARK_CHECK(store.ok());
    return store->release();
  }();
  return *kStore;
}

std::string ExplainQuery(const StorageAdapter& store, int query,
                         const EvaluatorOptions& options) {
  auto parsed = ParseQueryText(bench::GetQuery(query).text);
  XMARK_CHECK(parsed.ok());
  QueryPlan plan;
  BuildPlan(*parsed, store, options, plan.mutable_annotations());
  return plan.Explain(*parsed);
}

TEST(ExplainGolden, Q8ChoosesHashJoin) {
  const std::string text = ExplainQuery(Dom(), 8, EvaluatorOptions{});
  EXPECT_NE(text.find("flwor strategy=hash-join key=$t/buyer/@person "
                      "probe=$p/@id"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("summary: hash-join=1 band-count-join=0 construct-template=1 "
                      "joinable-nested-loop=0"),
            std::string::npos)
      << text;
}

TEST(ExplainGolden, Q11ChoosesBandJoin) {
  const std::string text = ExplainQuery(Edge(), 11, EvaluatorOptions{});
  EXPECT_NE(
      text.find("let $l := band-count-join op=> "
                "domain=document()/site/open_auctions/open_auction/initial "
                "[sort domain keys once, binary-search each probe]"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find("summary: hash-join=0 band-count-join=1 construct-template=1 "
                      "joinable-nested-loop=0"),
            std::string::npos)
      << text;
}

TEST(ExplainGolden, Q12ChoosesBandJoin) {
  const std::string text = ExplainQuery(Edge(), 12, EvaluatorOptions{});
  EXPECT_NE(text.find("band-count-join op=>"), std::string::npos) << text;
  EXPECT_NE(text.find("summary: hash-join=0 band-count-join=1 construct-template=1 "
                      "joinable-nested-loop=0"),
            std::string::npos)
      << text;
}

TEST(ExplainGolden, BandJoinOffFallsBackToNestedLoop) {
  EvaluatorOptions options;
  options.band_join = false;
  const std::string text = ExplainQuery(Edge(), 11, options);
  EXPECT_EQ(text.find("band-count-join op"), std::string::npos) << text;
  EXPECT_NE(text.find("nested-loop (band-shape)"), std::string::npos) << text;
  EXPECT_NE(text.find("joinable-nested-loop=1"), std::string::npos) << text;
}

// Compiled-pipeline fusion goldens: the hot Table 3 shapes must lower to
// fused monomorphic loops, rendered with their stage chain and counted in
// the CI-parsable summary line.
TEST(ExplainGolden, Q1FusesIdFilterPipeline) {
  const std::string text = ExplainQuery(Edge(), 1, EvaluatorOptions{});
  EXPECT_NE(text.find("pipeline 0 fused=[scan|filter|emit]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("compiled-pipeline=1"), std::string::npos) << text;
}

TEST(ExplainGolden, Q6FusesCountOnlyPipeline) {
  const std::string text = ExplainQuery(Edge(), 6, EvaluatorOptions{});
  EXPECT_NE(text.find("pipeline 0 fused=[scan|count]"), std::string::npos)
      << text;
  EXPECT_NE(text.find("compiled-pipeline=1"), std::string::npos) << text;
}

TEST(ExplainGolden, Q14FusesContainsPipeline) {
  const std::string text = ExplainQuery(Edge(), 14, EvaluatorOptions{});
  EXPECT_NE(text.find("pipeline 0 fused=[scan|filter|emit]"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("compiled-pipeline=1"), std::string::npos) << text;
}

TEST(ExplainGolden, PipelinesOffFallBackToGenericOperators) {
  EvaluatorOptions options;
  options.compiled_pipelines = false;
  const std::string text = ExplainQuery(Edge(), 6, options);
  EXPECT_EQ(text.find("pipeline 0 fused"), std::string::npos) << text;
  EXPECT_NE(text.find("compiled-pipeline=0"), std::string::npos) << text;
}

TEST(ExplainGolden, HashJoinOffIsFlaggedJoinable) {
  EvaluatorOptions options;
  options.hash_join = false;
  const std::string text = ExplainQuery(Dom(), 8, options);
  EXPECT_NE(text.find("nested-loop (joinable!)"), std::string::npos) << text;
  EXPECT_NE(text.find("joinable-nested-loop=1"), std::string::npos) << text;
}

TEST(Capabilities, StoresAdvertiseTheirStructures) {
  const StorageCapabilities edge = Edge().Capabilities();
  EXPECT_TRUE(edge.id_lookup);
  EXPECT_TRUE(edge.interval_descendants);
  EXPECT_FALSE(edge.children_by_tag);
  EXPECT_FALSE(edge.tag_index);
  EXPECT_FALSE(edge.path_index);

  const StorageCapabilities dom = Dom().Capabilities();
  EXPECT_TRUE(dom.id_lookup);
  EXPECT_TRUE(dom.tag_index);
  EXPECT_TRUE(dom.path_index);
  EXPECT_TRUE(dom.interval_descendants);
  EXPECT_FALSE(dom.children_by_tag);

  auto fragmented = store::FragmentedStore::Load(TestDocument());
  ASSERT_TRUE(fragmented.ok());
  const StorageCapabilities frag = (*fragmented)->Capabilities();
  EXPECT_TRUE(frag.children_by_tag);
  EXPECT_TRUE(frag.path_index);
  EXPECT_TRUE(frag.interval_descendants);

  auto inlined = store::InlinedStore::Load(TestDocument(), xml::kAuctionDtd);
  ASSERT_TRUE(inlined.ok());
  const StorageCapabilities inl = (*inlined)->Capabilities();
  EXPECT_TRUE(inl.children_by_tag);
  EXPECT_TRUE(inl.id_lookup);
  EXPECT_FALSE(inl.path_index);
}

// Band-join semantics: every comparison direction and operand order must
// match the naive interpreter byte for byte.
class BandJoinSemantics : public ::testing::Test {
 protected:
  static std::string Naive(const ParsedQuery& query) {
    EvaluatorOptions options;
    options.use_planner = false;
    options.band_join = false;
    options.hash_join = false;
    Evaluator evaluator(&Dom(), options);
    auto result = evaluator.Run(query);
    XMARK_CHECK(result.ok());
    return SerializeSequence(*result);
  }

  static std::string Banded(const ParsedQuery& query, int64_t* rows) {
    Evaluator evaluator(&Dom(), EvaluatorOptions{});  // planner + band on
    auto result = evaluator.Run(query);
    XMARK_CHECK(result.ok());
    EXPECT_GE(evaluator.stats().band_joins_built, 1)
        << "band join did not engage";
    if (rows != nullptr) *rows = evaluator.stats().band_join_rows;
    return SerializeSequence(*result);
  }

  static std::string BandQuery(std::string_view predicate) {
    return std::string(R"(
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where )") +
           std::string(predicate) + R"(
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
)";
  }
};

TEST_F(BandJoinSemantics, AllComparisonDirectionsMatchInterpreter) {
  const char* predicates[] = {
      "$p/profile/income > 5000 * $i/text()",
      "$p/profile/income >= 5000 * $i/text()",
      "$p/profile/income < 5000 * $i/text()",
      "$p/profile/income <= 5000 * $i/text()",
      // Swapped operand order: the optimizer must normalize the direction.
      "5000 * $i/text() < $p/profile/income",
      "5000 * $i/text() >= $p/profile/income",
  };
  for (const char* predicate : predicates) {
    auto parsed = ParseQueryText(BandQuery(predicate));
    ASSERT_TRUE(parsed.ok()) << predicate;
    int64_t rows = 0;
    EXPECT_EQ(Banded(*parsed, &rows), Naive(*parsed)) << predicate;
  }
}

TEST_F(BandJoinSemantics, Q11AndQ12MatchInterpreterWithStats) {
  for (int q : {11, 12}) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok());
    int64_t rows = 0;
    EXPECT_EQ(Banded(*parsed, &rows), Naive(*parsed)) << "Q" << q;
    EXPECT_GT(rows, 0) << "Q" << q << " band probes produced no rows";
  }
}

TEST_F(BandJoinSemantics, NonCountUseFallsBackAndStaysCorrect) {
  // $l is also returned directly, so the count-only analysis must refuse
  // the rewrite and the results must still match.
  const std::string query = R"(
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/income > 5000 * $i/text()
          return $i
return <items>{count($l)}{$l}</items>
)";
  auto parsed = ParseQueryText(query);
  ASSERT_TRUE(parsed.ok());
  Evaluator evaluator(&Dom(), EvaluatorOptions{});
  auto result = evaluator.Run(*parsed);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(evaluator.stats().band_joins_built, 0)
      << "rewrite must not fire when $l escapes count()";
  EXPECT_EQ(SerializeSequence(*result), Naive(*parsed));
}

TEST_F(BandJoinSemantics, EagerLetProbesAtBindTime) {
  // Under eager-let semantics (systems E-G) the probe must run at bind
  // time and still match the interpreter byte for byte.
  for (int q : {11, 12}) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok());
    EvaluatorOptions eager;
    eager.lazy_let = false;
    Evaluator banded(&Dom(), eager);
    auto a = banded.Run(*parsed);
    ASSERT_TRUE(a.ok());
    EXPECT_GE(banded.stats().band_joins_built, 1);
    EvaluatorOptions naive = eager;
    naive.use_planner = false;
    naive.band_join = false;
    Evaluator interpreted(&Dom(), naive);
    auto b = interpreted.Run(*parsed);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b)) << "Q" << q;
  }
}

TEST_F(BandJoinSemantics, ProbeInputReboundRefusesRewrite) {
  // A later clause rebinds $p, which the band FLWOR's probe side reads:
  // the rewrite must refuse (the probe would otherwise see the rebound
  // value at the count() site) and results must match the interpreter
  // under both let-evaluation policies.
  const std::string query = R"(
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/income > 5000 * $i/text()
          return $i
for $p in document("auction.xml")/site/open_auctions/open_auction
return count($l)
)";
  auto parsed = ParseQueryText(query);
  ASSERT_TRUE(parsed.ok());
  for (bool lazy : {true, false}) {
    EvaluatorOptions planned;
    planned.lazy_let = lazy;
    Evaluator with_planner(&Dom(), planned);
    auto a = with_planner.Run(*parsed);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(with_planner.stats().band_joins_built, 0)
        << "rewrite must refuse when a probe input is rebound";
    EvaluatorOptions naive = planned;
    naive.use_planner = false;
    naive.band_join = false;
    Evaluator interpreted(&Dom(), naive);
    auto b = interpreted.Run(*parsed);
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
        << "lazy_let=" << lazy;
  }
}

// The plan of the last run is exposed for inspection; per-run caches live
// inside it, so two runs over different stores can never share join state.
TEST(PlanLifetime, FreshPlanPerRun) {
  auto parsed = ParseQueryText(bench::GetQuery(8).text);
  ASSERT_TRUE(parsed.ok());
  Evaluator dom_eval(&Dom(), EvaluatorOptions{});
  ASSERT_TRUE(dom_eval.Run(*parsed).ok());
  ASSERT_NE(dom_eval.plan(), nullptr);
  // Q8's decorrelated inner loop: exactly one hash table, built this run.
  EXPECT_EQ(dom_eval.plan()->join_state.size(), 1u);
  EXPECT_EQ(dom_eval.plan()->ann().store_name, "native DOM");
  ASSERT_TRUE(dom_eval.Run(*parsed).ok());
  EXPECT_EQ(dom_eval.plan()->join_state.size(), 1u);

  Evaluator edge_eval(&Edge(), EvaluatorOptions{});
  ASSERT_TRUE(edge_eval.Run(*parsed).ok());
  // The edge run's plan was built against the edge store; nothing from the
  // DOM run's caches is visible to it.
  EXPECT_EQ(edge_eval.plan()->ann().store_name, "edge table");
  EXPECT_EQ(edge_eval.plan()->join_state.size(), 1u);
}

}  // namespace
}  // namespace xmark::query
