// Arena-backed result construction (ConstructPlan/ConstructExec/NodeArena):
// golden Explain for the Q10 template, byte-parity between the arena and
// the legacy shared_ptr-per-node path across all four stores, allocation
// accounting (the >=5x Q10 node-allocation reduction), arena lifetime
// (results outlive the evaluator), and the SortDedupNodes identity fix for
// mixed stored/constructed sequences.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan.h"
#include "query/value.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"
#include "xmark/queries.h"
#include "xml/dtd.h"

namespace xmark::query {
namespace {

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    return new std::string(gen::XmlGen(options).GenerateToString());
  }();
  return *kDoc;
}

const StorageAdapter* StoreByIndex(int index) {
  static const store::EdgeStore* const kEdge = [] {
    auto s = store::EdgeStore::Load(TestDocument());
    XMARK_CHECK(s.ok());
    return s->release();
  }();
  static const store::FragmentedStore* const kFragmented = [] {
    auto s = store::FragmentedStore::Load(TestDocument());
    XMARK_CHECK(s.ok());
    return s->release();
  }();
  static const store::InlinedStore* const kInlined = [] {
    auto s = store::InlinedStore::Load(TestDocument(), xml::kAuctionDtd);
    XMARK_CHECK(s.ok());
    return s->release();
  }();
  static const store::DomStore* const kDom = [] {
    store::DomStore::Options options;  // all indexes on
    auto s = store::DomStore::Load(TestDocument(), options);
    XMARK_CHECK(s.ok());
    return s->release();
  }();
  switch (index) {
    case 0:
      return kEdge;
    case 1:
      return kFragmented;
    case 2:
      return kInlined;
    default:
      return kDom;
  }
}

// ---------------------------------------------------------------------------
// Golden Explain
// ---------------------------------------------------------------------------

TEST(ConstructExplainGolden, Q10TemplatesAreRendered) {
  auto parsed = ParseQueryText(bench::GetQuery(10).text);
  ASSERT_TRUE(parsed.ok());
  QueryPlan plan;
  BuildPlan(*parsed, *StoreByIndex(3), EvaluatorOptions{},
            plan.mutable_annotations());
  const std::string text = plan.Explain(*parsed);
  // The personne shell: 15 static elements, 11 text holes, no attributes.
  EXPECT_NE(text.find("constructor <personne> template=[elements=15 "
                      "const-text=0 holes=11 const-attrs=0 dyn-attrs=0]"),
            std::string::npos)
      << text;
  // The outer categorie wrapper: one nested static <id> element, two holes
  // ({$i} inside <id> and {$p}).
  EXPECT_NE(text.find("constructor <categorie> template=[elements=2 "
                      "const-text=0 holes=2 const-attrs=0 dyn-attrs=0]"),
            std::string::npos)
      << text;
  // Nested static constructors are covered by the parent template: no
  // template annotation of their own.
  EXPECT_NE(text.find("constructor <statistiques>\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("summary: hash-join=1 band-count-join=0 "
                      "construct-template=2 joinable-nested-loop=0"),
            std::string::npos)
      << text;
}

TEST(ConstructExplainGolden, DynamicAttributesAreCounted) {
  auto parsed = ParseQueryText(bench::GetQuery(13).text);
  ASSERT_TRUE(parsed.ok());
  QueryPlan plan;
  BuildPlan(*parsed, *StoreByIndex(3), EvaluatorOptions{},
            plan.mutable_annotations());
  const std::string text = plan.Explain(*parsed);
  // Q13: <item name="{$i/name/text()}">{$i/description}</item>.
  EXPECT_NE(text.find("constructor <item> template=[elements=1 const-text=0 "
                      "holes=1 const-attrs=0 dyn-attrs=1]"),
            std::string::npos)
      << text;
}

TEST(ConstructExplainGolden, ArenaOffRegistersNoTemplates) {
  auto parsed = ParseQueryText(bench::GetQuery(10).text);
  ASSERT_TRUE(parsed.ok());
  EvaluatorOptions options;
  options.arena_construction = false;
  QueryPlan plan;
  BuildPlan(*parsed, *StoreByIndex(3), options, plan.mutable_annotations());
  const std::string text = plan.Explain(*parsed);
  EXPECT_EQ(text.find("template=["), std::string::npos) << text;
  EXPECT_NE(text.find("construct-template=0"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Byte-parity and allocation accounting
// ---------------------------------------------------------------------------

// Every constructor-bearing benchmark query, including nested templates
// (Q10/Q20), dynamic attributes (Q3/Q13/Q16), ordered FLWORs (Q19) and
// UDF-driven construction (Q2/Q4).
const int kConstructorQueries[] = {2, 3, 4, 8, 10, 13, 16, 17, 19, 20};

TEST(ArenaConstructionParity, ByteIdenticalAcrossAllStores) {
  for (int q : kConstructorQueries) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok()) << "Q" << q;
    for (int s = 0; s < 4; ++s) {
      const StorageAdapter* store = StoreByIndex(s);
      EvaluatorOptions on;  // defaults: arena construction enabled
      EvaluatorOptions off = on;
      off.arena_construction = false;

      Evaluator with_arena(store, on);
      auto a = with_arena.Run(*parsed);
      ASSERT_TRUE(a.ok()) << store->mapping_name() << " Q" << q << ": "
                          << a.status();
      Evaluator without_arena(store, off);
      auto b = without_arena.Run(*parsed);
      ASSERT_TRUE(b.ok()) << store->mapping_name() << " Q" << q << ": "
                          << b.status();

      EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
          << store->mapping_name() << " Q" << q
          << " diverges between arena and heap construction";
      EXPECT_EQ(with_arena.stats().nodes_arena_allocated,
                with_arena.stats().nodes_constructed)
          << store->mapping_name() << " Q" << q
          << ": arena run built heap nodes";
      // Q4 has no matches at this scale: the constructor never runs.
      if (without_arena.stats().nodes_constructed > 0) {
        EXPECT_GT(with_arena.stats().nodes_arena_allocated, 0)
            << store->mapping_name() << " Q" << q;
      }
      EXPECT_GE(with_arena.stats().construct_templates_built, 1)
          << store->mapping_name() << " Q" << q;
      EXPECT_EQ(without_arena.stats().nodes_arena_allocated, 0)
          << store->mapping_name() << " Q" << q;
    }
  }
}

TEST(ArenaConstructionParity, Q10AllocationReductionAtLeast5x) {
  auto parsed = ParseQueryText(bench::GetQuery(10).text);
  ASSERT_TRUE(parsed.ok());
  EvaluatorOptions on;
  EvaluatorOptions off = on;
  off.arena_construction = false;

  Evaluator with_arena(StoreByIndex(3), on);
  ASSERT_TRUE(with_arena.Run(*parsed).ok());
  Evaluator without_arena(StoreByIndex(3), off);
  ASSERT_TRUE(without_arena.Run(*parsed).ok());

  const int64_t heap_on = with_arena.stats().nodes_constructed -
                          with_arena.stats().nodes_arena_allocated;
  const int64_t heap_off = without_arena.stats().nodes_constructed;
  EXPECT_EQ(heap_on, 0) << "Q10's constructors are all template-covered";
  EXPECT_GE(heap_off, 5 * std::max<int64_t>(1, heap_on))
      << "heap " << heap_off << " -> " << heap_on;
  // Both runs materialize the same logical node set.
  EXPECT_EQ(with_arena.stats().nodes_constructed, heap_off);
}

TEST(ArenaConstructionParity, CopyResultsSemanticsPreserved) {
  // System G copies stored nodes into constructed trees; the arena path
  // must apply the same copy at hole sites.
  auto parsed = ParseQueryText(bench::GetQuery(13).text);
  ASSERT_TRUE(parsed.ok());
  EvaluatorOptions on;
  on.copy_results = true;
  EvaluatorOptions off = on;
  off.arena_construction = false;

  Evaluator with_arena(StoreByIndex(3), on);
  auto a = with_arena.Run(*parsed);
  ASSERT_TRUE(a.ok());
  Evaluator without_arena(StoreByIndex(3), off);
  auto b = without_arena.Run(*parsed);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b));
  for (const Item& item : *a) {
    ASSERT_TRUE(item.is_constructed());
    for (const Item& child : item.constructed()->children) {
      EXPECT_FALSE(child.is_node()) << "stored node leaked past copy_results";
    }
  }
}

TEST(ArenaConstructionParity, AttributeValueTemplatesAndAtomicJoins) {
  // Multi-part attribute values and multi-item enclosed sequences exercise
  // the space-joining construction rules on both paths.
  const std::string query = R"(
for $p in document("auction.xml")/site/people/person
return <p id="x{$p/@id}y" all="{$p/profile/interest/@category}">
         {"lit"}{$p/name/text()}{(1, 2, "three")}
       </p>
)";
  auto parsed = ParseQueryText(query);
  ASSERT_TRUE(parsed.ok());
  for (int s = 0; s < 4; ++s) {
    const StorageAdapter* store = StoreByIndex(s);
    EvaluatorOptions on;
    EvaluatorOptions off = on;
    off.arena_construction = false;
    Evaluator with_arena(store, on);
    auto a = with_arena.Run(*parsed);
    ASSERT_TRUE(a.ok()) << a.status();
    Evaluator without_arena(store, off);
    auto b = without_arena.Run(*parsed);
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
        << store->mapping_name();
  }
}

// ---------------------------------------------------------------------------
// Arena lifetime
// ---------------------------------------------------------------------------

TEST(ArenaLifetime, ResultsOutliveTheEvaluator) {
  auto parsed = ParseQueryText(bench::GetQuery(10).text);
  ASSERT_TRUE(parsed.ok());
  Sequence result;
  std::string while_alive;
  {
    Evaluator evaluator(StoreByIndex(3), EvaluatorOptions{});
    auto run = evaluator.Run(*parsed);
    ASSERT_TRUE(run.ok());
    ASSERT_GT(evaluator.stats().nodes_arena_allocated, 0)
        << "arena did not engage";
    result = std::move(*run);
    while_alive = SerializeSequence(result);
    // A second run swaps in a fresh plan + arena; the first run's arena
    // must stay alive through the result's aliasing pointers.
    ASSERT_TRUE(evaluator.Run(*parsed).ok());
  }
  // Evaluator (and with it the QueryPlan) destroyed: the serialized bytes
  // must still be reachable through the aliased arena.
  EXPECT_EQ(SerializeSequence(result), while_alive);
}

TEST(ArenaLifetime, NoReferenceCycleThroughNestedInstances) {
  // Q10 nests one template's instances ({$p} personne items) inside
  // another's (categorie) children. The interior edges must be
  // non-owning: an owning arena-aliasing pointer stored inside an arena
  // node would cycle the refcount and leak the whole arena every run.
  auto parsed = ParseQueryText(bench::GetQuery(10).text);
  ASSERT_TRUE(parsed.ok());
  std::weak_ptr<NodeArena> watch;
  {
    Sequence result;
    {
      Evaluator evaluator(StoreByIndex(3), EvaluatorOptions{});
      auto run = evaluator.Run(*parsed);
      ASSERT_TRUE(run.ok());
      watch = evaluator.plan()->arena;
      ASSERT_FALSE(watch.expired());
      result = std::move(*run);
    }
    // Evaluator (and the plan's owning reference) gone; the result's
    // root items must still hold the arena...
    EXPECT_FALSE(watch.expired());
  }
  // ...and dropping the result must free it. A cycle keeps it alive.
  EXPECT_TRUE(watch.expired()) << "arena leaked through an owning "
                                  "interior reference";
}

// ---------------------------------------------------------------------------
// SortDedupNodes over mixed stored/constructed sequences
// ---------------------------------------------------------------------------

TEST(SortDedupNodesTest, MixedStoredAndConstructedSequences) {
  const StorageAdapter* store = StoreByIndex(3);
  const NodeHandle root = store->Root();
  const NodeHandle child = store->FirstChild(root);
  ASSERT_NE(child, kInvalidHandle);

  // Two constructed nodes; c1 is referenced twice through DIFFERENT
  // shared_ptr control blocks (arena aliasing), so dedup must key on
  // node_id, not on pointer or control-block identity.
  auto arena = std::make_shared<NodeArena>();
  ConstructedNode* n1 = arena->AllocateNode();
  ConstructedNode* n2 = arena->AllocateNode();
  ASSERT_LT(n1->node_id, n2->node_id) << "ids must follow creation order";
  ConstructedPtr c1a(arena, n1);
  ConstructedPtr c1b(std::shared_ptr<NodeArena>(arena), n1);  // distinct cb
  ConstructedPtr c2(arena, n2);

  Sequence seq;
  seq.push_back(Item(c2));
  seq.push_back(Item(NodeRef{store, child}));
  seq.push_back(Item(c1a));
  seq.push_back(Item(NodeRef{store, root}));
  seq.push_back(Item(c1b));                      // duplicate of c1a by id
  seq.push_back(Item(NodeRef{store, child}));    // duplicate stored node
  SortDedupNodes(&seq);

  // Stored nodes first in document order, then constructed in creation
  // order, duplicates (by identity, not control block) removed.
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_TRUE(seq[0].is_node());
  EXPECT_EQ(seq[0].node().handle, root);
  EXPECT_TRUE(seq[1].is_node());
  EXPECT_EQ(seq[1].node().handle, child);
  EXPECT_TRUE(seq[2].is_constructed());
  EXPECT_EQ(seq[2].constructed()->node_id, n1->node_id);
  EXPECT_TRUE(seq[3].is_constructed());
  EXPECT_EQ(seq[3].constructed()->node_id, n2->node_id);
}

TEST(SortDedupNodesTest, AtomicsAreNeitherReorderedNorDeduped) {
  Sequence seq;
  seq.push_back(Item(std::string("b")));
  seq.push_back(Item(std::string("a")));
  seq.push_back(Item(std::string("a")));
  SortDedupNodes(&seq);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].string(), "b");
  EXPECT_EQ(seq[1].string(), "a");
  EXPECT_EQ(seq[2].string(), "a");
}

// ---------------------------------------------------------------------------
// NodeArena mechanics
// ---------------------------------------------------------------------------

TEST(NodeArenaTest, InternedTextIsStableAcrossGrowth) {
  NodeArena arena;
  const std::string_view first = arena.InternText("hello");
  std::string big(1 << 17, 'x');  // forces a dedicated oversized block
  const std::string_view huge = arena.InternText(big);
  for (int i = 0; i < 1000; ++i) {
    arena.InternText("some more text to roll the current block over");
  }
  EXPECT_EQ(first, "hello");  // earlier blocks never move
  EXPECT_EQ(huge.size(), big.size());
  EXPECT_EQ(huge, big);
  const std::string_view empty = arena.InternText("");
  EXPECT_NE(empty.data(), nullptr) << "empty text must still override "
                                      "ConstructedNode::text";
  EXPECT_TRUE(empty.empty());
}

TEST(NodeArenaTest, NodesAreDestroyedWithTheArena) {
  // More nodes than one block holds; each gets heap-owning members that
  // would leak (ASAN) if ~NodeArena skipped destructors.
  NodeArena arena;
  for (int i = 0; i < 200; ++i) {
    ConstructedNode* node = arena.AllocateNode();
    node->tag = "tag-long-enough-to-defeat-the-small-string-optimization";
    node->children.emplace_back(Item(std::string("child")));
  }
  EXPECT_EQ(arena.nodes_allocated(), 200);
}

}  // namespace
}  // namespace xmark::query
