#include "util/status.h"

#include <gtest/gtest.h>

namespace xmark {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::InvalidQuery("x").code(), StatusCode::kInvalidQuery);
}

// The governance taxonomy renders stable names (clients and the bench
// JSON key on them).
TEST(StatusTest, GovernanceCodesRenderStableNames) {
  EXPECT_EQ(Status::DeadlineExceeded("t").ToString(), "DeadlineExceeded: t");
  EXPECT_EQ(Status::Cancelled("t").ToString(), "Cancelled: t");
  EXPECT_EQ(Status::ResourceExhausted("t").ToString(),
            "ResourceExhausted: t");
  EXPECT_EQ(Status::InvalidQuery("t").ToString(), "InvalidQuery: t");
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status Chain(int v) {
  XMARK_ASSIGN_OR_RETURN(int got, ParsePositive(v));
  (void)got;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Chain(5).ok());
  EXPECT_FALSE(Chain(-5).ok());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fn = [](bool fail) -> Status {
    XMARK_RETURN_IF_ERROR(fail ? Status::Internal("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(fn(false).ok());
  EXPECT_EQ(fn(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace xmark
