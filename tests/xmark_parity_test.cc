// Cross-store parity: the serialized results of Q1-Q20 must be
// byte-identical across all four physical mappings, with the zero-copy
// storage-access fast paths (view-based comparisons + child cursors) on
// and off. Also pins the Q1 acceptance property: with fast paths on, the
// equality predicate path performs no per-node string materialization.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/value.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::bench {
namespace {

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions opts;
    opts.scale = 0.01;
    return new std::string(gen::XmlGen(opts).GenerateToString());
  }();
  return *kDoc;
}

// The four physical mappings: A=edge, B=fragmented, C=inlined, D=dom.
constexpr SystemId kStores[] = {SystemId::kA, SystemId::kB, SystemId::kC,
                                SystemId::kD};

Engine* LoadedEngine(SystemId id) {
  static std::map<SystemId, std::unique_ptr<Engine>>* const kEngines =
      new std::map<SystemId, std::unique_ptr<Engine>>();
  auto it = kEngines->find(id);
  if (it == kEngines->end()) {
    auto engine = Engine::Create(id);
    Status st = engine->Load(TestDocument());
    XMARK_CHECK(st.ok());
    it = kEngines->emplace(id, std::move(engine)).first;
  }
  return it->second.get();
}

std::string RunSerialized(SystemId id, int query, bool fast_paths) {
  Engine* engine = LoadedEngine(id);
  auto parsed = query::ParseQueryText(GetQuery(query).text);
  XMARK_CHECK(parsed.ok());
  query::EvaluatorOptions opts = engine->evaluator_options();
  opts.zero_copy_strings = fast_paths;
  opts.child_cursors = fast_paths;
  opts.descendant_cursors = fast_paths;
  query::Evaluator evaluator(engine->store(), opts);
  auto result = evaluator.Run(*parsed);
  XMARK_CHECK(result.ok());
  return SerializeSequence(*result);
}

class ParityTest : public ::testing::TestWithParam<int> {};

TEST_P(ParityTest, ByteIdenticalAcrossStoresAndFastPaths) {
  const int query = GetParam();
  // Reference: the native DOM store with every fast path disabled.
  const std::string reference = RunSerialized(SystemId::kD, query, false);
  for (SystemId id : kStores) {
    for (bool fast : {false, true}) {
      const std::string got = RunSerialized(id, query, fast);
      EXPECT_EQ(got, reference)
          << "system " << SystemLabel(id) << " Q" << query
          << (fast ? " with" : " without") << " fast paths diverges";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParityTest, ::testing::Range(1, 21));

// Acceptance property of the zero-copy layer: Q1's [@id = "..."] equality
// path resolves entirely through attribute views — zero per-node string
// materializations on every store.
TEST(ZeroCopyStats, Q1EqualityPathMaterializesNothing) {
  for (SystemId id : kStores) {
    Engine* engine = LoadedEngine(id);
    auto parsed = query::ParseQueryText(GetQuery(1).text);
    ASSERT_TRUE(parsed.ok());
    query::EvaluatorOptions opts = engine->evaluator_options();
    opts.zero_copy_strings = true;
    opts.child_cursors = true;
    query::Evaluator evaluator(engine->store(), opts);
    auto result = evaluator.Run(*parsed);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(evaluator.stats().compare_allocs, 0)
        << "system " << SystemLabel(id)
        << " materialized strings on the Q1 equality path";
  }
}

// Navigation inside constructed elements is Unimplemented; the streaming
// fast paths must surface the same error instead of silently returning
// false/empty.
TEST(ZeroCopyStats, ConstructedNavigationErrorsMatchGenericPath) {
  Engine* engine = LoadedEngine(SystemId::kD);
  // `name` must be a tag the store's dictionary knows, or both paths
  // short-circuit to an empty step result before touching the item.
  auto parsed = query::ParseQueryText(
      "for $v in <x><name>1</name></x> return $v/name = \"1\"");
  ASSERT_TRUE(parsed.ok());
  for (bool fast : {false, true}) {
    query::EvaluatorOptions opts = engine->evaluator_options();
    opts.zero_copy_strings = fast;
    opts.child_cursors = fast;
    query::Evaluator evaluator(engine->store(), opts);
    auto result = evaluator.Run(*parsed);
    EXPECT_FALSE(result.ok())
        << (fast ? "fast" : "generic")
        << " path silently evaluated constructed-node navigation";
  }
}

// The cursor fast paths actually engage: Q6 (descendant walk) on the edge
// store reports batched child scans on its child steps and one batched
// interval scan per descendant step input.
TEST(ZeroCopyStats, CursorScansReported) {
  Engine* engine = LoadedEngine(SystemId::kA);
  auto parsed = query::ParseQueryText(GetQuery(6).text);
  ASSERT_TRUE(parsed.ok());
  query::EvaluatorOptions opts = engine->evaluator_options();
  // Pin the generic operator path: Q6 otherwise runs as a compiled
  // pipeline, whose scans are accounted independently of these toggles.
  opts.compiled_pipelines = false;
  opts.zero_copy_strings = true;
  opts.child_cursors = true;
  opts.descendant_cursors = true;
  query::Evaluator evaluator(engine->store(), opts);
  ASSERT_TRUE(evaluator.Run(*parsed).ok());
  EXPECT_GT(evaluator.stats().cursor_scans, 0);
  EXPECT_GT(evaluator.stats().descendant_scans, 0);

  opts.child_cursors = false;
  opts.zero_copy_strings = false;
  opts.descendant_cursors = false;
  query::Evaluator no_cursors(engine->store(), opts);
  ASSERT_TRUE(no_cursors.Run(*parsed).ok());
  EXPECT_EQ(no_cursors.stats().cursor_scans, 0);
  EXPECT_EQ(no_cursors.stats().descendant_scans, 0);
}

// Acceptance property of the transparent hash-join index: the Q8/Q9 probe
// loops touch the index with string_view keys straight out of the store
// heap — every probe runs, none materializes a per-probe std::string.
TEST(ZeroCopyStats, JoinProbesMaterializeNothing) {
  for (SystemId id : kStores) {
    Engine* engine = LoadedEngine(id);
    for (int q : {8, 9}) {
      auto parsed = query::ParseQueryText(GetQuery(q).text);
      ASSERT_TRUE(parsed.ok());
      query::EvaluatorOptions opts = engine->evaluator_options();
      opts.hash_join = true;
      query::Evaluator evaluator(engine->store(), opts);
      ASSERT_TRUE(evaluator.Run(*parsed).ok());
      EXPECT_GT(evaluator.stats().join_probes, 0)
          << "system " << SystemLabel(id) << " Q" << q
          << " never probed the join index";
      EXPECT_EQ(evaluator.stats().join_probe_allocs, 0)
          << "system " << SystemLabel(id) << " Q" << q
          << " materialized strings on the join probe path";
    }
  }
}

}  // namespace
}  // namespace xmark::bench
