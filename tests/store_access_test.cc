// Unit tests for the zero-copy storage access layer: TextView,
// AppendStringValue, AttributeView and ChildCursor on every physical
// mapping, over documents exercising empty elements, mixed content and
// entity-decoded text.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/storage.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"

namespace xmark::query {
namespace {

constexpr std::string_view kDoc = R"(<root>
  <empty/>
  <mixed>alpha<b>bold</b> tail</mixed>
  <ent>a &amp; b &#65;&#x42;</ent>
  <item id="i1" cat="gold"><price>10</price></item>
  <item id="i2"><price>20</price><price>30</price></item>
</root>)";

using StoreFactory = std::unique_ptr<StorageAdapter> (*)(std::string_view);

std::unique_ptr<StorageAdapter> MakeEdge(std::string_view xml) {
  auto s = store::EdgeStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeFragmented(std::string_view xml) {
  auto s = store::FragmentedStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeInlined(std::string_view xml) {
  auto s = store::InlinedStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeDom(std::string_view xml) {
  store::DomStore::Options options;
  auto s = store::DomStore::Load(xml, options);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}

struct StoreCase {
  const char* name;
  StoreFactory factory;
};

class StoreAccessTest : public ::testing::TestWithParam<StoreCase> {
 protected:
  void SetUp() override { store_ = GetParam().factory(kDoc); }

  // First child element of `base` with the given tag (via the generic
  // navigation chain, deliberately not the cursor under test).
  NodeHandle ChildByTag(NodeHandle base, std::string_view tag) {
    const xml::NameId id = store_->names().Lookup(tag);
    for (NodeHandle c = store_->FirstChild(base); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      if (store_->IsElement(c) && store_->NameOf(c) == id) return c;
    }
    return kInvalidHandle;
  }

  // Drains a cursor fully with a small batch to exercise refills.
  std::vector<NodeHandle> Drain(NodeHandle parent, ChildFilter filter,
                                xml::NameId tag) {
    ChildCursor cur;
    store_->OpenChildCursor(parent, filter, tag, &cur);
    std::vector<NodeHandle> out;
    NodeHandle buf[3];
    size_t n;
    while ((n = cur.Fill(buf, 3)) > 0) out.insert(out.end(), buf, buf + n);
    return out;
  }

  std::unique_ptr<StorageAdapter> store_;
};

TEST_P(StoreAccessTest, TextViewMatchesText) {
  const NodeHandle mixed = ChildByTag(store_->Root(), "mixed");
  ASSERT_NE(mixed, kInvalidHandle);
  const NodeHandle text = store_->FirstChild(mixed);
  ASSERT_NE(text, kInvalidHandle);
  ASSERT_FALSE(store_->IsElement(text));
  EXPECT_EQ(store_->TextView(text), "alpha");
  EXPECT_EQ(store_->Text(text), std::string(store_->TextView(text)));
}

TEST_P(StoreAccessTest, EmptyElement) {
  const NodeHandle empty = ChildByTag(store_->Root(), "empty");
  ASSERT_NE(empty, kInvalidHandle);
  EXPECT_EQ(store_->FirstChild(empty), kInvalidHandle);
  EXPECT_EQ(store_->StringValue(empty), "");
  std::string buf = "prefix-";
  store_->AppendStringValue(empty, &buf);
  EXPECT_EQ(buf, "prefix-");
  EXPECT_TRUE(Drain(empty, ChildFilter::kAll, xml::kInvalidName).empty());
}

TEST_P(StoreAccessTest, MixedContentStringValue) {
  const NodeHandle mixed = ChildByTag(store_->Root(), "mixed");
  ASSERT_NE(mixed, kInvalidHandle);
  EXPECT_EQ(store_->StringValue(mixed), "alphabold tail");
  // Append-style reuse of one scratch buffer.
  std::string scratch = "x:";
  store_->AppendStringValue(mixed, &scratch);
  EXPECT_EQ(scratch, "x:alphabold tail");
}

TEST_P(StoreAccessTest, EntityDecodedText) {
  const NodeHandle ent = ChildByTag(store_->Root(), "ent");
  ASSERT_NE(ent, kInvalidHandle);
  EXPECT_EQ(store_->StringValue(ent), "a & b AB");
  const NodeHandle text = store_->FirstChild(ent);
  ASSERT_NE(text, kInvalidHandle);
  EXPECT_EQ(store_->TextView(text), "a & b AB");
}

TEST_P(StoreAccessTest, LeadingZeroCharRefs) {
  // XML permits leading zeros in numeric character references.
  auto store = GetParam().factory("<r>&#0000065;&#x00042;</r>");
  EXPECT_EQ(store->StringValue(store->Root()), "AB");
}

TEST_P(StoreAccessTest, AttributeView) {
  const NodeHandle item = ChildByTag(store_->Root(), "item");
  ASSERT_NE(item, kInvalidHandle);
  const auto id = store_->AttributeView(item, "id");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, "i1");
  const auto cat = store_->AttributeView(item, "cat");
  ASSERT_TRUE(cat.has_value());
  EXPECT_EQ(*cat, "gold");
  EXPECT_FALSE(store_->AttributeView(item, "absent").has_value());
  // The materializing wrapper agrees.
  EXPECT_EQ(store_->Attribute(item, "id"), std::string("i1"));
  EXPECT_FALSE(store_->Attribute(item, "absent").has_value());
}

TEST_P(StoreAccessTest, CursorMatchesSiblingChain) {
  // Every filter on every element produces exactly what the generic
  // FirstChild/NextSibling walk produces.
  std::vector<NodeHandle> stack{store_->Root()};
  while (!stack.empty()) {
    const NodeHandle n = stack.back();
    stack.pop_back();
    if (!store_->IsElement(n)) continue;
    std::vector<NodeHandle> chain_all, chain_elems, chain_text;
    for (NodeHandle c = store_->FirstChild(n); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      chain_all.push_back(c);
      (store_->IsElement(c) ? chain_elems : chain_text).push_back(c);
      stack.push_back(c);
    }
    EXPECT_EQ(Drain(n, ChildFilter::kAll, xml::kInvalidName), chain_all);
    EXPECT_EQ(Drain(n, ChildFilter::kElements, xml::kInvalidName),
              chain_elems);
    EXPECT_EQ(Drain(n, ChildFilter::kText, xml::kInvalidName), chain_text);
    for (NodeHandle c : chain_elems) {
      const xml::NameId tag = store_->NameOf(c);
      std::vector<NodeHandle> chain_tag;
      for (NodeHandle d : chain_elems) {
        if (store_->NameOf(d) == tag) chain_tag.push_back(d);
      }
      EXPECT_EQ(Drain(n, ChildFilter::kTag, tag), chain_tag);
    }
  }
}

TEST_P(StoreAccessTest, TagFilteredCursor) {
  const xml::NameId item = store_->names().Lookup("item");
  ASSERT_NE(item, xml::kInvalidName);
  const auto items = Drain(store_->Root(), ChildFilter::kTag, item);
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(store_->AttributeView(items[0], "id"), "i1");
  EXPECT_EQ(store_->AttributeView(items[1], "id"), "i2");
}

TEST_P(StoreAccessTest, UnknownTagCursorIsEmpty) {
  // kTag with kInvalidName must not leak text nodes (whose NameOf is also
  // kInvalidName).
  EXPECT_TRUE(
      Drain(ChildByTag(store_->Root(), "mixed"), ChildFilter::kTag,
            xml::kInvalidName)
          .empty());
}

TEST_P(StoreAccessTest, CursorBatchRefill) {
  // A child list longer than any Fill batch drains correctly across
  // refills.
  std::string doc = "<wide>";
  for (int i = 0; i < 150; ++i) doc += "<c/><d/>";
  doc += "</wide>";
  auto store = GetParam().factory(doc);
  const xml::NameId c_tag = store->names().Lookup("c");
  ChildCursor cur;
  store->OpenChildCursor(store->Root(), ChildFilter::kTag, c_tag, &cur);
  std::vector<NodeHandle> out;
  NodeHandle buf[64];
  size_t n;
  while ((n = cur.Fill(buf, 64)) > 0) out.insert(out.end(), buf, buf + n);
  ASSERT_EQ(out.size(), 150u);
  for (NodeHandle h : out) EXPECT_EQ(store->NameOf(h), c_tag);
  // Document order.
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
}

TEST(EntityLimits, OverlongNumericRefRejected) {
  // More digits than any code point <= 0x10ffff needs (after stripping
  // leading zeros) is a malformed reference, not a silent clamp.
  EXPECT_FALSE(xml::Document::Parse("<r>&#99999999;</r>").ok());
  EXPECT_FALSE(xml::Document::Parse("<r>&#x1234567;</r>").ok());
  EXPECT_FALSE(xml::Document::Parse("<r>&#;</r>").ok());
  EXPECT_FALSE(xml::Document::Parse("<r>&#0;</r>").ok());
  EXPECT_TRUE(xml::Document::Parse("<r>&#0000065;</r>").ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, StoreAccessTest,
    ::testing::Values(StoreCase{"edge", &MakeEdge},
                      StoreCase{"fragmented", &MakeFragmented},
                      StoreCase{"inlined", &MakeInlined},
                      StoreCase{"dom", &MakeDom}),
    [](const ::testing::TestParamInfo<StoreCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xmark::query
