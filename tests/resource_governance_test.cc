// Resource governance for the serving layer: deadlines, cooperative
// cancellation, memory/step budgets, error taxonomy, and fault-injection
// coverage. The invariants under test:
//   - a violated limit surfaces as the matching StatusCode, promptly, and
//     the run's NodeArena is freed (no result memory outlives a failure);
//   - governance is per-run: a cancelled query leaves the shared plan
//     cache and every sibling session byte-identical to serial execution;
//   - with RunOptions unset, governed and ungoverned results are
//     byte-identical (governance is opt-in, zero behavior change);
//   - every registered fault site fails as a clean Status, never a crash
//     (compiled in with -DFAULT_INJECTION=ON; CI runs this under ASan).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/exec_context.h"
#include "query/parser.h"
#include "query/value.h"
#include "store/document_catalog.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::bench {
namespace {

using query::ExecContext;
using query::RunOptions;

// Wall-clock bound for a deadline rejection. The serving target is 25 ms
// (checks happen at batch boundaries, never more than one batch after the
// clock expires); sanitizer and fault-injection builds run the same code
// several times slower, so they get a loose bound instead of flakes.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define XMARK_TEST_SLOW_BUILD 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    XMARK_FAULT_INJECTION
#define XMARK_TEST_SLOW_BUILD 1
#endif
#ifdef XMARK_TEST_SLOW_BUILD
constexpr std::chrono::milliseconds kDeadlineWallBound{1000};
#else
constexpr std::chrono::milliseconds kDeadlineWallBound{25};
#endif

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    return new std::string(gen::XmlGen(options).GenerateToString());
  }();
  return *kDoc;
}

std::unique_ptr<Engine> LoadedEngine(SystemId id = SystemId::kD) {
  std::unique_ptr<Engine> engine = Engine::Create(id);
  XMARK_CHECK(engine->Load(TestDocument()).ok());
  return engine;
}

std::string RunSerialized(Engine* engine, int q) {
  auto result = engine->Run(GetQuery(q).text);
  XMARK_CHECK(result.ok());
  return query::SerializeSequence(*result);
}

// Deadline options that have already expired once ExpireDeadline() has
// slept past them: the first cooperative check consults the clock (stride
// checks start at tick 1), so the rejection is deterministic regardless of
// query or scale. (ExecContext is pinned — non-copyable — hence the
// two-step helper instead of returning a context by value.)
RunOptions ExpiredDeadlineOptions() {
  RunOptions options;
  options.deadline_ms = 1;
  return options;
}

void ExpireDeadline() {
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
}

// --------------------------------------------------------------------------
// Deadlines
// --------------------------------------------------------------------------

TEST(ResourceGovernance, DeadlineExceededPromptlyOnConstructionHeavyQuery) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  auto prepared = engine->Prepare(GetQuery(10).text);
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  ExecContext ctx(ExpiredDeadlineOptions());
  ExpireDeadline();
  const auto start = std::chrono::steady_clock::now();
  auto result = engine->Execute(*prepared, &ctx);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
  EXPECT_LT(elapsed, kDeadlineWallBound);
  EXPECT_EQ(engine->outcomes().deadline_exceeded, 1u);
  EXPECT_EQ(engine->outcomes().ok, 0u);

  // The engine keeps serving after the rejection.
  auto retry = engine->Execute(*prepared);
  EXPECT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(engine->outcomes().ok, 1u);
}

TEST(ResourceGovernance, BandJoinQueryHonorsDeadline) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  auto prepared = engine->Prepare(GetQuery(11).text);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ExecContext ctx(ExpiredDeadlineOptions());
  ExpireDeadline();
  auto result = engine->Execute(*prepared, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// A generous deadline changes nothing: governed results stay byte-identical
// to ungoverned ones, and the run reports its cooperative check count.
TEST(ResourceGovernance, GovernedRunMatchesUngovernedByteForByte) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const std::string expected = RunSerialized(engine.get(), 10);
  EXPECT_EQ(engine->last_stats().governance_checks, 0);

  RunOptions options;
  options.deadline_ms = 60'000;
  engine->set_run_options(options);
  auto governed = engine->Run(GetQuery(10).text);
  ASSERT_TRUE(governed.ok()) << governed.status();
  EXPECT_EQ(query::SerializeSequence(*governed), expected);
  EXPECT_GT(engine->last_stats().governance_checks, 0);
}

// --------------------------------------------------------------------------
// Memory and step budgets
// --------------------------------------------------------------------------

// A tight result budget must fail the run as kResourceExhausted, and
// destroying the evaluator must free the arena — no failed run leaks
// result memory (weak_ptr expiry proves it). The budget is scanned
// upward until the violation lands after Q10's first arena block, so the
// arena provably exists mid-run when the query is killed; a 1-byte
// budget additionally pins the earliest rejection (Sequence growth,
// before any construction).
TEST(ResourceGovernance, MemoryBudgetFreesArenaOnFailure) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  auto parsed = query::ParseQueryText(GetQuery(10).text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  {
    query::Evaluator evaluator(engine->store(), engine->evaluator_options());
    RunOptions options;
    options.max_result_bytes = 1;
    ExecContext ctx(options);
    evaluator.set_exec_context(&ctx);
    auto result = evaluator.Run(*parsed);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    EXPECT_GT(evaluator.stats().governance_checks, 0);
  }

  for (size_t budget = size_t{1} << 12; budget <= (size_t{1} << 30);
       budget <<= 1) {
    auto evaluator = std::make_unique<query::Evaluator>(
        engine->store(), engine->evaluator_options());
    RunOptions options;
    options.max_result_bytes = budget;
    ExecContext ctx(options);
    evaluator->set_exec_context(&ctx);
    auto result = evaluator->Run(*parsed);
    ASSERT_NE(evaluator->plan(), nullptr);
    if (result.ok()) {
      // Budget no longer binds at this scale; the run completed without a
      // mid-construction kill to observe. (Unreachable in practice: Q10's
      // total charge is far above its charge at first construction.)
      ASSERT_NE(evaluator->plan()->arena, nullptr);
      FAIL() << "budget " << budget
             << " succeeded before a mid-construction violation was seen";
    }
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status();
    if (evaluator->plan()->arena == nullptr) continue;  // killed too early

    std::weak_ptr<const query::NodeArena> weak = evaluator->plan()->arena;
    EXPECT_FALSE(weak.expired());
    // Destroy the evaluator (and with it the per-run QueryPlan): the
    // failed run's arena must die with it.
    evaluator.reset();
    EXPECT_TRUE(weak.expired()) << "failed run leaked its NodeArena";
    return;
  }
  FAIL() << "no budget produced a mid-construction kill";
}

// The step budget is a deterministic work limit: Q10 needs far more than
// 100 cooperative steps, so the engine-level RunOptions must reject it —
// and clearing the options must restore exact results through the same
// engine (the plan cache and store are untouched by the failure).
TEST(ResourceGovernance, StepBudgetDeterministicRejectAndRecover) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const std::string expected = RunSerialized(engine.get(), 10);

  RunOptions options;
  options.max_eval_steps = 100;
  engine->set_run_options(options);
  auto limited = engine->Run(GetQuery(10).text);
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted)
      << limited.status();

  engine->set_run_options(RunOptions{});
  auto recovered = engine->Run(GetQuery(10).text);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(query::SerializeSequence(*recovered), expected);
  EXPECT_EQ(engine->outcomes().resource_exhausted, 1u);
}

// --------------------------------------------------------------------------
// Cancellation and session isolation
// --------------------------------------------------------------------------

// Four concurrent sessions; one is cancelled before it starts. The
// cancelled session must observe kCancelled, the other three must stay
// byte-identical to serial results, and the cancelled session must serve
// the same query correctly immediately afterwards (shared plan cache and
// store unharmed).
TEST(ResourceGovernance, CancelledSessionLeavesSiblingsUntouched) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const int workload[] = {8, 10, 11, 13};
  std::vector<std::string> expected;
  for (int q : workload) expected.push_back(RunSerialized(engine.get(), q));

  constexpr unsigned kThreads = 4;  // thread t runs workload[t]
  std::vector<std::string> errors(kThreads);
  ExecContext cancelled_ctx;
  cancelled_ctx.Cancel();

  std::vector<std::unique_ptr<EngineSession>> sessions;
  for (unsigned t = 0; t < kThreads; ++t) {
    auto session_or = engine->CreateSession();
    ASSERT_TRUE(session_or.ok()) << session_or.status();
    sessions.push_back(std::move(*session_or));
  }

  std::vector<std::thread> clients;
  for (unsigned t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      ExecContext* ctx = (t == 0) ? &cancelled_ctx : nullptr;
      auto result = sessions[t]->Run(GetQuery(workload[t]).text, ctx);
      if (t == 0) {
        if (result.ok()) {
          errors[t] = "cancelled run unexpectedly succeeded";
        } else if (result.status().code() != StatusCode::kCancelled) {
          errors[t] = "wrong code: " + result.status().ToString();
        }
        return;
      }
      if (!result.ok()) {
        errors[t] = result.status().ToString();
      } else if (query::SerializeSequence(*result) != expected[t]) {
        errors[t] = "Q" + std::to_string(workload[t]) + " diverged";
      }
    });
  }
  for (std::thread& c : clients) c.join();
  for (unsigned t = 0; t < kThreads; ++t) EXPECT_EQ(errors[t], "") << t;

  EXPECT_GE(engine->outcomes().cancelled, 1u);

  // The cancelled session reuses the shared plan-cache entry and serves
  // the exact serial bytes.
  auto retry = sessions[0]->Run(GetQuery(workload[0]).text);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(query::SerializeSequence(*retry), expected[0]);
}

// Error propagation out of the morsel-parallel scan drain: a governed
// failure inside pool workers must surface as that query's Status (the
// deterministic first failing chunk), and the engine must serve the exact
// bytes right after.
TEST(ResourceGovernance, MorselDrainPropagatesFailureAndRecovers) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  query::EvaluatorOptions opts = engine->evaluator_options();
  opts.parallel_exec.enabled = true;
  opts.parallel_exec.threads = 4;
  opts.parallel_exec.min_morsel_ids = 1;  // force morsels at tiny scale
  engine->set_evaluator_options(opts);
  // Q14's descendant axis (site//item) is the morsel-partitioned scan.
  const std::string expected = RunSerialized(engine.get(), 14);

  auto prepared = engine->Prepare(GetQuery(14).text);
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ExecContext ctx;
  ctx.Cancel();
  auto result = engine->Execute(*prepared, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << result.status();

  auto retry = engine->Execute(*prepared);
  ASSERT_TRUE(retry.ok()) << retry.status();
  EXPECT_EQ(query::SerializeSequence(*retry), expected);
}

// --------------------------------------------------------------------------
// Corpus ingest governance
// --------------------------------------------------------------------------

std::vector<store::CorpusDocument> TinyCorpus(int count, uint64_t seed_base,
                                              double scale = 0.002) {
  std::vector<store::CorpusDocument> docs;
  for (int i = 0; i < count; ++i) {
    gen::GeneratorOptions options;
    options.scale = scale;
    options.seed = seed_base + i;
    store::CorpusDocument doc;
    doc.id = "gov-" + std::to_string(i) + ".xml";
    doc.xml = gen::XmlGen(options).GenerateToString();
    docs.push_back(std::move(doc));
  }
  return docs;
}

// A memory-budget violation mid-corpus-load unwinds the whole batch:
// nothing from it lands in the catalog, the violation is booked in the
// outcome taxonomy, and the documents loaded before the batch keep
// serving exact bytes through the same engine. Clearing the limit lets
// the identical batch load.
TEST(ResourceGovernance, BudgetViolationMidCorpusLoadUnwindsCleanly) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const std::string expected = RunSerialized(engine.get(), 1);
  const std::vector<store::CorpusDocument> docs = TinyCorpus(2, 300);

  RunOptions options;
  options.max_result_bytes = 1;  // any bulkload's charge exceeds this
  engine->set_run_options(options);
  Status st = engine->LoadCorpus(docs);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_EQ(engine->DocumentCount(), 1u);
  EXPECT_GE(engine->outcomes().resource_exhausted, 1u);

  engine->set_run_options(RunOptions{});
  EXPECT_EQ(RunSerialized(engine.get(), 1), expected);

  ASSERT_TRUE(engine->LoadCorpus(docs).ok());
  EXPECT_EQ(engine->DocumentCount(), 3u);
  auto spanned = engine->Run(
      "count(for $p in collection()/site/people/person return $p)");
  ASSERT_TRUE(spanned.ok()) << spanned.status();
  EXPECT_EQ(spanned->size(), 3u);  // one per-document count, in id order
}

// A deadline expiring partway through a multi-document bulkload aborts
// the batch all-or-nothing. The builds are real (multi-megabyte parses),
// so a 1 ms deadline must trip at one of the per-document checks.
TEST(ResourceGovernance, DeadlineMidCorpusLoadUnwindsCleanly) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const std::string expected = RunSerialized(engine.get(), 1);

  RunOptions options;
  options.deadline_ms = 1;
  engine->set_run_options(options);
  Status st = engine->LoadCorpus(TinyCorpus(3, 400, 0.02));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st;
  EXPECT_EQ(engine->DocumentCount(), 1u);

  engine->set_run_options(RunOptions{});
  EXPECT_EQ(RunSerialized(engine.get(), 1), expected);
}

// --------------------------------------------------------------------------
// Error taxonomy observability
// --------------------------------------------------------------------------

TEST(ResourceGovernance, OutcomeCountersAndExplainLine) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  ASSERT_TRUE(engine->Run(GetQuery(1).text).ok());
  ASSERT_FALSE(engine->Run("for $x in").ok());  // parse rejection

  const QueryOutcomes outcomes = engine->outcomes();
  EXPECT_EQ(outcomes.ok, 1u);
  EXPECT_EQ(outcomes.invalid_query, 1u);
  EXPECT_EQ(outcomes.total(), 2u);

  auto explain = engine->Explain(GetQuery(1).text);
  ASSERT_TRUE(explain.ok()) << explain.status();
  EXPECT_NE(explain->find("outcomes: ok=1"), std::string::npos) << *explain;
}

// --------------------------------------------------------------------------
// Fault injection (compiled in with -DFAULT_INJECTION=ON)
// --------------------------------------------------------------------------

#if XMARK_FAULT_INJECTION

// Pool-saturation degradation: with "thread_pool/submit" stuck failing,
// every morsel chunk is refused admission and runs serially on the caller
// — same bytes, clean success.
TEST(ResourceGovernance, PoolSaturationFallsBackToSerialDrain) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  query::EvaluatorOptions opts = engine->evaluator_options();
  opts.parallel_exec.enabled = true;
  opts.parallel_exec.threads = 4;
  opts.parallel_exec.min_morsel_ids = 1;
  engine->set_evaluator_options(opts);
  // Q14's descendant axis (site//item) is the morsel-partitioned scan.
  const std::string expected = RunSerialized(engine.get(), 14);

  fault::ArmSticky("thread_pool/submit");
  auto result = engine->Run(GetQuery(14).text);
  const int hits = fault::ArmedSiteHits();
  fault::Disarm();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(query::SerializeSequence(*result), expected);
  EXPECT_GT(hits, 0) << "parallel scan never consulted the pool";
}

// Every registered fault site, armed in a full serving flow (load,
// prepare cached, execute with morsel parallelism, queries covering hash
// joins, band joins and construction), must either never fire or fail the
// operation with a clean error Status — no crash, no wedged engine. After
// disarming, the same engine instance must serve exact results again.
TEST(ResourceGovernance, EveryFaultSiteFailsCleanAndRecovers) {
  for (std::string_view site : fault::FaultSites()) {
    SCOPED_TRACE(std::string(site));
    fault::Arm(site, 0);

    std::unique_ptr<Engine> engine = Engine::Create(SystemId::kD);
    Status load = engine->Load(TestDocument());
    if (load.ok()) {
      query::EvaluatorOptions opts = engine->evaluator_options();
      opts.parallel_exec.enabled = true;
      opts.parallel_exec.threads = 2;
      opts.parallel_exec.min_morsel_ids = 1;
      engine->set_evaluator_options(opts);
      // Q10: hash join + construction; Q11: band join; Q14: descendant
      // axis → morsel drain + pool submit.
      for (int q : {10, 11, 14}) {
        auto session_or = engine->CreateSession();
        ASSERT_TRUE(session_or.ok()) << session_or.status();
        auto result = (*session_or)->Run(GetQuery(q).text);
        if (!result.ok()) {
          // A clean structured failure: never OK-with-garbage, never a
          // crash. Message must name fault injection, not corrupt state.
          EXPECT_NE(result.status().message().find("fault injection"),
                    std::string::npos)
              << result.status();
        }
      }
    } else {
      EXPECT_EQ(load.code(), StatusCode::kResourceExhausted) << load;
    }
    fault::Disarm();

    // Disarmed, the same engine (reloaded if the load was the victim)
    // serves correct bytes — no residue from the injected failure.
    if (!load.ok()) ASSERT_TRUE(engine->Load(TestDocument()).ok());
    auto after = engine->Run(GetQuery(8).text);
    EXPECT_TRUE(after.ok()) << site << ": " << after.status();
  }
}

// A store bulkload failing partway through a parallel corpus load (the
// armed countdown lets two documents build, the third is refused) aborts
// the batch with a clean Status, commits nothing, and the engine loads
// the identical batch once the fault clears.
TEST(ResourceGovernance, MidBatchLoadFaultLeavesCatalogUnchanged) {
  std::unique_ptr<Engine> engine = LoadedEngine();
  const std::vector<store::CorpusDocument> docs = TinyCorpus(4, 500);

  fault::Arm("engine/load_store", 2);
  Status st = engine->LoadCorpus(docs);
  fault::Disarm();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("fault injection"), std::string::npos) << st;
  EXPECT_EQ(engine->DocumentCount(), 1u);

  ASSERT_TRUE(engine->LoadCorpus(docs).ok());
  EXPECT_EQ(engine->DocumentCount(), 5u);
  EXPECT_TRUE(engine->Run(GetQuery(1).text).ok());
}

#endif  // XMARK_FAULT_INJECTION

}  // namespace
}  // namespace xmark::bench
