#include "gen/generator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "util/logging.h"

#include "util/string_util.h"
#include "xml/dom.h"
#include "xml/dtd.h"

namespace xmark::gen {
namespace {

constexpr double kTestScale = 0.002;

const XmlGen& TestGen() {
  static const XmlGen* const kGen = [] {
    GeneratorOptions opts;
    opts.scale = kTestScale;
    return new XmlGen(opts);
  }();
  return *kGen;
}

const xml::Document& TestDoc() {
  static const xml::Document* const kDoc = [] {
    auto doc = xml::Document::Parse(TestGen().GenerateToString());
    XMARK_CHECK(doc.ok());
    return new xml::Document(std::move(doc).value());
  }();
  return *kDoc;
}

std::map<std::string, int> CountTags(const xml::Document& doc) {
  std::map<std::string, int> counts;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.IsElement(n)) ++counts[doc.tag(n)];
  }
  return counts;
}

TEST(EntityCountsTest, Scale1MatchesPublishedCalibration) {
  const EntityCounts c = EntityCounts::ForScale(1.0);
  EXPECT_EQ(c.persons, 25500);
  EXPECT_EQ(c.open_auctions, 12000);
  EXPECT_EQ(c.closed_auctions, 9750);
  EXPECT_EQ(c.items, 21750);
  EXPECT_EQ(c.categories, 1000);
}

TEST(EntityCountsTest, ContinentSplitSumsToItems) {
  for (double f : {0.001, 0.01, 0.1, 1.0, 2.5}) {
    const EntityCounts c = EntityCounts::ForScale(f);
    int64_t sum = 0;
    for (int i = 0; i < kNumContinents; ++i) {
      EXPECT_GE(c.items_per_continent[i], 0) << "factor " << f;
      sum += c.items_per_continent[i];
    }
    EXPECT_EQ(sum, c.items) << "factor " << f;
  }
}

TEST(EntityCountsTest, ItemsEqualAuctions) {
  // The consistency constraint of §4.5: items == open + closed.
  for (double f : {0.005, 0.05, 0.5}) {
    const EntityCounts c = EntityCounts::ForScale(f);
    EXPECT_EQ(c.items, c.open_auctions + c.closed_auctions);
  }
}

TEST(XmlGenTest, DeterministicOutput) {
  GeneratorOptions opts;
  opts.scale = 0.001;
  EXPECT_EQ(XmlGen(opts).GenerateToString(), XmlGen(opts).GenerateToString());
}

TEST(XmlGenTest, DifferentSeedsDiffer) {
  GeneratorOptions a, b;
  a.scale = b.scale = 0.001;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(XmlGen(a).GenerateToString(), XmlGen(b).GenerateToString());
}

TEST(XmlGenTest, OutputIsWellFormed) {
  // TestDoc() construction already asserts parseability.
  EXPECT_GT(TestDoc().num_nodes(), 100u);
  EXPECT_EQ(TestDoc().tag(TestDoc().root()), "site");
}

TEST(XmlGenTest, EntityCountsMatchDocument) {
  const auto counts = CountTags(TestDoc());
  const EntityCounts& expect = TestGen().counts();
  EXPECT_EQ(counts.at("person"), expect.persons);
  EXPECT_EQ(counts.at("open_auction"), expect.open_auctions);
  EXPECT_EQ(counts.at("closed_auction"), expect.closed_auctions);
  EXPECT_EQ(counts.at("item"), expect.items);
  EXPECT_EQ(counts.at("category"), expect.categories);
  EXPECT_EQ(counts.at("edge"), expect.edges);
}

TEST(XmlGenTest, SectionOrderFollowsDtd) {
  const xml::Document& doc = TestDoc();
  std::vector<std::string> sections;
  for (auto c = doc.first_child(doc.root()); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    sections.push_back(doc.tag(c));
  }
  EXPECT_EQ(sections,
            (std::vector<std::string>{"regions", "categories", "catgraph",
                                      "people", "open_auctions",
                                      "closed_auctions"}));
}

TEST(XmlGenTest, AllSixContinentsPresent) {
  const xml::Document& doc = TestDoc();
  const auto regions = doc.first_child(doc.root());
  std::vector<std::string> continents;
  for (auto c = doc.first_child(regions); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    continents.push_back(doc.tag(c));
  }
  EXPECT_EQ(continents, (std::vector<std::string>{
                            "africa", "asia", "australia", "europe",
                            "namerica", "samerica"}));
}

// Collects id="..." attribute values and all IDREF attribute values.
struct RefMap {
  std::set<std::string> ids;
  std::vector<std::pair<std::string, std::string>> refs;  // (attr, value)
};

RefMap CollectRefs(const xml::Document& doc) {
  RefMap out;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n)) continue;
    for (const auto& attr : doc.attributes(n)) {
      const std::string name = doc.names().Spelling(attr.name);
      if (name == "id") {
        out.ids.insert(std::string(attr.value));
      } else if (name == "person" || name == "item" || name == "category" ||
                 name == "open_auction" || name == "from" || name == "to") {
        out.refs.emplace_back(name, std::string(attr.value));
      }
    }
  }
  return out;
}

TEST(XmlGenTest, AllReferencesResolve) {
  const RefMap refs = CollectRefs(TestDoc());
  for (const auto& [attr, value] : refs.refs) {
    EXPECT_TRUE(refs.ids.count(value)) << attr << " -> " << value;
  }
}

TEST(XmlGenTest, ReferencesAreTyped) {
  // §4.2: "all instances of an XML element point to the same type".
  const RefMap refs = CollectRefs(TestDoc());
  for (const auto& [attr, value] : refs.refs) {
    if (attr == "person") {
      EXPECT_TRUE(xmark::StartsWith(value, "person")) << value;
    } else if (attr == "item") {
      EXPECT_TRUE(xmark::StartsWith(value, "item")) << value;
    } else if (attr == "category" || attr == "from" || attr == "to") {
      EXPECT_TRUE(xmark::StartsWith(value, "category")) << value;
    } else if (attr == "open_auction") {
      EXPECT_TRUE(xmark::StartsWith(value, "open_auction")) << value;
    }
  }
}

TEST(XmlGenTest, ItemPartitionIsExact) {
  // Every item is referenced by exactly one auction (§4.5's identical-
  // streams trick, realized as a keyed permutation).
  const xml::Document& doc = TestDoc();
  std::multiset<std::string> referenced;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (doc.IsElement(n) && doc.tag(n) == "itemref") {
      referenced.insert(std::string(*doc.attribute(n, "item")));
    }
  }
  const EntityCounts& c = TestGen().counts();
  EXPECT_EQ(static_cast<int64_t>(referenced.size()), c.items);
  for (int64_t k = 0; k < c.items; ++k) {
    EXPECT_EQ(referenced.count("item" + std::to_string(k)), 1u) << k;
  }
}

TEST(XmlGenTest, AccessorsMatchDocumentPartition) {
  const xml::Document& doc = TestDoc();
  const XmlGen& gen = TestGen();
  // Find open auction 0's itemref in the document and cross-check.
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n) || doc.tag(n) != "open_auction") continue;
    const std::string id(*doc.attribute(n, "id"));
    const int64_t j = *xmark::ParseInt(id.substr(strlen("open_auction")));
    for (auto ch = doc.first_child(n); ch != xml::kInvalidNode;
         ch = doc.next_sibling(ch)) {
      if (doc.IsElement(ch) && doc.tag(ch) == "itemref") {
        EXPECT_EQ(std::string(*doc.attribute(ch, "item")),
                  "item" + std::to_string(gen.ItemForOpenAuction(j)));
      }
    }
  }
}

TEST(XmlGenTest, CurrentEqualsInitialPlusIncreases) {
  const xml::Document& doc = TestDoc();
  int auctions_checked = 0;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n) || doc.tag(n) != "open_auction") continue;
    double initial = 0, current = 0, increases = 0;
    for (auto ch = doc.first_child(n); ch != xml::kInvalidNode;
         ch = doc.next_sibling(ch)) {
      if (!doc.IsElement(ch)) continue;
      if (doc.tag(ch) == "initial") {
        initial = *xmark::ParseDouble(doc.StringValue(ch));
      } else if (doc.tag(ch) == "current") {
        current = *xmark::ParseDouble(doc.StringValue(ch));
      } else if (doc.tag(ch) == "bidder") {
        for (auto b = doc.first_child(ch); b != xml::kInvalidNode;
             b = doc.next_sibling(b)) {
          if (doc.IsElement(b) && doc.tag(b) == "increase") {
            increases += *xmark::ParseDouble(doc.StringValue(b));
          }
        }
      }
    }
    EXPECT_NEAR(current, initial + increases, 0.011);
    ++auctions_checked;
  }
  EXPECT_GT(auctions_checked, 0);
}

TEST(XmlGenTest, ConformsToAuctionDtd) {
  auto dtd = xml::Dtd::Parse(xml::kAuctionDtd);
  ASSERT_TRUE(dtd.ok());
  const xml::Document& doc = TestDoc();
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n)) continue;
    const xml::DtdElement* decl = dtd->Find(doc.tag(n));
    ASSERT_NE(decl, nullptr) << "undeclared element " << doc.tag(n);
    // Children must be allowed by the content model.
    for (auto c = doc.first_child(n); c != xml::kInvalidNode;
         c = doc.next_sibling(c)) {
      if (doc.IsElement(c)) {
        EXPECT_TRUE(dtd->AllowsChild(doc.tag(n), doc.tag(c)))
            << doc.tag(c) << " under " << doc.tag(n);
      } else {
        EXPECT_TRUE(decl->pcdata)
            << "unexpected text under " << doc.tag(n);
      }
    }
    // Attributes must be declared.
    for (const auto& attr : doc.attributes(n)) {
      const std::string aname = doc.names().Spelling(attr.name);
      bool declared = false;
      for (const auto& da : decl->attributes) declared |= (da.name == aname);
      EXPECT_TRUE(declared) << aname << " on " << doc.tag(n);
    }
  }
}

TEST(XmlGenTest, SomePersonsLackHomepage) {
  // Q17's premise: the fraction without a homepage is high.
  const xml::Document& doc = TestDoc();
  int with = 0, without = 0;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n) || doc.tag(n) != "person") continue;
    bool has = false;
    for (auto c = doc.first_child(n); c != xml::kInvalidNode;
         c = doc.next_sibling(c)) {
      if (doc.IsElement(c) && doc.tag(c) == "homepage") has = true;
    }
    has ? ++with : ++without;
  }
  EXPECT_GT(without, 0);
  EXPECT_GT(with, 0);
}

TEST(XmlGenTest, DeepProsePathOccurs) {
  // Q15 must have a non-empty result at moderate scale: look for
  // annotation//parlist/listitem/parlist anywhere in a larger document.
  GeneratorOptions opts;
  opts.scale = 0.01;
  auto doc = xml::Document::Parse(XmlGen(opts).GenerateToString());
  ASSERT_TRUE(doc.ok());
  int nested = 0;
  for (xml::NodeId n = 0; n < doc->num_nodes(); ++n) {
    if (!doc->IsElement(n) || doc->tag(n) != "parlist") continue;
    const auto p1 = doc->parent(n);
    if (p1 == xml::kInvalidNode || doc->tag(p1) != "listitem") continue;
    const auto p2 = doc->parent(p1);
    if (p2 != xml::kInvalidNode && doc->tag(p2) == "parlist") ++nested;
  }
  EXPECT_GT(nested, 0);
}

TEST(XmlGenTest, GoldAppearsInDescriptions) {
  // Q14's probe word should hit a sane fraction of item descriptions.
  const xml::Document& doc = TestDoc();
  int with_gold = 0, total = 0;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n) || doc.tag(n) != "item") continue;
    ++total;
    for (auto c = doc.first_child(n); c != xml::kInvalidNode;
         c = doc.next_sibling(c)) {
      if (doc.IsElement(c) && doc.tag(c) == "description" &&
          xmark::Contains(doc.StringValue(c), "gold")) {
        ++with_gold;
      }
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(with_gold, 0);
  EXPECT_LT(with_gold, total);
}

TEST(XmlGenTest, MeasureSizeMatchesActualOutput) {
  GeneratorOptions opts;
  opts.scale = 0.001;
  XmlGen gen(opts);
  EXPECT_EQ(gen.MeasureSize(), gen.GenerateToString().size());
}

TEST(XmlGenTest, ScalingIsApproximatelyLinear) {
  GeneratorOptions small, big;
  small.scale = 0.005;
  big.scale = 0.02;
  const double ratio = static_cast<double>(XmlGen(big).MeasureSize()) /
                       static_cast<double>(XmlGen(small).MeasureSize());
  EXPECT_NEAR(ratio, 4.0, 0.8);
}

TEST(XmlGenTest, GenerateToFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/xmlgen_test_doc.xml";
  GeneratorOptions opts;
  opts.scale = 0.001;
  XmlGen gen(opts);
  ASSERT_TRUE(gen.GenerateToFile(path).ok());
  auto doc = xml::Document::ParseFile(path);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->tag(doc->root()), "site");
  std::remove(path.c_str());
}

TEST(XmlGenTest, SplitModeCoversAllEntities) {
  const std::string dir = ::testing::TempDir() + "/xmlgen_split";
  std::filesystem::create_directories(dir);
  GeneratorOptions opts;
  opts.scale = 0.001;
  XmlGen gen(opts);
  auto files = gen.GenerateSplit(dir, /*entities_per_file=*/10);
  ASSERT_TRUE(files.ok()) << files.status();
  EXPECT_GT(files->size(), 1u);
  std::map<std::string, int> totals;
  for (const std::string& f : *files) {
    auto doc = xml::Document::ParseFile(f);
    ASSERT_TRUE(doc.ok()) << f << ": " << doc.status();
    int top_level = 0;
    for (auto c = doc->first_child(doc->root()); c != xml::kInvalidNode;
         c = doc->next_sibling(c)) {
      if (doc->IsElement(c)) {
        ++top_level;
        ++totals[doc->tag(c)];
      }
    }
    EXPECT_LE(top_level, 10);
  }
  const EntityCounts& c = gen.counts();
  EXPECT_EQ(totals["person"], c.persons);
  EXPECT_EQ(totals["item"], c.items);
  EXPECT_EQ(totals["open_auction"], c.open_auctions);
  EXPECT_EQ(totals["closed_auction"], c.closed_auctions);
  EXPECT_EQ(totals["category"], c.categories);
  std::filesystem::remove_all(dir);
}

TEST(XmlGenTest, SplitModePayloadMatchesSingleDocument) {
  // The split files must contain byte-identical entity payloads (§5: the
  // one-document semantics are normative).
  const std::string dir = ::testing::TempDir() + "/xmlgen_split2";
  std::filesystem::create_directories(dir);
  GeneratorOptions opts;
  opts.scale = 0.001;
  XmlGen gen(opts);
  auto files = gen.GenerateSplit(dir, 1000000);  // one file per section
  ASSERT_TRUE(files.ok());
  // people_0.xml's <people> content equals the single document's section.
  std::string single = gen.GenerateToString();
  const size_t begin = single.find("<people>");
  const size_t end = single.find("</people>");
  ASSERT_NE(begin, std::string::npos);
  std::string section = single.substr(begin, end + 9 - begin);
  for (const std::string& f : *files) {
    if (f.find("people_0.xml") == std::string::npos) continue;
    std::ifstream in(f);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string content = buf.str();
    // Strip trailing newline.
    while (!content.empty() && content.back() == '\n') content.pop_back();
    EXPECT_EQ(content, section);
  }
  std::filesystem::remove_all(dir);
}

TEST(XmlGenTest, Figure3ScaleTableIsExposed) {
  ASSERT_EQ(kFigure3Scales.size(), 4u);
  EXPECT_STREQ(kFigure3Scales[0].name, "tiny");
  EXPECT_DOUBLE_EQ(kFigure3Scales[1].factor, 1.0);
  EXPECT_STREQ(kFigure3Scales[3].nominal_size, "10 GB");
}

TEST(XmlGenTest, IncomeDistributionSupportsQ20Groups) {
  // Q20 groups: >=100000, [30000,100000), <30000, and missing.
  const xml::Document& doc = TestDoc();
  int high = 0, mid = 0, low = 0, missing = 0;
  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n) || doc.tag(n) != "person") continue;
    double income = -1;
    for (auto c = doc.first_child(n); c != xml::kInvalidNode;
         c = doc.next_sibling(c)) {
      if (!doc.IsElement(c) || doc.tag(c) != "profile") continue;
      for (auto pc = doc.first_child(c); pc != xml::kInvalidNode;
           pc = doc.next_sibling(pc)) {
        if (doc.IsElement(pc) && doc.tag(pc) == "income") {
          income = *xmark::ParseDouble(doc.StringValue(pc));
        }
      }
    }
    if (income < 0) {
      ++missing;
    } else if (income >= 100000) {
      ++high;
    } else if (income >= 30000) {
      ++mid;
    } else {
      ++low;
    }
  }
  EXPECT_GT(mid, 0);
  EXPECT_GT(low, 0);
  EXPECT_GT(missing, 0);
  (void)high;  // the >=100000 tail may be empty at tiny scale
}

}  // namespace
}  // namespace xmark::gen
