#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/arena.h"
#include "util/table_printer.h"

namespace xmark {
namespace {

TEST(ParseDoubleTest, ParsesPlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseDouble("42"), 42.0);
  EXPECT_DOUBLE_EQ(*ParseDouble("40.5"), 40.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-3.25"), -3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("  17.50  "), 17.5);
}

TEST(ParseDoubleTest, RejectsNonNumeric) {
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
  EXPECT_FALSE(ParseDouble("12x").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

TEST(ParseIntTest, Basics) {
  EXPECT_EQ(*ParseInt("123"), 123);
  EXPECT_EQ(*ParseInt("-7"), -7);
  EXPECT_FALSE(ParseInt("1.5").has_value());
  EXPECT_FALSE(ParseInt("").has_value());
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  a b \n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t\n "), "");
}

TEST(ContainsTest, SubstringSemantics) {
  EXPECT_TRUE(Contains("pure gold ring", "gold"));
  EXPECT_TRUE(Contains("golden", "gold"));
  EXPECT_FALSE(Contains("silver", "gold"));
  EXPECT_TRUE(Contains("anything", ""));
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("person0", "person"));
  EXPECT_FALSE(StartsWith("person", "person0"));
  EXPECT_TRUE(EndsWith("auction.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", "auction.xml"));
}

TEST(SplitJoinTest, RoundTrip) {
  auto pieces = SplitString("a,b,,c", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(JoinStrings({}, "-"), "");
}

TEST(FormatDoubleTest, IntegersHaveNoPoint) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
}

TEST(XmlEscapeTest, EscapesSpecials) {
  std::string out;
  AppendXmlEscaped(out, "a<b>&\"c\"");
  EXPECT_EQ(out, "a&lt;b&gt;&amp;&quot;c&quot;");
}

TEST(StringPrintfTest, Formats) {
  EXPECT_EQ(StringPrintf("%d-%s", 4, "x"), "4-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.005), "1.00");
}

TEST(ArenaTest, CopiesStringsStably) {
  Arena arena(64);
  std::string src = "hello world";
  std::string_view copy = arena.CopyString(src);
  src.assign("clobbered");
  EXPECT_EQ(copy, "hello world");
}

TEST(ArenaTest, ManySmallAllocations) {
  Arena arena(128);
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    views.push_back(arena.CopyString("chunk" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(views[i], "chunk" + std::to_string(i));
  }
  EXPECT_GT(arena.bytes_reserved(), 0u);
  EXPECT_LE(arena.bytes_used(), arena.bytes_reserved());
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena(16);
  void* p = arena.Allocate(1000);
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), 1000u);
}

TEST(ArenaTest, AlignmentRespected) {
  Arena arena;
  for (int i = 0; i < 10; ++i) {
    arena.Allocate(1, 1);
    void* p = arena.Allocate(8, 8);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"System", "Size"});
  t.AddRow({"A", "241 MB"});
  t.AddRow({"Longname", "1 MB"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("System   | Size"), std::string::npos);
  EXPECT_NE(out.find("A        | 241 MB"), std::string::npos);
}

TEST(TablePrinterTest, PadsMissingCells) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("1"), std::string::npos);
}

}  // namespace
}  // namespace xmark
