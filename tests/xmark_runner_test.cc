#include "xmark/runner.h"

#include <gtest/gtest.h>

#include "xmark/result_check.h"

namespace xmark::bench {
namespace {

BenchmarkRunner& SharedRunner() {
  static BenchmarkRunner* const kRunner = new BenchmarkRunner(0.002);
  return *kRunner;
}

TEST(RunnerTest, GeneratesDocumentOnce) {
  BenchmarkRunner& runner = SharedRunner();
  EXPECT_GT(runner.document().size(), 10000u);
  EXPECT_DOUBLE_EQ(runner.scale(), 0.002);
}

TEST(RunnerTest, LoadRecordsTable1Metrics) {
  BenchmarkRunner& runner = SharedRunner();
  ASSERT_TRUE(runner.LoadSystem(SystemId::kA).ok());
  const LoadInfo& info = runner.load_info(SystemId::kA);
  EXPECT_GT(info.bulkload_ms, 0.0);
  EXPECT_GT(info.database_bytes, 0u);
  EXPECT_EQ(info.catalog_entries, 2u);  // edge + attr relations
}

TEST(RunnerTest, RunQueryReportsPhases) {
  BenchmarkRunner& runner = SharedRunner();
  auto timing = runner.RunQuery(SystemId::kD, 1, /*repetitions=*/2);
  ASSERT_TRUE(timing.ok()) << timing.status();
  EXPECT_EQ(timing->query, 1);
  EXPECT_EQ(timing->system, SystemId::kD);
  EXPECT_GE(timing->compile.wall_ms, 0.0);
  EXPECT_GE(timing->execute.wall_ms, 0.0);
  EXPECT_EQ(timing->result_items, 1u);  // Q1 returns one name
  EXPECT_GT(timing->total_ms(), 0.0);
}

TEST(RunnerTest, RunQueryValidatesQueryNumber) {
  // GetQuery CHECKs on out-of-range numbers; valid edge numbers work.
  BenchmarkRunner& runner = SharedRunner();
  EXPECT_TRUE(runner.RunQuery(SystemId::kD, 20).ok());
}

TEST(ResultCheckTest, IdenticalResultsEquivalent) {
  query::Sequence a{query::Item(1.0), query::Item(std::string("x"))};
  query::Sequence b{query::Item(1.0), query::Item(std::string("x"))};
  EXPECT_TRUE(ResultsEquivalent(a, b));
}

TEST(ResultCheckTest, CardinalityMismatchExplained) {
  query::Sequence a{query::Item(1.0)};
  query::Sequence b{};
  EquivalenceOptions options;
  const std::string diff = ExplainDifference(a, b, options);
  EXPECT_NE(diff.find("cardinality"), std::string::npos);
}

TEST(ResultCheckTest, ItemDifferenceExplained) {
  query::Sequence a{query::Item(std::string("left"))};
  query::Sequence b{query::Item(std::string("right"))};
  EquivalenceOptions options;
  const std::string diff = ExplainDifference(a, b, options);
  EXPECT_NE(diff.find("item 0"), std::string::npos);
}

TEST(ResultCheckTest, AttributeOrderCanonicalized) {
  auto e1 = std::make_shared<query::ConstructedNode>();
  e1->tag = "a";
  e1->attributes = {{"x", "1"}, {"y", "2"}};
  auto e2 = std::make_shared<query::ConstructedNode>();
  e2->tag = "a";
  e2->attributes = {{"y", "2"}, {"x", "1"}};
  query::Sequence a{query::Item(query::ConstructedPtr(e1))};
  query::Sequence b{query::Item(query::ConstructedPtr(e2))};
  EquivalenceOptions options;
  EXPECT_TRUE(ResultsEquivalent(a, b, options));
  options.canonical_attributes = false;
  EXPECT_FALSE(ResultsEquivalent(a, b, options));
}

TEST(ResultCheckTest, UnorderedComparison) {
  query::Sequence a{query::Item(std::string("x")),
                    query::Item(std::string("y"))};
  query::Sequence b{query::Item(std::string("y")),
                    query::Item(std::string("x"))};
  EquivalenceOptions ordered;
  EXPECT_FALSE(ResultsEquivalent(a, b, ordered));
  EquivalenceOptions unordered;
  unordered.ignore_item_order = true;
  EXPECT_TRUE(ResultsEquivalent(a, b, unordered));
}

TEST(RunnerTest, EmbeddedSystemGReloadsPerQuery) {
  // System G's execute phase includes the document load: its Q1 must cost
  // materially more than D's on the same document.
  BenchmarkRunner& runner = SharedRunner();
  auto g = runner.RunQuery(SystemId::kG, 1, 2);
  auto d = runner.RunQuery(SystemId::kD, 1, 2);
  ASSERT_TRUE(g.ok() && d.ok());
  EXPECT_GT(g->execute.wall_ms, d->execute.wall_ms * 5);
}

}  // namespace
}  // namespace xmark::bench
