// Bulkload determinism: loading the same document with threads ∈ {1,2,8}
// must produce byte-identical stores on every mapping — the serial path
// (threads=1) is the reference — and byte-identical Q1-Q20 results.
// This is the acceptance property of the parallel bulkload pipeline: the
// chunked parallel parse, the partitioned sorts and the concurrent index
// builds may never let worker count or scheduling leak into the data.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/value.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::store {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 8};

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions opts;
    opts.scale = 0.005;
    return new std::string(gen::XmlGen(opts).GenerateToString());
  }();
  return *kDoc;
}

template <typename LoadFn>
void ExpectDumpsIdentical(const char* name, LoadFn load) {
  std::string reference;
  for (const unsigned threads : kThreadCounts) {
    auto store = load(LoadOptions{threads});
    ASSERT_TRUE(store.ok()) << name << " threads=" << threads << ": "
                            << store.status().ToString();
    std::string dump;
    (*store)->DumpState(&dump);
    if (threads == 1) {
      reference = std::move(dump);
      ASSERT_FALSE(reference.empty());
      continue;
    }
    // EXPECT_EQ on multi-MB strings prints unreadable diffs; compare
    // explicitly and report the first divergent byte.
    if (dump != reference) {
      size_t i = 0;
      while (i < std::min(dump.size(), reference.size()) &&
             dump[i] == reference[i]) {
        ++i;
      }
      FAIL() << name << " threads=" << threads
             << " diverges from the serial load at byte " << i << " (sizes "
             << reference.size() << " vs " << dump.size() << ")";
    }
  }
}

TEST(BulkloadDeterminismTest, EdgeStoreDumps) {
  ExpectDumpsIdentical("edge", [](const LoadOptions& o) {
    return EdgeStore::Load(TestDocument(), o);
  });
}

TEST(BulkloadDeterminismTest, FragmentedStoreDumps) {
  ExpectDumpsIdentical("fragmented", [](const LoadOptions& o) {
    return FragmentedStore::Load(TestDocument(), o);
  });
}

TEST(BulkloadDeterminismTest, InlinedStoreDumps) {
  ExpectDumpsIdentical("inlined", [](const LoadOptions& o) {
    return InlinedStore::Load(TestDocument(), xml::kAuctionDtd, o);
  });
}

TEST(BulkloadDeterminismTest, DomStoreDumps) {
  ExpectDumpsIdentical("dom", [](const LoadOptions& o) {
    DomStore::Options full;
    return DomStore::Load(TestDocument(), full, o);
  });
}

// Q1-Q20 byte-parity across thread counts, through the full engine
// plumbing (Engine::set_load_options -> store Load).
class BulkloadQueryParityTest
    : public ::testing::TestWithParam<bench::SystemId> {};

TEST_P(BulkloadQueryParityTest, QueriesByteIdenticalAcrossThreadCounts) {
  const bench::SystemId id = GetParam();
  std::map<unsigned, std::unique_ptr<bench::Engine>> engines;
  for (const unsigned threads : kThreadCounts) {
    auto engine = bench::Engine::Create(id);
    engine->set_load_options(LoadOptions{threads});
    ASSERT_TRUE(engine->Load(TestDocument()).ok());
    engines[threads] = std::move(engine);
  }
  for (int q = 1; q <= 20; ++q) {
    std::string reference;
    for (const unsigned threads : kThreadCounts) {
      auto result = engines[threads]->Run(bench::GetQuery(q).text);
      ASSERT_TRUE(result.ok()) << "Q" << q << " threads=" << threads;
      const std::string serialized = query::SerializeSequence(*result);
      if (threads == 1) {
        reference = serialized;
      } else {
        EXPECT_EQ(serialized, reference)
            << "system " << bench::SystemLabel(id) << " Q" << q
            << " threads=" << threads << " diverges from the serial load";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStores, BulkloadQueryParityTest,
                         ::testing::Values(bench::SystemId::kA,
                                           bench::SystemId::kB,
                                           bench::SystemId::kC,
                                           bench::SystemId::kD));

}  // namespace
}  // namespace xmark::store
