// Differential harness for the document catalog.
//
// Ground truth is the single-document engine the paper's benchmarks run:
// one catalog holding K documents and queried through doc("id") must be
// byte-identical to K independent engines each loaded with one document,
// across every physical mapping, Q1-Q20 and ingest thread counts; a
// collection() query must equal the deterministic concatenation of the
// per-document results in document-id order. Edge cases — empty catalog,
// duplicate ids, drop-then-requery against a warm plan cache, mixed-size
// corpora — ride in the same binary so the sanitizer matrix covers them.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "gen/generator.h"
#include "query/value.h"
#include "store/document_catalog.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::bench {
namespace {

// The four physical mappings: A=edge, B=fragmented, C=inlined, D=dom.
constexpr SystemId kStores[] = {SystemId::kA, SystemId::kB, SystemId::kC,
                                SystemId::kD};

// Distinct (scale, seed) per document so per-document results differ —
// a routing bug cannot cancel out in the comparison. Ids are chosen
// already sorted: catalog order == declaration order.
struct CorpusSpec {
  const char* id;
  double scale;
  uint64_t seed;
};
constexpr CorpusSpec kCorpus[] = {
    {"doc-a.xml", 0.004, 7},
    {"doc-b.xml", 0.007, 11},
    {"doc-c.xml", 0.010, 42},
};
constexpr size_t kCorpusSize = sizeof(kCorpus) / sizeof(kCorpus[0]);

std::string GenerateDocument(double scale, uint64_t seed) {
  gen::GeneratorOptions opts;
  opts.scale = scale;
  opts.seed = seed;
  return gen::XmlGen(opts).GenerateToString();
}

const std::vector<store::CorpusDocument>& CorpusDocs() {
  static const std::vector<store::CorpusDocument>* const kDocs = [] {
    auto* docs = new std::vector<store::CorpusDocument>();
    for (const CorpusSpec& spec : kCorpus) {
      store::CorpusDocument doc;
      doc.id = spec.id;
      doc.xml = GenerateDocument(spec.scale, spec.seed);
      docs->push_back(std::move(doc));
    }
    return docs;
  }();
  return *kDocs;
}

// Replaces every `document("auction.xml")` entry call of a benchmark
// query with `replacement` (e.g. `doc("doc-b.xml")` or `collection()`).
std::string RewriteEntryCalls(std::string_view query_text,
                              std::string_view replacement) {
  constexpr std::string_view kNeedle = "document(\"auction.xml\")";
  std::string out;
  size_t pos = 0;
  while (true) {
    const size_t hit = query_text.find(kNeedle, pos);
    if (hit == std::string_view::npos) break;
    out.append(query_text.substr(pos, hit - pos));
    out.append(replacement);
    pos = hit + kNeedle.size();
  }
  XMARK_CHECK(pos > 0);  // every benchmark query is rooted
  out.append(query_text.substr(pos));
  return out;
}

// One single-document reference engine per (system, corpus slot).
Engine* ReferenceEngine(SystemId id, size_t slot) {
  static std::map<std::pair<SystemId, size_t>,
                  std::unique_ptr<Engine>>* const kEngines =
      new std::map<std::pair<SystemId, size_t>, std::unique_ptr<Engine>>();
  auto key = std::make_pair(id, slot);
  auto it = kEngines->find(key);
  if (it == kEngines->end()) {
    auto engine = Engine::Create(id);
    XMARK_CHECK(engine->Load(CorpusDocs()[slot].xml).ok());
    it = kEngines->emplace(key, std::move(engine)).first;
  }
  return it->second.get();
}

// One catalog engine per (system, ingest thread count), loaded with the
// whole corpus in a single parallel LoadCorpus.
Engine* CatalogEngine(SystemId id, unsigned threads) {
  static std::map<std::pair<SystemId, unsigned>,
                  std::unique_ptr<Engine>>* const kEngines =
      new std::map<std::pair<SystemId, unsigned>, std::unique_ptr<Engine>>();
  auto key = std::make_pair(id, threads);
  auto it = kEngines->find(key);
  if (it == kEngines->end()) {
    auto engine = Engine::Create(id);
    store::LoadOptions load;
    load.threads = threads;
    engine->set_load_options(load);
    XMARK_CHECK(engine->LoadCorpus(CorpusDocs()).ok());
    it = kEngines->emplace(key, std::move(engine)).first;
  }
  return it->second.get();
}

std::string RunSerialized(Engine* engine, std::string_view query_text) {
  auto result = engine->Run(query_text);
  if (!result.ok()) {
    ADD_FAILURE() << "query failed: " << result.status().message();
    return "<error: " + result.status().message() + ">";
  }
  return SerializeSequence(*result);
}

class CatalogParityTest : public ::testing::TestWithParam<int> {};

// doc("id") against a K-document catalog == the single-document engine
// holding that document, byte for byte, for every mapping and ingest
// thread count.
TEST_P(CatalogParityTest, DocScopeMatchesSingleDocumentEngine) {
  const int query = GetParam();
  for (SystemId id : kStores) {
    for (size_t slot = 0; slot < kCorpusSize; ++slot) {
      const std::string reference =
          RunSerialized(ReferenceEngine(id, slot), GetQuery(query).text);
      const std::string scoped = RewriteEntryCalls(
          GetQuery(query).text,
          std::string("doc(\"") + kCorpus[slot].id + "\")");
      for (unsigned threads : {1u, 4u}) {
        EXPECT_EQ(RunSerialized(CatalogEngine(id, threads), scoped),
                  reference)
            << "system " << SystemLabel(id) << " Q" << query << " doc "
            << kCorpus[slot].id << " ingest-threads " << threads;
      }
    }
  }
}

// collection() == concatenation of the per-document results in document-id
// order. The oracle concatenates Items (not serialized strings): the
// serializer's separator depends on atom adjacency at document boundaries,
// so a string-level concat would not be the same oracle.
TEST_P(CatalogParityTest, CollectionScopeMatchesConcatenationOracle) {
  const int query = GetParam();
  for (SystemId id : kStores) {
    query::Sequence combined;
    for (size_t slot = 0; slot < kCorpusSize; ++slot) {
      auto result = ReferenceEngine(id, slot)->Run(GetQuery(query).text);
      ASSERT_TRUE(result.ok()) << result.status().message();
      for (query::Item& item : *result) combined.push_back(std::move(item));
    }
    const std::string reference = SerializeSequence(combined);
    const std::string rewritten =
        RewriteEntryCalls(GetQuery(query).text, "collection()");
    for (unsigned threads : {1u, 4u}) {
      EXPECT_EQ(RunSerialized(CatalogEngine(id, threads), rewritten),
                reference)
          << "system " << SystemLabel(id) << " Q" << query
          << " ingest-threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CatalogParityTest,
                         ::testing::Range(1, 21));

// --------------------------------------------------------------------------
// Edge cases
// --------------------------------------------------------------------------

TEST(CatalogEdgeTest, EmptyCatalogQueriesFailCoded) {
  auto engine = Engine::Create(SystemId::kD);
  for (const char* text :
       {"for $x in doc(\"a.xml\")/site return $x",
        "for $x in collection()/site return $x",
        "for $x in document(\"auction.xml\")/site return $x"}) {
    auto result = engine->Run(text);
    ASSERT_FALSE(result.ok()) << text;
    EXPECT_EQ(result.status().code(), StatusCode::kNotFound) << text;
    EXPECT_NE(result.status().message().find("[empty-catalog]"),
              std::string::npos)
        << result.status().message();
  }
  EXPECT_TRUE(engine->ListDocuments().empty());
  EXPECT_EQ(engine->DocumentCount(), 0u);
}

TEST(CatalogEdgeTest, DuplicateAndEmptyIdsRejectedCoded) {
  const std::string xml = GenerateDocument(0.001, 3);
  auto engine = Engine::Create(SystemId::kA);
  ASSERT_TRUE(engine->LoadDocument("dup.xml", xml).ok());

  Status dup = engine->LoadDocument("dup.xml", xml);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.message().find("[duplicate-document-id]"),
            std::string::npos)
      << dup.message();

  // Within-batch duplicates are rejected before any store is built, and
  // the batch is all-or-nothing: nothing from it lands in the catalog.
  std::vector<store::CorpusDocument> batch(2);
  batch[0].id = "same.xml";
  batch[0].xml = xml;
  batch[1].id = "same.xml";
  batch[1].xml = xml;
  Status batch_dup = engine->LoadCorpus(batch);
  ASSERT_FALSE(batch_dup.ok());
  EXPECT_EQ(batch_dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(batch_dup.message().find("[duplicate-document-id]"),
            std::string::npos);
  EXPECT_EQ(engine->DocumentCount(), 1u);

  Status empty_id = engine->LoadDocument("", xml);
  ASSERT_FALSE(empty_id.ok());
  EXPECT_EQ(empty_id.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(empty_id.message().find("[empty-document-id]"),
            std::string::npos);
}

// Dropping a document invalidates doc() routing immediately; plan-cache
// entries compiled against the dropped store become unreachable (store
// uids are never recycled) and a re-added document under the same id gets
// a fresh store — queries see the new content, never the stale entry.
TEST(CatalogEdgeTest, DropThenRequeryMissesCleanly) {
  const std::string first = GenerateDocument(0.002, 5);
  const std::string second = GenerateDocument(0.002, 6);
  const std::string keeper = GenerateDocument(0.002, 9);
  ASSERT_NE(first, second);

  auto engine = Engine::Create(SystemId::kB);
  ASSERT_TRUE(engine->LoadDocument("victim.xml", first).ok());
  ASSERT_TRUE(engine->LoadDocument("keeper.xml", keeper).ok());

  const std::string victim_q =
      "for $p in doc(\"victim.xml\")/site/people/person return $p/name";
  const std::string keeper_q =
      "for $p in doc(\"keeper.xml\")/site/people/person return $p/name";

  // Warm the plan cache through the serving path.
  auto session = engine->CreateSession();
  ASSERT_TRUE(session.ok());
  auto warm = (*session)->Run(victim_q);
  ASSERT_TRUE(warm.ok());
  const std::string first_result = SerializeSequence(*warm);
  ASSERT_TRUE((*session)->Run(keeper_q).ok());

  ASSERT_TRUE(engine->DropDocument("victim.xml").ok());
  auto gone = (*session)->Run(victim_q);
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
  EXPECT_NE(gone.status().message().find("[unknown-document]"),
            std::string::npos)
      << gone.status().message();

  Status drop_again = engine->DropDocument("victim.xml");
  ASSERT_FALSE(drop_again.ok());
  EXPECT_EQ(drop_again.code(), StatusCode::kNotFound);

  // Sibling documents keep serving through the warm cache.
  ASSERT_TRUE((*session)->Run(keeper_q).ok());

  // Re-add under the same id with different content: the stale cache
  // entry (old store uid) must not resurface.
  ASSERT_TRUE((*session)->LoadDocument("victim.xml", second).ok());
  auto requeried = (*session)->Run(victim_q);
  ASSERT_TRUE(requeried.ok());

  auto oracle = Engine::Create(SystemId::kB);
  ASSERT_TRUE(oracle->Load(second).ok());
  auto expected = oracle->Run(
      "for $p in document(\"auction.xml\")/site/people/person "
      "return $p/name");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(SerializeSequence(*requeried), SerializeSequence(*expected));
  EXPECT_NE(SerializeSequence(*requeried), first_result);
}

// One sf=0.05 document among many tiny ones: the parallel ingest stages
// unevenly sized bulkloads, and routing still binds each id exactly.
TEST(CatalogEdgeTest, MixedSizeCorpus) {
  std::vector<store::CorpusDocument> docs;
  store::CorpusDocument big;
  big.id = "big.xml";
  big.xml = GenerateDocument(0.05, 17);
  docs.push_back(std::move(big));
  for (int i = 0; i < 6; ++i) {
    store::CorpusDocument tiny;
    tiny.id = "tiny-" + std::to_string(i) + ".xml";
    tiny.xml = GenerateDocument(0.001, 100 + i);
    docs.push_back(std::move(tiny));
  }

  auto engine = Engine::Create(SystemId::kC);
  store::LoadOptions load;
  load.threads = 4;
  engine->set_load_options(load);
  ASSERT_TRUE(engine->LoadCorpus(docs).ok());
  ASSERT_EQ(engine->DocumentCount(), docs.size());

  auto oracle = Engine::Create(SystemId::kC);
  ASSERT_TRUE(oracle->Load(docs[0].xml).ok());
  const std::string big_q = RewriteEntryCalls(GetQuery(1).text,
                                              "doc(\"big.xml\")");
  EXPECT_EQ(RunSerialized(engine.get(), big_q),
            RunSerialized(oracle.get(), GetQuery(1).text));

  // collection() spans all 7 documents: one root element each.
  auto roots = engine->Run("for $s in collection()/site return $s/@id");
  ASSERT_TRUE(roots.ok());
  auto count = engine->Run(
      "count(for $p in collection()/site/people/person return $p)");
  ASSERT_TRUE(count.ok());
  // Per-document evaluation: one count per document, in id order.
  EXPECT_EQ(count->size(), docs.size());
}

// The CI ingest-determinism gate in test form: an 8-document corpus
// loaded with 1, 2 and 8 ingest threads dumps byte-identical catalog
// state (document order, global id ranges, per-store layout) on every
// mapping.
TEST(CatalogEdgeTest, IngestDeterministicAcrossThreadCounts) {
  std::vector<store::CorpusDocument> docs;
  for (int i = 0; i < 8; ++i) {
    store::CorpusDocument doc;
    doc.id = "d" + std::to_string(i) + ".xml";
    doc.xml = GenerateDocument(0.002, 200 + i);
    docs.push_back(std::move(doc));
  }
  for (SystemId id : kStores) {
    std::string reference;
    for (unsigned threads : {1u, 2u, 8u}) {
      auto engine = Engine::Create(id);
      store::LoadOptions load;
      load.threads = threads;
      engine->set_load_options(load);
      ASSERT_TRUE(engine->LoadCorpus(docs).ok());
      std::string dump;
      engine->DumpCatalogState(&dump);
      if (threads == 1u) {
        reference = std::move(dump);
        ASSERT_FALSE(reference.empty());
      } else {
        EXPECT_EQ(dump, reference)
            << "system " << SystemLabel(id) << " ingest with " << threads
            << " threads diverged from single-threaded ingest";
      }
    }
  }
}

// Multi-document scope conflicts are a static, coded compile error.
TEST(CatalogEdgeTest, ConflictingScopesRejected) {
  auto engine = Engine::Create(SystemId::kA);
  ASSERT_TRUE(engine->LoadDocument("a.xml", GenerateDocument(0.001, 1))
                  .ok());
  auto conflict = engine->Run(
      "for $x in doc(\"a.xml\")/site, $y in collection()/site "
      "return $x");
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(conflict.status().message().find("[multi-document-scope]"),
            std::string::npos)
      << conflict.status().message();
}

// Explain must name the document scope the plan binds — doc()/collection()
// routing is part of the plan's observable surface, not a hidden rewrite.
TEST(CatalogEdgeTest, ExplainRendersScopeAndCatalog) {
  auto engine = Engine::Create(SystemId::kD);
  std::vector<store::CorpusDocument> docs;
  for (int i = 0; i < 2; ++i) {
    store::CorpusDocument doc;
    doc.id = "ex-" + std::to_string(i) + ".xml";
    doc.xml = GenerateDocument(0.001, 60 + i);
    docs.push_back(std::move(doc));
  }
  ASSERT_TRUE(engine->LoadCorpus(docs).ok());

  auto coll = engine->Explain("count(collection()/site)");
  ASSERT_TRUE(coll.ok()) << coll.status().message();
  EXPECT_NE(coll->find("scope: collection"), std::string::npos) << *coll;
  EXPECT_NE(coll->find("catalog: documents=2"), std::string::npos) << *coll;

  auto scoped = engine->Explain("count(doc(\"ex-1.xml\")/site)");
  ASSERT_TRUE(scoped.ok()) << scoped.status().message();
  EXPECT_NE(scoped->find("scope: doc(ex-1.xml)"), std::string::npos)
      << *scoped;

  auto plain = engine->Explain("count(doc(\"ex-0.xml\")//item)");
  ASSERT_TRUE(plain.ok());
  EXPECT_NE(plain->find("scope: doc(ex-0.xml)"), std::string::npos);
}

// System G (embedded, reload-per-query) stays single-document.
TEST(CatalogEdgeTest, EmbeddedEngineRejectsCorpora) {
  auto engine = Engine::Create(SystemId::kG);
  ASSERT_TRUE(engine->Load(GenerateDocument(0.001, 2)).ok());
  Status more = engine->LoadDocument("extra.xml", GenerateDocument(0.001, 3));
  ASSERT_FALSE(more.ok());
  EXPECT_EQ(more.code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace xmark::bench
