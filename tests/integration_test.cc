// End-to-end invariants across the whole stack: generator -> parser ->
// stores -> query processor, checked across scales and seeds.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "query/value.h"
#include "util/string_util.h"
#include "xmark/engine.h"
#include "xmark/queries.h"
#include "xml/serializer.h"

namespace xmark {
namespace {

using bench::Engine;
using bench::GetQuery;
using bench::SystemId;

std::unique_ptr<Engine> LoadEngine(SystemId id, double scale, uint64_t seed) {
  gen::GeneratorOptions options;
  options.scale = scale;
  options.seed = seed;
  auto engine = Engine::Create(id);
  const Status st = engine->Load(gen::XmlGen(options).GenerateToString());
  EXPECT_TRUE(st.ok()) << st;
  return engine;
}

double NumberResult(Engine& engine, std::string_view query) {
  auto result = engine.Run(query);
  EXPECT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->size(), 1u);
  return result->front().number();
}

TEST(IntegrationTest, QueryCardinalitiesMatchGeneratorModel) {
  gen::GeneratorOptions options;
  options.scale = 0.005;
  gen::XmlGen gen(options);
  auto engine = Engine::Create(SystemId::kD);
  ASSERT_TRUE(engine->Load(gen.GenerateToString()).ok());

  EXPECT_EQ(NumberResult(*engine, "count(//person)"),
            static_cast<double>(gen.counts().persons));
  EXPECT_EQ(NumberResult(*engine, "count(//open_auction)"),
            static_cast<double>(gen.counts().open_auctions));
  EXPECT_EQ(NumberResult(*engine, "count(//closed_auction)"),
            static_cast<double>(gen.counts().closed_auctions));
  // Q6's invariant: items on all continents == open + closed auctions.
  EXPECT_EQ(NumberResult(*engine, "count(/site/regions//item)"),
            static_cast<double>(gen.counts().items));
}

TEST(IntegrationTest, Q17FractionTracksHomepageProbability) {
  // ~50% of persons lack a homepage (the "rather high" fraction of §6.11).
  auto engine = LoadEngine(SystemId::kD, 0.01, 42);
  auto result = engine->Run(GetQuery(17).text);
  ASSERT_TRUE(result.ok());
  const double fraction = static_cast<double>(result->size()) /
                          gen::EntityCounts::ForScale(0.01).persons;
  EXPECT_GT(fraction, 0.35);
  EXPECT_LT(fraction, 0.65);
}

TEST(IntegrationTest, Q5SelectivityTracksPriceDistribution) {
  // price ~ 1 + Exp(mean 80): P(price >= 40) ~ exp(-39/80) ~ 0.61.
  auto engine = LoadEngine(SystemId::kD, 0.01, 42);
  auto result = engine->Run(GetQuery(5).text);
  ASSERT_TRUE(result.ok());
  const double count = result->front().number();
  const double fraction =
      count / gen::EntityCounts::ForScale(0.01).closed_auctions;
  EXPECT_GT(fraction, 0.45);
  EXPECT_LT(fraction, 0.75);
}

TEST(IntegrationTest, Q2ReturnsOneIncreasePerAuction) {
  auto engine = LoadEngine(SystemId::kD, 0.005, 42);
  auto result = engine->Run(GetQuery(2).text);
  ASSERT_TRUE(result.ok());
  // One constructed <increase> element per open auction (possibly empty).
  EXPECT_EQ(result->size(),
            static_cast<size_t>(gen::EntityCounts::ForScale(0.005)
                                    .open_auctions));
}

TEST(IntegrationTest, Q19IsSorted) {
  auto engine = LoadEngine(SystemId::kD, 0.005, 42);
  auto result = engine->Run(GetQuery(19).text);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->size(), 10u);
  std::string prev;
  for (const query::Item& item : *result) {
    ASSERT_TRUE(item.is_constructed());
    const std::string location = query::ConstructedStringValue(
        *item.constructed());
    EXPECT_LE(prev, location);
    prev = location;
  }
}

TEST(IntegrationTest, Q20GroupsPartitionAllPersons) {
  auto engine = LoadEngine(SystemId::kD, 0.01, 42);
  auto result = engine->Run(GetQuery(20).text);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  // <result><preferred>a</preferred><standard>b</standard>... — the four
  // groups partition the person set.
  const auto& root = *result->front().constructed();
  double total = 0;
  ASSERT_EQ(root.children.size(), 4u);
  for (const query::Item& child : root.children) {
    const auto value =
        ParseDouble(query::ConstructedStringValue(*child.constructed()));
    ASSERT_TRUE(value.has_value());
    total += *value;
  }
  EXPECT_EQ(total, gen::EntityCounts::ForScale(0.01).persons);
}

TEST(IntegrationTest, Q18ConvertsEveryReserve) {
  auto engine = LoadEngine(SystemId::kD, 0.005, 42);
  auto result = engine->Run(GetQuery(18).text);
  ASSERT_TRUE(result.ok());
  for (const query::Item& item : *result) {
    ASSERT_TRUE(item.is_number());
    EXPECT_GT(item.number(), 0.0);
  }
}

TEST(IntegrationTest, ResultsStableAcrossSeedsInShape) {
  // Different seeds give different documents but the same structural
  // cardinalities (counts are seed-independent).
  auto e1 = LoadEngine(SystemId::kD, 0.005, 1);
  auto e2 = LoadEngine(SystemId::kD, 0.005, 2);
  EXPECT_EQ(NumberResult(*e1, "count(//person)"),
            NumberResult(*e2, "count(//person)"));
  EXPECT_EQ(NumberResult(*e1, "count(//item)"),
            NumberResult(*e2, "count(//item)"));
  // But the content differs.
  auto r1 = e1->Run(GetQuery(1).text);
  auto r2 = e2->Run(GetQuery(1).text);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(query::SerializeSequence(*r1), query::SerializeSequence(*r2));
}

TEST(IntegrationTest, SerializerRoundTripsGeneratedDocument) {
  gen::GeneratorOptions options;
  options.scale = 0.002;
  const std::string original = gen::XmlGen(options).GenerateToString();
  auto doc = xml::Document::Parse(original);
  ASSERT_TRUE(doc.ok());
  const std::string once = xml::SerializeDocument(*doc);
  auto doc2 = xml::Document::Parse(once);
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(xml::SerializeDocument(*doc2), once);
  EXPECT_EQ(doc->num_nodes(), doc2->num_nodes());
}

TEST(IntegrationTest, ScalingPreservesQueryShape) {
  // Result cardinalities scale roughly linearly with the factor for the
  // per-entity queries.
  auto small = LoadEngine(SystemId::kD, 0.005, 42);
  auto large = LoadEngine(SystemId::kD, 0.02, 42);
  for (int q : {2, 8, 11, 17}) {
    auto rs = small->Run(GetQuery(q).text);
    auto rl = large->Run(GetQuery(q).text);
    ASSERT_TRUE(rs.ok() && rl.ok()) << q;
    const double ratio =
        static_cast<double>(rl->size()) / static_cast<double>(rs->size());
    EXPECT_GT(ratio, 2.5) << "Q" << q;
    EXPECT_LT(ratio, 6.5) << "Q" << q;
  }
}

}  // namespace
}  // namespace xmark
