#include "query/lexer.h"

#include <gtest/gtest.h>

namespace xmark::query {
namespace {

std::vector<Token> LexAll(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> out;
  while (true) {
    auto tok = lexer.Next();
    EXPECT_TRUE(tok.ok()) << tok.status();
    if (!tok.ok() || tok->kind == TokenKind::kEof) break;
    out.push_back(*tok);
  }
  return out;
}

TEST(LexerTest, Identifiers) {
  auto toks = LexAll("for person local:convert zero-or-one open_auction");
  ASSERT_EQ(toks.size(), 5u);
  for (const Token& t : toks) EXPECT_EQ(t.kind, TokenKind::kIdent);
  EXPECT_EQ(toks[2].text, "local:convert");
  EXPECT_EQ(toks[3].text, "zero-or-one");
}

TEST(LexerTest, Variables) {
  auto toks = LexAll("$b $person0 $pr1");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokenKind::kVar);
  EXPECT_EQ(toks[0].text, "b");
  EXPECT_EQ(toks[2].text, "pr1");
}

TEST(LexerTest, Strings) {
  auto toks = LexAll("\"person0\" 'single' \"with \"\"escaped\"\"\"");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "person0");
  EXPECT_EQ(toks[1].text, "single");
  EXPECT_EQ(toks[2].text, "with \"escaped\"");
}

TEST(LexerTest, Numbers) {
  auto toks = LexAll("40 5000 0.02 2.20371 1e3");
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_DOUBLE_EQ(toks[0].number, 40);
  EXPECT_DOUBLE_EQ(toks[2].number, 0.02);
  EXPECT_DOUBLE_EQ(toks[3].number, 2.20371);
  EXPECT_DOUBLE_EQ(toks[4].number, 1000);
}

TEST(LexerTest, PathOperators) {
  auto toks = LexAll("/site//item/@id");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokenKind::kSlash);
  EXPECT_EQ(toks[2].kind, TokenKind::kSlashSlash);
  EXPECT_EQ(toks[4].kind, TokenKind::kSlash);
  EXPECT_EQ(toks[5].kind, TokenKind::kAt);
}

TEST(LexerTest, ComparisonOperators) {
  auto toks = LexAll("= != < <= > >= << >> :=");
  ASSERT_EQ(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, TokenKind::kEq);
  EXPECT_EQ(toks[1].kind, TokenKind::kNe);
  EXPECT_EQ(toks[2].kind, TokenKind::kLt);
  EXPECT_EQ(toks[3].kind, TokenKind::kLe);
  EXPECT_EQ(toks[4].kind, TokenKind::kGt);
  EXPECT_EQ(toks[5].kind, TokenKind::kGe);
  EXPECT_EQ(toks[6].kind, TokenKind::kLtLt);
  EXPECT_EQ(toks[7].kind, TokenKind::kGtGt);
  EXPECT_EQ(toks[8].kind, TokenKind::kAssign);
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = LexAll("a (: comment (: nested :) still :) b");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(LexerTest, ErrorOnUnterminatedString) {
  Lexer lexer("\"oops");
  auto tok = lexer.Next();
  EXPECT_FALSE(tok.ok());
}

TEST(LexerTest, ErrorOnBareDollar) {
  Lexer lexer("$ x");
  EXPECT_FALSE(lexer.Next().ok());
}

TEST(LexerTest, PositionsTrackSource) {
  Lexer lexer("ab cd");
  auto t1 = lexer.Next();
  auto t2 = lexer.Next();
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(t1->begin, 0u);
  EXPECT_EQ(t1->end, 2u);
  EXPECT_EQ(t2->begin, 3u);
  EXPECT_EQ(t2->end, 5u);
}

TEST(LexerTest, SetPositionRewinds) {
  Lexer lexer("one two");
  auto t1 = lexer.Next();
  ASSERT_TRUE(t1.ok());
  const size_t pos = lexer.position();
  auto t2 = lexer.Next();
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->text, "two");
  lexer.SetPosition(pos);
  auto t2_again = lexer.Next();
  ASSERT_TRUE(t2_again.ok());
  EXPECT_EQ(t2_again->text, "two");
}

}  // namespace
}  // namespace xmark::query
