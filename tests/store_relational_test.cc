// Property tests: every physical mapping must implement the storage
// interface with identical observable semantics. The DomStore is the
// reference; the edge, fragmented and inlined stores are checked against
// it node by node on a generated benchmark document.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"

namespace xmark::store {
namespace {

const std::string& TestDoc() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    return new std::string(gen::XmlGen(options).GenerateToString());
  }();
  return *kDoc;
}

const DomStore& Reference() {
  static const DomStore* const kRef = [] {
    DomStore::Options options;
    auto store = DomStore::Load(TestDoc(), options);
    XMARK_CHECK(store.ok());
    return store->release();
  }();
  return *kRef;
}

enum class Kind { kEdge, kFragmented, kInlined };

const query::StorageAdapter& Subject(Kind kind) {
  static std::map<Kind, const query::StorageAdapter*>* const kStores = [] {
    auto* stores = new std::map<Kind, const query::StorageAdapter*>();
    auto edge = EdgeStore::Load(TestDoc());
    XMARK_CHECK(edge.ok());
    (*stores)[Kind::kEdge] = edge->release();
    auto frag = FragmentedStore::Load(TestDoc());
    XMARK_CHECK(frag.ok());
    (*stores)[Kind::kFragmented] = frag->release();
    auto inlined = InlinedStore::Load(TestDoc());
    XMARK_CHECK(inlined.ok());
    (*stores)[Kind::kInlined] = inlined->release();
    return stores;
  }();
  return *kStores->at(kind);
}

class StoreEquivalence : public ::testing::TestWithParam<Kind> {};

std::string TagOf(const query::StorageAdapter& store, query::NodeHandle n) {
  const xml::NameId id = store.NameOf(n);
  return id == xml::kInvalidName ? "#text"
                                 : std::string(store.names().Spelling(id));
}

TEST_P(StoreEquivalence, FullNavigationSweep) {
  const DomStore& ref = Reference();
  const query::StorageAdapter& sub = Subject(GetParam());
  ASSERT_EQ(sub.Root(), ref.Root());
  const size_t n = ref.document().num_nodes();
  for (query::NodeHandle h = 0; h < n; ++h) {
    ASSERT_EQ(sub.IsElement(h), ref.IsElement(h)) << h;
    ASSERT_EQ(TagOf(sub, h), TagOf(ref, h)) << h;
    ASSERT_EQ(sub.Parent(h), ref.Parent(h)) << h;
    ASSERT_EQ(sub.FirstChild(h), ref.FirstChild(h)) << h;
    ASSERT_EQ(sub.NextSibling(h), ref.NextSibling(h)) << h;
  }
}

TEST_P(StoreEquivalence, TextAndStringValuesSampled) {
  const DomStore& ref = Reference();
  const query::StorageAdapter& sub = Subject(GetParam());
  const size_t n = ref.document().num_nodes();
  for (query::NodeHandle h = 0; h < n; h += 7) {  // sample every 7th node
    if (!ref.IsElement(h)) {
      ASSERT_EQ(sub.Text(h), ref.Text(h)) << h;
    }
    ASSERT_EQ(sub.StringValue(h), ref.StringValue(h)) << h;
  }
}

TEST_P(StoreEquivalence, AttributesMatch) {
  const DomStore& ref = Reference();
  const query::StorageAdapter& sub = Subject(GetParam());
  const size_t n = ref.document().num_nodes();
  for (query::NodeHandle h = 0; h < n; ++h) {
    if (!ref.IsElement(h)) continue;
    ASSERT_EQ(sub.Attributes(h), ref.Attributes(h)) << h;
    const auto id = ref.Attribute(h, "id");
    ASSERT_EQ(sub.Attribute(h, "id"), id) << h;
  }
}

TEST_P(StoreEquivalence, IdLookup) {
  const DomStore& ref = Reference();
  const query::StorageAdapter& sub = Subject(GetParam());
  ASSERT_TRUE(sub.SupportsIdLookup());
  for (const char* id : {"person0", "person3", "item0", "open_auction1",
                         "category0"}) {
    ASSERT_EQ(sub.NodeById(id), ref.NodeById(id)) << id;
  }
  ASSERT_EQ(sub.NodeById("no-such-id"), query::kInvalidHandle);
}

TEST_P(StoreEquivalence, ChildrenByTagAgreesWithScan) {
  const DomStore& ref = Reference();
  const query::StorageAdapter& sub = Subject(GetParam());
  const size_t n = ref.document().num_nodes();
  const xml::NameTable& names = sub.names();
  for (query::NodeHandle h = 0; h < n; h += 5) {
    if (!ref.IsElement(h)) continue;
    // Scan reference children per tag.
    std::map<std::string, std::vector<query::NodeHandle>> expected;
    for (auto c = ref.FirstChild(h); c != query::kInvalidHandle;
         c = ref.NextSibling(c)) {
      if (ref.IsElement(c)) expected[TagOf(ref, c)].push_back(c);
    }
    for (const auto& [tag, children] : expected) {
      const xml::NameId tag_id = names.Lookup(tag);
      ASSERT_NE(tag_id, xml::kInvalidName);
      const auto direct = sub.ChildrenByTag(h, tag_id);
      if (direct.has_value()) {
        ASSERT_EQ(*direct, children) << "node " << h << " tag " << tag;
      }
    }
  }
}

TEST_P(StoreEquivalence, StorageAccountingPositive) {
  const query::StorageAdapter& sub = Subject(GetParam());
  EXPECT_GT(sub.StorageBytes(), 0u);
  EXPECT_GT(sub.CatalogEntries(), 0u);
  EXPECT_FALSE(sub.mapping_name().empty());
}

INSTANTIATE_TEST_SUITE_P(AllMappings, StoreEquivalence,
                         ::testing::Values(Kind::kEdge, Kind::kFragmented,
                                           Kind::kInlined),
                         [](const ::testing::TestParamInfo<Kind>& info) {
                           switch (info.param) {
                             case Kind::kEdge:
                               return "EdgeTable";
                             case Kind::kFragmented:
                               return "FragmentedPaths";
                             case Kind::kInlined:
                               return "DtdInlined";
                           }
                           return "Unknown";
                         });

TEST(FragmentedStoreTest, DescendantsByTagMatchesReference) {
  const DomStore& ref = Reference();
  auto frag = FragmentedStore::Load(TestDoc());
  ASSERT_TRUE(frag.ok());
  // NameIds are store-local: resolve against each store's own table.
  const xml::NameId frag_item = (*frag)->names().Lookup("item");
  const xml::NameId ref_item = ref.names().Lookup("item");
  ASSERT_NE(frag_item, xml::kInvalidName);
  const auto from_frag = (*frag)->DescendantsByTag((*frag)->Root(), frag_item);
  const auto from_ref = ref.DescendantsByTag(ref.Root(), ref_item);
  ASSERT_TRUE(from_frag.has_value());
  ASSERT_TRUE(from_ref.has_value());
  EXPECT_EQ(*from_frag, *from_ref);
}

TEST(FragmentedStoreTest, PathExtentMatchesSummary) {
  const DomStore& ref = Reference();
  auto frag = FragmentedStore::Load(TestDoc());
  ASSERT_TRUE(frag.ok());
  std::vector<xml::NameId> path;
  for (const char* seg : {"site", "people", "person"}) {
    path.push_back((*frag)->names().Lookup(seg));
  }
  std::vector<xml::NameId> ref_path;
  for (const char* seg : {"site", "people", "person"}) {
    ref_path.push_back(ref.names().Lookup(seg));
  }
  EXPECT_EQ((*frag)->PathExtent(path).value(),
            ref.PathExtent(ref_path).value());
}

TEST(FragmentedStoreTest, CatalogScalesWithPaths) {
  auto frag = FragmentedStore::Load(TestDoc());
  ASSERT_TRUE(frag.ok());
  EXPECT_GT((*frag)->num_paths(), 50u);
  EXPECT_EQ((*frag)->CatalogEntries(), (*frag)->num_paths());
  // Resolution inspects the whole catalog.
  EXPECT_GE((*frag)->ResolveName("person"), (*frag)->num_paths());
}

TEST(InlinedStoreTest, SlotsExist) {
  auto inlined = InlinedStore::Load(TestDoc());
  ASSERT_TRUE(inlined.ok());
  // The DTD declares many at-most-once children (person/name, item/location,
  // open_auction/initial, ...).
  EXPECT_GT((*inlined)->InlinedSlots(), 10u);
}

TEST(InlinedStoreTest, MultiOccurrenceChildrenNotInlined) {
  auto inlined = InlinedStore::Load(TestDoc());
  ASSERT_TRUE(inlined.ok());
  const xml::NameId bidder = (*inlined)->names().Lookup("bidder");
  const xml::NameId open_auction = (*inlined)->names().Lookup("open_auction");
  ASSERT_NE(open_auction, xml::kInvalidName);
  if (bidder != xml::kInvalidName) {
    // bidder* is repeatable, so ChildrenByTag must decline (nullopt).
    const DomStore& ref = Reference();
    const auto* auctions = ref.NodesByTag(open_auction);
    ASSERT_NE(auctions, nullptr);
    ASSERT_FALSE(auctions->empty());
    EXPECT_FALSE(
        (*inlined)->ChildrenByTag(auctions->front(), bidder).has_value());
  }
}

TEST(EdgeStoreTest, TinyCatalog) {
  auto edge = EdgeStore::Load(TestDoc());
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ((*edge)->CatalogEntries(), 2u);
  EXPECT_EQ((*edge)->num_rows(), Reference().document().num_nodes());
}

TEST(EdgeStoreTest, RejectsMalformedInput) {
  EXPECT_FALSE(EdgeStore::Load("<a><b></a>").ok());
  EXPECT_FALSE(FragmentedStore::Load("<a><b></a>").ok());
  EXPECT_FALSE(InlinedStore::Load("<a><b></a>").ok());
}

}  // namespace
}  // namespace xmark::store
