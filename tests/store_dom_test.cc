#include "store/dom_store.h"

#include <gtest/gtest.h>

namespace xmark::store {
namespace {

constexpr std::string_view kDoc = R"(<site>
  <people>
    <person id="p0"><name>A</name></person>
    <person id="p1"><name>B</name></person>
  </people>
  <regions>
    <europe><item id="i0"><name>x</name></item></europe>
    <asia><item id="i1"><name>y</name></item>
          <item id="i2"><name>z</name></item></asia>
  </regions>
</site>)";

std::unique_ptr<DomStore> Load(bool indexes) {
  DomStore::Options options;
  options.build_tag_index = indexes;
  options.build_id_index = indexes;
  options.build_path_summary = indexes;
  auto store = DomStore::Load(kDoc, options);
  EXPECT_TRUE(store.ok()) << store.status();
  return std::move(store).value();
}

xml::NameId Tag(const DomStore& store, std::string_view name) {
  return store.names().Lookup(name);
}

TEST(DomStoreTest, Navigation) {
  auto store = Load(true);
  const auto root = store->Root();
  EXPECT_TRUE(store->IsElement(root));
  EXPECT_EQ(store->names().Spelling(store->NameOf(root)), "site");
  const auto people = store->FirstChild(root);
  EXPECT_EQ(store->names().Spelling(store->NameOf(people)), "people");
  const auto regions = store->NextSibling(people);
  EXPECT_EQ(store->names().Spelling(store->NameOf(regions)), "regions");
  EXPECT_EQ(store->NextSibling(regions), query::kInvalidHandle);
  EXPECT_EQ(store->Parent(people), root);
}

TEST(DomStoreTest, IdIndex) {
  auto store = Load(true);
  EXPECT_TRUE(store->SupportsIdLookup());
  const auto p1 = store->NodeById("p1");
  ASSERT_NE(p1, query::kInvalidHandle);
  EXPECT_EQ(store->StringValue(p1), "B");
  EXPECT_EQ(store->NodeById("missing"), query::kInvalidHandle);
}

TEST(DomStoreTest, TagIndexDocumentOrder) {
  auto store = Load(true);
  const auto* items = store->NodesByTag(Tag(*store, "item"));
  ASSERT_NE(items, nullptr);
  ASSERT_EQ(items->size(), 3u);
  EXPECT_TRUE((*items)[0] < (*items)[1] && (*items)[1] < (*items)[2]);
}

TEST(DomStoreTest, DescendantsByTagRespectsSubtree) {
  auto store = Load(true);
  // Items under regions/asia only.
  const auto regions = store->NextSibling(store->FirstChild(store->Root()));
  const auto europe = store->FirstChild(regions);
  const auto asia = store->NextSibling(europe);
  auto under_asia = store->DescendantsByTag(asia, Tag(*store, "item"));
  ASSERT_TRUE(under_asia.has_value());
  EXPECT_EQ(under_asia->size(), 2u);
  auto under_europe = store->DescendantsByTag(europe, Tag(*store, "item"));
  ASSERT_TRUE(under_europe.has_value());
  EXPECT_EQ(under_europe->size(), 1u);
}

TEST(DomStoreTest, PathExtent) {
  auto store = Load(true);
  EXPECT_TRUE(store->SupportsPathIndex());
  std::vector<xml::NameId> path{Tag(*store, "site"), Tag(*store, "people"),
                                Tag(*store, "person")};
  auto extent = store->PathExtent(path);
  ASSERT_TRUE(extent.has_value());
  EXPECT_EQ(extent->size(), 2u);
  // Unknown path -> empty extent.
  std::vector<xml::NameId> bad{Tag(*store, "site"), Tag(*store, "regions"),
                               Tag(*store, "person")};
  auto none = store->PathExtent(bad);
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());
}

TEST(DomStoreTest, PathCount) {
  auto store = Load(true);
  std::vector<xml::NameId> path{Tag(*store, "site"), Tag(*store, "regions"),
                                Tag(*store, "asia"), Tag(*store, "item")};
  EXPECT_EQ(store->PathCount(path).value(), 2);
}

TEST(DomStoreTest, IndexesOffDowngradeGracefully) {
  auto store = Load(false);
  EXPECT_FALSE(store->SupportsIdLookup());
  EXPECT_FALSE(store->SupportsTagIndex());
  EXPECT_FALSE(store->SupportsPathIndex());
  EXPECT_EQ(store->NodesByTag(Tag(*store, "item")), nullptr);
  EXPECT_FALSE(store->DescendantsByTag(store->Root(), Tag(*store, "item"))
                   .has_value());
  EXPECT_FALSE(
      store->PathExtent({Tag(*store, "site")}).has_value());
}

TEST(DomStoreTest, StorageAccounting) {
  auto indexed = Load(true);
  auto bare = Load(false);
  EXPECT_GT(indexed->StorageBytes(), bare->StorageBytes());
  EXPECT_GT(indexed->CatalogEntries(), 0u);
  EXPECT_GT(indexed->SummaryPaths(), 5u);
}

TEST(DomStoreTest, BeforeIsDocumentOrder) {
  auto store = Load(true);
  const auto p0 = store->NodeById("p0");
  const auto i0 = store->NodeById("i0");
  EXPECT_TRUE(store->Before(p0, i0));
  EXPECT_FALSE(store->Before(i0, p0));
}

TEST(DomStoreTest, Attributes) {
  auto store = Load(true);
  const auto p0 = store->NodeById("p0");
  EXPECT_EQ(store->Attribute(p0, "id").value(), "p0");
  EXPECT_FALSE(store->Attribute(p0, "none").has_value());
  const auto attrs = store->Attributes(p0);
  ASSERT_EQ(attrs.size(), 1u);
  EXPECT_EQ(attrs[0].first, "id");
}

TEST(DomStoreTest, ResolveNameDefault) {
  auto store = Load(true);
  EXPECT_EQ(store->ResolveName("person"), 1u);
  EXPECT_EQ(store->ResolveName("nonexistent"), 0u);
}

}  // namespace
}  // namespace xmark::store
