// Cross-store descendant-cursor tests: on every physical mapping, the
// interval-encoded DescendantCursor must produce exactly what the generic
// DFS fallback produces — unit-level (cursor vs preorder walk, every
// filter) and query-level (`//tag`, nested `$v//a/b`, multi-input steps
// through SortDedupNodes, predicate-carrying descendant steps) with
// `EvaluatorOptions::descendant_cursors` on and off, byte-compared.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "query/evaluator.h"
#include "query/parser.h"
#include "query/storage.h"
#include "query/value.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"

namespace xmark::query {
namespace {

// A document with repeated tags at several depths (the same tag behind
// multiple root-to-node paths, so the fragmented store's merge mode runs),
// mixed content, and attributes for predicate-carrying steps.
constexpr std::string_view kDoc = R"(<root>
  <a id="a1"><b>one</b><c><b>two</b><d><b>three</b></d></c></a>
  <a id="a2"><c><b>four</b></c>text<b>five</b></a>
  <b>top</b>
  <e><a id="a3"><b>six</b></a></e>
</root>)";

using StoreFactory = std::unique_ptr<StorageAdapter> (*)(std::string_view);

std::unique_ptr<StorageAdapter> MakeEdge(std::string_view xml) {
  auto s = store::EdgeStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeFragmented(std::string_view xml) {
  auto s = store::FragmentedStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeInlined(std::string_view xml) {
  auto s = store::InlinedStore::Load(xml);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeDom(std::string_view xml) {
  store::DomStore::Options options;
  auto s = store::DomStore::Load(xml, options);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}
std::unique_ptr<StorageAdapter> MakeDomBare(std::string_view xml) {
  // No indexes: exercises the DOM store's dense preorder-scan cursor mode
  // instead of the tag-index slice.
  store::DomStore::Options options;
  options.build_tag_index = false;
  options.build_id_index = false;
  options.build_path_summary = false;
  auto s = store::DomStore::Load(xml, options);
  XMARK_CHECK(s.ok());
  return std::move(s).value();
}

struct StoreCase {
  const char* name;
  StoreFactory factory;
};

class DescendantCursorTest : public ::testing::TestWithParam<StoreCase> {
 protected:
  void SetUp() override { store_ = GetParam().factory(kDoc); }

  // Reference: recursive preorder walk over the generic navigation chain,
  // excluding the base, filtered like the cursor under test.
  void CollectDfs(NodeHandle n, ChildFilter filter, xml::NameId tag,
                  std::vector<NodeHandle>* out) {
    for (NodeHandle c = store_->FirstChild(n); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      if (MatchesChildFilter(filter, store_->NameOf(c), tag)) {
        out->push_back(c);
      }
      if (store_->IsElement(c)) CollectDfs(c, filter, tag, out);
    }
  }

  // Drains a descendant cursor fully with a small batch to exercise
  // refills (and, in the fragmented store's merge mode, re-slicing).
  std::vector<NodeHandle> Drain(NodeHandle base, ChildFilter filter,
                                xml::NameId tag) {
    DescendantCursor cur;
    store_->OpenDescendantCursor(base, filter, tag, &cur);
    std::vector<NodeHandle> out;
    NodeHandle buf[3];
    size_t n;
    while ((n = cur.Fill(buf, 3)) > 0) out.insert(out.end(), buf, buf + n);
    return out;
  }

  std::unique_ptr<StorageAdapter> store_;
};

TEST_P(DescendantCursorTest, MatchesDfsOnEveryElementAndFilter) {
  std::vector<NodeHandle> stack{store_->Root()};
  while (!stack.empty()) {
    const NodeHandle n = stack.back();
    stack.pop_back();
    for (NodeHandle c = store_->FirstChild(n); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      if (store_->IsElement(c)) stack.push_back(c);
    }
    for (ChildFilter filter :
         {ChildFilter::kAll, ChildFilter::kElements, ChildFilter::kText}) {
      std::vector<NodeHandle> expected;
      CollectDfs(n, filter, xml::kInvalidName, &expected);
      EXPECT_EQ(Drain(n, filter, xml::kInvalidName), expected)
          << GetParam().name << " filter " << static_cast<int>(filter);
    }
    for (const char* tag : {"a", "b", "c", "d", "e", "root"}) {
      const xml::NameId id = store_->names().Lookup(tag);
      ASSERT_NE(id, xml::kInvalidName);
      std::vector<NodeHandle> expected;
      CollectDfs(n, ChildFilter::kTag, id, &expected);
      EXPECT_EQ(Drain(n, ChildFilter::kTag, id), expected)
          << GetParam().name << " tag " << tag;
    }
  }
}

TEST_P(DescendantCursorTest, UnknownTagCursorIsEmpty) {
  // kTag with kInvalidName must not leak text nodes (whose NameOf is also
  // kInvalidName).
  EXPECT_TRUE(
      Drain(store_->Root(), ChildFilter::kTag, xml::kInvalidName).empty());
}

TEST_P(DescendantCursorTest, TextNodeBaseIsEmpty) {
  // A text node has no descendants; every interval encoding must agree.
  std::vector<NodeHandle> texts;
  CollectDfs(store_->Root(), ChildFilter::kText, xml::kInvalidName, &texts);
  ASSERT_FALSE(texts.empty());
  for (NodeHandle t : texts) {
    EXPECT_TRUE(Drain(t, ChildFilter::kAll, xml::kInvalidName).empty());
  }
}

TEST_P(DescendantCursorTest, ZeroCapFillDoesNotExhaust) {
  // Fill with cap == 0 reports nothing without losing the remaining scan
  // ("b" lives behind several paths, so this drives the fragmented store's
  // merge mode too).
  const xml::NameId b_tag = store_->names().Lookup("b");
  ASSERT_NE(b_tag, xml::kInvalidName);
  DescendantCursor cur;
  store_->OpenDescendantCursor(store_->Root(), ChildFilter::kTag, b_tag,
                               &cur);
  NodeHandle buf[4];
  EXPECT_EQ(cur.Fill(buf, 0), 0u);
  std::vector<NodeHandle> out;
  size_t n;
  while ((n = cur.Fill(buf, 4)) > 0) {
    out.insert(out.end(), buf, buf + n);
    EXPECT_EQ(cur.Fill(buf, 0), 0u);  // mid-scan zero-cap probes too
  }
  std::vector<NodeHandle> expected;
  CollectDfs(store_->Root(), ChildFilter::kTag, b_tag, &expected);
  EXPECT_EQ(out, expected) << GetParam().name;
}

TEST_P(DescendantCursorTest, BatchRefillOnWideSubtree) {
  // More matches than any Fill batch: drains correctly across refills in
  // document order.
  std::string doc = "<wide>";
  for (int i = 0; i < 100; ++i) doc += "<c><k/></c>";
  doc += "</wide>";
  auto store = GetParam().factory(doc);
  const xml::NameId k_tag = store->names().Lookup("k");
  DescendantCursor cur;
  store->OpenDescendantCursor(store->Root(), ChildFilter::kTag, k_tag, &cur);
  std::vector<NodeHandle> out;
  NodeHandle buf[64];
  size_t n;
  while ((n = cur.Fill(buf, 64)) > 0) out.insert(out.end(), buf, buf + n);
  ASSERT_EQ(out.size(), 100u);
  for (NodeHandle h : out) EXPECT_EQ(store->NameOf(h), k_tag);
  for (size_t i = 1; i < out.size(); ++i) EXPECT_LT(out[i - 1], out[i]);
}

// Query-level parity: serialized results with the cursor on must be
// byte-identical to the DFS fallback (descendant_cursors off AND the
// DescendantsByTag vector path off), per store.
class DescendantQueryTest : public DescendantCursorTest {
 protected:
  std::string RunSerialized(std::string_view text, bool cursors,
                            bool tag_index) {
    auto parsed = ParseQueryText(text);
    XMARK_CHECK(parsed.ok());
    EvaluatorOptions opts;
    opts.descendant_cursors = cursors;
    opts.use_tag_index = tag_index;
    Evaluator evaluator(store_.get(), opts);
    auto result = evaluator.Run(*parsed);
    XMARK_CHECK(result.ok());
    return SerializeSequence(*result);
  }

  void ExpectParity(std::string_view text) {
    const std::string dfs = RunSerialized(text, false, false);
    EXPECT_EQ(RunSerialized(text, true, false), dfs)
        << GetParam().name << " cursor diverges from DFS for: " << text;
    EXPECT_EQ(RunSerialized(text, true, true), dfs)
        << GetParam().name << " cursor+tag-index diverges for: " << text;
    EXPECT_EQ(RunSerialized(text, false, true), dfs)
        << GetParam().name << " tag-index fallback diverges for: " << text;
  }
};

TEST_P(DescendantQueryTest, SimpleDescendant) {
  ExpectParity("/root//b");
  ExpectParity("//b");
  ExpectParity("//a");
}

TEST_P(DescendantQueryTest, NestedVariableRootedDescendant) {
  ExpectParity("for $v in /root/a return $v//b");
  ExpectParity("for $v in /root return $v//c/b");
  ExpectParity("for $v in /root/a/c return $v//b");
}

TEST_P(DescendantQueryTest, MultiInputExercisesSortDedup) {
  // `//a//b`: the second step sees several input nodes whose subtrees
  // produce overlapping-order outputs, forcing SortDedupNodes.
  ExpectParity("//a//b");
  ExpectParity("//c//b");
}

TEST_P(DescendantQueryTest, PredicateCarryingDescendantStep) {
  ExpectParity("//a[@id = \"a2\"]");
  ExpectParity("//a[c/b]//b");
  ExpectParity("count(//b[. = \"four\"])");
}

TEST_P(DescendantQueryTest, TextAndWildcardDescendants) {
  ExpectParity("count(//a/text())");
  ExpectParity("for $v in /root/a return count($v//text())");
}

INSTANTIATE_TEST_SUITE_P(
    AllStores, DescendantCursorTest,
    ::testing::Values(StoreCase{"edge", &MakeEdge},
                      StoreCase{"fragmented", &MakeFragmented},
                      StoreCase{"inlined", &MakeInlined},
                      StoreCase{"dom", &MakeDom},
                      StoreCase{"dom_bare", &MakeDomBare}),
    [](const ::testing::TestParamInfo<StoreCase>& info) {
      return info.param.name;
    });

INSTANTIATE_TEST_SUITE_P(
    AllStores, DescendantQueryTest,
    ::testing::Values(StoreCase{"edge", &MakeEdge},
                      StoreCase{"fragmented", &MakeFragmented},
                      StoreCase{"inlined", &MakeInlined},
                      StoreCase{"dom", &MakeDom},
                      StoreCase{"dom_bare", &MakeDomBare}),
    [](const ::testing::TestParamInfo<StoreCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace xmark::query
