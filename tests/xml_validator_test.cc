#include "xml/validator.h"

#include <gtest/gtest.h>

#include "gen/generator.h"

namespace xmark::xml {
namespace {

ContentModel MustCompile(std::string_view model) {
  auto compiled = ContentModel::Compile(model);
  EXPECT_TRUE(compiled.ok()) << model << ": " << compiled.status();
  return std::move(compiled).value();
}

bool Match(std::string_view model, std::vector<std::string> children) {
  return MustCompile(model).Matches(children);
}

TEST(ContentModelTest, SimpleSequence) {
  EXPECT_TRUE(Match("(a, b, c)", {"a", "b", "c"}));
  EXPECT_FALSE(Match("(a, b, c)", {"a", "c", "b"}));
  EXPECT_FALSE(Match("(a, b, c)", {"a", "b"}));
  EXPECT_FALSE(Match("(a, b, c)", {"a", "b", "c", "c"}));
}

TEST(ContentModelTest, Optional) {
  EXPECT_TRUE(Match("(a, b?, c)", {"a", "b", "c"}));
  EXPECT_TRUE(Match("(a, b?, c)", {"a", "c"}));
  EXPECT_FALSE(Match("(a, b?, c)", {"a", "b", "b", "c"}));
}

TEST(ContentModelTest, StarAndPlus) {
  EXPECT_TRUE(Match("(a*)", {}));
  EXPECT_TRUE(Match("(a*)", {"a", "a", "a"}));
  EXPECT_FALSE(Match("(a+)", {}));
  EXPECT_TRUE(Match("(a+)", {"a"}));
  EXPECT_TRUE(Match("(a, b*, c+)", {"a", "c"}));
  EXPECT_TRUE(Match("(a, b*, c+)", {"a", "b", "b", "c", "c"}));
  EXPECT_FALSE(Match("(a, b*, c+)", {"a", "b"}));
}

TEST(ContentModelTest, Choice) {
  EXPECT_TRUE(Match("(a | b)", {"a"}));
  EXPECT_TRUE(Match("(a | b)", {"b"}));
  EXPECT_FALSE(Match("(a | b)", {"a", "b"}));
  EXPECT_FALSE(Match("(a | b)", {}));
}

TEST(ContentModelTest, NestedGroups) {
  // The open_auction shape: sequences with nested optional groups.
  const char* model = "(initial, reserve?, bidder*, current, itemref)";
  EXPECT_TRUE(Match(model, {"initial", "current", "itemref"}));
  EXPECT_TRUE(Match(model, {"initial", "reserve", "bidder", "bidder",
                            "current", "itemref"}));
  EXPECT_FALSE(Match(model, {"reserve", "initial", "current", "itemref"}));
}

TEST(ContentModelTest, GroupCardinality) {
  EXPECT_TRUE(Match("((a, b)+)", {"a", "b", "a", "b"}));
  EXPECT_FALSE(Match("((a, b)+)", {"a", "b", "a"}));
  EXPECT_TRUE(Match("((a | b)*, c)", {"b", "a", "b", "c"}));
}

TEST(ContentModelTest, ChoiceOfSequences) {
  EXPECT_TRUE(Match("((a, b) | (c, d))", {"c", "d"}));
  EXPECT_FALSE(Match("((a, b) | (c, d))", {"a", "d"}));
}

TEST(ContentModelTest, EmptyAndAny) {
  ContentModel empty = MustCompile("EMPTY");
  EXPECT_TRUE(empty.empty_model());
  EXPECT_TRUE(empty.Matches({}));
  EXPECT_FALSE(empty.Matches({"a"}));
  ContentModel any = MustCompile("ANY");
  EXPECT_TRUE(any.Matches({"x", "y"}));
}

TEST(ContentModelTest, MixedContent) {
  ContentModel mixed = MustCompile("(#PCDATA | bold | emph)*");
  EXPECT_TRUE(mixed.mixed());
  EXPECT_TRUE(mixed.Matches({}));
  EXPECT_TRUE(mixed.Matches({"bold", "emph", "bold"}));
  EXPECT_FALSE(mixed.Matches({"bold", "keyword"}));
}

TEST(ContentModelTest, RejectsMalformed) {
  EXPECT_FALSE(ContentModel::Compile("(a, b").ok());
  EXPECT_FALSE(ContentModel::Compile("(a, | b)").ok());
  EXPECT_FALSE(ContentModel::Compile("(a | b, c)").ok());  // mixed seps
}

Document MustParse(std::string_view text) {
  auto doc = Document::Parse(text);
  EXPECT_TRUE(doc.ok()) << doc.status();
  return std::move(doc).value();
}

Dtd MustParseDtd(std::string_view text) {
  auto dtd = Dtd::Parse(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return std::move(dtd).value();
}

constexpr std::string_view kTinyDtd = R"(
<!ELEMENT root (entry+)>
<!ELEMENT entry (name, note?)>
<!ATTLIST entry id ID #REQUIRED ref IDREF #IMPLIED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT note (#PCDATA)>
)";

TEST(ValidatorTest, ValidDocumentPasses) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse(
      "<root><entry id=\"e1\"><name>n</name></entry>"
      "<entry id=\"e2\" ref=\"e1\"><name>m</name><note>x</note></entry>"
      "</root>");
  Validator validator(&dtd);
  EXPECT_TRUE(validator.Check(doc).ok());
}

TEST(ValidatorTest, DetectsContentModelViolation) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse(
      "<root><entry id=\"e1\"><note>no name</note></entry></root>");
  Validator validator(&dtd);
  const auto errors = validator.Validate(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("content model"), std::string::npos);
}

TEST(ValidatorTest, DetectsMissingRequiredAttribute) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse("<root><entry><name>n</name></entry></root>");
  Validator validator(&dtd);
  const auto errors = validator.Validate(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("required attribute"), std::string::npos);
}

TEST(ValidatorTest, DetectsDuplicateIds) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse(
      "<root><entry id=\"e\"><name>a</name></entry>"
      "<entry id=\"e\"><name>b</name></entry></root>");
  Validator validator(&dtd);
  const auto errors = validator.Validate(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("duplicate ID"), std::string::npos);
}

TEST(ValidatorTest, DetectsDanglingIdref) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse(
      "<root><entry id=\"e1\" ref=\"nope\"><name>a</name></entry></root>");
  Validator validator(&dtd);
  const auto errors = validator.Validate(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("dangling IDREF"), std::string::npos);
}

TEST(ValidatorTest, DetectsUndeclaredElementAndAttribute) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc1 = MustParse("<root><mystery/></root>");
  Validator validator(&dtd);
  auto errors = validator.Validate(doc1);
  ASSERT_FALSE(errors.empty());
  bool undeclared = false;
  for (const auto& e : errors) {
    undeclared |= e.message.find("undeclared element") != std::string::npos;
  }
  EXPECT_TRUE(undeclared);

  Document doc2 = MustParse(
      "<root><entry id=\"e\" bogus=\"1\"><name>a</name></entry></root>");
  errors = validator.Validate(doc2);
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const auto& e : errors) {
    found |= e.message.find("undeclared attribute") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(ValidatorTest, DetectsUnexpectedText) {
  Dtd dtd = MustParseDtd(kTinyDtd);
  Document doc = MustParse(
      "<root>stray text<entry id=\"e\"><name>a</name></entry></root>");
  Validator validator(&dtd);
  const auto errors = validator.Validate(doc);
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].message.find("character data"), std::string::npos);
}

// The capstone property: generated benchmark documents validate against
// the bundled auction DTD, including ID/IDREF integrity.
TEST(ValidatorTest, GeneratedDocumentIsValid) {
  auto dtd = Dtd::Parse(kAuctionDtd);
  ASSERT_TRUE(dtd.ok());
  for (uint64_t seed : {1ull, 42ull, 9999ull}) {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    options.seed = seed;
    Document doc = MustParse(gen::XmlGen(options).GenerateToString());
    Validator validator(&*dtd);
    const auto errors = validator.Validate(doc, 5);
    EXPECT_TRUE(errors.empty())
        << "seed " << seed << ": " << errors.front().message;
  }
}

}  // namespace
}  // namespace xmark::xml
