#include "query/parser.h"

#include <gtest/gtest.h>

#include "xmark/queries.h"

namespace xmark::query {
namespace {

AstPtr MustParseExpr(std::string_view text) {
  Parser parser(text);
  auto result = parser.ParseExpression();
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status();
  return result.ok() ? std::move(result).value() : nullptr;
}

std::string Sexpr(std::string_view text) {
  AstPtr ast = MustParseExpr(text);
  return ast == nullptr ? "<error>" : AstToString(*ast);
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(Sexpr("42"), "42");
  EXPECT_EQ(Sexpr("\"hi\""), "\"hi\"");
  EXPECT_EQ(Sexpr("$x"), "$x");
}

TEST(ParserTest, AbsolutePath) {
  EXPECT_EQ(Sexpr("/site/people/person"), "(path / /site /people /person)");
}

TEST(ParserTest, DescendantAndAttribute) {
  EXPECT_EQ(Sexpr("//item/@id"), "(path / //item /@id)");
}

TEST(ParserTest, VariableRootedPath) {
  EXPECT_EQ(Sexpr("$b/name/text()"), "(path $b /name /text())");
}

TEST(ParserTest, PredicatesAndPositional) {
  EXPECT_EQ(Sexpr("$b/bidder[1]/increase"),
            "(path $b /bidder[1] /increase)");
  EXPECT_EQ(Sexpr("person[@id = \"person0\"]"),
            "(path /person[(= (path /@id) \"person0\")])");
}

TEST(ParserTest, OperatorPrecedence) {
  // * binds tighter than +, + tighter than comparison, comparison beats and.
  EXPECT_EQ(Sexpr("1 + 2 * 3"), "(+ 1 (* 2 3))");
  EXPECT_EQ(Sexpr("1 < 2 and 3 < 4"), "(and (< 1 2) (< 3 4))");
  EXPECT_EQ(Sexpr("1 < 2 or 3 < 4 and 5 < 6"),
            "(or (< 1 2) (and (< 3 4) (< 5 6)))");
}

TEST(ParserTest, NodeOrderComparison) {
  EXPECT_EQ(Sexpr("$a << $b"), "(<< $a $b)");
}

TEST(ParserTest, FunctionCalls) {
  EXPECT_EQ(Sexpr("count($l)"), "(count $l)");
  EXPECT_EQ(Sexpr("contains($d, \"gold\")"), "(contains $d \"gold\")");
  EXPECT_EQ(Sexpr("document(\"auction.xml\")/site"),
            "(path (document \"auction.xml\") /site)");
}

TEST(ParserTest, TextIsKindTestNotFunction) {
  // `text()` after a slash must parse as a node test, not a call.
  EXPECT_EQ(Sexpr("$a/text()"), "(path $a /text())");
}

TEST(ParserTest, Flwor) {
  const std::string s =
      Sexpr("for $x in /a where $x/b = 1 order by $x/c return $x");
  EXPECT_EQ(s,
            "(flwor (for $x (path / /a)) (where (= (path $x /b) 1)) "
            "(order (path $x /c)) (return $x))");
}

TEST(ParserTest, FlworMultipleClauses) {
  const std::string s = Sexpr("for $x in /a let $y := $x/b return $y");
  EXPECT_EQ(s, "(flwor (for $x (path / /a)) (let $y (path $x /b)) "
               "(return $y))");
}

TEST(ParserTest, Quantified) {
  EXPECT_EQ(Sexpr("some $p in /a satisfies $p = 1"),
            "(some ($p (path / /a)) satisfies (= $p 1))");
  EXPECT_EQ(Sexpr("every $p in /a satisfies $p = 1"),
            "(every ($p (path / /a)) satisfies (= $p 1))");
}

TEST(ParserTest, IfThenElse) {
  EXPECT_EQ(Sexpr("if (1 < 2) then \"a\" else \"b\""),
            "(if (< 1 2) \"a\" \"b\")");
}

TEST(ParserTest, SequenceAndEmpty) {
  EXPECT_EQ(Sexpr("(1, 2, 3)"), "(seq 1 2 3)");
  EXPECT_EQ(Sexpr("()"), "(seq)");
}

TEST(ParserTest, ElementConstructor) {
  EXPECT_EQ(Sexpr("<a x=\"1\">hi</a>"), "(elem a @x \"hi\")");
  EXPECT_EQ(Sexpr("<a>{$x}</a>"), "(elem a $x)");
  EXPECT_EQ(Sexpr("<increase>{$b/bidder[1]/increase/text()}</increase>"),
            "(elem increase (path $b /bidder[1] /increase /text()))");
}

TEST(ParserTest, NestedConstructors) {
  EXPECT_EQ(Sexpr("<a><b>{1}</b><c/></a>"), "(elem a (elem b 1) (elem c))");
}

TEST(ParserTest, ConstructorAttributeTemplates) {
  AstPtr ast = MustParseExpr("<item name=\"pre-{$k}-post\"/>");
  ASSERT_NE(ast, nullptr);
  ASSERT_EQ(ast->attrs.size(), 1u);
  ASSERT_EQ(ast->attrs[0].parts.size(), 3u);
  EXPECT_EQ(ast->attrs[0].parts[0].text, "pre-");
  EXPECT_NE(ast->attrs[0].parts[1].expr, nullptr);
  EXPECT_EQ(ast->attrs[0].parts[2].text, "-post");
}

TEST(ParserTest, ConstructorBraceEscapes) {
  AstPtr ast = MustParseExpr("<a>{{literal}}</a>");
  ASSERT_NE(ast, nullptr);
  ASSERT_EQ(ast->content.size(), 1u);
  EXPECT_EQ(ast->content[0]->str_value, "{literal}");
}

TEST(ParserTest, UnaryMinus) {
  EXPECT_EQ(Sexpr("-3"), "(neg 3)");
  EXPECT_EQ(Sexpr("2 - -3"), "(- 2 (neg 3))");
}

TEST(ParserTest, PrologFunctionDeclaration) {
  Parser parser(
      "declare function local:convert($v) { 2.20371 * $v };\n"
      "local:convert(10)");
  auto query = parser.ParseQuery();
  ASSERT_TRUE(query.ok()) << query.status();
  ASSERT_EQ(query->functions.size(), 1u);
  EXPECT_EQ(query->functions[0].name, "local:convert");
  EXPECT_EQ(query->functions[0].params,
            (std::vector<std::string>{"v"}));
  EXPECT_EQ(AstToString(*query->body), "(local:convert 10)");
}

TEST(ParserTest, KeywordsAreContextual) {
  // Element names that collide with keywords still parse as steps.
  EXPECT_EQ(Sexpr("$m/from"), "(path $m /from)");
  EXPECT_EQ(Sexpr("/site/regions"), "(path / /site /regions)");
}

TEST(ParserTest, Errors) {
  for (const char* bad :
       {"for $x return $x",    // missing 'in'
        "for $x in /a",        // missing return
        "<a>{1}</b>",          // mismatched constructor tags
        "1 +",                 // dangling operator
        "count(",              // unterminated call
        "$x[",                 // unterminated predicate
        "if (1) then 2"}) {    // missing else
    Parser parser(bad);
    EXPECT_FALSE(parser.ParseExpression().ok()) << bad;
  }
}

// Queries are untrusted serving input: pathological nesting must come
// back as a parse error, never as unbounded recursion (stack overflow =
// remotely triggerable crash; found by fuzz/fuzz_query_parser.cc).
TEST(ParserTest, PathologicalNestingIsRejectedNotCrashed) {
  constexpr size_t kDeep = 100000;

  // "((((…1…))))" recurses through the whole ParseExprSingle chain.
  std::string parens(kDeep, '(');
  parens += '1';
  parens.append(kDeep, ')');
  {
    Parser parser(parens);
    auto result = parser.ParseExpression();
    ASSERT_FALSE(result.ok());
    EXPECT_NE(result.status().message().find("nesting"), std::string::npos)
        << result.status();
  }

  // "-----1" recurses directly in ParseUnary.
  std::string minuses(kDeep, '-');
  minuses += '1';
  {
    Parser parser(minuses);
    EXPECT_FALSE(parser.ParseExpression().ok());
  }

  // "<a><a><a>…" recurses directly in ParseConstructorAt.
  std::string constructors;
  for (size_t i = 0; i < kDeep; ++i) constructors += "<a>";
  {
    Parser parser(constructors);
    EXPECT_FALSE(parser.ParseExpression().ok());
  }
}

// The guard must not reject any realistic nesting depth.
TEST(ParserTest, ModerateNestingStillParses) {
  std::string parens(100, '(');
  parens += '1';
  parens.append(100, ')');
  Parser parser(parens);
  EXPECT_TRUE(parser.ParseExpression().ok());
}

// Every rejection is a kInvalidQuery carrying a stable machine-readable
// code plus position: "[slug] line:col: message (near '<snippet>')".
// The slugs are serving API — clients dispatch on them via
// ParseErrorCodeOf — so this test pins them.
TEST(ParserTest, RejectionsCarryStableCodesAndPositions) {
  struct Case {
    const char* text;
    ParseErrorCode code;
  };
  const Case cases[] = {
      {"for $x in", ParseErrorCode::kUnexpectedToken},
      {"1 + ", ParseErrorCode::kUnexpectedToken},
      {"1 1", ParseErrorCode::kTrailingInput},
      {"<a></b>", ParseErrorCode::kMismatchedEndTag},
      {"<a", ParseErrorCode::kUnterminatedConstructor},
      {"<a b></a>", ParseErrorCode::kBadConstructorAttr},
      {"<a>}</a>", ParseErrorCode::kUnescapedBrace},
  };
  for (const Case& c : cases) {
    auto result = ParseQueryText(c.text);
    ASSERT_FALSE(result.ok()) << c.text;
    const Status& status = result.status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidQuery) << status;
    EXPECT_EQ(ParseErrorCodeOf(status), c.code) << status;
    const std::string expected_prefix =
        "[" + std::string(ParseErrorCodeSlug(c.code)) + "] ";
    EXPECT_EQ(status.message().rfind(expected_prefix, 0), 0u) << status;
    EXPECT_NE(status.message().find(" (near '"), std::string::npos) << status;
  }
}

TEST(ParserTest, DiagnosticsPointAtLineAndColumn) {
  // The stray ')' sits at line 2, column 10.
  auto result = ParseQueryText("let $x := 1\nreturn $x)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ParseErrorCodeOf(result.status()),
            ParseErrorCode::kTrailingInput);
  EXPECT_NE(result.status().message().find("] 2:10: "), std::string::npos)
      << result.status();
}

TEST(ParserTest, NestingGuardReportsCodedError) {
  std::string parens(1000, '(');
  parens += '1';
  auto result = ParseQueryText(parens);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(ParseErrorCodeOf(result.status()),
            ParseErrorCode::kNestingTooDeep);
}

TEST(ParserTest, UnrelatedStatusMapsToUnknownCode) {
  EXPECT_EQ(ParseErrorCodeOf(Status::Internal("boom")),
            ParseErrorCode::kUnknown);
  EXPECT_EQ(ParseErrorCodeOf(Status::InvalidQuery("[not-a-slug] 1:1: x")),
            ParseErrorCode::kUnknown);
}

TEST(ParserTest, AllTwentyBenchmarkQueriesParse) {
  for (const auto& spec : bench::AllQueries()) {
    auto parsed = ParseQueryText(spec.text);
    EXPECT_TRUE(parsed.ok()) << "Q" << spec.number << ": "
                             << parsed.status();
  }
}

}  // namespace
}  // namespace xmark::query
