// Property test: the evaluator must produce identical results under every
// combination of optimizer features — the features may only change cost,
// never semantics. Runs a representative query set over all 2^9 option
// combinations against the fully-indexed native store, each combination
// with the planner both on and off, plus cross-store Q1-Q20 byte-parity
// for planner on vs off (the planner is a lowering of the interpreter, not
// a semantic change) and for arena construction on vs off.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "query/value.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "store/document_catalog.h"
#include "util/logging.h"
#include "xmark/engine.h"
#include "xmark/queries.h"
#include "xmark/result_check.h"
#include "xml/dtd.h"

namespace xmark::query {
namespace {

const std::string& TestDocument() {
  static const std::string* const kDoc = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    return new std::string(gen::XmlGen(options).GenerateToString());
  }();
  return *kDoc;
}

const store::DomStore& Store() {
  static const store::DomStore* const kStore = [] {
    store::DomStore::Options dom_options;
    auto store = store::DomStore::Load(TestDocument(), dom_options);
    XMARK_CHECK(store.ok());
    return store->release();
  }();
  return *kStore;
}

EvaluatorOptions FromMask(int mask) {
  EvaluatorOptions options;
  options.use_id_index = mask & 1;
  options.use_tag_index = mask & 2;
  options.use_path_index = mask & 4;
  options.hash_join = mask & 8;
  options.lazy_let = mask & 16;
  options.cache_invariant_paths = mask & 32;
  options.descendant_cursors = mask & 64;
  options.arena_construction = mask & 128;
  options.compiled_pipelines = mask & 256;
  // The band join rides the join-strategy bit: mask 0 stays the fully
  // naive nested-loop baseline.
  options.band_join = options.hash_join;
  return options;
}

// Queries covering every feature: exact match (id index), regular paths
// (tag/path index), reference chasing (hash join), value join (band join,
// lazy let + invariant cache), ordered access and aggregation, plus
// template-heavy result construction (arena construction, Q10/Q13).
const int kQueries[] = {1, 2, 6, 7, 8, 10, 11, 12, 13, 20};

class OptionsMatrix : public ::testing::TestWithParam<int> {};

TEST_P(OptionsMatrix, SameResultsAsAllFeaturesOff) {
  const EvaluatorOptions options = FromMask(GetParam());
  for (int q : kQueries) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok()) << "Q" << q;

    Evaluator baseline(&Store(), FromMask(0));
    auto expected = baseline.Run(*parsed);
    ASSERT_TRUE(expected.ok()) << "Q" << q << ": " << expected.status();

    Evaluator subject(&Store(), options);
    auto actual = subject.Run(*parsed);
    ASSERT_TRUE(actual.ok()) << "Q" << q << ": " << actual.status();

    bench::EquivalenceOptions eq;
    EXPECT_TRUE(bench::ResultsEquivalent(*expected, *actual, eq))
        << "Q" << q << " differs under option mask " << GetParam() << ": "
        << bench::ExplainDifference(*expected, *actual, eq);
  }
}

// Planner parity per mask: lowering the same toggles into a QueryPlan must
// not change a byte relative to the runtime-decided interpreter.
TEST_P(OptionsMatrix, PlannerLoweringIsByteIdentical) {
  EvaluatorOptions planned = FromMask(GetParam());
  planned.use_planner = true;
  EvaluatorOptions interpreted = planned;
  interpreted.use_planner = false;
  for (int q : kQueries) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok()) << "Q" << q;

    Evaluator with_planner(&Store(), planned);
    auto a = with_planner.Run(*parsed);
    ASSERT_TRUE(a.ok()) << "Q" << q << ": " << a.status();

    Evaluator without_planner(&Store(), interpreted);
    auto b = without_planner.Run(*parsed);
    ASSERT_TRUE(b.ok()) << "Q" << q << ": " << b.status();

    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
        << "Q" << q << " planner on/off diverges under mask " << GetParam();
  }
}

// Catalog scans under the full matrix: a corpus ingested with 4 threads
// and queried through doc("id") / collection() must serialize identically
// under every optimizer feature mask, with the collection fan-out running
// across the exec pool — the catalog layer may only route and
// concatenate, never change semantics.
bench::Engine* MatrixCatalogEngine() {
  static bench::Engine* const kEngine = [] {
    std::unique_ptr<bench::Engine> engine =
        bench::Engine::Create(bench::SystemId::kD);
    store::LoadOptions load;
    load.threads = 4;
    engine->set_load_options(load);
    std::vector<store::CorpusDocument> docs;
    for (int i = 0; i < 3; ++i) {
      gen::GeneratorOptions g;
      g.scale = 0.002;
      g.seed = 50 + i;
      store::CorpusDocument doc;
      doc.id = "m-" + std::to_string(i) + ".xml";
      doc.xml = gen::XmlGen(g).GenerateToString();
      docs.push_back(std::move(doc));
    }
    XMARK_CHECK(engine->LoadCorpus(docs).ok());
    return engine.release();
  }();
  return kEngine;
}

std::string RunCatalogSerialized(const EvaluatorOptions& options,
                                 const std::string& text) {
  bench::Engine* engine = MatrixCatalogEngine();
  engine->set_evaluator_options(options);
  auto result = engine->Run(text);
  if (!result.ok()) {
    ADD_FAILURE() << text << ": " << result.status().message();
    return "<error>";
  }
  return SerializeSequence(*result);
}

TEST_P(OptionsMatrix, CatalogScansMatchAllFeaturesOff) {
  constexpr std::string_view kNeedle = "document(\"auction.xml\")";
  for (int q : {1, 8, 10, 20}) {
    for (const char* entry : {"doc(\"m-1.xml\")", "collection()"}) {
      std::string text{bench::GetQuery(q).text};
      for (size_t hit = text.find(kNeedle); hit != std::string::npos;
           hit = text.find(kNeedle, hit)) {
        text.replace(hit, kNeedle.size(), entry);
      }
      // Baseline (mask 0, serial) is mask-independent: compute it once.
      static std::map<std::string, std::string>* const kBaselines =
          new std::map<std::string, std::string>();
      auto baseline = kBaselines->find(text);
      if (baseline == kBaselines->end()) {
        baseline = kBaselines
                       ->emplace(text,
                                 RunCatalogSerialized(FromMask(0), text))
                       .first;
      }
      const std::string& expected = baseline->second;
      EvaluatorOptions subject = FromMask(GetParam());
      subject.parallel_exec.enabled = true;
      subject.parallel_exec.threads = 4;
      subject.parallel_exec.min_morsel_ids = 1;
      EXPECT_EQ(RunCatalogSerialized(subject, text), expected)
          << "Q" << q << " via " << entry << " differs under option mask "
          << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, OptionsMatrix,
                         ::testing::Range(0, 512));

// Cross-store planner parity: Q1-Q20 on all four physical mappings, every
// optimization on, planner on vs off — byte-identical serialized results.
class PlannerStoreParity : public ::testing::TestWithParam<int> {
 protected:
  static const StorageAdapter* StoreByIndex(int index) {
    static const store::EdgeStore* const kEdge = [] {
      auto s = store::EdgeStore::Load(TestDocument());
      XMARK_CHECK(s.ok());
      return s->release();
    }();
    static const store::FragmentedStore* const kFragmented = [] {
      auto s = store::FragmentedStore::Load(TestDocument());
      XMARK_CHECK(s.ok());
      return s->release();
    }();
    static const store::InlinedStore* const kInlined = [] {
      auto s = store::InlinedStore::Load(TestDocument(), xml::kAuctionDtd);
      XMARK_CHECK(s.ok());
      return s->release();
    }();
    switch (index) {
      case 0:
        return kEdge;
      case 1:
        return kFragmented;
      case 2:
        return kInlined;
      default:
        return &Store();
    }
  }
};

TEST_P(PlannerStoreParity, Q1ToQ20ByteIdenticalPlannerOnOff) {
  const int query = GetParam();
  auto parsed = ParseQueryText(bench::GetQuery(query).text);
  ASSERT_TRUE(parsed.ok());
  for (int s = 0; s < 4; ++s) {
    const StorageAdapter* store = StoreByIndex(s);
    EvaluatorOptions on;  // defaults: everything on, planner on
    EvaluatorOptions off = on;
    off.use_planner = false;
    off.band_join = false;  // band rewrites exist only under the planner

    Evaluator planned(store, on);
    auto a = planned.Run(*parsed);
    ASSERT_TRUE(a.ok()) << store->mapping_name() << " Q" << query << ": "
                        << a.status();
    Evaluator interpreted(store, off);
    auto b = interpreted.Run(*parsed);
    ASSERT_TRUE(b.ok()) << store->mapping_name() << " Q" << query << ": "
                        << b.status();
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
        << store->mapping_name() << " Q" << query
        << " diverges between planner and interpreter";

    // Arena construction is a pure materialization strategy: planner on
    // with the arena off must also match byte for byte.
    EvaluatorOptions no_arena = on;
    no_arena.arena_construction = false;
    Evaluator heap_constructed(store, no_arena);
    auto c = heap_constructed.Run(*parsed);
    ASSERT_TRUE(c.ok()) << store->mapping_name() << " Q" << query << ": "
                        << c.status();
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*c))
        << store->mapping_name() << " Q" << query
        << " diverges between arena and heap construction";

    // Compiled pipelines are a pure execution strategy: the fused
    // monomorphic loops must not change a byte relative to the generic
    // operators on any store.
    EvaluatorOptions no_pipe = on;
    no_pipe.compiled_pipelines = false;
    Evaluator generic_ops(store, no_pipe);
    auto d = generic_ops.Run(*parsed);
    ASSERT_TRUE(d.ok()) << store->mapping_name() << " Q" << query << ": "
                        << d.status();
    EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*d))
        << store->mapping_name() << " Q" << query
        << " diverges between compiled pipelines and generic operators";
  }
}

// Morsel-parallel execution is pure scheduling: chunked descendant scans
// merge in deterministic chunk order and the band-domain sort is a
// deterministic parallel stable sort, so results must be byte-identical
// for any worker count. min_morsel_ids=1 forces the morsel path even at
// this tiny scale.
TEST_P(PlannerStoreParity, ParallelExecByteIdentical) {
  const int query = GetParam();
  auto parsed = ParseQueryText(bench::GetQuery(query).text);
  ASSERT_TRUE(parsed.ok());
  for (int s = 0; s < 4; ++s) {
    const StorageAdapter* store = StoreByIndex(s);
    EvaluatorOptions serial;  // defaults: everything on, parallel off
    Evaluator base(store, serial);
    auto a = base.Run(*parsed);
    ASSERT_TRUE(a.ok()) << store->mapping_name() << " Q" << query << ": "
                        << a.status();
    for (unsigned threads : {1u, 4u}) {
      EvaluatorOptions par = serial;
      par.parallel_exec.enabled = true;
      par.parallel_exec.threads = threads;
      par.parallel_exec.min_morsel_ids = 1;
      Evaluator subject(store, par);
      auto b = subject.Run(*parsed);
      ASSERT_TRUE(b.ok()) << store->mapping_name() << " Q" << query << ": "
                          << b.status();
      EXPECT_EQ(SerializeSequence(*a), SerializeSequence(*b))
          << store->mapping_name() << " Q" << query << " diverges with "
          << threads << " exec threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PlannerStoreParity,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace xmark::query
