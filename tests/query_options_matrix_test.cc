// Property test: the evaluator must produce identical results under every
// combination of optimizer features — the features may only change cost,
// never semantics. Runs a representative query set over all 2^7 option
// combinations against the fully-indexed native store.

#include <gtest/gtest.h>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "store/dom_store.h"
#include "util/logging.h"
#include "xmark/queries.h"
#include "xmark/result_check.h"

namespace xmark::query {
namespace {

const store::DomStore& Store() {
  static const store::DomStore* const kStore = [] {
    gen::GeneratorOptions options;
    options.scale = 0.002;
    store::DomStore::Options dom_options;
    auto store = store::DomStore::Load(gen::XmlGen(options).GenerateToString(),
                                       dom_options);
    XMARK_CHECK(store.ok());
    return store->release();
  }();
  return *kStore;
}

EvaluatorOptions FromMask(int mask) {
  EvaluatorOptions options;
  options.use_id_index = mask & 1;
  options.use_tag_index = mask & 2;
  options.use_path_index = mask & 4;
  options.hash_join = mask & 8;
  options.lazy_let = mask & 16;
  options.cache_invariant_paths = mask & 32;
  options.descendant_cursors = mask & 64;
  return options;
}

// Queries covering every feature: exact match (id index), regular paths
// (tag/path index), reference chasing (hash join), value join (lazy let +
// invariant cache), plus ordered access and aggregation.
const int kQueries[] = {1, 2, 6, 7, 8, 11, 12, 20};

class OptionsMatrix : public ::testing::TestWithParam<int> {};

TEST_P(OptionsMatrix, SameResultsAsAllFeaturesOff) {
  const EvaluatorOptions options = FromMask(GetParam());
  for (int q : kQueries) {
    auto parsed = ParseQueryText(bench::GetQuery(q).text);
    ASSERT_TRUE(parsed.ok()) << "Q" << q;

    Evaluator baseline(&Store(), FromMask(0));
    auto expected = baseline.Run(*parsed);
    ASSERT_TRUE(expected.ok()) << "Q" << q << ": " << expected.status();

    Evaluator subject(&Store(), options);
    auto actual = subject.Run(*parsed);
    ASSERT_TRUE(actual.ok()) << "Q" << q << ": " << actual.status();

    bench::EquivalenceOptions eq;
    EXPECT_TRUE(bench::ResultsEquivalent(*expected, *actual, eq))
        << "Q" << q << " differs under option mask " << GetParam() << ": "
        << bench::ExplainDifference(*expected, *actual, eq);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, OptionsMatrix,
                         ::testing::Range(0, 128));

}  // namespace
}  // namespace xmark::query
