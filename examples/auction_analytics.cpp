// Auction-site analytics: the "large-scale analytical XML processing" the
// paper positions XMark around, expressed two ways over the same data:
//   (a) as XQuery against an Engine, and
//   (b) as relational plans (scan/join/aggregate) over the shredded
//       entity tables — the flat-file mapping route of section 7.
//
//   ./auction_analytics [--sf=0.02]

#include <cstdio>
#include <cstring>

#include "gen/generator.h"
#include "rel/operators.h"
#include "rel/shredder.h"
#include "util/table_printer.h"
#include "xmark/engine.h"
#include "xml/dom.h"

namespace {

double ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) return std::atof(argv[i] + 5);
  }
  return 0.02;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmark;

  gen::GeneratorOptions options;
  options.scale = ParseScale(argc, argv);
  const std::string document = gen::XmlGen(options).GenerateToString();

  // ---- (a) XQuery route -------------------------------------------------
  auto engine = bench::Engine::Create(bench::SystemId::kD);
  if (!engine->Load(document).ok()) return 1;

  std::printf("== XQuery: five most expensive closed auctions ==\n");
  auto expensive = engine->Run(R"(
    for $t in document("auction.xml")/site/closed_auctions/closed_auction
    where $t/price/text() >= 300
    return <sale price="{$t/price/text()}" buyer="{$t/buyer/@person}"/>
  )");
  if (!expensive.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 expensive.status().ToString().c_str());
    return 1;
  }
  size_t shown = 0;
  for (const query::Item& item : *expensive) {
    if (shown++ == 5) break;
    std::printf("  %s\n", query::SerializeItem(item).c_str());
  }
  std::printf("  (%zu sales >= 300 in total)\n\n", expensive->size());

  // ---- (b) relational route ----------------------------------------------
  auto dom = xml::Document::Parse(document);
  if (!dom.ok()) return 1;
  auto tables = rel::ShredAuctionDocument(*dom);
  if (!tables.ok()) return 1;

  std::printf("== Relational: sales volume per continent ==\n");
  // closed_auctions |x|_{item=id} items, grouped by continent.
  const size_t item_col =
      static_cast<size_t>(tables->closed_auctions->ColumnIndex("item"));
  const size_t price_col =
      static_cast<size_t>(tables->closed_auctions->ColumnIndex("price"));
  const size_t ca_width = tables->closed_auctions->num_columns();
  const size_t continent_col =
      ca_width + static_cast<size_t>(tables->items->ColumnIndex("continent"));

  auto join = std::make_unique<rel::HashJoin>(
      std::make_unique<rel::TableScan>(tables->closed_auctions.get()),
      std::make_unique<rel::TableScan>(tables->items.get()), item_col,
      static_cast<size_t>(tables->items->ColumnIndex("id")));
  rel::Aggregate agg(std::move(join), {continent_col},
                     {{rel::Aggregate::Func::kCount, 0},
                      {rel::Aggregate::Func::kSum, price_col},
                      {rel::Aggregate::Func::kMax, price_col}});
  auto rows = rel::Collect(&agg);
  if (!rows.ok()) {
    std::fprintf(stderr, "plan failed: %s\n",
                 rows.status().ToString().c_str());
    return 1;
  }
  TablePrinter table({"continent", "sales", "revenue", "max price"});
  for (const rel::Row& row : *rows) {
    table.AddRow({rel::ValueToString(row[0]), rel::ValueToString(row[1]),
                  rel::ValueToString(row[2]), rel::ValueToString(row[3])});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf("== Relational: income bands of active buyers ==\n");
  // persons |x|_{id=buyer} closed_auctions, then band incomes (Q20 shape).
  const size_t pid = static_cast<size_t>(tables->persons->ColumnIndex("id"));
  const size_t income =
      static_cast<size_t>(tables->persons->ColumnIndex("income"));
  auto buyers = std::make_unique<rel::HashJoin>(
      std::make_unique<rel::TableScan>(tables->persons.get()),
      std::make_unique<rel::TableScan>(tables->closed_auctions.get()), pid,
      static_cast<size_t>(tables->closed_auctions->ColumnIndex("buyer")));
  auto banded = std::make_unique<rel::Project>(
      std::move(buyers), [income](const rel::Row& row) -> rel::Row {
        const double v = std::get<double>(row[income]);
        std::string band = v < 0        ? "no income data"
                           : v >= 100000 ? "preferred (>=100k)"
                           : v >= 30000  ? "standard (30k..100k)"
                                         : "challenge (<30k)";
        return {band};
      });
  rel::Aggregate band_agg(std::move(banded), {0},
                          {{rel::Aggregate::Func::kCount, 0}});
  auto band_rows = rel::Collect(&band_agg);
  if (!band_rows.ok()) return 1;
  TablePrinter bands({"income band", "purchases"});
  for (const rel::Row& row : *band_rows) {
    bands.AddRow({rel::ValueToString(row[0]), rel::ValueToString(row[1])});
  }
  std::printf("%s", bands.ToString().c_str());
  return 0;
}
