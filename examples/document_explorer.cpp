// Document explorer: loads an XMark document (generated or from a file),
// prints its structural summary (the DataGuide System D exploits), and
// evaluates ad hoc queries from the command line.
//
//   ./document_explorer [--sf=0.005] [--file=doc.xml]
//                       [--query='for $p in /site/people/person ...']
//
// Without --query it prints the summary plus a tag census — the kind of
// schema exploration the paper's closing remark wishes engines offered
// ("tell the user whether a given sequence of tags actually exists").

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gen/generator.h"
#include "query/evaluator.h"
#include "query/parser.h"
#include "store/dom_store.h"
#include "util/table_printer.h"

namespace {

std::string FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmark;

  std::string document;
  const std::string file = FlagValue(argc, argv, "file");
  if (!file.empty()) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    document = buf.str();
  } else {
    gen::GeneratorOptions options;
    const std::string sf = FlagValue(argc, argv, "sf");
    options.scale = sf.empty() ? 0.005 : std::atof(sf.c_str());
    document = gen::XmlGen(options).GenerateToString();
  }

  store::DomStore::Options store_options;  // all indexes on
  auto store = store::DomStore::Load(document, store_options);
  if (!store.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  const std::string query_text = FlagValue(argc, argv, "query");
  if (!query_text.empty()) {
    auto parsed = query::ParseQueryText(query_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    query::EvaluatorOptions eval_options;
    query::Evaluator evaluator(store->get(), eval_options);
    auto result = evaluator.Run(*parsed);
    if (!result.ok()) {
      std::fprintf(stderr, "evaluation error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", query::SerializeSequence(*result).c_str());
    std::fprintf(stderr, "(%zu items)\n", result->size());
    return 0;
  }

  const xml::Document& doc = (*store)->document();
  std::printf("document: %zu nodes, %zu attributes, %zu distinct tags, "
              "%zu distinct root-to-node paths\n\n",
              doc.num_nodes(), doc.num_attributes(), doc.names().size(),
              (*store)->SummaryPaths());

  // Tag census via the tag index.
  TablePrinter census({"tag", "count", "example path count (//tag)"});
  std::vector<std::pair<std::string, size_t>> tags;
  for (size_t id = 0; id < doc.names().size(); ++id) {
    const auto* nodes =
        (*store)->NodesByTag(static_cast<xml::NameId>(id));
    if (nodes != nullptr && !nodes->empty()) {
      tags.emplace_back(doc.names().Spelling(static_cast<xml::NameId>(id)),
                        nodes->size());
    }
  }
  std::sort(tags.begin(), tags.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (size_t i = 0; i < tags.size() && i < 15; ++i) {
    census.AddRow({tags[i].first, std::to_string(tags[i].second), ""});
  }
  std::printf("%s\n", census.ToString().c_str());
  std::printf("hint: re-run with --query='...' to evaluate an XQuery "
              "expression against this document.\n");
  return 0;
}
