// Quickstart: generate an XMark document, load it into a query engine and
// run benchmark queries.
//
//   ./quickstart [--sf=0.01]
//
// This walks the three layers of the library:
//   1. gen::XmlGen        — the scalable auction-document generator,
//   2. bench::Engine      — a storage mapping + query processor (system D:
//                           native store with structural summary),
//   3. bench::AllQueries  — the twenty benchmark queries.

#include <cstdio>
#include <cstring>
#include <string>

#include "gen/generator.h"
#include "query/value.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace {

double ParseScale(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sf=", 5) == 0) return std::atof(argv[i] + 5);
  }
  return 0.01;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmark;

  // 1. Generate a benchmark document (deterministic in scale and seed).
  gen::GeneratorOptions options;
  options.scale = ParseScale(argc, argv);
  options.seed = 42;
  gen::XmlGen generator(options);
  const std::string document = generator.GenerateToString();
  std::printf("generated %.1f KB document: %lld persons, %lld items, "
              "%lld open + %lld closed auctions\n\n",
              document.size() / 1024.0,
              static_cast<long long>(generator.counts().persons),
              static_cast<long long>(generator.counts().items),
              static_cast<long long>(generator.counts().open_auctions),
              static_cast<long long>(generator.counts().closed_auctions));

  // 2. Load it into an engine (System D: native store, all indexes).
  auto engine = bench::Engine::Create(bench::SystemId::kD);
  const Status load_status = engine->Load(document);
  if (!load_status.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 load_status.ToString().c_str());
    return 1;
  }
  std::printf("loaded into '%s' (%zu KB in store)\n\n",
              std::string(engine->store()->mapping_name()).c_str(),
              engine->StorageBytes() / 1024);

  // 3. Run a few queries.
  for (int q : {1, 5, 8, 14}) {
    const bench::QuerySpec& spec = bench::GetQuery(q);
    std::printf("Q%d (%s): %s\n", spec.number,
                std::string(spec.category).c_str(),
                std::string(spec.statement).c_str());
    auto result = engine->Run(spec.text);
    if (!result.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("  -> %zu item(s)", result->size());
    if (!result->empty()) {
      std::string first = query::SerializeItem(result->front());
      if (first.size() > 70) first = first.substr(0, 70) + "...";
      std::printf(", first: %s", first.c_str());
    }
    std::printf("\n\n");
  }
  return 0;
}
