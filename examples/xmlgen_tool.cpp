// xmlgen — command-line document generator, mirroring the original tool's
// interface (paper §4.5): scalable, deterministic, constant-memory, with
// the split mode of §5 (n entities per file).
//
//   ./xmlgen_tool --sf=1.0 --out=auction.xml
//   ./xmlgen_tool --sf=0.1 --split=1000 --outdir=parts/
//   ./xmlgen_tool --sf=10 --measure          (size only, no output)

#include <cstdio>
#include <cstring>
#include <string>

#include "gen/generator.h"
#include "util/timer.h"

namespace {

std::string FlagValue(int argc, char** argv, const char* name,
                      const char* def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xmark;

  gen::GeneratorOptions options;
  options.scale = std::atof(FlagValue(argc, argv, "sf", "0.01").c_str());
  options.seed =
      static_cast<uint64_t>(std::atoll(FlagValue(argc, argv, "seed", "42").c_str()));
  options.indent = HasFlag(argc, argv, "indent");
  if (options.scale <= 0) {
    std::fprintf(stderr, "--sf must be positive\n");
    return 1;
  }

  gen::XmlGen generator(options);
  const gen::EntityCounts& counts = generator.counts();
  std::fprintf(stderr,
               "xmlgen: factor %g seed %llu -> %lld persons, %lld items, "
               "%lld open, %lld closed, %lld categories\n",
               options.scale,
               static_cast<unsigned long long>(options.seed),
               static_cast<long long>(counts.persons),
               static_cast<long long>(counts.items),
               static_cast<long long>(counts.open_auctions),
               static_cast<long long>(counts.closed_auctions),
               static_cast<long long>(counts.categories));

  PhaseTimer timer;
  if (HasFlag(argc, argv, "measure")) {
    const size_t bytes = generator.MeasureSize();
    std::printf("%zu bytes (%.2f MB) in %.1f ms\n", bytes,
                bytes / 1048576.0, timer.ElapsedWallMillis());
    return 0;
  }

  const std::string split = FlagValue(argc, argv, "split", "");
  if (!split.empty()) {
    const std::string outdir = FlagValue(argc, argv, "outdir", ".");
    auto files = generator.GenerateSplit(outdir, std::atoi(split.c_str()));
    if (!files.ok()) {
      std::fprintf(stderr, "split generation failed: %s\n",
                   files.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu files under %s in %.1f ms\n",
                 files->size(), outdir.c_str(), timer.ElapsedWallMillis());
    return 0;
  }

  const std::string out = FlagValue(argc, argv, "out", "auction.xml");
  const Status st = generator.GenerateToFile(out);
  if (!st.ok()) {
    std::fprintf(stderr, "generation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s in %.1f ms\n", out.c_str(),
               timer.ElapsedWallMillis());
  return 0;
}
