// libFuzzer harness for the XQuery lexer + recursive-descent parser
// (query/lexer.h, query/parser.h).
//
// The parser is the serving front end's attack surface: every query a
// session submits is lexed and parsed before the plan cache is even
// consulted, so malformed input must produce a Status, never a crash,
// unbounded recursion or an out-of-bounds token read. Seed corpus:
// Q1-Q20 (fuzz/corpus/query/) so mutations start from the real grammar.
//
// Build: -DBUILD_FUZZERS=ON (see fuzz/fuzz_sax_parser.cc for the
// clang/libFuzzer vs standalone-driver split).

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "query/lexer.h"
#include "query/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // The parser's recursion depth tracks expression nesting; inputs like
  // "((((..." recurse per byte. 64 KiB keeps the stack comfortably inside
  // the default 8 MiB limit while still exploring the whole grammar.
  if (size > 64 * 1024) return 0;
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  {
    // Whole-module entry point (prolog + FLWOR body) — the path every
    // EngineSession::Prepare takes.
    xmark::query::Parser parser(input);
    auto result = parser.ParseQuery();
    (void)result;  // parse errors are expected outcomes, crashes are not
  }
  {
    // Standalone-expression entry point (tests / interactive use) hits
    // productions a module parse may reject early.
    xmark::query::Parser parser(input);
    auto result = parser.ParseExpression();
    (void)result;
  }
  return 0;
}
