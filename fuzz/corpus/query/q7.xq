
for $p in document("auction.xml")/site
return count($p//description) + count($p//mail) + count($p//email)
