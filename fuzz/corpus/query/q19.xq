
for $b in document("auction.xml")/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location)
return <item name="{$k}">{$b/location/text()}</item>
