
for $b in document("auction.xml")/site/open_auctions/open_auction
return <increase>{$b/bidder[1]/increase/text()}</increase>
