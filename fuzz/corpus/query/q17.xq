
for $p in document("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>
