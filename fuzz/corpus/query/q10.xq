
for $i in distinct-values(
    document("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in document("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{$t/profile/gender/text()}</sexe>
                     <age>{$t/profile/age/text()}</age>
                     <education>{$t/profile/education/text()}</education>
                     <revenu>{$t/profile/income/text()}</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{$t/name/text()}</nom>
                     <rue>{$t/address/street/text()}</rue>
                     <ville>{$t/address/city/text()}</ville>
                     <pays>{$t/address/country/text()}</pays>
                     <reseau>
                       <courrier>{$t/emailaddress/text()}</courrier>
                       <pagePerso>{$t/homepage/text()}</pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                 </personne>
return <categorie><id>{$i}</id>{$p}</categorie>
