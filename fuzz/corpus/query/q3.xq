
for $b in document("auction.xml")/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2
      <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}"
                 last="{$b/bidder[last()]/increase/text()}"/>
