
for $i in document("auction.xml")/site//item
where contains($i/description, "gold")
return $i/name/text()
