
count(for $i in document("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price)
