
for $b in document("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
