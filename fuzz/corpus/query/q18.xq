
declare function local:convert($v) { 2.20371 * $v };
for $i in document("auction.xml")/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text()))
