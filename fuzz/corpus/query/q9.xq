
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $p/@id = $t/buyer/@person
          return for $t2 in document("auction.xml")/site/regions/europe/item
                 where $t/itemref/@item = $t2/@id
                 return <item>{$t2/name/text()}</item>
return <person name="{$p/name/text()}">{$a}</person>
