
for $b in document("auction.xml")/site/regions
return count($b//item)
