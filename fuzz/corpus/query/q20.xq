
<result>
  <preferred>{count(document("auction.xml")
      /site/people/person/profile[income >= 100000])}</preferred>
  <standard>{count(document("auction.xml")
      /site/people/person/profile[income < 100000 and income >= 30000])}</standard>
  <challenge>{count(document("auction.xml")
      /site/people/person/profile[income < 30000])}</challenge>
  <na>{count(for $p in document("auction.xml")/site/people/person
             where empty($p/profile/income)
             return $p)}</na>
</result>
