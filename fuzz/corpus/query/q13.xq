
for $i in document("auction.xml")/site/regions/australia/item
return <item name="{$i/name/text()}">{$i/description}</item>
