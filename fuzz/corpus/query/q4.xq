
for $b in document("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"],
      $pr2 in $b/bidder/personref[@person = "person51"]
      satisfies $pr1 << $pr2
return <history>{$b/reserve/text()}</history>
