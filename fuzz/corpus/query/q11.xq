
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/income > 5000 * $i/text()
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
