
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{count($a)}</item>
