
for $a in document("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem
               /text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>
