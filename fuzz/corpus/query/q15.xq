
for $a in document("auction.xml")/site/closed_auctions/closed_auction
          /annotation/description/parlist/listitem/parlist/listitem
          /text/emph/keyword/text()
return <text>{$a}</text>
