// Fallback driver for the fuzz harnesses when the compiler has no
// libFuzzer (-fsanitize=fuzzer is clang-only; GCC builds get this file
// linked in instead).
//
// Usage: <fuzzer> [file-or-directory ...]
//
// Every named file — and every regular file inside a named directory —
// is fed to LLVMFuzzerTestOneInput once. This is exactly libFuzzer's
// "-runs=0 corpus/" regression mode, so the sanitizer CI jobs and plain
// ctest runs replay the committed seed corpus on every build even
// without clang.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (const auto& f : files) failures += RunFile(f);
  std::printf("ran %zu corpus inputs, %d unreadable\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}
