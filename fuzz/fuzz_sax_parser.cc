// libFuzzer harness for the streaming XML parser (xml/sax_parser.h).
//
// The SAX layer is the outermost attack surface of the bulkload path:
// every byte of every document flows through its tokenizer, entity
// decoder and well-formedness checks before any store sees it. The
// harness drives both the whole-document and the fragment entry points
// (the parallel bulkload hands arbitrary byte ranges to ParseFragment,
// so mid-token cuts must be handled, not assumed away).
//
// Build: -DBUILD_FUZZERS=ON. With clang the binary is a real libFuzzer
// fuzzer; elsewhere fuzz/standalone_driver.cc turns it into a corpus
// regression runner (see that file).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "xml/sax_parser.h"

namespace {

// Touches every byte of every view the parser hands out, so a view into
// freed or out-of-bounds memory becomes an ASan fault instead of a
// silently wrong pointer. The checksum is kept (volatile) so the reads
// cannot be optimized away.
class TouchingHandler : public xmark::xml::SaxHandler {
 public:
  xmark::Status OnStartElement(
      std::string_view name,
      const std::vector<xmark::xml::SaxAttribute>& attributes) override {
    Touch(name);
    for (const auto& attr : attributes) {
      Touch(attr.name);
      Touch(attr.value);
    }
    ++depth_;
    // Adversarial inputs can nest arbitrarily deep; the DOM builder has
    // its own limits, so the harness just bounds its own walk.
    if (depth_ > 100000) {
      return xmark::Status::InvalidArgument("fuzz depth limit");
    }
    return xmark::Status::OK();
  }
  xmark::Status OnEndElement(std::string_view name) override {
    Touch(name);
    --depth_;
    return xmark::Status::OK();
  }
  xmark::Status OnCharacters(std::string_view text) override {
    Touch(text);
    return xmark::Status::OK();
  }
  xmark::Status OnComment(std::string_view text) override {
    Touch(text);
    return xmark::Status::OK();
  }
  xmark::Status OnProcessingInstruction(std::string_view target,
                                              std::string_view data) override {
    Touch(target);
    Touch(data);
    return xmark::Status::OK();
  }

 private:
  void Touch(std::string_view s) {
    uint32_t h = 2166136261u;
    for (char c : s) h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
    sink_ = h;
  }

  volatile uint32_t sink_ = 0;
  int depth_ = 0;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);

  {
    xmark::xml::SaxParser parser;
    TouchingHandler handler;
    (void)parser.Parse(input, &handler);  // errors are expected, crashes not
  }
  {
    // Fragment mode: the input is treated as a byte range cut from a
    // larger document — two elements already open, open end allowed —
    // exactly what the parallel bulkload's chunk workers see.
    xmark::xml::SaxParser parser;
    TouchingHandler handler;
    xmark::xml::SaxFragment fragment;
    fragment.open_tags = {"site", "regions"};
    fragment.allow_open_end = true;
    (void)parser.ParseFragment(input, &handler, fragment);
  }
  return 0;
}
