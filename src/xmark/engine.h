#ifndef XMARK_XMARK_ENGINE_H_
#define XMARK_XMARK_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "query/evaluator.h"
#include "query/exec_context.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "query/storage.h"
#include "store/document_catalog.h"
#include "store/load_options.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace xmark::bench {

/// The anonymized systems of the paper's evaluation (§7). Each maps to a
/// storage mapping plus an optimizer feature set; see DESIGN.md §2 for the
/// correspondence with the architectures the paper describes.
enum class SystemId { kA, kB, kC, kD, kE, kF, kG };

inline constexpr std::array<SystemId, 6> kMassStorageSystems = {
    SystemId::kA, SystemId::kB, SystemId::kC,
    SystemId::kD, SystemId::kE, SystemId::kF};

inline constexpr std::array<SystemId, 7> kAllSystems = {
    SystemId::kA, SystemId::kB, SystemId::kC, SystemId::kD,
    SystemId::kE, SystemId::kF, SystemId::kG};

/// "A".."G".
char SystemLabel(SystemId id);

/// One-line architecture description (for tables and docs).
std::string_view SystemArchitecture(SystemId id);

/// A compiled query: either a privately owned compilation (`parsed`, the
/// uncached Prepare path that Table 2 measures per call) or a shared entry
/// from the plan cache (`cached`, the serving path). Execute runs
/// whichever side is set; `module()` resolves it.
struct PreparedQuery {
  query::ParsedQuery parsed;
  std::shared_ptr<const query::CachedQuery> cached;
  bool cache_hit = false;     // cached != null and compile was skipped
  size_t catalog_probes = 0;  // catalog entries inspected while compiling
  size_t name_tests = 0;      // element names resolved
  /// Document scope the query statically binds to (doc("id") /
  /// collection() entry calls); Execute routes on it. Re-resolved against
  /// the live catalog at every Execute, so entries prepared before a
  /// DropDocument miss cleanly instead of dangling.
  query::QueryScope scope;
  /// Original query text, kept for the per-document compiles of a
  /// collection() fan-out.
  std::string source_text;

  const query::ParsedQuery& module() const {
    return cached != nullptr ? cached->parsed : parsed;
  }
};

/// Cumulative per-StatusCode query outcomes across an engine and all its
/// sessions — the serving layer's error taxonomy made observable (Explain
/// and the throughput bench surface these).
struct QueryOutcomes {
  uint64_t ok = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t cancelled = 0;
  uint64_t resource_exhausted = 0;
  uint64_t invalid_query = 0;  // parse/static rejections (incl. ParseError)
  uint64_t other_error = 0;

  /// Buckets `status` into the matching counter.
  void Record(const Status& status);
  uint64_t total() const {
    return ok + deadline_exceeded + cancelled + resource_exhausted +
           invalid_query + other_error;
  }
};

/// State shared by an Engine and every session created from it: the plan
/// cache and the cumulative serving statistics. Held by shared_ptr so
/// sessions stay valid even if the engine is destroyed first.
struct ServingState {
  query::PlanCache plan_cache;
  // Memoized document scopes by query text (scope is a pure function of
  // the text), so the plan-cache hit path never re-parses just to route.
  util::Mutex scope_mu;
  std::unordered_map<std::string, query::QueryScope> scopes
      GUARDED_BY(scope_mu);
  util::Mutex stats_mu;
  // Merged under stats_mu at each query completion; read under stats_mu by
  // Engine::cumulative_stats() / queries_executed().
  query::EvalStats cumulative_stats GUARDED_BY(stats_mu);
  uint64_t queries_executed GUARDED_BY(stats_mu) = 0;
  // Every Prepare/Execute outcome, successes and governed failures alike.
  QueryOutcomes outcomes GUARDED_BY(stats_mu);
};

class EngineSession;

/// One benchmark system: a storage mapping + evaluator configuration.
///
/// The lifecycle mirrors the paper's measurement protocol: Load() is the
/// bulkload of Table 1, Prepare() the compilation phase and Execute() the
/// execution phase of Table 2, and Prepare+Execute together one query run
/// of Table 3 / Figure 4.
///
/// Concurrency: after Load() the store is immutable, so any number of
/// threads may execute queries against it — each through its own
/// EngineSession (CreateSession()). The Engine's own Prepare/Execute/Run
/// remain a single-threaded convenience API (Execute mutates last_stats_
/// and, for System G, the store pointer).
class Engine {
 public:
  /// Creates an unloaded engine for the given system.
  static std::unique_ptr<Engine> Create(SystemId id);

  /// Document id Load() registers the benchmark document under.
  static constexpr std::string_view kDefaultDocumentId = "auction.xml";

  /// Bulkloads the benchmark document (shredding + index build). Resets
  /// the catalog to this single document, registered as
  /// kDefaultDocumentId, and makes it the default-scope document.
  Status Load(std::string_view xml);

  // --- Document catalog --------------------------------------------------
  //
  // Each engine holds N documents of its mapping, keyed by a stable id.
  // Queries route by static scope: doc("id") binds one document by exact
  // id (the paper's "URI ignored" semantics survive only around the
  // canonical "auction.xml" id of legacy Load()), collection() fans out
  // over every document in id order, and plain document() / absolute
  // paths bind the default document (the first ever loaded). System G
  // (reload-per-query) stays single-document.

  /// Loads one document under `id`. kInvalidArgument
  /// "[duplicate-document-id]" when the id is taken.
  Status LoadDocument(std::string_view id, std::string_view xml);

  /// Loads a batch, parallelizing the bulkloads across documents
  /// (load_options().threads pool tasks; byte-deterministic for any
  /// count). All-or-nothing; when run_options() is engaged the whole
  /// batch runs under one governed context, and a deadline/budget
  /// violation unwinds it leaving prior documents queryable.
  Status LoadCorpus(const std::vector<store::CorpusDocument>& docs);

  /// Loads every "*.xml" file of `dir` (sorted by name; the file name is
  /// the document id). Returns the number of documents loaded.
  StatusOr<size_t> LoadCorpusFromDir(const std::string& dir);

  /// Document ids in sorted order.
  std::vector<std::string> ListDocuments() const;

  /// Drops one document. Later doc("id") queries fail with kNotFound;
  /// stale plan-cache entries miss (per-document store uids are never
  /// recycled) instead of crashing. Results already returned keep their
  /// store alive through the snapshot they were executed against.
  Status DropDocument(std::string_view id);

  size_t DocumentCount() const;

  /// Deterministic corpus dump: per-document sections in id order with
  /// prefix-summed global id ranges (the CI ingest-determinism gate diffs
  /// threads=1 vs threads=8 outputs).
  void DumpCatalogState(std::string* out) const;

  /// Bulkload configuration (thread count) applied by Load and by System
  /// G's per-query reloads. Results are identical for any thread count.
  void set_load_options(const store::LoadOptions& options) {
    load_options_ = options;
  }
  const store::LoadOptions& load_options() const { return load_options_; }

  /// Compiles a query: parse, static analysis, catalog/metadata resolution.
  /// Always compiles from scratch — this is the per-call compilation cost
  /// Table 2 amplifies, so it must never be amortized by the plan cache.
  StatusOr<PreparedQuery> Prepare(std::string_view query_text) const;

  /// Compiles through the shared plan cache: parse + catalog resolution +
  /// optimizer lowering happen once per (query text, store, options) and
  /// every later call shares the entry. System G (reload-per-query)
  /// bypasses the cache — its store identity changes on every Execute, so
  /// entries could never be adopted.
  StatusOr<PreparedQuery> PrepareCached(std::string_view query_text) const;

  /// Executes a compiled query. For the embedded System G this includes
  /// re-loading the document — an embedded processor parses its input per
  /// program run, the constant overhead visible across Figure 4.
  /// Governance: when run_options() is engaged a per-run ExecContext is
  /// created for this Execute; pass `ctx` to share one with the caller
  /// (external cancellation). Defaults leave execution entirely unchecked.
  StatusOr<query::Sequence> Execute(const PreparedQuery& prepared,
                                    query::ExecContext* ctx = nullptr);

  /// Convenience: Prepare + Execute.
  StatusOr<query::Sequence> Run(std::string_view query_text);

  /// Per-run limits applied by every Execute without an explicit context.
  void set_run_options(const query::RunOptions& options) {
    run_options_ = options;
  }
  const query::RunOptions& run_options() const { return run_options_; }

  /// A lightweight serving handle sharing this engine's loaded store, plan
  /// cache and cumulative statistics. Each concurrent client thread gets
  /// its own session; the engine may be destroyed while sessions live.
  StatusOr<std::unique_ptr<EngineSession>> CreateSession() const;

  /// Compiles `query_text`, lowers it through the optimizer against this
  /// engine's store + option set, and renders the chosen plan as text
  /// (join strategies, per-step access paths, invariant hoisting), plus a
  /// final plan-cache hit/miss line.
  StatusOr<std::string> Explain(std::string_view query_text) const;

  SystemId id() const { return id_; }
  char label() const { return SystemLabel(id_); }

  /// Database size after Load (Table 1).
  size_t StorageBytes() const;
  size_t CatalogEntries() const;

  const query::StorageAdapter* store() const { return store_.get(); }
  const query::EvaluatorOptions& evaluator_options() const {
    return eval_options_;
  }
  /// Overrides the evaluator configuration (ablation benchmarks flip the
  /// storage-access fast paths off through this).
  void set_evaluator_options(const query::EvaluatorOptions& opts) {
    eval_options_ = opts;
  }

  /// Statistics of the last Execute.
  const query::Evaluator::Stats& last_stats() const { return last_stats_; }

  /// Plan-cache hit/miss counters across the engine and all its sessions.
  query::PlanCacheStats plan_cache_stats() const {
    return serving_->plan_cache.stats();
  }
  /// Evaluator statistics summed over every completed Execute (engine and
  /// sessions), merged under the serving mutex at query completion.
  query::EvalStats cumulative_stats() const;
  uint64_t queries_executed() const;
  /// Per-StatusCode outcomes across the engine and all its sessions.
  QueryOutcomes outcomes() const;

 private:
  friend class EngineSession;

  Engine(SystemId id, query::EvaluatorOptions opts, bool reload_per_query)
      : id_(id),
        eval_options_(opts),
        reload_per_query_(reload_per_query),
        serving_(std::make_shared<ServingState>()) {}

  /// Builds the system's store from `xml`. Static so sessions of
  /// reload-per-query engines can build private stores without touching
  /// the engine.
  static StatusOr<std::shared_ptr<query::StorageAdapter>> BuildStoreForSystem(
      SystemId id, std::string_view xml, const store::LoadOptions& options);

  /// Wraps BuildStoreForSystem for the catalog (which must not know the
  /// system enum).
  store::DocumentCatalog::StoreBuilder MakeStoreBuilder() const;

  SystemId id_;
  query::EvaluatorOptions eval_options_;
  query::RunOptions run_options_;
  store::LoadOptions load_options_;
  bool reload_per_query_;
  // Default-scope document (the first loaded); catalog documents are
  // routed per query. Both point into the same catalog entries.
  std::shared_ptr<const query::StorageAdapter> store_;
  std::shared_ptr<store::DocumentCatalog> catalog_ =
      std::make_shared<store::DocumentCatalog>();
  // Kept only by reload-per-query engines; shared so their sessions can
  // reload privately.
  std::shared_ptr<const std::string> retained_xml_;
  std::shared_ptr<ServingState> serving_;
  query::Evaluator::Stats last_stats_;
};

/// Per-client serving handle: shares the engine's immutable store, plan
/// cache and cumulative statistics, while keeping per-session state
/// (last_stats, System G's private reloaded store) unshared. Safe to use
/// from one thread at a time; different sessions run fully concurrently.
class EngineSession {
 public:
  /// Compiles through the shared plan cache (uncached for System G, whose
  /// per-execute store identity defeats caching).
  StatusOr<PreparedQuery> Prepare(std::string_view query_text);

  /// Executes against the shared store (System G: against a freshly loaded
  /// private store). Merges this run's statistics into the shared
  /// cumulative counters at completion. Governance mirrors
  /// Engine::Execute: run_options() limits apply, `ctx` (optional) shares
  /// a context so another thread can Cancel() this run; a cancelled run
  /// frees its arena and leaves the shared plan cache and every sibling
  /// session untouched.
  StatusOr<query::Sequence> Execute(const PreparedQuery& prepared,
                                    query::ExecContext* ctx = nullptr);

  /// Convenience: Prepare (cached) + Execute.
  StatusOr<query::Sequence> Run(std::string_view query_text,
                                query::ExecContext* ctx = nullptr);

  // Shared document catalog (same instance as the engine's): sessions may
  // grow or shrink the corpus concurrently with sibling queries — the
  // catalog swaps immutable snapshots, so running queries keep theirs.
  Status LoadDocument(std::string_view id, std::string_view xml);
  Status LoadCorpus(const std::vector<store::CorpusDocument>& docs);
  std::vector<std::string> ListDocuments() const;
  Status DropDocument(std::string_view id);
  size_t DocumentCount() const;

  /// Per-run limits applied by every Execute without an explicit context.
  void set_run_options(const query::RunOptions& options) {
    run_options_ = options;
  }
  const query::RunOptions& run_options() const { return run_options_; }

  /// Statistics of this session's last Execute.
  const query::Evaluator::Stats& last_stats() const { return last_stats_; }

  query::PlanCacheStats plan_cache_stats() const {
    return serving_->plan_cache.stats();
  }

  /// Shared per-StatusCode outcomes (same counters as Engine::outcomes()).
  QueryOutcomes outcomes() const {
    util::MutexLock lock(serving_->stats_mu);
    return serving_->outcomes;
  }

 private:
  friend class Engine;

  EngineSession(SystemId id, query::EvaluatorOptions opts,
                store::LoadOptions load_options, bool reload_per_query,
                std::shared_ptr<const query::StorageAdapter> store,
                std::shared_ptr<store::DocumentCatalog> catalog,
                std::shared_ptr<const std::string> retained_xml,
                std::shared_ptr<ServingState> serving)
      : id_(id),
        eval_options_(std::move(opts)),
        load_options_(std::move(load_options)),
        reload_per_query_(reload_per_query),
        store_(std::move(store)),
        catalog_(std::move(catalog)),
        retained_xml_(std::move(retained_xml)),
        serving_(std::move(serving)) {}

  SystemId id_;
  query::EvaluatorOptions eval_options_;
  query::RunOptions run_options_;
  store::LoadOptions load_options_;
  bool reload_per_query_;
  std::shared_ptr<const query::StorageAdapter> store_;
  std::shared_ptr<store::DocumentCatalog> catalog_;
  std::shared_ptr<const std::string> retained_xml_;
  std::shared_ptr<ServingState> serving_;
  query::Evaluator::Stats last_stats_;
};

}  // namespace xmark::bench

#endif  // XMARK_XMARK_ENGINE_H_
