#ifndef XMARK_XMARK_ENGINE_H_
#define XMARK_XMARK_ENGINE_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "query/evaluator.h"
#include "query/parser.h"
#include "query/storage.h"
#include "store/load_options.h"
#include "util/status.h"

namespace xmark::bench {

/// The anonymized systems of the paper's evaluation (§7). Each maps to a
/// storage mapping plus an optimizer feature set; see DESIGN.md §2 for the
/// correspondence with the architectures the paper describes.
enum class SystemId { kA, kB, kC, kD, kE, kF, kG };

inline constexpr std::array<SystemId, 6> kMassStorageSystems = {
    SystemId::kA, SystemId::kB, SystemId::kC,
    SystemId::kD, SystemId::kE, SystemId::kF};

inline constexpr std::array<SystemId, 7> kAllSystems = {
    SystemId::kA, SystemId::kB, SystemId::kC, SystemId::kD,
    SystemId::kE, SystemId::kF, SystemId::kG};

/// "A".."G".
char SystemLabel(SystemId id);

/// One-line architecture description (for tables and docs).
std::string_view SystemArchitecture(SystemId id);

/// A compiled query: the parse tree plus compilation statistics.
struct PreparedQuery {
  query::ParsedQuery parsed;
  size_t catalog_probes = 0;  // catalog entries inspected while compiling
  size_t name_tests = 0;      // element names resolved
};

/// One benchmark system: a storage mapping + evaluator configuration.
///
/// The lifecycle mirrors the paper's measurement protocol: Load() is the
/// bulkload of Table 1, Prepare() the compilation phase and Execute() the
/// execution phase of Table 2, and Prepare+Execute together one query run
/// of Table 3 / Figure 4.
class Engine {
 public:
  /// Creates an unloaded engine for the given system.
  static std::unique_ptr<Engine> Create(SystemId id);

  /// Bulkloads the benchmark document (shredding + index build).
  Status Load(std::string_view xml);

  /// Bulkload configuration (thread count) applied by Load and by System
  /// G's per-query reloads. Results are identical for any thread count.
  void set_load_options(const store::LoadOptions& options) {
    load_options_ = options;
  }
  const store::LoadOptions& load_options() const { return load_options_; }

  /// Compiles a query: parse, static analysis, catalog/metadata resolution.
  StatusOr<PreparedQuery> Prepare(std::string_view query_text) const;

  /// Executes a compiled query. For the embedded System G this includes
  /// re-loading the document — an embedded processor parses its input per
  /// program run, the constant overhead visible across Figure 4.
  StatusOr<query::Sequence> Execute(const PreparedQuery& prepared);

  /// Convenience: Prepare + Execute.
  StatusOr<query::Sequence> Run(std::string_view query_text);

  /// Compiles `query_text`, lowers it through the optimizer against this
  /// engine's store + option set, and renders the chosen plan as text
  /// (join strategies, per-step access paths, invariant hoisting).
  StatusOr<std::string> Explain(std::string_view query_text) const;

  SystemId id() const { return id_; }
  char label() const { return SystemLabel(id_); }

  /// Database size after Load (Table 1).
  size_t StorageBytes() const;
  size_t CatalogEntries() const;

  const query::StorageAdapter* store() const { return store_.get(); }
  const query::EvaluatorOptions& evaluator_options() const {
    return eval_options_;
  }
  /// Overrides the evaluator configuration (ablation benchmarks flip the
  /// storage-access fast paths off through this).
  void set_evaluator_options(const query::EvaluatorOptions& opts) {
    eval_options_ = opts;
  }

  /// Statistics of the last Execute.
  const query::Evaluator::Stats& last_stats() const { return last_stats_; }

 private:
  Engine(SystemId id, query::EvaluatorOptions opts, bool reload_per_query)
      : id_(id),
        eval_options_(opts),
        reload_per_query_(reload_per_query) {}

  StatusOr<std::unique_ptr<query::StorageAdapter>> BuildStore(
      std::string_view xml) const;

  SystemId id_;
  query::EvaluatorOptions eval_options_;
  store::LoadOptions load_options_;
  bool reload_per_query_;
  std::unique_ptr<query::StorageAdapter> store_;
  std::string retained_xml_;  // kept only by reload-per-query engines
  query::Evaluator::Stats last_stats_;
};

}  // namespace xmark::bench

#endif  // XMARK_XMARK_ENGINE_H_
