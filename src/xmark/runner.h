#ifndef XMARK_XMARK_RUNNER_H_
#define XMARK_XMARK_RUNNER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "store/document_catalog.h"
#include "util/status.h"
#include "util/timer.h"
#include "xmark/engine.h"
#include "xmark/queries.h"

namespace xmark::bench {

/// Bulkload measurement for one system (Table 1 row).
struct LoadInfo {
  double bulkload_ms = 0;
  size_t database_bytes = 0;
  size_t catalog_entries = 0;
};

/// One timed query run (Table 2 / Table 3 / Figure 4 cell).
struct QueryTiming {
  int query = 0;
  SystemId system = SystemId::kA;
  PhaseCost compile;
  PhaseCost execute;
  size_t result_items = 0;

  // Prepared-cache mode (BenchmarkRunner::set_use_prepared_cache): compile
  // wall time of the first repetition (cache miss — full parse + catalog +
  // optimizer lowering) vs the best cached repetition (cache hit — one
  // shard-map probe). Zero when the mode is off or repetitions == 1.
  bool used_plan_cache = false;
  double first_compile_ms = 0;
  double cached_compile_ms = 0;

  double total_ms() const { return compile.wall_ms + execute.wall_ms; }
};

/// Drives the benchmark: generates the scaled document once, loads it into
/// the requested systems, and times query runs with compile/execute phase
/// separation (the measurement protocol behind Tables 1-3 and Figure 4).
class BenchmarkRunner {
 public:
  /// Generates the benchmark document at the given scaling factor.
  explicit BenchmarkRunner(double scale, uint64_t seed = 42);

  /// Bulkloads `system`, recording Table 1 metrics. Idempotent. In corpus
  /// mode (set_corpus_documents) this bulkloads the whole corpus through
  /// Engine::LoadCorpus; database_bytes/catalog_entries then sum over all
  /// documents.
  Status LoadSystem(SystemId system);

  /// Switches later LoadSystem calls to corpus bulkload: `count` documents
  /// generated at this runner's scale under seeds seed, seed+1, ... with
  /// ids "corpus-00.xml", "corpus-01.xml", ... (document 0 is the
  /// single-document benchmark file). 0 — the default — keeps the paper's
  /// single-document protocol.
  void set_corpus_documents(size_t count);
  size_t corpus_documents() const { return corpus_.size(); }
  const std::vector<store::CorpusDocument>& corpus() const {
    return corpus_;
  }

  /// Bulkload worker threads for subsequently loaded systems (0 =
  /// hardware_concurrency, 1 = serial ablation path).
  void set_load_threads(unsigned threads) { load_threads_ = threads; }

  /// Drops a loaded system so the next LoadSystem re-bulkloads it (the
  /// Table 1 bench reloads each system at several thread counts).
  void UnloadSystem(SystemId system);

  /// Times one query (1..20) on a loaded system. The best of `repetitions`
  /// runs is reported (steady-state timing).
  StatusOr<QueryTiming> RunQuery(SystemId system, int query_number,
                                 int repetitions = 1);

  /// Routes RunQuery compilation through Engine::PrepareCached: the first
  /// repetition pays the full compile, later repetitions hit the shared
  /// plan cache (QueryTiming reports both). Off by default — Table 2/3
  /// measure the per-call compilation cost.
  void set_use_prepared_cache(bool on) { use_prepared_cache_ = on; }
  bool use_prepared_cache() const { return use_prepared_cache_; }

  const LoadInfo& load_info(SystemId system) const {
    return load_info_.at(system);
  }
  Engine* engine(SystemId system) { return engines_.at(system).get(); }

  const std::string& document() const { return document_; }
  double scale() const { return scale_; }

 private:
  double scale_;
  uint64_t seed_;
  unsigned load_threads_ = 0;  // 0 = hardware_concurrency
  bool use_prepared_cache_ = false;
  std::string document_;
  std::vector<store::CorpusDocument> corpus_;  // empty = single-document
  std::map<SystemId, std::unique_ptr<Engine>> engines_;
  std::map<SystemId, LoadInfo> load_info_;
};

}  // namespace xmark::bench

#endif  // XMARK_XMARK_RUNNER_H_
