#include "xmark/queries.h"

#include "util/logging.h"

namespace xmark::bench {
namespace {

constexpr std::string_view kQ1 = R"(
for $b in document("auction.xml")/site/people/person[@id = "person0"]
return $b/name/text()
)";

constexpr std::string_view kQ2 = R"(
for $b in document("auction.xml")/site/open_auctions/open_auction
return <increase>{$b/bidder[1]/increase/text()}</increase>
)";

constexpr std::string_view kQ3 = R"(
for $b in document("auction.xml")/site/open_auctions/open_auction
where zero-or-one($b/bidder[1]/increase/text()) * 2
      <= $b/bidder[last()]/increase/text()
return <increase first="{$b/bidder[1]/increase/text()}"
                 last="{$b/bidder[last()]/increase/text()}"/>
)";

constexpr std::string_view kQ4 = R"(
for $b in document("auction.xml")/site/open_auctions/open_auction
where some $pr1 in $b/bidder/personref[@person = "person20"],
      $pr2 in $b/bidder/personref[@person = "person51"]
      satisfies $pr1 << $pr2
return <history>{$b/reserve/text()}</history>
)";

constexpr std::string_view kQ5 = R"(
count(for $i in document("auction.xml")/site/closed_auctions/closed_auction
      where $i/price/text() >= 40
      return $i/price)
)";

constexpr std::string_view kQ6 = R"(
for $b in document("auction.xml")/site/regions
return count($b//item)
)";

constexpr std::string_view kQ7 = R"(
for $p in document("auction.xml")/site
return count($p//description) + count($p//mail) + count($p//email)
)";

constexpr std::string_view kQ8 = R"(
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $t/buyer/@person = $p/@id
          return $t
return <item person="{$p/name/text()}">{count($a)}</item>
)";

constexpr std::string_view kQ9 = R"(
for $p in document("auction.xml")/site/people/person
let $a := for $t in document("auction.xml")/site/closed_auctions/closed_auction
          where $p/@id = $t/buyer/@person
          return for $t2 in document("auction.xml")/site/regions/europe/item
                 where $t/itemref/@item = $t2/@id
                 return <item>{$t2/name/text()}</item>
return <person name="{$p/name/text()}">{$a}</person>
)";

constexpr std::string_view kQ10 = R"(
for $i in distinct-values(
    document("auction.xml")/site/people/person/profile/interest/@category)
let $p := for $t in document("auction.xml")/site/people/person
          where $t/profile/interest/@category = $i
          return <personne>
                   <statistiques>
                     <sexe>{$t/profile/gender/text()}</sexe>
                     <age>{$t/profile/age/text()}</age>
                     <education>{$t/profile/education/text()}</education>
                     <revenu>{$t/profile/income/text()}</revenu>
                   </statistiques>
                   <coordonnees>
                     <nom>{$t/name/text()}</nom>
                     <rue>{$t/address/street/text()}</rue>
                     <ville>{$t/address/city/text()}</ville>
                     <pays>{$t/address/country/text()}</pays>
                     <reseau>
                       <courrier>{$t/emailaddress/text()}</courrier>
                       <pagePerso>{$t/homepage/text()}</pagePerso>
                     </reseau>
                   </coordonnees>
                   <cartePaiement>{$t/creditcard/text()}</cartePaiement>
                 </personne>
return <categorie><id>{$i}</id>{$p}</categorie>
)";

constexpr std::string_view kQ11 = R"(
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/income > 5000 * $i/text()
          return $i
return <items name="{$p/name/text()}">{count($l)}</items>
)";

constexpr std::string_view kQ12 = R"(
for $p in document("auction.xml")/site/people/person
let $l := for $i in document("auction.xml")/site/open_auctions/open_auction/initial
          where $p/profile/income > 5000 * $i/text()
          return $i
where $p/profile/income > 50000
return <items name="{$p/name/text()}">{count($l)}</items>
)";

constexpr std::string_view kQ13 = R"(
for $i in document("auction.xml")/site/regions/australia/item
return <item name="{$i/name/text()}">{$i/description}</item>
)";

constexpr std::string_view kQ14 = R"(
for $i in document("auction.xml")/site//item
where contains($i/description, "gold")
return $i/name/text()
)";

constexpr std::string_view kQ15 = R"(
for $a in document("auction.xml")/site/closed_auctions/closed_auction
          /annotation/description/parlist/listitem/parlist/listitem
          /text/emph/keyword/text()
return <text>{$a}</text>
)";

constexpr std::string_view kQ16 = R"(
for $a in document("auction.xml")/site/closed_auctions/closed_auction
where not(empty($a/annotation/description/parlist/listitem/parlist/listitem
               /text/emph/keyword/text()))
return <person id="{$a/seller/@person}"/>
)";

constexpr std::string_view kQ17 = R"(
for $p in document("auction.xml")/site/people/person
where empty($p/homepage/text())
return <person name="{$p/name/text()}"/>
)";

constexpr std::string_view kQ18 = R"(
declare function local:convert($v) { 2.20371 * $v };
for $i in document("auction.xml")/site/open_auctions/open_auction
return local:convert(zero-or-one($i/reserve/text()))
)";

constexpr std::string_view kQ19 = R"(
for $b in document("auction.xml")/site/regions//item
let $k := $b/name/text()
order by zero-or-one($b/location)
return <item name="{$k}">{$b/location/text()}</item>
)";

constexpr std::string_view kQ20 = R"(
<result>
  <preferred>{count(document("auction.xml")
      /site/people/person/profile[income >= 100000])}</preferred>
  <standard>{count(document("auction.xml")
      /site/people/person/profile[income < 100000 and income >= 30000])}</standard>
  <challenge>{count(document("auction.xml")
      /site/people/person/profile[income < 30000])}</challenge>
  <na>{count(for $p in document("auction.xml")/site/people/person
             where empty($p/profile/income)
             return $p)}</na>
</result>
)";

const std::array<QuerySpec, 20> kQueries = {{
    {1, "Exact Match",
     "Return the name of the person with ID 'person0'.", kQ1},
    {2, "Ordered Access",
     "Return the initial increases of all open auctions.", kQ2},
    {3, "Ordered Access",
     "Return the first and current increases of all open auctions whose "
     "current increase is at least twice as high as the initial increase.",
     kQ3},
    {4, "Ordered Access",
     "List the reserves of those open auctions where a certain person "
     "issued a bid before another person.",
     kQ4},
    {5, "Casting", "How many sold items cost more than 40?", kQ5},
    {6, "Regular Path Expressions",
     "How many items are listed on all continents?", kQ6},
    {7, "Regular Path Expressions",
     "How many pieces of prose are in our database?", kQ7},
    {8, "Chasing References",
     "List the names of persons and the number of items they bought.", kQ8},
    {9, "Chasing References",
     "List the names of persons and the names of the items they bought in "
     "Europe.",
     kQ9},
    {10, "Construction of Complex Results",
     "List all persons according to their interest; use French markup in "
     "the result.",
     kQ10},
    {11, "Joins on Values",
     "For each person, list the number of items currently on sale whose "
     "price does not exceed 0.02% of the person's income.",
     kQ11},
    {12, "Joins on Values",
     "For each person with an income of more than 50000, list the number "
     "of items currently on sale whose price does not exceed 0.02% of the "
     "person's income.",
     kQ12},
    {13, "Reconstruction",
     "List the names of items registered in Australia along with their "
     "descriptions.",
     kQ13},
    {14, "Full Text",
     "Return the names of all items whose description contains the word "
     "'gold'.",
     kQ14},
    {15, "Path Traversals",
     "Print the keywords in emphasis in annotations of closed auctions.",
     kQ15},
    {16, "Path Traversals",
     "Return the IDs of the sellers of those auctions that have one or "
     "more keywords in emphasis.",
     kQ16},
    {17, "Missing Elements", "Which persons don't have a homepage?", kQ17},
    {18, "Function Application",
     "Convert the currency of the reserves of all open auctions to "
     "another currency.",
     kQ18},
    {19, "Sorting",
     "Give an alphabetically ordered list of all items along with their "
     "location.",
     kQ19},
    {20, "Aggregation",
     "Group customers by their income and output the cardinality of each "
     "group.",
     kQ20},
}};

}  // namespace

const std::array<QuerySpec, 20>& AllQueries() { return kQueries; }

const QuerySpec& GetQuery(int number) {
  XMARK_CHECK(number >= 1 && number <= 20);
  return kQueries[number - 1];
}

}  // namespace xmark::bench
