#ifndef XMARK_XMARK_RESULT_CHECK_H_
#define XMARK_XMARK_RESULT_CHECK_H_

#include <string>
#include <vector>

#include "query/value.h"

namespace xmark::bench {

/// Result-equivalence checking (paper §1 discusses why deciding when two
/// XML query outputs are equivalent "still requires research"; this is the
/// pragmatic slice the benchmark kit needs to verify engines against each
/// other).
struct EquivalenceOptions {
  /// Ignore the order of top-level items (for engines free to reorder
  /// unordered results).
  bool ignore_item_order = false;
  /// Sort attributes within serialized elements before comparing.
  bool canonical_attributes = true;
};

/// Serializes every item of a result into comparable strings.
std::vector<std::string> CanonicalItems(const query::Sequence& result,
                                        const EquivalenceOptions& options);

/// Compares two results; on mismatch returns a short human-readable
/// explanation, otherwise an empty string.
std::string ExplainDifference(const query::Sequence& a,
                              const query::Sequence& b,
                              const EquivalenceOptions& options);

/// True when the results are equivalent under `options`.
bool ResultsEquivalent(const query::Sequence& a, const query::Sequence& b,
                       const EquivalenceOptions& options = {});

}  // namespace xmark::bench

#endif  // XMARK_XMARK_RESULT_CHECK_H_
