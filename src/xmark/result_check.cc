#include "xmark/result_check.h"

#include <algorithm>

#include "util/string_util.h"
#include "xml/dom.h"
#include "xml/serializer.h"

namespace xmark::bench {
namespace {

// Canonicalizes one serialized item: if it parses as an element, re-emit
// it with sorted attributes; otherwise return as-is.
std::string Canonicalize(const std::string& serialized,
                         const EquivalenceOptions& options) {
  if (!options.canonical_attributes) return serialized;
  if (serialized.empty() || serialized.front() != '<') return serialized;
  auto doc = xml::Document::Parse(serialized, /*keep_whitespace=*/true);
  if (!doc.ok()) return serialized;
  xml::SerializeOptions ser;
  ser.canonical = true;
  return SerializeDocument(*doc, ser);
}

}  // namespace

std::vector<std::string> CanonicalItems(const query::Sequence& result,
                                        const EquivalenceOptions& options) {
  std::vector<std::string> out;
  out.reserve(result.size());
  for (const query::Item& item : result) {
    out.push_back(Canonicalize(SerializeItem(item), options));
  }
  if (options.ignore_item_order) std::sort(out.begin(), out.end());
  return out;
}

std::string ExplainDifference(const query::Sequence& a,
                              const query::Sequence& b,
                              const EquivalenceOptions& options) {
  const std::vector<std::string> ca = CanonicalItems(a, options);
  const std::vector<std::string> cb = CanonicalItems(b, options);
  if (ca.size() != cb.size()) {
    return StringPrintf("cardinality mismatch: %zu vs %zu items", ca.size(),
                        cb.size());
  }
  for (size_t i = 0; i < ca.size(); ++i) {
    if (ca[i] != cb[i]) {
      std::string lhs = ca[i].substr(0, 120);
      std::string rhs = cb[i].substr(0, 120);
      return StringPrintf("item %zu differs:\n  left:  %s\n  right: %s", i,
                          lhs.c_str(), rhs.c_str());
    }
  }
  return "";
}

bool ResultsEquivalent(const query::Sequence& a, const query::Sequence& b,
                       const EquivalenceOptions& options) {
  return ExplainDifference(a, b, options).empty();
}

}  // namespace xmark::bench
