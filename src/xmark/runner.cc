#include "xmark/runner.h"

#include "gen/generator.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace xmark::bench {

BenchmarkRunner::BenchmarkRunner(double scale, uint64_t seed)
    : scale_(scale), seed_(seed) {
  gen::GeneratorOptions opts;
  opts.scale = scale;
  opts.seed = seed;
  document_ = gen::XmlGen(opts).GenerateToString();
}

void BenchmarkRunner::set_corpus_documents(size_t count) {
  corpus_.clear();
  corpus_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    store::CorpusDocument doc;
    doc.id = StringPrintf("corpus-%02zu.xml", i);
    if (i == 0) {
      doc.xml = document_;  // same (scale, seed) as the single-doc bench
    } else {
      gen::GeneratorOptions opts;
      opts.scale = scale_;
      opts.seed = seed_ + i;
      doc.xml = gen::XmlGen(opts).GenerateToString();
    }
    corpus_.push_back(std::move(doc));
  }
}

void BenchmarkRunner::UnloadSystem(SystemId system) {
  engines_.erase(system);
  load_info_.erase(system);
}

Status BenchmarkRunner::LoadSystem(SystemId system) {
  if (engines_.count(system)) return Status::OK();
  std::unique_ptr<Engine> engine = Engine::Create(system);
  engine->set_load_options(store::LoadOptions{load_threads_});
  PhaseTimer timer;
  if (corpus_.empty()) {
    XMARK_RETURN_IF_ERROR(engine->Load(document_));
  } else {
    XMARK_RETURN_IF_ERROR(engine->LoadCorpus(corpus_));
  }
  LoadInfo info;
  info.bulkload_ms = timer.ElapsedWallMillis();
  info.database_bytes = engine->StorageBytes();
  info.catalog_entries = engine->CatalogEntries();
  load_info_[system] = info;
  engines_[system] = std::move(engine);
  return Status::OK();
}

StatusOr<QueryTiming> BenchmarkRunner::RunQuery(SystemId system,
                                                int query_number,
                                                int repetitions) {
  XMARK_RETURN_IF_ERROR(LoadSystem(system));
  Engine* engine = engines_.at(system).get();
  const QuerySpec& spec = GetQuery(query_number);

  QueryTiming best;
  best.query = query_number;
  best.system = system;
  bool first = true;
  double first_compile_ms = 0;
  double cached_compile_ms = 0;
  for (int rep = 0; rep < std::max(1, repetitions); ++rep) {
    QueryTiming timing;
    timing.query = query_number;
    timing.system = system;

    PhaseTimer compile_timer;
    PreparedQuery prepared;
    if (use_prepared_cache_) {
      XMARK_ASSIGN_OR_RETURN(prepared, engine->PrepareCached(spec.text));
    } else {
      XMARK_ASSIGN_OR_RETURN(prepared, engine->Prepare(spec.text));
    }
    timing.compile.wall_ms = compile_timer.ElapsedWallMillis();
    timing.compile.cpu_ms = compile_timer.ElapsedCpuMillis();
    if (rep == 0) {
      first_compile_ms = timing.compile.wall_ms;
    } else if (rep == 1 || timing.compile.wall_ms < cached_compile_ms) {
      cached_compile_ms = timing.compile.wall_ms;
    }

    PhaseTimer exec_timer;
    XMARK_ASSIGN_OR_RETURN(query::Sequence result,
                           engine->Execute(prepared));
    timing.execute.wall_ms = exec_timer.ElapsedWallMillis();
    timing.execute.cpu_ms = exec_timer.ElapsedCpuMillis();
    timing.result_items = result.size();

    if (first || timing.total_ms() < best.total_ms()) best = timing;
    first = false;
  }
  best.used_plan_cache = use_prepared_cache_;
  best.first_compile_ms = use_prepared_cache_ ? first_compile_ms : 0;
  best.cached_compile_ms = use_prepared_cache_ ? cached_compile_ms : 0;
  return best;
}

}  // namespace xmark::bench
