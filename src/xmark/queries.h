#ifndef XMARK_XMARK_QUERIES_H_
#define XMARK_XMARK_QUERIES_H_

#include <array>
#include <string_view>

namespace xmark::bench {

/// One of the twenty XMark benchmark queries (paper §6).
struct QuerySpec {
  int number;                  // 1..20
  std::string_view category;   // the §6 subsection heading
  std::string_view statement;  // the natural-language query statement
  std::string_view text;       // XQuery source
};

/// All twenty queries, in order. The texts follow the published query set,
/// adapted to this repository's XQuery subset and DTD (income is an
/// element under profile per the paper's Figure 1 — see DESIGN.md).
const std::array<QuerySpec, 20>& AllQueries();

/// Returns the query with the given 1-based number.
const QuerySpec& GetQuery(int number);

}  // namespace xmark::bench

#endif  // XMARK_XMARK_QUERIES_H_
