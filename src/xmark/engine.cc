#include "xmark/engine.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "query/optimizer.h"
#include "query/plan.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace xmark::bench {
namespace {

// Collects all element/attribute names mentioned by the query; compilation
// resolves each against the store catalog.
void CollectNameTests(const query::AstNode& node,
                      std::vector<std::string>* names) {
  for (const query::Step& s : node.steps) {
    if (!s.name.empty()) names->push_back(s.name);
    for (const query::AstPtr& p : s.predicates) CollectNameTests(*p, names);
  }
  if (node.start) CollectNameTests(*node.start, names);
  for (const query::ForLetClause& c : node.clauses) {
    if (c.expr) CollectNameTests(*c.expr, names);
  }
  if (node.where) CollectNameTests(*node.where, names);
  for (const query::OrderSpec& o : node.order_by) {
    CollectNameTests(*o.key, names);
  }
  if (node.ret) CollectNameTests(*node.ret, names);
  for (const query::AstPtr& a : node.args) CollectNameTests(*a, names);
  for (const query::AttrConstructor& attr : node.attrs) {
    for (const query::AttrPart& part : attr.parts) {
      if (part.expr) CollectNameTests(*part.expr, names);
    }
  }
  for (const query::AstPtr& c : node.content) CollectNameTests(*c, names);
}

// Metadata resolution: every name test is looked up in the mapping's
// catalog. For the fragmented mapping this scans the path catalog, which
// is what makes System B's compilation phase comparatively expensive
// (Table 2).
void ResolveCatalogNames(const query::StorageAdapter& store,
                         const query::ParsedQuery& parsed,
                         size_t* catalog_probes, size_t* name_tests) {
  std::vector<std::string> names;
  CollectNameTests(*parsed.body, &names);
  for (const query::FunctionDecl& f : parsed.functions) {
    CollectNameTests(*f.body, &names);
  }
  *name_tests = names.size();
  for (const std::string& name : names) {
    *catalog_probes += store.ResolveName(name);
  }
}

StatusOr<PreparedQuery> CompileUncached(const query::StorageAdapter& store,
                                        std::string_view query_text) {
  PreparedQuery out;
  XMARK_ASSIGN_OR_RETURN(out.parsed, query::ParseQueryText(query_text));
  ResolveCatalogNames(store, out.parsed, &out.catalog_probes,
                      &out.name_tests);
  XMARK_ASSIGN_OR_RETURN(out.scope, query::ExtractQueryScope(out.parsed));
  out.source_text = std::string(query_text);
  return out;
}

// Document scope of `query_text`, memoized by text in the serving state
// (scope is a pure function of the text) so the plan-cache hit path never
// re-parses just to route. Parse and scope-conflict errors are returned,
// not cached.
StatusOr<query::QueryScope> ScopeForQuery(ServingState* serving,
                                          std::string_view query_text) {
  {
    util::MutexLock lock(serving->scope_mu);
    const auto it = serving->scopes.find(std::string(query_text));
    if (it != serving->scopes.end()) return it->second;
  }
  XMARK_ASSIGN_OR_RETURN(query::ParsedQuery parsed,
                         query::ParseQueryText(query_text));
  XMARK_ASSIGN_OR_RETURN(query::QueryScope scope,
                         query::ExtractQueryScope(parsed));
  util::MutexLock lock(serving->scope_mu);
  serving->scopes.emplace(std::string(query_text), scope);
  return scope;
}

// Cached compilation path: parse + catalog resolution + optimizer
// lowering, once per (query text, store uid, options fingerprint, doc
// scope); every later request for the key shares the entry. `cache_hit`
// reports whether the compile lambda ran.
StatusOr<PreparedQuery> PrepareThroughCache(
    const query::StorageAdapter& store,
    const query::EvaluatorOptions& options, ServingState* serving,
    std::string_view query_text, const query::QueryScope& scope) {
  bool compiled = false;
  XMARK_ASSIGN_OR_RETURN(
      std::shared_ptr<const query::CachedQuery> entry,
      serving->plan_cache.GetOrCompile(
          query_text, store.store_uid(), query::OptionsFingerprint(options),
          scope.CacheKey(),
          [&]() -> StatusOr<query::CachedQuery> {
            compiled = true;
            query::CachedQuery out;
            XMARK_ASSIGN_OR_RETURN(out.parsed,
                                   query::ParseQueryText(query_text));
            ResolveCatalogNames(store, out.parsed, &out.catalog_probes,
                                &out.name_tests);
            auto annotations = std::make_shared<query::PlanAnnotations>();
            annotations->store_name = std::string(store.mapping_name());
            annotations->store_uid = store.store_uid();
            annotations->caps = store.Capabilities();
            annotations->options = options;
            if (options.use_planner) {
              query::BuildPlan(out.parsed, store, options,
                               annotations.get());
            }
            out.annotations = std::move(annotations);
            return out;
          }));
  PreparedQuery prepared;
  prepared.cached = std::move(entry);
  prepared.cache_hit = !compiled;
  prepared.catalog_probes = prepared.cached->catalog_probes;
  prepared.name_tests = prepared.cached->name_tests;
  prepared.scope = scope;
  prepared.source_text = std::string(query_text);
  return prepared;
}

// Buckets a non-Execute failure (Prepare, store load) into the shared
// outcome counters so serving statistics cover rejected queries too.
void RecordOutcome(ServingState* serving, const Status& status) {
  util::MutexLock lock(serving->stats_mu);
  serving->outcomes.Record(status);
}

// One evaluator run against one store, with no serving-state recording:
// the building block shared by single-store Executes and the per-document
// legs of a collection() fan-out.
struct DocRun {
  StatusOr<query::Sequence> result = Status::Internal("document not run");
  query::Evaluator::Stats stats;
};

DocRun RunOnStore(const query::StorageAdapter& store,
                  const query::EvaluatorOptions& options,
                  query::ExecContext* ctx, const query::ParsedQuery& module,
                  std::shared_ptr<const query::PlanAnnotations> annotations) {
  DocRun out;
  query::Evaluator evaluator(&store, options);
  evaluator.set_exec_context(ctx);
  out.result = evaluator.Run(module, std::move(annotations));
  out.stats = evaluator.stats();
  return out;
}

// Books one completed query into the shared serving counters.
void RecordRun(ServingState* serving, const Status& status,
               const query::Evaluator::Stats& stats) {
  util::MutexLock lock(serving->stats_mu);
  serving->outcomes.Record(status);
  if (status.ok()) {
    serving->cumulative_stats.MergeFrom(stats);
    ++serving->queries_executed;
  }
}

// One Execute against `store`: a private Evaluator adopts the cached
// annotations when present (the cache key guarantees they match this
// store + option fingerprint), per-run statistics are merged into the
// shared cumulative counters under the serving mutex at completion.
//
// Governance: `ctx` (optional) is a caller-held context (external
// cancellation); otherwise one is created here iff `run_options` sets a
// limit. On a governed failure the Evaluator — and with it the run's
// QueryPlan and NodeArena — is destroyed before returning, so a cancelled
// query frees its result memory and only the outcome counter survives.
StatusOr<query::Sequence> ExecuteQuery(const query::StorageAdapter& store,
                                       const query::EvaluatorOptions& options,
                                       const query::RunOptions& run_options,
                                       query::ExecContext* ctx,
                                       const PreparedQuery& prepared,
                                       ServingState* serving,
                                       query::Evaluator::Stats* last_stats) {
  std::optional<query::ExecContext> local_ctx;
  if (ctx == nullptr && run_options.engaged()) {
    local_ctx.emplace(run_options);
    ctx = &*local_ctx;
  }
  std::shared_ptr<const query::PlanAnnotations> annotations;
  if (prepared.cached != nullptr) annotations = prepared.cached->annotations;
  DocRun run =
      RunOnStore(store, options, ctx, prepared.module(), std::move(annotations));
  RecordRun(serving, run.result.status(), run.stats);
  if (!run.result.ok()) return run.result.status();
  *last_stats = run.stats;
  return run.result;
}

// collection() fan-out: one evaluator run per catalog document,
// concatenated in document-id order (the differential oracle: identical
// bytes to running each document alone and concatenating). Each document
// leg compiles its own entry — through the plan cache when the caller's
// prepare was cached (key: doc store uid + "collection" scope), uncached
// otherwise — so no AST is ever shared across stores (the per-Step name
// cache is keyed by one store uid at a time). Legs run in parallel across
// documents when parallel_exec is enabled; slots are indexed, so the
// concatenation is deterministic for any interleaving. One governed
// context spans every leg: a deadline or budget covers the whole corpus
// scan. The fan-out books exactly one query into the serving counters,
// with the legs' statistics merged.
StatusOr<query::Sequence> ExecuteCollection(
    const store::DocumentCatalog& catalog,
    const query::EvaluatorOptions& options,
    const query::RunOptions& run_options, query::ExecContext* ctx,
    const PreparedQuery& prepared, ServingState* serving,
    query::Evaluator::Stats* last_stats) {
  std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
      catalog.snapshot();
  if (snap->docs.empty()) {
    Status status =
        Status::NotFound("[empty-catalog] collection() over no documents");
    RecordRun(serving, status, {});
    return status;
  }
  std::optional<query::ExecContext> local_ctx;
  if (ctx == nullptr && run_options.engaged()) {
    local_ctx.emplace(run_options);
    ctx = &*local_ctx;
  }

  const size_t n = snap->docs.size();
  const bool use_cache = prepared.cached != nullptr;
  std::vector<DocRun> runs(n);
  auto run_leg = [&](size_t i) {
    const store::DocumentCatalog::Entry& doc = snap->docs[i];
    if (use_cache) {
      StatusOr<PreparedQuery> leg = PrepareThroughCache(
          *doc.store, options, serving, prepared.source_text, prepared.scope);
      if (!leg.ok()) {
        runs[i].result = leg.status();
        return;
      }
      runs[i] = RunOnStore(*doc.store, options, ctx, leg->module(),
                           leg->cached->annotations);
    } else {
      // Uncached prepare path: a private parse per document, preserving
      // the "compilation is never amortized" contract of Engine::Prepare.
      StatusOr<PreparedQuery> leg =
          CompileUncached(*doc.store, prepared.source_text);
      if (!leg.ok()) {
        runs[i].result = leg.status();
        return;
      }
      runs[i] = RunOnStore(*doc.store, options, ctx, leg->parsed, nullptr);
    }
  };

  unsigned workers = 1;
  if (options.parallel_exec.enabled && n > 1) {
    workers = options.parallel_exec.threads != 0
                  ? options.parallel_exec.threads
                  : std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
    workers = static_cast<unsigned>(std::min<size_t>(workers, n));
  }
  if (workers > 1) {
    ThreadPool pool(workers);
    for (size_t i = 0; i < n; ++i) {
      pool.Submit([&run_leg, i] { run_leg(i); });
    }
    pool.Wait();
  } else {
    for (size_t i = 0; i < n; ++i) run_leg(i);
  }

  query::Evaluator::Stats merged;
  for (const DocRun& run : runs) merged.MergeFrom(run.stats);
  for (size_t i = 0; i < n; ++i) {
    if (!runs[i].result.ok()) {
      // First failure in document-id order wins (deterministic).
      RecordRun(serving, runs[i].result.status(), merged);
      return runs[i].result.status();
    }
  }
  query::Sequence out;
  size_t total = 0;
  for (const DocRun& run : runs) total += run.result->size();
  out.reserve(total);
  for (DocRun& run : runs) {
    for (query::Item& item : *run.result) out.push_back(std::move(item));
  }
  RecordRun(serving, Status::OK(), merged);
  *last_stats = merged;
  return out;
}

// Resolves a doc("uri") scope against the catalog: exact id match first.
// The paper's "URI ignored" semantics survive only around the canonical
// benchmark id — a single-document catalog binds any URI when that
// document came from legacy Load() (id == kDefaultDocumentId), and
// doc("auction.xml") binds a lone document of any id. Explicitly
// catalog-managed ids otherwise require an exact match, so dropped
// documents miss with a coded error instead of silently rebinding.
StatusOr<std::shared_ptr<const query::StorageAdapter>> ResolveScopedStore(
    const store::DocumentCatalog& catalog,
    const std::shared_ptr<const query::StorageAdapter>& default_store,
    const query::QueryScope& scope) {
  std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
      catalog.snapshot();
  if (snap->docs.empty()) {
    if (default_store != nullptr) return default_store;
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  const store::DocumentCatalog::Entry* e = snap->Find(scope.doc_uri);
  if (e != nullptr) return e->store;
  if (snap->docs.size() == 1 &&
      (snap->docs[0].id == Engine::kDefaultDocumentId ||
       scope.doc_uri == Engine::kDefaultDocumentId)) {
    return snap->docs[0].store;
  }
  return Status::NotFound("[unknown-document] no document \"" +
                          scope.doc_uri + "\" in catalog");
}

}  // namespace

void QueryOutcomes::Record(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      ++ok;
      return;
    case StatusCode::kDeadlineExceeded:
      ++deadline_exceeded;
      return;
    case StatusCode::kCancelled:
      ++cancelled;
      return;
    case StatusCode::kResourceExhausted:
      ++resource_exhausted;
      return;
    case StatusCode::kInvalidQuery:
    case StatusCode::kParseError:
      ++invalid_query;
      return;
    default:
      ++other_error;
      return;
  }
}

char SystemLabel(SystemId id) {
  return static_cast<char>('A' + static_cast<int>(id));
}

std::string_view SystemArchitecture(SystemId id) {
  switch (id) {
    case SystemId::kA:
      return "relational, monolithic edge table, cost-based optimizer";
    case SystemId::kB:
      return "relational, fragmented path tables, cost-based optimizer";
    case SystemId::kC:
      return "relational, DTD-derived inlined schema, cost-based optimizer";
    case SystemId::kD:
      return "native main-memory store with structural summary";
    case SystemId::kE:
      return "native main-memory store, heuristic optimizer, no summary";
    case SystemId::kF:
      return "native main-memory store, nested-loop joins only";
    case SystemId::kG:
      return "embedded query processor, per-query load, copy semantics";
  }
  return "";
}

std::unique_ptr<Engine> Engine::Create(SystemId id) {
  query::EvaluatorOptions opts;
  bool reload = false;
  switch (id) {
    case SystemId::kA:
      // Edge store has no tag/path structures; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kB:
      // Fragmented store exposes path tables; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = true;   // realized by the per-path tables
      opts.use_path_index = true;  // path tables ARE the path index
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kC:
      // Inlined schema: direct child slots, but no tag/path index.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kD:
      // Native store with the full index set (structural summary).
      opts.use_id_index = true;
      opts.use_tag_index = true;
      opts.use_path_index = true;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kE:
      // Heuristic optimizer: joins yes, but eager lets and no summary.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kF:
      // Nested-loop-only executor.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kG:
      // Embedded processor: no access structures, copies results, reloads
      // the document per query.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = false;
      opts.copy_results = true;
      reload = true;
      break;
  }
  // The band join is a join strategy like the hash join: systems whose
  // optimizer decorrelates joins get both, nested-loop-only systems (F, G)
  // get neither. Compiled pipelines follow the same split — they are an
  // optimizer product (plan-time fusion), not a storage feature.
  opts.band_join = opts.hash_join;
  opts.compiled_pipelines = opts.hash_join;
  return std::unique_ptr<Engine>(new Engine(id, opts, reload));
}

StatusOr<std::shared_ptr<query::StorageAdapter>> Engine::BuildStoreForSystem(
    SystemId id, std::string_view xml, const store::LoadOptions& options) {
  if (XMARK_FAULT_POINT("engine/load_store")) {
    return Status::ResourceExhausted(
        "fault injection: engine/load_store (store bulkload refused)");
  }
  switch (id) {
    case SystemId::kA: {
      XMARK_ASSIGN_OR_RETURN(auto store, store::EdgeStore::Load(xml, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kB: {
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::FragmentedStore::Load(xml, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kC: {
      XMARK_ASSIGN_OR_RETURN(
          auto store,
          store::InlinedStore::Load(xml, xml::kAuctionDtd, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kD: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = true;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = true;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kE: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kF:
    case SystemId::kG: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = false;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
  }
  return Status::Internal("unknown system");
}

store::DocumentCatalog::StoreBuilder Engine::MakeStoreBuilder() const {
  const SystemId id = id_;
  return [id](std::string_view xml, const store::LoadOptions& options) {
    return BuildStoreForSystem(id, xml, options);
  };
}

Status Engine::Load(std::string_view xml) {
  // Legacy single-document load: reset the catalog to exactly this
  // document (sessions created earlier keep the old one alive).
  auto catalog = std::make_shared<store::DocumentCatalog>();
  XMARK_RETURN_IF_ERROR(catalog->AddDocument(kDefaultDocumentId, xml,
                                             MakeStoreBuilder(),
                                             load_options_));
  catalog_ = std::move(catalog);
  store_ = catalog_->Find(kDefaultDocumentId);
  if (reload_per_query_) {
    retained_xml_ = std::make_shared<const std::string>(xml);
  }
  return Status::OK();
}

Status Engine::LoadDocument(std::string_view id, std::string_view xml) {
  std::vector<store::CorpusDocument> batch(1);
  batch[0].id = std::string(id);
  batch[0].xml = std::string(xml);
  return LoadCorpus(batch);
}

Status Engine::LoadCorpus(const std::vector<store::CorpusDocument>& docs) {
  if (docs.empty()) return Status::OK();
  if (reload_per_query_ && DocumentCount() + docs.size() > 1) {
    return Status::Unimplemented(
        "[multi-document-unsupported] embedded (reload-per-query) engines "
        "hold a single document");
  }
  // Governance spans the whole corpus load: one context covers every
  // document's bulkload, charged with the loaded store bytes.
  std::optional<query::ExecContext> ctx;
  store::IngestGovernance governance;
  const store::IngestGovernance* gov = nullptr;
  if (run_options_.engaged()) {
    ctx.emplace(run_options_);
    governance.check = [&ctx] { return ctx->CheckCoarse(); };
    governance.charge_bytes = [&ctx](size_t bytes) {
      ctx->memory_budget()->Charge(bytes);
    };
    gov = &governance;
  }
  Status status =
      catalog_->LoadCorpus(docs, MakeStoreBuilder(), load_options_, gov);
  if (!status.ok()) {
    RecordOutcome(serving_.get(), status);
    return status;
  }
  if (store_ == nullptr) {
    store_ = catalog_->snapshot()->docs.front().store;
  }
  if (reload_per_query_) {
    retained_xml_ = std::make_shared<const std::string>(docs.front().xml);
  }
  return Status::OK();
}

StatusOr<size_t> Engine::LoadCorpusFromDir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("[corpus-dir] cannot open \"" + dir +
                            "\": " + ec.message());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == ".xml") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  std::vector<store::CorpusDocument> docs;
  docs.reserve(files.size());
  for (const std::filesystem::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::NotFound("[corpus-dir] cannot read \"" +
                              path.string() + "\"");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    store::CorpusDocument doc;
    doc.id = path.filename().string();
    doc.xml = std::move(buf).str();
    docs.push_back(std::move(doc));
  }
  XMARK_RETURN_IF_ERROR(LoadCorpus(docs));
  return docs.size();
}

std::vector<std::string> Engine::ListDocuments() const {
  return catalog_->ListDocuments();
}

Status Engine::DropDocument(std::string_view id) {
  const std::shared_ptr<const query::StorageAdapter> dropped =
      catalog_->Find(id);
  XMARK_RETURN_IF_ERROR(catalog_->Drop(id));
  if (dropped != nullptr && dropped == store_) {
    // The default-scope document went away; fall over to the first
    // remaining document (or unloaded when the catalog is empty).
    std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
        catalog_->snapshot();
    store_ = snap->docs.empty() ? nullptr : snap->docs.front().store;
  }
  return Status::OK();
}

size_t Engine::DocumentCount() const { return catalog_->size(); }

void Engine::DumpCatalogState(std::string* out) const {
  catalog_->DumpState(out);
}

StatusOr<PreparedQuery> Engine::Prepare(std::string_view query_text) const {
  if (store_ == nullptr) {
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  return CompileUncached(*store_, query_text);
}

StatusOr<PreparedQuery> Engine::PrepareCached(
    std::string_view query_text) const {
  if (store_ == nullptr) {
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  // A reload-per-query store has a fresh uid at every Execute, so cached
  // annotations could never be adopted: caching would only accumulate
  // dead entries.
  if (reload_per_query_) return CompileUncached(*store_, query_text);
  XMARK_ASSIGN_OR_RETURN(query::QueryScope scope,
                         ScopeForQuery(serving_.get(), query_text));
  std::shared_ptr<const query::StorageAdapter> target = store_;
  if (scope.kind == query::QueryScope::Kind::kDocument) {
    XMARK_ASSIGN_OR_RETURN(target,
                           ResolveScopedStore(*catalog_, store_, scope));
  } else if (scope.kind == query::QueryScope::Kind::kCollection) {
    // Compile against the first document; the fan-out compiles per-
    // document entries under the same "collection" scope key at Execute.
    std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
        catalog_->snapshot();
    if (!snap->docs.empty()) target = snap->docs.front().store;
  }
  return PrepareThroughCache(*target, eval_options_, serving_.get(),
                             query_text, scope);
}

StatusOr<query::Sequence> Engine::Execute(const PreparedQuery& prepared,
                                          query::ExecContext* ctx) {
  if (reload_per_query_ && retained_xml_ != nullptr) {
    // Embedded processors load the document as part of running the query.
    // They hold one document, so every scope binds it — collection() over
    // a single-document corpus included.
    XMARK_ASSIGN_OR_RETURN(
        store_, BuildStoreForSystem(id_, *retained_xml_, load_options_));
  }
  if (store_ == nullptr &&
      prepared.scope.kind != query::QueryScope::Kind::kCollection) {
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  if (!reload_per_query_) {
    switch (prepared.scope.kind) {
      case query::QueryScope::Kind::kDefault:
        break;
      case query::QueryScope::Kind::kDocument: {
        auto target = ResolveScopedStore(*catalog_, store_, prepared.scope);
        if (!target.ok()) {
          RecordOutcome(serving_.get(), target.status());
          return target.status();
        }
        return ExecuteQuery(**target, eval_options_, run_options_, ctx,
                            prepared, serving_.get(), &last_stats_);
      }
      case query::QueryScope::Kind::kCollection:
        return ExecuteCollection(*catalog_, eval_options_, run_options_,
                                 ctx, prepared, serving_.get(),
                                 &last_stats_);
    }
  }
  return ExecuteQuery(*store_, eval_options_, run_options_, ctx, prepared,
                      serving_.get(), &last_stats_);
}

StatusOr<query::Sequence> Engine::Run(std::string_view query_text) {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) {
    RecordOutcome(serving_.get(), prepared.status());
    return prepared.status();
  }
  return Execute(*prepared);
}

StatusOr<std::unique_ptr<EngineSession>> Engine::CreateSession() const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  return std::unique_ptr<EngineSession>(new EngineSession(
      id_, eval_options_, load_options_, reload_per_query_, store_,
      catalog_, retained_xml_, serving_));
}

StatusOr<std::string> Engine::Explain(std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  XMARK_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query_text));
  // Explain renders the plan against the store the scope binds — a
  // collection() plan is shown against the first document (every fan-out
  // leg lowers the same way modulo per-document statistics).
  std::shared_ptr<const query::StorageAdapter> target = store_;
  if (!reload_per_query_) {
    if (prepared.scope.kind == query::QueryScope::Kind::kDocument) {
      XMARK_ASSIGN_OR_RETURN(
          target, ResolveScopedStore(*catalog_, store_, prepared.scope));
    } else if (prepared.scope.kind ==
               query::QueryScope::Kind::kCollection) {
      std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
          catalog_->snapshot();
      if (!snap->docs.empty()) target = snap->docs.front().store;
    }
  }
  query::QueryPlan plan;
  query::BuildPlan(prepared.parsed, *target, eval_options_,
                   plan.mutable_annotations());
  std::string text = plan.Explain(prepared.parsed);
  text += "catalog: documents=" + std::to_string(catalog_->size()) + "\n";
  const query::PlanCacheStats cache = serving_->plan_cache.stats();
  text += "plan-cache: hits=" + std::to_string(cache.hits) +
          " misses=" + std::to_string(cache.misses) + "\n";
  const QueryOutcomes oc = outcomes();
  text += "outcomes: ok=" + std::to_string(oc.ok) +
          " deadline=" + std::to_string(oc.deadline_exceeded) +
          " cancelled=" + std::to_string(oc.cancelled) +
          " resource=" + std::to_string(oc.resource_exhausted) +
          " invalid=" + std::to_string(oc.invalid_query) +
          " other=" + std::to_string(oc.other_error) + "\n";
  return text;
}

query::EvalStats Engine::cumulative_stats() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->cumulative_stats;
}

uint64_t Engine::queries_executed() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->queries_executed;
}

QueryOutcomes Engine::outcomes() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->outcomes;
}

size_t Engine::StorageBytes() const {
  std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
      catalog_->snapshot();
  if (snap->docs.empty()) {
    return store_ == nullptr ? 0 : store_->StorageBytes();
  }
  size_t total = 0;
  for (const store::DocumentCatalog::Entry& doc : snap->docs) {
    total += doc.store->StorageBytes();
  }
  return total;
}

size_t Engine::CatalogEntries() const {
  std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
      catalog_->snapshot();
  if (snap->docs.empty()) {
    return store_ == nullptr ? 0 : store_->CatalogEntries();
  }
  size_t total = 0;
  for (const store::DocumentCatalog::Entry& doc : snap->docs) {
    total += doc.store->CatalogEntries();
  }
  return total;
}

// ---------------------------------------------------------------------------
// EngineSession
// ---------------------------------------------------------------------------

StatusOr<PreparedQuery> EngineSession::Prepare(std::string_view query_text) {
  if (reload_per_query_) return CompileUncached(*store_, query_text);
  XMARK_ASSIGN_OR_RETURN(query::QueryScope scope,
                         ScopeForQuery(serving_.get(), query_text));
  std::shared_ptr<const query::StorageAdapter> target = store_;
  if (scope.kind == query::QueryScope::Kind::kDocument) {
    XMARK_ASSIGN_OR_RETURN(target,
                           ResolveScopedStore(*catalog_, store_, scope));
  } else if (scope.kind == query::QueryScope::Kind::kCollection) {
    std::shared_ptr<const store::DocumentCatalog::Snapshot> snap =
        catalog_->snapshot();
    if (!snap->docs.empty()) target = snap->docs.front().store;
  }
  if (target == nullptr) {
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  return PrepareThroughCache(*target, eval_options_, serving_.get(),
                             query_text, scope);
}

StatusOr<query::Sequence> EngineSession::Execute(
    const PreparedQuery& prepared, query::ExecContext* ctx) {
  if (reload_per_query_ && retained_xml_ != nullptr) {
    // System G semantics, session-local: the reload happens into a private
    // store, so concurrent G sessions never share document state (matching
    // one embedded processor instance per client).
    XMARK_ASSIGN_OR_RETURN(
        std::shared_ptr<query::StorageAdapter> fresh,
        Engine::BuildStoreForSystem(id_, *retained_xml_, load_options_));
    std::shared_ptr<const query::StorageAdapter> session_store =
        std::move(fresh);
    return ExecuteQuery(*session_store, eval_options_, run_options_, ctx,
                        prepared, serving_.get(), &last_stats_);
  }
  switch (prepared.scope.kind) {
    case query::QueryScope::Kind::kDefault:
      break;
    case query::QueryScope::Kind::kDocument: {
      auto target = ResolveScopedStore(*catalog_, store_, prepared.scope);
      if (!target.ok()) {
        RecordOutcome(serving_.get(), target.status());
        return target.status();
      }
      return ExecuteQuery(**target, eval_options_, run_options_, ctx,
                          prepared, serving_.get(), &last_stats_);
    }
    case query::QueryScope::Kind::kCollection:
      return ExecuteCollection(*catalog_, eval_options_, run_options_, ctx,
                               prepared, serving_.get(), &last_stats_);
  }
  if (store_ == nullptr) {
    return Status::NotFound("[empty-catalog] no documents loaded");
  }
  return ExecuteQuery(*store_, eval_options_, run_options_, ctx, prepared,
                      serving_.get(), &last_stats_);
}

Status EngineSession::LoadDocument(std::string_view id,
                                   std::string_view xml) {
  std::vector<store::CorpusDocument> batch(1);
  batch[0].id = std::string(id);
  batch[0].xml = std::string(xml);
  return LoadCorpus(batch);
}

Status EngineSession::LoadCorpus(
    const std::vector<store::CorpusDocument>& docs) {
  if (docs.empty()) return Status::OK();
  if (reload_per_query_) {
    return Status::Unimplemented(
        "[multi-document-unsupported] embedded (reload-per-query) engines "
        "hold a single document");
  }
  const SystemId id = id_;
  store::DocumentCatalog::StoreBuilder builder =
      [id](std::string_view xml, const store::LoadOptions& options) {
        return Engine::BuildStoreForSystem(id, xml, options);
      };
  std::optional<query::ExecContext> ctx;
  store::IngestGovernance governance;
  const store::IngestGovernance* gov = nullptr;
  if (run_options_.engaged()) {
    ctx.emplace(run_options_);
    governance.check = [&ctx] { return ctx->CheckCoarse(); };
    governance.charge_bytes = [&ctx](size_t bytes) {
      ctx->memory_budget()->Charge(bytes);
    };
    gov = &governance;
  }
  Status status = catalog_->LoadCorpus(docs, builder, load_options_, gov);
  if (!status.ok()) {
    RecordOutcome(serving_.get(), status);
    return status;
  }
  if (store_ == nullptr) {
    store_ = catalog_->snapshot()->docs.front().store;
  }
  return Status::OK();
}

std::vector<std::string> EngineSession::ListDocuments() const {
  return catalog_->ListDocuments();
}

Status EngineSession::DropDocument(std::string_view id) {
  if (reload_per_query_) {
    return Status::Unimplemented(
        "[multi-document-unsupported] embedded (reload-per-query) engines "
        "hold a single document");
  }
  // The session's default-scope store_ intentionally survives a drop of
  // its document: running and future default-scope queries keep the
  // snapshot they started from, while doc()/collection() routing sees the
  // updated catalog immediately.
  return catalog_->Drop(id);
}

size_t EngineSession::DocumentCount() const { return catalog_->size(); }

StatusOr<query::Sequence> EngineSession::Run(std::string_view query_text,
                                             query::ExecContext* ctx) {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) {
    RecordOutcome(serving_.get(), prepared.status());
    return prepared.status();
  }
  return Execute(*prepared, ctx);
}

}  // namespace xmark::bench
