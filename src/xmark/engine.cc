#include "xmark/engine.h"

#include "query/optimizer.h"
#include "query/plan.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/logging.h"

namespace xmark::bench {
namespace {

// Collects all element/attribute names mentioned by the query; compilation
// resolves each against the store catalog.
void CollectNameTests(const query::AstNode& node,
                      std::vector<std::string>* names) {
  for (const query::Step& s : node.steps) {
    if (!s.name.empty()) names->push_back(s.name);
    for (const query::AstPtr& p : s.predicates) CollectNameTests(*p, names);
  }
  if (node.start) CollectNameTests(*node.start, names);
  for (const query::ForLetClause& c : node.clauses) {
    if (c.expr) CollectNameTests(*c.expr, names);
  }
  if (node.where) CollectNameTests(*node.where, names);
  for (const query::OrderSpec& o : node.order_by) {
    CollectNameTests(*o.key, names);
  }
  if (node.ret) CollectNameTests(*node.ret, names);
  for (const query::AstPtr& a : node.args) CollectNameTests(*a, names);
  for (const query::AttrConstructor& attr : node.attrs) {
    for (const query::AttrPart& part : attr.parts) {
      if (part.expr) CollectNameTests(*part.expr, names);
    }
  }
  for (const query::AstPtr& c : node.content) CollectNameTests(*c, names);
}

}  // namespace

char SystemLabel(SystemId id) {
  return static_cast<char>('A' + static_cast<int>(id));
}

std::string_view SystemArchitecture(SystemId id) {
  switch (id) {
    case SystemId::kA:
      return "relational, monolithic edge table, cost-based optimizer";
    case SystemId::kB:
      return "relational, fragmented path tables, cost-based optimizer";
    case SystemId::kC:
      return "relational, DTD-derived inlined schema, cost-based optimizer";
    case SystemId::kD:
      return "native main-memory store with structural summary";
    case SystemId::kE:
      return "native main-memory store, heuristic optimizer, no summary";
    case SystemId::kF:
      return "native main-memory store, nested-loop joins only";
    case SystemId::kG:
      return "embedded query processor, per-query load, copy semantics";
  }
  return "";
}

std::unique_ptr<Engine> Engine::Create(SystemId id) {
  query::EvaluatorOptions opts;
  bool reload = false;
  switch (id) {
    case SystemId::kA:
      // Edge store has no tag/path structures; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kB:
      // Fragmented store exposes path tables; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = true;   // realized by the per-path tables
      opts.use_path_index = true;  // path tables ARE the path index
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kC:
      // Inlined schema: direct child slots, but no tag/path index.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kD:
      // Native store with the full index set (structural summary).
      opts.use_id_index = true;
      opts.use_tag_index = true;
      opts.use_path_index = true;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kE:
      // Heuristic optimizer: joins yes, but eager lets and no summary.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kF:
      // Nested-loop-only executor.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kG:
      // Embedded processor: no access structures, copies results, reloads
      // the document per query.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = false;
      opts.copy_results = true;
      reload = true;
      break;
  }
  // The band join is a join strategy like the hash join: systems whose
  // optimizer decorrelates joins get both, nested-loop-only systems (F, G)
  // get neither.
  opts.band_join = opts.hash_join;
  return std::unique_ptr<Engine>(new Engine(id, opts, reload));
}

StatusOr<std::unique_ptr<query::StorageAdapter>> Engine::BuildStore(
    std::string_view xml) const {
  switch (id_) {
    case SystemId::kA: {
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::EdgeStore::Load(xml, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kB: {
      XMARK_ASSIGN_OR_RETURN(
          auto store, store::FragmentedStore::Load(xml, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kC: {
      XMARK_ASSIGN_OR_RETURN(
          auto store,
          store::InlinedStore::Load(xml, xml::kAuctionDtd, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kD: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = true;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = true;
      XMARK_ASSIGN_OR_RETURN(
          auto store, store::DomStore::Load(xml, dom_opts, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kE: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(
          auto store, store::DomStore::Load(xml, dom_opts, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kF:
    case SystemId::kG: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = false;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(
          auto store, store::DomStore::Load(xml, dom_opts, load_options_));
      return std::unique_ptr<query::StorageAdapter>(std::move(store));
    }
  }
  return Status::Internal("unknown system");
}

Status Engine::Load(std::string_view xml) {
  XMARK_ASSIGN_OR_RETURN(store_, BuildStore(xml));
  if (reload_per_query_) retained_xml_.assign(xml);
  return Status::OK();
}

StatusOr<PreparedQuery> Engine::Prepare(std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  PreparedQuery out;
  XMARK_ASSIGN_OR_RETURN(out.parsed, query::ParseQueryText(query_text));
  // Metadata resolution: every name test is looked up in the mapping's
  // catalog. For the fragmented mapping this scans the path catalog, which
  // is what makes System B's compilation phase comparatively expensive
  // (Table 2).
  std::vector<std::string> names;
  CollectNameTests(*out.parsed.body, &names);
  for (const query::FunctionDecl& f : out.parsed.functions) {
    CollectNameTests(*f.body, &names);
  }
  out.name_tests = names.size();
  for (const std::string& name : names) {
    out.catalog_probes += store_->ResolveName(name);
  }
  return out;
}

StatusOr<query::Sequence> Engine::Execute(const PreparedQuery& prepared) {
  if (reload_per_query_) {
    // Embedded processors load the document as part of running the query.
    XMARK_ASSIGN_OR_RETURN(store_, BuildStore(retained_xml_));
  }
  query::Evaluator evaluator(store_.get(), eval_options_);
  XMARK_ASSIGN_OR_RETURN(query::Sequence result, evaluator.Run(prepared.parsed));
  last_stats_ = evaluator.stats();
  return result;
}

StatusOr<query::Sequence> Engine::Run(std::string_view query_text) {
  XMARK_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query_text));
  return Execute(prepared);
}

StatusOr<std::string> Engine::Explain(std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  XMARK_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query_text));
  query::QueryPlan plan;
  query::BuildPlan(prepared.parsed, *store_, eval_options_, &plan);
  return plan.Explain(prepared.parsed);
}

size_t Engine::StorageBytes() const {
  return store_ == nullptr ? 0 : store_->StorageBytes();
}

size_t Engine::CatalogEntries() const {
  return store_ == nullptr ? 0 : store_->CatalogEntries();
}

}  // namespace xmark::bench
