#include "xmark/engine.h"

#include <optional>

#include "query/optimizer.h"
#include "query/plan.h"
#include "store/dom_store.h"
#include "store/edge_store.h"
#include "store/fragmented_store.h"
#include "store/inlined_store.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace xmark::bench {
namespace {

// Collects all element/attribute names mentioned by the query; compilation
// resolves each against the store catalog.
void CollectNameTests(const query::AstNode& node,
                      std::vector<std::string>* names) {
  for (const query::Step& s : node.steps) {
    if (!s.name.empty()) names->push_back(s.name);
    for (const query::AstPtr& p : s.predicates) CollectNameTests(*p, names);
  }
  if (node.start) CollectNameTests(*node.start, names);
  for (const query::ForLetClause& c : node.clauses) {
    if (c.expr) CollectNameTests(*c.expr, names);
  }
  if (node.where) CollectNameTests(*node.where, names);
  for (const query::OrderSpec& o : node.order_by) {
    CollectNameTests(*o.key, names);
  }
  if (node.ret) CollectNameTests(*node.ret, names);
  for (const query::AstPtr& a : node.args) CollectNameTests(*a, names);
  for (const query::AttrConstructor& attr : node.attrs) {
    for (const query::AttrPart& part : attr.parts) {
      if (part.expr) CollectNameTests(*part.expr, names);
    }
  }
  for (const query::AstPtr& c : node.content) CollectNameTests(*c, names);
}

// Metadata resolution: every name test is looked up in the mapping's
// catalog. For the fragmented mapping this scans the path catalog, which
// is what makes System B's compilation phase comparatively expensive
// (Table 2).
void ResolveCatalogNames(const query::StorageAdapter& store,
                         const query::ParsedQuery& parsed,
                         size_t* catalog_probes, size_t* name_tests) {
  std::vector<std::string> names;
  CollectNameTests(*parsed.body, &names);
  for (const query::FunctionDecl& f : parsed.functions) {
    CollectNameTests(*f.body, &names);
  }
  *name_tests = names.size();
  for (const std::string& name : names) {
    *catalog_probes += store.ResolveName(name);
  }
}

StatusOr<PreparedQuery> CompileUncached(const query::StorageAdapter& store,
                                        std::string_view query_text) {
  PreparedQuery out;
  XMARK_ASSIGN_OR_RETURN(out.parsed, query::ParseQueryText(query_text));
  ResolveCatalogNames(store, out.parsed, &out.catalog_probes,
                      &out.name_tests);
  return out;
}

// Cached compilation path: parse + catalog resolution + optimizer
// lowering, once per (query text, store uid, options fingerprint); every
// later request for the key shares the entry. `cache_hit` reports whether
// the compile lambda ran.
StatusOr<PreparedQuery> PrepareThroughCache(
    const query::StorageAdapter& store,
    const query::EvaluatorOptions& options, ServingState* serving,
    std::string_view query_text) {
  bool compiled = false;
  XMARK_ASSIGN_OR_RETURN(
      std::shared_ptr<const query::CachedQuery> entry,
      serving->plan_cache.GetOrCompile(
          query_text, store.store_uid(), query::OptionsFingerprint(options),
          [&]() -> StatusOr<query::CachedQuery> {
            compiled = true;
            query::CachedQuery out;
            XMARK_ASSIGN_OR_RETURN(out.parsed,
                                   query::ParseQueryText(query_text));
            ResolveCatalogNames(store, out.parsed, &out.catalog_probes,
                                &out.name_tests);
            auto annotations = std::make_shared<query::PlanAnnotations>();
            annotations->store_name = std::string(store.mapping_name());
            annotations->store_uid = store.store_uid();
            annotations->caps = store.Capabilities();
            annotations->options = options;
            if (options.use_planner) {
              query::BuildPlan(out.parsed, store, options,
                               annotations.get());
            }
            out.annotations = std::move(annotations);
            return out;
          }));
  PreparedQuery prepared;
  prepared.cached = std::move(entry);
  prepared.cache_hit = !compiled;
  prepared.catalog_probes = prepared.cached->catalog_probes;
  prepared.name_tests = prepared.cached->name_tests;
  return prepared;
}

// Buckets a non-Execute failure (Prepare, store load) into the shared
// outcome counters so serving statistics cover rejected queries too.
void RecordOutcome(ServingState* serving, const Status& status) {
  util::MutexLock lock(serving->stats_mu);
  serving->outcomes.Record(status);
}

// One Execute against `store`: a private Evaluator adopts the cached
// annotations when present (the cache key guarantees they match this
// store + option fingerprint), per-run statistics are merged into the
// shared cumulative counters under the serving mutex at completion.
//
// Governance: `ctx` (optional) is a caller-held context (external
// cancellation); otherwise one is created here iff `run_options` sets a
// limit. On a governed failure the Evaluator — and with it the run's
// QueryPlan and NodeArena — is destroyed before returning, so a cancelled
// query frees its result memory and only the outcome counter survives.
StatusOr<query::Sequence> ExecuteQuery(const query::StorageAdapter& store,
                                       const query::EvaluatorOptions& options,
                                       const query::RunOptions& run_options,
                                       query::ExecContext* ctx,
                                       const PreparedQuery& prepared,
                                       ServingState* serving,
                                       query::Evaluator::Stats* last_stats) {
  std::optional<query::ExecContext> local_ctx;
  if (ctx == nullptr && run_options.engaged()) {
    local_ctx.emplace(run_options);
    ctx = &*local_ctx;
  }
  query::Evaluator evaluator(&store, options);
  evaluator.set_exec_context(ctx);
  std::shared_ptr<const query::PlanAnnotations> annotations;
  if (prepared.cached != nullptr) annotations = prepared.cached->annotations;
  auto result = evaluator.Run(prepared.module(), std::move(annotations));
  {
    util::MutexLock lock(serving->stats_mu);
    serving->outcomes.Record(result.status());
    if (result.ok()) {
      serving->cumulative_stats.MergeFrom(evaluator.stats());
      ++serving->queries_executed;
    }
  }
  if (!result.ok()) return result.status();
  *last_stats = evaluator.stats();
  return result;
}

}  // namespace

void QueryOutcomes::Record(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      ++ok;
      return;
    case StatusCode::kDeadlineExceeded:
      ++deadline_exceeded;
      return;
    case StatusCode::kCancelled:
      ++cancelled;
      return;
    case StatusCode::kResourceExhausted:
      ++resource_exhausted;
      return;
    case StatusCode::kInvalidQuery:
    case StatusCode::kParseError:
      ++invalid_query;
      return;
    default:
      ++other_error;
      return;
  }
}

char SystemLabel(SystemId id) {
  return static_cast<char>('A' + static_cast<int>(id));
}

std::string_view SystemArchitecture(SystemId id) {
  switch (id) {
    case SystemId::kA:
      return "relational, monolithic edge table, cost-based optimizer";
    case SystemId::kB:
      return "relational, fragmented path tables, cost-based optimizer";
    case SystemId::kC:
      return "relational, DTD-derived inlined schema, cost-based optimizer";
    case SystemId::kD:
      return "native main-memory store with structural summary";
    case SystemId::kE:
      return "native main-memory store, heuristic optimizer, no summary";
    case SystemId::kF:
      return "native main-memory store, nested-loop joins only";
    case SystemId::kG:
      return "embedded query processor, per-query load, copy semantics";
  }
  return "";
}

std::unique_ptr<Engine> Engine::Create(SystemId id) {
  query::EvaluatorOptions opts;
  bool reload = false;
  switch (id) {
    case SystemId::kA:
      // Edge store has no tag/path structures; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kB:
      // Fragmented store exposes path tables; cost-based optimizer.
      opts.use_id_index = true;
      opts.use_tag_index = true;   // realized by the per-path tables
      opts.use_path_index = true;  // path tables ARE the path index
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kC:
      // Inlined schema: direct child slots, but no tag/path index.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kD:
      // Native store with the full index set (structural summary).
      opts.use_id_index = true;
      opts.use_tag_index = true;
      opts.use_path_index = true;
      opts.hash_join = true;
      opts.lazy_let = true;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kE:
      // Heuristic optimizer: joins yes, but eager lets and no summary.
      opts.use_id_index = true;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = true;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kF:
      // Nested-loop-only executor.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = true;
      break;
    case SystemId::kG:
      // Embedded processor: no access structures, copies results, reloads
      // the document per query.
      opts.use_id_index = false;
      opts.use_tag_index = false;
      opts.use_path_index = false;
      opts.hash_join = false;
      opts.lazy_let = false;
      opts.cache_invariant_paths = false;
      opts.copy_results = true;
      reload = true;
      break;
  }
  // The band join is a join strategy like the hash join: systems whose
  // optimizer decorrelates joins get both, nested-loop-only systems (F, G)
  // get neither. Compiled pipelines follow the same split — they are an
  // optimizer product (plan-time fusion), not a storage feature.
  opts.band_join = opts.hash_join;
  opts.compiled_pipelines = opts.hash_join;
  return std::unique_ptr<Engine>(new Engine(id, opts, reload));
}

StatusOr<std::shared_ptr<query::StorageAdapter>> Engine::BuildStoreForSystem(
    SystemId id, std::string_view xml, const store::LoadOptions& options) {
  if (XMARK_FAULT_POINT("engine/load_store")) {
    return Status::ResourceExhausted(
        "fault injection: engine/load_store (store bulkload refused)");
  }
  switch (id) {
    case SystemId::kA: {
      XMARK_ASSIGN_OR_RETURN(auto store, store::EdgeStore::Load(xml, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kB: {
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::FragmentedStore::Load(xml, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kC: {
      XMARK_ASSIGN_OR_RETURN(
          auto store,
          store::InlinedStore::Load(xml, xml::kAuctionDtd, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kD: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = true;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = true;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kE: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = true;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
    case SystemId::kF:
    case SystemId::kG: {
      store::DomStore::Options dom_opts;
      dom_opts.build_tag_index = false;
      dom_opts.build_id_index = false;
      dom_opts.build_path_summary = false;
      XMARK_ASSIGN_OR_RETURN(auto store,
                             store::DomStore::Load(xml, dom_opts, options));
      return std::shared_ptr<query::StorageAdapter>(std::move(store));
    }
  }
  return Status::Internal("unknown system");
}

Status Engine::Load(std::string_view xml) {
  XMARK_ASSIGN_OR_RETURN(store_,
                         BuildStoreForSystem(id_, xml, load_options_));
  if (reload_per_query_) {
    retained_xml_ = std::make_shared<const std::string>(xml);
  }
  return Status::OK();
}

StatusOr<PreparedQuery> Engine::Prepare(std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  return CompileUncached(*store_, query_text);
}

StatusOr<PreparedQuery> Engine::PrepareCached(
    std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  // A reload-per-query store has a fresh uid at every Execute, so cached
  // annotations could never be adopted: caching would only accumulate
  // dead entries.
  if (reload_per_query_) return CompileUncached(*store_, query_text);
  return PrepareThroughCache(*store_, eval_options_, serving_.get(),
                             query_text);
}

StatusOr<query::Sequence> Engine::Execute(const PreparedQuery& prepared,
                                          query::ExecContext* ctx) {
  if (reload_per_query_ && retained_xml_ != nullptr) {
    // Embedded processors load the document as part of running the query.
    XMARK_ASSIGN_OR_RETURN(
        store_, BuildStoreForSystem(id_, *retained_xml_, load_options_));
  }
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  return ExecuteQuery(*store_, eval_options_, run_options_, ctx, prepared,
                      serving_.get(), &last_stats_);
}

StatusOr<query::Sequence> Engine::Run(std::string_view query_text) {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) {
    RecordOutcome(serving_.get(), prepared.status());
    return prepared.status();
  }
  return Execute(*prepared);
}

StatusOr<std::unique_ptr<EngineSession>> Engine::CreateSession() const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  return std::unique_ptr<EngineSession>(new EngineSession(
      id_, eval_options_, load_options_, reload_per_query_, store_,
      retained_xml_, serving_));
}

StatusOr<std::string> Engine::Explain(std::string_view query_text) const {
  if (store_ == nullptr) return Status::Internal("engine not loaded");
  XMARK_ASSIGN_OR_RETURN(PreparedQuery prepared, Prepare(query_text));
  query::QueryPlan plan;
  query::BuildPlan(prepared.parsed, *store_, eval_options_,
                   plan.mutable_annotations());
  std::string text = plan.Explain(prepared.parsed);
  const query::PlanCacheStats cache = serving_->plan_cache.stats();
  text += "plan-cache: hits=" + std::to_string(cache.hits) +
          " misses=" + std::to_string(cache.misses) + "\n";
  const QueryOutcomes oc = outcomes();
  text += "outcomes: ok=" + std::to_string(oc.ok) +
          " deadline=" + std::to_string(oc.deadline_exceeded) +
          " cancelled=" + std::to_string(oc.cancelled) +
          " resource=" + std::to_string(oc.resource_exhausted) +
          " invalid=" + std::to_string(oc.invalid_query) +
          " other=" + std::to_string(oc.other_error) + "\n";
  return text;
}

query::EvalStats Engine::cumulative_stats() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->cumulative_stats;
}

uint64_t Engine::queries_executed() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->queries_executed;
}

QueryOutcomes Engine::outcomes() const {
  util::MutexLock lock(serving_->stats_mu);
  return serving_->outcomes;
}

size_t Engine::StorageBytes() const {
  return store_ == nullptr ? 0 : store_->StorageBytes();
}

size_t Engine::CatalogEntries() const {
  return store_ == nullptr ? 0 : store_->CatalogEntries();
}

// ---------------------------------------------------------------------------
// EngineSession
// ---------------------------------------------------------------------------

StatusOr<PreparedQuery> EngineSession::Prepare(std::string_view query_text) {
  if (reload_per_query_) return CompileUncached(*store_, query_text);
  return PrepareThroughCache(*store_, eval_options_, serving_.get(),
                             query_text);
}

StatusOr<query::Sequence> EngineSession::Execute(
    const PreparedQuery& prepared, query::ExecContext* ctx) {
  if (reload_per_query_ && retained_xml_ != nullptr) {
    // System G semantics, session-local: the reload happens into a private
    // store, so concurrent G sessions never share document state (matching
    // one embedded processor instance per client).
    XMARK_ASSIGN_OR_RETURN(
        std::shared_ptr<query::StorageAdapter> fresh,
        Engine::BuildStoreForSystem(id_, *retained_xml_, load_options_));
    std::shared_ptr<const query::StorageAdapter> session_store =
        std::move(fresh);
    return ExecuteQuery(*session_store, eval_options_, run_options_, ctx,
                        prepared, serving_.get(), &last_stats_);
  }
  return ExecuteQuery(*store_, eval_options_, run_options_, ctx, prepared,
                      serving_.get(), &last_stats_);
}

StatusOr<query::Sequence> EngineSession::Run(std::string_view query_text,
                                             query::ExecContext* ctx) {
  auto prepared = Prepare(query_text);
  if (!prepared.ok()) {
    RecordOutcome(serving_.get(), prepared.status());
    return prepared.status();
  }
  return Execute(*prepared, ctx);
}

}  // namespace xmark::bench
