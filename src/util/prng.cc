#include "util/prng.h"

#include "util/logging.h"

namespace xmark {
namespace {

// SplitMix64 finalizer (Steele, Lea, Flood 2014). Public-domain constants.
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t DeriveState(uint64_t seed, uint64_t stream) {
  // Two mixing rounds decorrelate adjacent (seed, stream) pairs.
  return Mix64(Mix64(seed) ^ (stream * 0xd1342543de82ef95ULL + 1));
}

}  // namespace

Prng::Prng(uint64_t seed, uint64_t stream)
    : seed_(seed),
      stream_(stream),
      state_(DeriveState(seed, stream)),
      counter_(0) {}

uint64_t Prng::NextU64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  ++counter_;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Prng::NextBelow(uint64_t bound) {
  XMARK_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % bound);
  uint64_t v = NextU64();
  while (v >= limit) v = NextU64();
  return v % bound;
}

int64_t Prng::NextInt(int64_t lo, int64_t hi) {
  XMARK_CHECK(lo <= hi);
  const uint64_t span =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Prng::NextDouble() {
  // 53 high-quality bits -> [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Prng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Prng::Reset() {
  state_ = DeriveState(seed_, stream_);
  counter_ = 0;
}

Prng Prng::Split(uint64_t child) const {
  return Prng(Mix64(seed_ ^ Mix64(stream_)), child);
}

}  // namespace xmark
