#ifndef XMARK_UTIL_TABLE_PRINTER_H_
#define XMARK_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace xmark {

/// Renders aligned plain-text tables; the benchmark harnesses use it to
/// print rows in the same layout as the paper's Tables 1-3.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header rule, e.g.:
  ///   System | Size    | Bulkload time
  ///   -------+---------+--------------
  ///   A      | 241 MB  | 414 s
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace xmark

#endif  // XMARK_UTIL_TABLE_PRINTER_H_
