#ifndef XMARK_UTIL_TIMER_H_
#define XMARK_UTIL_TIMER_H_

#include <cstdint>

namespace xmark {

/// Monotonic wall-clock time in nanoseconds.
uint64_t WallTimeNanos();

/// Per-process CPU time (user + system) in nanoseconds. Together with wall
/// time this supports the CPU%-of-total breakdown of Table 2.
uint64_t CpuTimeNanos();

/// Measures one phase (e.g., query compilation vs execution) in both wall
/// and CPU time.
class PhaseTimer {
 public:
  PhaseTimer() { Restart(); }

  void Restart() {
    wall_start_ = WallTimeNanos();
    cpu_start_ = CpuTimeNanos();
  }

  double ElapsedWallMillis() const {
    return static_cast<double>(WallTimeNanos() - wall_start_) / 1e6;
  }
  double ElapsedCpuMillis() const {
    return static_cast<double>(CpuTimeNanos() - cpu_start_) / 1e6;
  }

 private:
  uint64_t wall_start_ = 0;
  uint64_t cpu_start_ = 0;
};

/// Wall and CPU milliseconds spent in one benchmark phase.
struct PhaseCost {
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
};

}  // namespace xmark

#endif  // XMARK_UTIL_TIMER_H_
