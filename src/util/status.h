#ifndef XMARK_UTIL_STATUS_H_
#define XMARK_UTIL_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>

namespace xmark {

/// Coarse error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kParseError,
  kInternal,
  kUnimplemented,
  kIoError,
  // Resource-governance taxonomy (serving layer): a query exceeded its
  // deadline, was cancelled by the client, or ran into a memory/step
  // budget. kInvalidQuery is the structured rejection of a malformed
  // query text (parse/static errors carry a stable sub-code + line:col).
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
  kInvalidQuery,
};

/// Returns a human-readable name for `code` ("OK", "ParseError", ...).
const char* StatusCodeToString(StatusCode code);

/// Error-return type used throughout the library (exceptions are disabled
/// per the project style). A Status is either OK or carries a code plus a
/// descriptive message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Value-or-error return type; holds T on success, a non-OK Status otherwise.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl.
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  const T& operator*() const& { return value_; }
  T& operator*() & { return value_; }
  const T* operator->() const { return &value_; }
  T* operator->() { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Evaluates `expr` (a Status) and returns it from the enclosing function if
/// it is not OK.
#define XMARK_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::xmark::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#define XMARK_INTERNAL_CONCAT_(a, b) a##b
#define XMARK_INTERNAL_CONCAT(a, b) XMARK_INTERNAL_CONCAT_(a, b)

#define XMARK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

/// Evaluates `expr` (a StatusOr<T>), propagating errors; otherwise assigns
/// the contained value to `lhs`.
#define XMARK_ASSIGN_OR_RETURN(lhs, expr) \
  XMARK_ASSIGN_OR_RETURN_IMPL(            \
      XMARK_INTERNAL_CONCAT(_status_or_, __LINE__), lhs, expr)

}  // namespace xmark

#endif  // XMARK_UTIL_STATUS_H_
