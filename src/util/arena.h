#ifndef XMARK_UTIL_ARENA_H_
#define XMARK_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace xmark {

/// Bump-pointer arena used by the DOM store. All allocations are freed at
/// once when the arena is destroyed; individual deallocation is not
/// supported. Not thread-safe.
class Arena {
 public:
  explicit Arena(size_t block_size = 1 << 16) : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `n` bytes aligned to `align` (power of two).
  void* Allocate(size_t n, size_t align = alignof(std::max_align_t)) {
    size_t pos = (pos_ + align - 1) & ~(align - 1);
    if (blocks_.empty() || pos + n > cap_) {
      NewBlock(n);
      pos = 0;
    }
    char* out = blocks_.back().get() + pos;
    pos_ = pos + n;
    return out;
  }

  /// Copies `s` into the arena and returns a view over the stable copy.
  std::string_view CopyString(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Constructs a T in the arena. The destructor will NOT run; only use for
  /// trivially destructible types.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena::New requires trivially destructible types");
    return new (Allocate(sizeof(T), alignof(T)))
        T(std::forward<Args>(args)...);
  }

  /// Total bytes reserved from the system (capacity, not live bytes).
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// Bytes handed out to callers.
  size_t bytes_used() const { return bytes_used_base_ + pos_; }

 private:
  void NewBlock(size_t min_size) {
    if (!blocks_.empty()) bytes_used_base_ += pos_;
    const size_t size = min_size > block_size_ ? min_size : block_size_;
    blocks_.push_back(std::make_unique<char[]>(size));
    cap_ = size;
    pos_ = 0;
    bytes_reserved_ += size;
  }

  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t cap_ = 0;
  size_t pos_ = 0;
  size_t bytes_reserved_ = 0;
  size_t bytes_used_base_ = 0;
};

}  // namespace xmark

#endif  // XMARK_UTIL_ARENA_H_
