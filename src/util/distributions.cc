#include "util/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace xmark {

double SampleExponential(Prng& prng, double lambda) {
  XMARK_CHECK(lambda > 0.0);
  // Inverse CDF; 1 - u avoids log(0).
  return -std::log(1.0 - prng.NextDouble()) / lambda;
}

double SampleNormal(Prng& prng, double mean, double stddev) {
  // Polar Box-Muller; we deliberately discard the second variate to keep
  // the stream position deterministic per call count.
  double u, v, s;
  do {
    u = 2.0 * prng.NextDouble() - 1.0;
    v = 2.0 * prng.NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  return mean + stddev * u * factor;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  XMARK_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Prng& prng) const {
  const double u = prng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  XMARK_CHECK(!weights.empty());
  cdf_.resize(weights.size());
  double total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    XMARK_CHECK(weights[i] >= 0.0);
    total += weights[i];
    cdf_[i] = total;
  }
  XMARK_CHECK(total > 0.0);
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

size_t DiscreteSampler::Sample(Prng& prng) const {
  const double u = prng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace xmark
