#ifndef XMARK_UTIL_LOGGING_H_
#define XMARK_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace xmark {
namespace internal_logging {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal_logging
}  // namespace xmark

/// Aborts the process with a diagnostic when `cond` is false. Used for
/// internal invariants that indicate programmer error, never for user input.
#define XMARK_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond))                                                        \
      ::xmark::internal_logging::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

#define XMARK_DCHECK(cond) XMARK_CHECK(cond)

#endif  // XMARK_UTIL_LOGGING_H_
