#ifndef XMARK_UTIL_STRING_UTIL_H_
#define XMARK_UTIL_STRING_UTIL_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xmark {

/// Heterogeneous hash for string-keyed unordered containers: lets find()
/// and equal_range() take a std::string_view without materializing a
/// std::string per probe. Pair with std::equal_to<> as the key-equal.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const char* s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Parses a decimal double from the (trimmed) string; returns nullopt when
/// the string is not entirely numeric. XMark stores all character data as
/// strings, so queries cast at runtime (paper §6.3).
std::optional<double> ParseDouble(std::string_view s);

/// Parses a decimal integer, rejecting trailing garbage.
std::optional<int64_t> ParseInt(std::string_view s);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Case-sensitive substring test (XQuery fn:contains over ASCII).
bool Contains(std::string_view haystack, std::string_view needle);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Splits on a single character; keeps empty pieces.
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

/// Formats a double the way our serializer emits atomic values: integers
/// without a decimal point, otherwise shortest round-trip-ish fixed form.
std::string FormatDouble(double v);

/// Escapes '&', '<', '>', '"' for XML output.
void AppendXmlEscaped(std::string& out, std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace xmark

#endif  // XMARK_UTIL_STRING_UTIL_H_
