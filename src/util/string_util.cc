#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstring>

namespace xmark {

std::optional<double> ParseDouble(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  double out = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return out;
}

std::optional<int64_t> ParseInt(std::string_view s) {
  s = TrimWhitespace(s);
  if (s.empty()) return std::nullopt;
  int64_t out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "INF" : "-INF";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void AppendXmlEscaped(std::string& out, std::string_view s) {
  // Span-based: memchr-backed find_first_of locates the next escapable
  // byte and everything before it is bulk-copied in one append, instead
  // of a branch + push_back per character. Escape-free strings (the
  // overwhelming case in the serializer) reduce to a single append.
  constexpr std::string_view kEscapable("&<>\"");
  size_t pos = 0;
  while (pos < s.size()) {
    const size_t hit = s.find_first_of(kEscapable, pos);
    if (hit == std::string_view::npos) break;
    out.append(s, pos, hit - pos);
    switch (s[hit]) {
      case '&':
        out.append("&amp;");
        break;
      case '<':
        out.append("&lt;");
        break;
      case '>':
        out.append("&gt;");
        break;
      default:  // '"'
        out.append("&quot;");
        break;
    }
    pos = hit + 1;
  }
  out.append(s, pos, std::string_view::npos);
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace xmark
