#ifndef XMARK_UTIL_FAULT_INJECTION_H_
#define XMARK_UTIL_FAULT_INJECTION_H_

// Deterministic fault-injection probes for robustness testing.
//
// A probe site is a named point in the code where a scarce-resource
// failure can be simulated: the site evaluates XMARK_FAULT_POINT("name")
// and, when the test harness has armed that name, the macro returns true
// exactly at the armed hit count — the site then takes its failure path
// (return a Status, fall back to a serial drain, ...). Production builds
// compile the macro to a constant false, so probe sites cost nothing and
// cannot fire.
//
// Sites are registered centrally in kFaultSites below: the governance
// test loops over FaultSites() and arms each one in turn, which keeps the
// "every failure path has been walked under ASan" guarantee mechanical —
// adding a probe without listing it here trips the XMARK_CHECK inside
// ShouldFail on first execution (fault builds only).
//
// Arming is by site name + countdown: Arm("x", n) makes the (n+1)-th hit
// of site "x" fire once; ArmSticky keeps it firing on every later hit
// (modelling persistent scarcity, e.g. a saturated pool). All state is
// global and mutex-guarded — tests arm/disarm around single-threaded
// setup, while hits may come from any pool worker.

#include <cstddef>
#include <span>
#include <string_view>

#ifndef XMARK_FAULT_INJECTION
#define XMARK_FAULT_INJECTION 0
#endif

namespace xmark::fault {

/// Every probe site compiled into the library. The names are the contract
/// between the code and the fault-injection CI job; keep them stable.
inline constexpr std::string_view kFaultSites[] = {
    "parser/module",         // ParseQueryText: whole-module parse fails
    "plan_cache/compile",    // PlanCache::GetOrCompile: compile fn fails
    "thread_pool/submit",    // ThreadPool::TrySubmit: pool reports saturation
    "exec/morsel_drain",     // DrainMorsels worker: one morsel fails
    "exec/pipeline_drain",   // PipelineExec fused drain: one batch fails
    "exec/hash_join_build",  // HashJoinExec::Build: table build fails
    "exec/band_join_build",  // BandJoinIndex::Build: domain build fails
    "exec/construct",        // ConstructExec::BuildElement: node alloc fails
    "engine/load_store",     // Engine::BuildStoreForSystem: load fails
};

/// All registered site names, for harnesses that loop over them.
std::span<const std::string_view> FaultSites();

/// Arms `site`: its (countdown+1)-th hit after this call fires once, then
/// the site disarms itself. Replaces any previous arming of any site
/// (one armed site at a time keeps failures attributable).
void Arm(std::string_view site, int countdown);

/// Like Arm, but once the countdown is reached the site keeps firing on
/// every hit until Disarm() — models persistent scarcity.
void ArmSticky(std::string_view site, int countdown = 0);

/// Clears all armed state.
void Disarm();

/// True when `site` is armed and its countdown has elapsed. Called by the
/// XMARK_FAULT_POINT macro; checks that `site` is listed in kFaultSites.
bool ShouldFail(std::string_view site);

/// Total hits observed on the armed site since Arm (test introspection:
/// lets a harness learn how many times a site fires per query).
int ArmedSiteHits();

}  // namespace xmark::fault

#if XMARK_FAULT_INJECTION
#define XMARK_FAULT_POINT(site) (::xmark::fault::ShouldFail(site))
#else
#define XMARK_FAULT_POINT(site) (false)
#endif

#endif  // XMARK_UTIL_FAULT_INJECTION_H_
