#include "util/fault_injection.h"

#include <algorithm>

#include "util/logging.h"
#include "util/mutex.h"

namespace xmark::fault {
namespace {

// One armed site at a time (see header). Guarded: hits arrive from pool
// workers while tests arm/disarm on the main thread.
struct ArmedState {
  util::Mutex mu;
  std::string_view site GUARDED_BY(mu);  // empty = disarmed
  int countdown GUARDED_BY(mu) = 0;
  bool sticky GUARDED_BY(mu) = false;
  bool spent GUARDED_BY(mu) = false;  // one-shot already fired
  int hits GUARDED_BY(mu) = 0;
};

ArmedState& State() {
  static ArmedState state;
  return state;
}

bool IsRegistered(std::string_view site) {
  return std::find(std::begin(kFaultSites), std::end(kFaultSites), site) !=
         std::end(kFaultSites);
}

}  // namespace

std::span<const std::string_view> FaultSites() { return kFaultSites; }

void Arm(std::string_view site, int countdown) {
  XMARK_CHECK(IsRegistered(site));
  ArmedState& s = State();
  util::MutexLock lock(s.mu);
  s.site = site;
  s.countdown = countdown;
  s.sticky = false;
  s.spent = false;
  s.hits = 0;
}

void ArmSticky(std::string_view site, int countdown) {
  Arm(site, countdown);
  ArmedState& s = State();
  util::MutexLock lock(s.mu);
  s.sticky = true;
}

void Disarm() {
  ArmedState& s = State();
  util::MutexLock lock(s.mu);
  s.site = {};
  s.countdown = 0;
  s.sticky = false;
  s.spent = false;
  s.hits = 0;
}

bool ShouldFail(std::string_view site) {
  XMARK_CHECK(IsRegistered(site));
  ArmedState& s = State();
  util::MutexLock lock(s.mu);
  if (s.site != site) return false;
  ++s.hits;
  if (s.spent) return false;
  if (s.countdown > 0) {
    --s.countdown;
    return false;
  }
  if (!s.sticky) s.spent = true;
  return true;
}

int ArmedSiteHits() {
  ArmedState& s = State();
  util::MutexLock lock(s.mu);
  return s.hits;
}

}  // namespace xmark::fault
