#ifndef XMARK_UTIL_THREAD_ANNOTATIONS_H_
#define XMARK_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (-Wthread-safety), no-ops on GCC/MSVC.
//
// These macros declare the locking contract of a structure in the source
// itself — which mutex guards which field, which functions require or
// exclude which lock — so Clang's static analysis *proves* every access
// follows the contract at compile time. The CI job builds the tree with
// clang++ -DTHREAD_SAFETY_WERROR=ON, turning any unguarded access into a
// build error; tools/check_layering.py enforces that every mutex outside
// util/ is the annotated util::Mutex so the analysis cannot be bypassed.
//
// Usage pattern (see query/plan_cache.h, util/thread_pool.h):
//
//   util::Mutex mu;
//   std::vector<T> items GUARDED_BY(mu);
//   void Push(T t) EXCLUDES(mu) { MutexLock lock(mu); items.push_back(t); }
//   void PushLocked(T t) REQUIRES(mu) { items.push_back(t); }
//
// Macro names follow the Clang documentation's canonical set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).

#if defined(__clang__)
#define XMARK_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define XMARK_THREAD_ANNOTATION_(x)  // no-op on non-Clang compilers
#endif

// Type attribute: marks a class as a lockable capability ("mutex").
#define CAPABILITY(x) XMARK_THREAD_ANNOTATION_(capability(x))

// Type attribute: RAII object that acquires a capability in its
// constructor and releases it in its destructor (e.g. util::MutexLock).
#define SCOPED_CAPABILITY XMARK_THREAD_ANNOTATION_(scoped_lockable)

// Data member attribute: the member may only be read or written while
// holding the given capability.
#define GUARDED_BY(x) XMARK_THREAD_ANNOTATION_(guarded_by(x))

// Data member attribute (pointers): the pointed-to data is guarded; the
// pointer itself may be read freely.
#define PT_GUARDED_BY(x) XMARK_THREAD_ANNOTATION_(pt_guarded_by(x))

// Function attribute: the caller must hold the capability (exclusively /
// shared) before calling; the function does not release it.
#define REQUIRES(...) \
  XMARK_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  XMARK_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// Function attribute: the function acquires the capability and holds it
// on return (caller must not already hold it).
#define ACQUIRE(...) \
  XMARK_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  XMARK_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// Function attribute: the function releases the capability (caller must
// hold it on entry).
#define RELEASE(...) \
  XMARK_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  XMARK_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// Function attribute: attempts to acquire; first argument is the return
// value that means success.
#define TRY_ACQUIRE(...) \
  XMARK_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Function attribute: the caller must NOT hold the capability (the
// function acquires and releases it internally). Catches self-deadlock.
#define EXCLUDES(...) XMARK_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Function attribute: asserts at runtime that the capability is held and
// tells the analysis to assume so from here on.
#define ASSERT_CAPABILITY(x) \
  XMARK_THREAD_ANNOTATION_(assert_capability(x))

// Function attribute: the function returns a reference to the given
// capability (lets accessors expose a member mutex).
#define RETURN_CAPABILITY(x) XMARK_THREAD_ANNOTATION_(lock_returned(x))

// Function attribute: opt this function out of the analysis entirely.
// Reserve for code the analysis cannot express; every use is a reviewed
// exception, not a convenience.
#define NO_THREAD_SAFETY_ANALYSIS \
  XMARK_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // XMARK_UTIL_THREAD_ANNOTATIONS_H_
