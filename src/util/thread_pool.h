#ifndef XMARK_UTIL_THREAD_POOL_H_
#define XMARK_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace xmark {

/// Small work-stealing thread pool for bulkload parallelism.
///
/// The pool owns `worker_count() - 1` background threads; the caller is
/// worker 0 and participates in execution inside Wait(), so a pool of size
/// 1 runs everything inline on the calling thread. Tasks are pushed to
/// per-worker deques (round-robin from the submitting thread, LIFO for the
/// owner); idle workers steal from the front of other deques (FIFO), which
/// keeps large submitted ranges flowing oldest-first to thieves while
/// owners stay cache-hot on their newest work.
///
/// The scheduling policy never affects results: every helper below is
/// written so its output is identical for any worker count and any steal
/// interleaving (disjoint writes, ordered merges).
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers total (including the caller).
  /// 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const {
    return static_cast<unsigned>(queues_.size());
  }

  /// Submits one task. Thread-safe; may be called from inside a task
  /// (nested submissions are drained by the enclosing Wait()).
  void Submit(std::function<void()> fn);

  /// Admission-controlled Submit: refuses (returns false, leaving `fn`
  /// unmoved) when more than `max_pending` tasks are already in flight —
  /// the saturation signal morsel dispatch uses to degrade to a serial
  /// drain instead of piling unbounded work onto a loaded pool. Also the
  /// "thread_pool/submit" fault-injection site.
  bool TrySubmit(std::function<void()>& fn, size_t max_pending);

  /// Runs tasks until every submitted task (including ones submitted while
  /// waiting) has finished. The caller executes and steals work itself, so
  /// Wait() never blocks while runnable tasks exist. Only the thread that
  /// owns the pool phase may call Wait().
  void Wait();

 private:
  struct Queue {
    util::Mutex mu;
    std::deque<std::function<void()>> tasks GUARDED_BY(mu);
  };

  // Pops from own deque back, else steals from other fronts. Returns false
  // when every deque is empty.
  bool RunOne(unsigned self);
  bool HasRunnable();
  void WorkerLoop(unsigned self);

  std::vector<std::unique_ptr<Queue>> queues_;  // [0] is the caller's
  std::vector<std::thread> threads_;
  // Sleep/wake protocol: pending_ only changes with wake_mu_ held (though
  // it stays atomic so Wait()'s fast path may read it lock-free), so a
  // sleeper that saw pending_ == 0 under the lock cannot miss the
  // notification of a concurrent Submit.
  util::Mutex wake_mu_;
  util::CondVar wake_;
  util::CondVar idle_;
  std::atomic<size_t> pending_{0};  // submitted but not yet finished
  std::atomic<unsigned> next_queue_{0};
  std::atomic<bool> stop_{false};
};

/// Deterministic partition of [0, n) into ~threads*4 ranges for the
/// bulkload fill passes: bounds depend only on n and the thread count
/// (never on scheduling), which is what lets chunk workers write at
/// prefix-summed positions and produce identical output for any worker
/// interleaving. Returns chunk edges: bounds[k]..bounds[k+1] is chunk k.
inline std::vector<size_t> ChunkBounds(size_t n, unsigned threads) {
  const size_t chunks = std::max<size_t>(1, size_t{threads} * 4);
  std::vector<size_t> bounds;
  bounds.reserve(chunks + 1);
  for (size_t i = 0; i <= chunks; ++i) bounds.push_back(i * n / chunks);
  return bounds;
}

/// Runs fn(begin, end) over [begin, end) split into chunks of at least
/// `grain` items, in parallel on `pool`. Serial (direct call) when the pool
/// is null, has one worker, or the range fits one grain. `fn` must be safe
/// to run concurrently on disjoint subranges; writes must be disjoint for
/// determinism.
template <typename Fn>
void ParallelFor(ThreadPool* pool, size_t begin, size_t end, size_t grain,
                 Fn&& fn) {
  if (grain == 0) grain = 1;
  const size_t n = end > begin ? end - begin : 0;
  if (pool == nullptr || pool->worker_count() <= 1 || n <= grain) {
    if (n > 0) fn(begin, end);
    return;
  }
  // At most ~4 chunks per worker: enough slack for stealing to balance
  // skewed chunks without drowning the deques in tiny tasks.
  const size_t max_chunks = static_cast<size_t>(pool->worker_count()) * 4;
  const size_t chunk = std::max(grain, (n + max_chunks - 1) / max_chunks);
  for (size_t b = begin; b < end; b += chunk) {
    const size_t e = std::min(end, b + chunk);
    pool->Submit([&fn, b, e] { fn(b, e); });
  }
  pool->Wait();
}

/// Deterministic parallel stable sort: partitions [begin, end) into one
/// run per worker, stable-sorts the runs in parallel, then merges adjacent
/// runs pairwise (also in parallel) with std::inplace_merge. Stability of
/// both phases makes the result identical to std::stable_sort regardless
/// of worker count.
template <typename It, typename Comp>
void ParallelStableSort(ThreadPool* pool, It begin, It end, Comp comp) {
  const size_t n = static_cast<size_t>(end - begin);
  constexpr size_t kSerialCutoff = 1 << 13;
  if (pool == nullptr || pool->worker_count() <= 1 || n <= kSerialCutoff) {
    std::stable_sort(begin, end, comp);
    return;
  }
  const size_t parts = std::min<size_t>(pool->worker_count(),
                                        (n + kSerialCutoff - 1) / kSerialCutoff);
  std::vector<size_t> bounds;
  bounds.reserve(parts + 1);
  for (size_t i = 0; i <= parts; ++i) bounds.push_back(i * n / parts);
  for (size_t i = 0; i < parts; ++i) {
    pool->Submit([begin, &bounds, &comp, i] {
      std::stable_sort(begin + bounds[i], begin + bounds[i + 1], comp);
    });
  }
  pool->Wait();
  // log2(parts) rounds of pairwise merges.
  for (size_t width = 1; width < parts; width *= 2) {
    for (size_t i = 0; i + width < parts; i += 2 * width) {
      const size_t lo = bounds[i];
      const size_t mid = bounds[i + width];
      const size_t hi = bounds[std::min(i + 2 * width, parts)];
      pool->Submit([begin, lo, mid, hi, &comp] {
        std::inplace_merge(begin + lo, begin + mid, begin + hi, comp);
      });
    }
    pool->Wait();
  }
}

}  // namespace xmark

#endif  // XMARK_UTIL_THREAD_POOL_H_
