#ifndef XMARK_UTIL_MUTEX_H_
#define XMARK_UTIL_MUTEX_H_

// Annotated mutex wrappers for Clang's compile-time thread-safety
// analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so
// GUARDED_BY(some_std_mutex) is invisible to the analysis. These wrappers
// are the thinnest possible annotated shims over the standard primitives;
// every mutex outside util/ must be a util::Mutex (enforced by
// tools/check_layering.py) so the whole tree stays analyzable.

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace xmark::util {

/// Annotated exclusive mutex. Same cost as std::mutex; the annotations
/// exist purely for -Wthread-safety.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII guard, the annotated analogue of std::lock_guard<std::mutex>.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with util::Mutex. Wait() is annotated
/// REQUIRES(mu): the analysis checks the caller holds the mutex, and the
/// wait re-acquires it before returning, so guarded state stays guarded
/// across the wait from the analysis' point of view.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified. The mutex is released while blocked and held
  /// again on return. Spurious wakeups are possible: callers loop on
  /// their predicate, or use the predicate overload below.
  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  /// Blocks until `pred()` is true (checked with the mutex held).
  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any BasicLockable — util::Mutex
  // qualifies — at the cost of one extra internal mutex per CondVar,
  // irrelevant at the wait frequencies of a work-stealing pool.
  std::condition_variable_any cv_;
};

}  // namespace xmark::util

#endif  // XMARK_UTIL_MUTEX_H_
