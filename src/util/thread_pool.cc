#include "util/thread_pool.h"

#include "util/fault_injection.h"

namespace xmark {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // Backstop against wrapped or absurd requests (e.g. a negative flag
  // cast to unsigned): more workers than this never helps a bulkload.
  constexpr unsigned kMaxWorkers = 256;
  if (threads > kMaxWorkers) threads = kMaxWorkers;
  queues_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(threads - 1);
  for (unsigned i = 1; i < threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    util::MutexLock lock(wake_mu_);
    stop_.store(true, std::memory_order_release);
  }
  wake_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  const unsigned q = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                     queues_.size();
  {
    util::MutexLock lock(queues_[q]->mu);
    queues_[q]->tasks.push_back(std::move(fn));
  }
  // pending_ changes under wake_mu_ so sleeping workers and Wait() cannot
  // miss the state change between their predicate check and the wait.
  {
    util::MutexLock lock(wake_mu_);
    pending_.fetch_add(1, std::memory_order_release);
  }
  wake_.NotifyOne();
}

bool ThreadPool::TrySubmit(std::function<void()>& fn, size_t max_pending) {
  if (XMARK_FAULT_POINT("thread_pool/submit")) return false;
  if (pending_.load(std::memory_order_acquire) >= max_pending) return false;
  Submit(std::move(fn));
  return true;
}

bool ThreadPool::RunOne(unsigned self) {
  std::function<void()> task;
  {
    // Own deque: newest first (cache-hot).
    Queue& own = *queues_[self];
    util::MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from the other deques.
    for (size_t i = 1; i < queues_.size() && !task; ++i) {
      Queue& victim = *queues_[(self + i) % queues_.size()];
      util::MutexLock lock(victim.mu);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  task();
  size_t left;
  {
    util::MutexLock lock(wake_mu_);
    left = pending_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  }
  if (left == 0) idle_.NotifyAll();
  return true;
}

bool ThreadPool::HasRunnable() {
  for (const auto& q : queues_) {
    util::MutexLock lock(q->mu);
    if (!q->tasks.empty()) return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned self) {
  while (true) {
    if (RunOne(self)) continue;
    util::MutexLock lock(wake_mu_);
    wake_.Wait(wake_mu_, [this] {
      return stop_.load(std::memory_order_acquire) ||
             (pending_.load(std::memory_order_acquire) > 0 && HasRunnable());
    });
    if (stop_.load(std::memory_order_acquire) && !HasRunnable()) return;
  }
}

void ThreadPool::Wait() {
  // The caller works too: drain tasks until none remain in flight.
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (RunOne(0)) continue;
    // Nothing runnable here, but tasks are still in flight on other
    // workers (or nested submissions may yet arrive).
    util::MutexLock lock(wake_mu_);
    idle_.Wait(wake_mu_, [this] {
      return pending_.load(std::memory_order_acquire) == 0 || HasRunnable();
    });
  }
}

}  // namespace xmark
