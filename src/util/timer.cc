#include "util/timer.h"

#include <ctime>

namespace xmark {
namespace {

uint64_t ClockNanos(clockid_t id) {
  timespec ts;
  clock_gettime(id, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

uint64_t WallTimeNanos() { return ClockNanos(CLOCK_MONOTONIC); }

uint64_t CpuTimeNanos() { return ClockNanos(CLOCK_PROCESS_CPUTIME_ID); }

}  // namespace xmark
