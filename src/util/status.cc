#include "util/status.h"

namespace xmark {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInvalidQuery:
      return "InvalidQuery";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xmark
