#ifndef XMARK_UTIL_DISTRIBUTIONS_H_
#define XMARK_UTIL_DISTRIBUTIONS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/prng.h"

namespace xmark {

/// Random-variate samplers over the deterministic Prng. The paper (§4.2,
/// §4.5) requires uniform, exponential and normal distributions "of fairly
/// high quality" implemented from textbook algorithms on top of the custom
/// generator; the generator's references are drawn from all three.

/// Exponential variate with rate `lambda` (mean 1/lambda); inverse-CDF.
double SampleExponential(Prng& prng, double lambda);

/// Standard normal variate via the Box-Muller transform (polar form).
double SampleNormal(Prng& prng, double mean, double stddev);

/// Zipf-distributed rank in [0, n) with exponent `s`; used by the text
/// generator to mimic natural-language word frequencies.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Draws a rank; rank 0 is the most frequent outcome.
  size_t Sample(Prng& prng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Draws an index in [0, weights.size()) proportional to `weights`.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights);

  size_t Sample(Prng& prng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace xmark

#endif  // XMARK_UTIL_DISTRIBUTIONS_H_
