#ifndef XMARK_UTIL_PRNG_H_
#define XMARK_UTIL_PRNG_H_

#include <cstdint>

namespace xmark {

/// Deterministic pseudo-random number generator.
///
/// The paper (§4.5) requires the generator to be platform independent and
/// deterministic, and to be able to "produce several identical streams of
/// random numbers" so that reference targets (e.g., the partitioning of item
/// ids between open and closed auctions) can be re-derived without keeping a
/// log. We implement this with a counter-based SplitMix64 construction:
/// a (seed, stream) pair defines an infinite reproducible stream, and any
/// stream can be re-opened at position zero at any time.
class Prng {
 public:
  /// Creates stream `stream` of the generator family identified by `seed`.
  explicit Prng(uint64_t seed, uint64_t stream = 0);

  /// Next raw 64-bit value.
  uint64_t NextU64();

  /// Uniform in [0, bound) without modulo bias (bound > 0).
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBool(double p);

  /// Restarts this stream from its beginning; the subsequent sequence is
  /// identical to a freshly-constructed Prng with the same (seed, stream).
  void Reset();

  /// Derives an independent child stream; deterministic in (seed, stream,
  /// child). Used to split the generator per document section.
  Prng Split(uint64_t child) const;

  uint64_t seed() const { return seed_; }
  uint64_t stream() const { return stream_; }
  uint64_t position() const { return counter_; }

 private:
  uint64_t seed_;
  uint64_t stream_;
  uint64_t state_;
  uint64_t counter_;
};

}  // namespace xmark

#endif  // XMARK_UTIL_PRNG_H_
