#include "util/table_printer.h"

#include <algorithm>

namespace xmark {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](std::string& out, const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += " | ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  emit_row(out, headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) out += "-+-";
    out.append(widths[c], '-');
  }
  out += '\n';
  for (const auto& row : rows_) emit_row(out, row);
  return out;
}

}  // namespace xmark
