#include "rel/shredder.h"

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xmark::rel {
namespace {

// First child element of `n` with the given tag, or kInvalidNode.
xml::NodeId ChildByTag(const xml::Document& doc, xml::NodeId n,
                       std::string_view tag) {
  for (xml::NodeId c = doc.first_child(n); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c) && doc.tag(c) == tag) return c;
  }
  return xml::kInvalidNode;
}

std::string ChildText(const xml::Document& doc, xml::NodeId n,
                      std::string_view tag) {
  const xml::NodeId c = ChildByTag(doc, n, tag);
  return c == xml::kInvalidNode ? std::string() : doc.StringValue(c);
}

std::string RefAttr(const xml::Document& doc, xml::NodeId n,
                    std::string_view tag, std::string_view attr) {
  const xml::NodeId c = ChildByTag(doc, n, tag);
  if (c == xml::kInvalidNode) return "";
  const auto v = doc.attribute(c, attr);
  return v.has_value() ? std::string(*v) : "";
}

// Row batches one chunk of nodes contributes: the unit of work of the
// parallel shred (batches append to the tables in chunk order).
struct RowBatch {
  std::vector<std::vector<Value>> persons;
  std::vector<std::vector<Value>> items;
  std::vector<std::vector<Value>> open_auctions;
  std::vector<std::vector<Value>> closed_auctions;
};

// Extracts the rows of nodes [begin, end) into `batch`. Pure function of
// the (read-only) document, safe to run on disjoint ranges concurrently.
void ShredRange(const xml::Document& doc, xml::NodeId begin, xml::NodeId end,
                RowBatch* batch) {
  for (xml::NodeId n = begin; n < end; ++n) {
    if (!doc.IsElement(n)) continue;
    const std::string& tag = doc.tag(n);
    if (tag == "person") {
      double income = -1.0;
      const xml::NodeId profile = ChildByTag(doc, n, "profile");
      if (profile != xml::kInvalidNode) {
        const std::string text = ChildText(doc, profile, "income");
        const auto parsed = ParseDouble(text);
        if (parsed.has_value()) income = *parsed;
      }
      std::string city, country;
      const xml::NodeId address = ChildByTag(doc, n, "address");
      if (address != xml::kInvalidNode) {
        city = ChildText(doc, address, "city");
        country = ChildText(doc, address, "country");
      }
      batch->persons.push_back(
          {std::string(doc.attribute(n, "id").value_or("")),
           ChildText(doc, n, "name"), std::move(city), std::move(country),
           income});
    } else if (tag == "item") {
      const xml::NodeId region = doc.parent(n);
      batch->items.push_back(
          {std::string(doc.attribute(n, "id").value_or("")),
           ChildText(doc, n, "name"),
           region == xml::kInvalidNode ? std::string() : doc.tag(region),
           ChildText(doc, n, "location")});
    } else if (tag == "open_auction") {
      batch->open_auctions.push_back(
          {std::string(doc.attribute(n, "id").value_or("")),
           RefAttr(doc, n, "itemref", "item"),
           RefAttr(doc, n, "seller", "person"),
           ParseDouble(ChildText(doc, n, "initial")).value_or(0.0),
           ParseDouble(ChildText(doc, n, "current")).value_or(0.0)});
    } else if (tag == "closed_auction") {
      batch->closed_auctions.push_back(
          {RefAttr(doc, n, "itemref", "item"),
           RefAttr(doc, n, "buyer", "person"),
           RefAttr(doc, n, "seller", "person"),
           ParseDouble(ChildText(doc, n, "price")).value_or(0.0)});
    }
  }
}

Status AppendBatch(RowBatch&& batch, AuctionTables* tables) {
  for (auto& row : batch.persons) {
    XMARK_RETURN_IF_ERROR(tables->persons->AppendRow(std::move(row)));
  }
  for (auto& row : batch.items) {
    XMARK_RETURN_IF_ERROR(tables->items->AppendRow(std::move(row)));
  }
  for (auto& row : batch.open_auctions) {
    XMARK_RETURN_IF_ERROR(tables->open_auctions->AppendRow(std::move(row)));
  }
  for (auto& row : batch.closed_auctions) {
    XMARK_RETURN_IF_ERROR(
        tables->closed_auctions->AppendRow(std::move(row)));
  }
  return Status::OK();
}

}  // namespace

StatusOr<AuctionTables> ShredAuctionDocument(
    const xml::Document& doc, const store::LoadOptions& options) {
  AuctionTables tables;
  tables.persons = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"name", ColumnType::kString},
      {"city", ColumnType::kString},
      {"country", ColumnType::kString},
      {"income", ColumnType::kDouble},
  });
  tables.items = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"name", ColumnType::kString},
      {"continent", ColumnType::kString},
      {"location", ColumnType::kString},
  });
  tables.open_auctions = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"item", ColumnType::kString},
      {"seller", ColumnType::kString},
      {"initial", ColumnType::kDouble},
      {"current", ColumnType::kDouble},
  });
  tables.closed_auctions = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"item", ColumnType::kString},
      {"buyer", ColumnType::kString},
      {"seller", ColumnType::kString},
      {"price", ColumnType::kDouble},
  });

  const xml::NodeId n = static_cast<xml::NodeId>(doc.num_nodes());
  const unsigned threads = options.EffectiveThreads();
  if (threads <= 1) {
    RowBatch batch;
    ShredRange(doc, 0, n, &batch);
    XMARK_RETURN_IF_ERROR(AppendBatch(std::move(batch), &tables));
    return tables;
  }
  // Parallel shred: each chunk emits its row batches; batches append in
  // chunk order, reproducing the serial document-order table contents.
  ThreadPool pool(threads);
  const std::vector<size_t> bounds = ChunkBounds(n, threads);
  const size_t chunks = bounds.size() - 1;
  std::vector<RowBatch> batches(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      ShredRange(doc, static_cast<xml::NodeId>(bounds[k]),
                 static_cast<xml::NodeId>(bounds[k + 1]), &batches[k]);
    });
  }
  pool.Wait();
  for (RowBatch& batch : batches) {
    XMARK_RETURN_IF_ERROR(AppendBatch(std::move(batch), &tables));
  }
  return tables;
}

}  // namespace xmark::rel
