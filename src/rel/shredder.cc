#include "rel/shredder.h"

#include "util/string_util.h"

namespace xmark::rel {
namespace {

// First child element of `n` with the given tag, or kInvalidNode.
xml::NodeId ChildByTag(const xml::Document& doc, xml::NodeId n,
                       std::string_view tag) {
  for (xml::NodeId c = doc.first_child(n); c != xml::kInvalidNode;
       c = doc.next_sibling(c)) {
    if (doc.IsElement(c) && doc.tag(c) == tag) return c;
  }
  return xml::kInvalidNode;
}

std::string ChildText(const xml::Document& doc, xml::NodeId n,
                      std::string_view tag) {
  const xml::NodeId c = ChildByTag(doc, n, tag);
  return c == xml::kInvalidNode ? std::string() : doc.StringValue(c);
}

std::string RefAttr(const xml::Document& doc, xml::NodeId n,
                    std::string_view tag, std::string_view attr) {
  const xml::NodeId c = ChildByTag(doc, n, tag);
  if (c == xml::kInvalidNode) return "";
  const auto v = doc.attribute(c, attr);
  return v.has_value() ? std::string(*v) : "";
}

}  // namespace

StatusOr<AuctionTables> ShredAuctionDocument(const xml::Document& doc) {
  AuctionTables tables;
  tables.persons = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"name", ColumnType::kString},
      {"city", ColumnType::kString},
      {"country", ColumnType::kString},
      {"income", ColumnType::kDouble},
  });
  tables.items = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"name", ColumnType::kString},
      {"continent", ColumnType::kString},
      {"location", ColumnType::kString},
  });
  tables.open_auctions = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"id", ColumnType::kString},
      {"item", ColumnType::kString},
      {"seller", ColumnType::kString},
      {"initial", ColumnType::kDouble},
      {"current", ColumnType::kDouble},
  });
  tables.closed_auctions = std::make_unique<Table>(std::vector<ColumnSpec>{
      {"item", ColumnType::kString},
      {"buyer", ColumnType::kString},
      {"seller", ColumnType::kString},
      {"price", ColumnType::kDouble},
  });

  for (xml::NodeId n = 0; n < doc.num_nodes(); ++n) {
    if (!doc.IsElement(n)) continue;
    const std::string& tag = doc.tag(n);
    if (tag == "person") {
      double income = -1.0;
      const xml::NodeId profile = ChildByTag(doc, n, "profile");
      if (profile != xml::kInvalidNode) {
        const std::string text = ChildText(doc, profile, "income");
        const auto parsed = ParseDouble(text);
        if (parsed.has_value()) income = *parsed;
      }
      std::string city, country;
      const xml::NodeId address = ChildByTag(doc, n, "address");
      if (address != xml::kInvalidNode) {
        city = ChildText(doc, address, "city");
        country = ChildText(doc, address, "country");
      }
      XMARK_RETURN_IF_ERROR(tables.persons->AppendRow(
          {std::string(doc.attribute(n, "id").value_or("")),
           ChildText(doc, n, "name"), std::move(city), std::move(country),
           income}));
    } else if (tag == "item") {
      const xml::NodeId region = doc.parent(n);
      XMARK_RETURN_IF_ERROR(tables.items->AppendRow(
          {std::string(doc.attribute(n, "id").value_or("")),
           ChildText(doc, n, "name"),
           region == xml::kInvalidNode ? std::string() : doc.tag(region),
           ChildText(doc, n, "location")}));
    } else if (tag == "open_auction") {
      XMARK_RETURN_IF_ERROR(tables.open_auctions->AppendRow(
          {std::string(doc.attribute(n, "id").value_or("")),
           RefAttr(doc, n, "itemref", "item"),
           RefAttr(doc, n, "seller", "person"),
           ParseDouble(ChildText(doc, n, "initial")).value_or(0.0),
           ParseDouble(ChildText(doc, n, "current")).value_or(0.0)}));
    } else if (tag == "closed_auction") {
      XMARK_RETURN_IF_ERROR(tables.closed_auctions->AppendRow(
          {RefAttr(doc, n, "itemref", "item"),
           RefAttr(doc, n, "buyer", "person"),
           RefAttr(doc, n, "seller", "person"),
           ParseDouble(ChildText(doc, n, "price")).value_or(0.0)}));
    }
  }
  return tables;
}

}  // namespace xmark::rel
