#include "rel/operators.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "util/logging.h"

namespace xmark::rel {

StatusOr<bool> TableScan::Next(Row* row) {
  if (pos_ >= table_->num_rows()) return false;
  row->clear();
  row->reserve(table_->num_columns());
  for (size_t c = 0; c < table_->num_columns(); ++c) {
    row->push_back(table_->ValueAt(c, pos_));
  }
  ++pos_;
  return true;
}

StatusOr<bool> Filter::Next(Row* row) {
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, input_->Next(row));
    if (!more) return false;
    if (predicate_(*row)) return true;
  }
}

StatusOr<bool> Project::Next(Row* row) {
  XMARK_ASSIGN_OR_RETURN(bool more, input_->Next(row));
  if (!more) return false;
  *row = projection_(*row);
  return true;
}

Status HashJoin::Open() {
  XMARK_RETURN_IF_ERROR(right_->Open());
  build_.clear();
  Row row;
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    build_.emplace(ValueToString(row[right_key_]), row);
  }
  XMARK_RETURN_IF_ERROR(left_->Open());
  left_open_ = true;
  matches_.clear();
  match_pos_ = 0;
  return Status::OK();
}

StatusOr<bool> HashJoin::Next(Row* row) {
  XMARK_CHECK(left_open_);
  while (true) {
    if (match_pos_ < matches_.size()) {
      *row = current_left_;
      const Row& right = *matches_[match_pos_++];
      row->insert(row->end(), right.begin(), right.end());
      return true;
    }
    XMARK_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
    if (!more) return false;
    matches_.clear();
    match_pos_ = 0;
    auto [begin, end] =
        build_.equal_range(ValueToString(current_left_[left_key_]));
    for (auto it = begin; it != end; ++it) matches_.push_back(&it->second);
  }
}

Status NestedLoopJoin::Open() {
  XMARK_RETURN_IF_ERROR(right_->Open());
  right_rows_.clear();
  Row row;
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, right_->Next(&row));
    if (!more) break;
    right_rows_.push_back(row);
  }
  XMARK_RETURN_IF_ERROR(left_->Open());
  right_pos_ = 0;
  left_valid_ = false;
  return Status::OK();
}

StatusOr<bool> NestedLoopJoin::Next(Row* row) {
  while (true) {
    if (!left_valid_) {
      XMARK_ASSIGN_OR_RETURN(bool more, left_->Next(&current_left_));
      if (!more) return false;
      left_valid_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right = right_rows_[right_pos_++];
      if (condition_(current_left_, right)) {
        *row = current_left_;
        row->insert(row->end(), right.begin(), right.end());
        return true;
      }
    }
    left_valid_ = false;
  }
}

Status Sort::Open() {
  XMARK_RETURN_IF_ERROR(input_->Open());
  rows_.clear();
  Row row;
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, input_->Next(&row));
    if (!more) break;
    rows_.push_back(row);
  }
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const Key& key : keys_) {
                       int cmp = CompareValues(a[key.column], b[key.column]);
                       if (key.descending) cmp = -cmp;
                       if (cmp != 0) return cmp < 0;
                     }
                     return false;
                   });
  pos_ = 0;
  return Status::OK();
}

StatusOr<bool> Sort::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = rows_[pos_++];
  return true;
}

Status Aggregate::Open() {
  XMARK_RETURN_IF_ERROR(input_->Open());
  results_.clear();
  pos_ = 0;

  struct GroupState {
    Row key;
    std::vector<double> accum;
    std::vector<int64_t> count;
    std::vector<bool> seen;
  };
  // std::map keyed on the rendered group key keeps deterministic output
  // order (sorted by key).
  std::map<std::string, GroupState> groups;

  Row row;
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, input_->Next(&row));
    if (!more) break;
    std::string key_text;
    Row key;
    for (size_t c : group_columns_) {
      key_text += ValueToString(row[c]);
      key_text.push_back('\x1f');
      key.push_back(row[c]);
    }
    auto [it, inserted] = groups.try_emplace(key_text);
    GroupState& state = it->second;
    if (inserted) {
      state.key = std::move(key);
      state.accum.assign(aggregates_.size(), 0.0);
      state.count.assign(aggregates_.size(), 0);
      state.seen.assign(aggregates_.size(), false);
    }
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const Agg& agg = aggregates_[a];
      ++state.count[a];
      if (agg.func == Func::kCount) continue;
      const Value& v = row[agg.column];
      const double num = std::holds_alternative<int64_t>(v)
                             ? static_cast<double>(std::get<int64_t>(v))
                             : std::holds_alternative<double>(v)
                                   ? std::get<double>(v)
                                   : 0.0;
      switch (agg.func) {
        case Func::kSum:
          state.accum[a] += num;
          break;
        case Func::kMin:
          if (!state.seen[a] || num < state.accum[a]) state.accum[a] = num;
          break;
        case Func::kMax:
          if (!state.seen[a] || num > state.accum[a]) state.accum[a] = num;
          break;
        case Func::kCount:
          break;
      }
      state.seen[a] = true;
    }
  }
  // A global aggregate over an empty input still produces one row.
  if (groups.empty() && group_columns_.empty()) {
    Row out;
    for (const Agg& agg : aggregates_) {
      out.push_back(agg.func == Func::kCount ? Value(int64_t{0})
                                             : Value(0.0));
    }
    results_.push_back(std::move(out));
    return Status::OK();
  }
  for (auto& [text, state] : groups) {
    Row out = state.key;
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      if (aggregates_[a].func == Func::kCount) {
        out.push_back(state.count[a]);
      } else {
        out.push_back(state.accum[a]);
      }
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

StatusOr<bool> Aggregate::Next(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = results_[pos_++];
  return true;
}

StatusOr<std::vector<Row>> Collect(Operator* plan) {
  XMARK_RETURN_IF_ERROR(plan->Open());
  std::vector<Row> out;
  Row row;
  while (true) {
    XMARK_ASSIGN_OR_RETURN(bool more, plan->Next(&row));
    if (!more) break;
    out.push_back(row);
  }
  return out;
}

}  // namespace xmark::rel
