#ifndef XMARK_REL_SHREDDER_H_
#define XMARK_REL_SHREDDER_H_

#include <memory>

#include "rel/table.h"
#include "store/load_options.h"
#include "util/status.h"
#include "xml/dom.h"

namespace xmark::rel {

/// Entity-level relational view of the auction document: the data-centric
/// core of the benchmark shredded into typed tables (the flat-file mapping
/// tool the paper §7 mentions shipping with the benchmark). Document-
/// centric prose stays out; these tables serve the relational examples,
/// the rel-operator tests and the join ablation bench.
struct AuctionTables {
  std::unique_ptr<Table> persons;          // id, name, city, country, income
  std::unique_ptr<Table> items;            // id, name, continent, location
  std::unique_ptr<Table> open_auctions;    // id, item, seller, initial, current
  std::unique_ptr<Table> closed_auctions;  // item, buyer, seller, price
};

/// Shreds the document (missing incomes become -1). With more than one
/// thread the entity extraction runs over node chunks that each emit
/// per-table row batches; the batches append in chunk (= document) order,
/// so table contents are identical for any thread count.
StatusOr<AuctionTables> ShredAuctionDocument(
    const xml::Document& doc,
    const store::LoadOptions& options = store::LoadOptions{1});

}  // namespace xmark::rel

#endif  // XMARK_REL_SHREDDER_H_
