#include "rel/table.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace xmark::rel {

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    return FormatDouble(std::get<double>(v));
  }
  return std::get<std::string>(v);
}

int CompareValues(const Value& a, const Value& b) {
  // Numeric types compare numerically with each other; strings compare
  // lexicographically; numbers sort before strings.
  const bool a_num = !std::holds_alternative<std::string>(a);
  const bool b_num = !std::holds_alternative<std::string>(b);
  if (a_num != b_num) return a_num ? -1 : 1;
  if (a_num) {
    const double da = std::holds_alternative<int64_t>(a)
                          ? static_cast<double>(std::get<int64_t>(a))
                          : std::get<double>(a);
    const double db = std::holds_alternative<int64_t>(b)
                          ? static_cast<double>(std::get<int64_t>(b))
                          : std::get<double>(b);
    if (da < db) return -1;
    if (da > db) return 1;
    return 0;
  }
  return std::get<std::string>(a).compare(std::get<std::string>(b));
}

Table::Table(std::vector<ColumnSpec> schema) : schema_(std::move(schema)) {
  col_slot_.reserve(schema_.size());
  for (const ColumnSpec& col : schema_) {
    switch (col.type) {
      case ColumnType::kInt64:
        col_slot_.push_back(int_cols_.size());
        int_cols_.emplace_back();
        break;
      case ColumnType::kDouble:
        col_slot_.push_back(double_cols_.size());
        double_cols_.emplace_back();
        break;
      case ColumnType::kString:
        col_slot_.push_back(string_cols_.size());
        string_cols_.emplace_back();
        break;
    }
  }
}

int Table::ColumnIndex(std::string_view name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::AppendRow(std::vector<Value> row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    switch (schema_[i].type) {
      case ColumnType::kInt64:
        if (!std::holds_alternative<int64_t>(row[i])) {
          return Status::InvalidArgument("column " + schema_[i].name +
                                         " expects int64");
        }
        int_cols_[col_slot_[i]].push_back(std::get<int64_t>(row[i]));
        break;
      case ColumnType::kDouble:
        if (!std::holds_alternative<double>(row[i])) {
          return Status::InvalidArgument("column " + schema_[i].name +
                                         " expects double");
        }
        double_cols_[col_slot_[i]].push_back(std::get<double>(row[i]));
        break;
      case ColumnType::kString:
        if (!std::holds_alternative<std::string>(row[i])) {
          return Status::InvalidArgument("column " + schema_[i].name +
                                         " expects string");
        }
        string_cols_[col_slot_[i]].push_back(
            std::move(std::get<std::string>(row[i])));
        break;
    }
  }
  ++num_rows_;
  return Status::OK();
}

Value Table::ValueAt(size_t column, size_t row) const {
  switch (schema_[column].type) {
    case ColumnType::kInt64:
      return Int64At(column, row);
    case ColumnType::kDouble:
      return DoubleAt(column, row);
    case ColumnType::kString:
      return StringAt(column, row);
  }
  XMARK_CHECK(false);
  return int64_t{0};
}

size_t Table::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& col : int_cols_) bytes += col.capacity() * sizeof(int64_t);
  for (const auto& col : double_cols_) bytes += col.capacity() * sizeof(double);
  for (const auto& col : string_cols_) {
    bytes += col.capacity() * sizeof(std::string);
    for (const std::string& s : col) bytes += s.capacity();
  }
  return bytes;
}

}  // namespace xmark::rel
