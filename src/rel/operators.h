#ifndef XMARK_REL_OPERATORS_H_
#define XMARK_REL_OPERATORS_H_

#include <functional>
#include <memory>
#include <vector>

#include "rel/table.h"
#include "util/status.h"

namespace xmark::rel {

/// A materialized row flowing between operators.
using Row = std::vector<Value>;

/// Pull-based (Volcano-style) operator interface: Open, then Next until it
/// returns false. The relational engines of the paper's Systems A-C run
/// their join-shaped query plans through these operators; the ablation
/// bench compares hash join vs nested loops directly on them.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  /// Produces the next row into *row; returns false at end of stream.
  virtual StatusOr<bool> Next(Row* row) = 0;
};

/// Full scan over a table.
class TableScan : public Operator {
 public:
  explicit TableScan(const Table* table) : table_(table) {}
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  StatusOr<bool> Next(Row* row) override;

 private:
  const Table* table_;
  size_t pos_ = 0;
};

/// Filters rows by a predicate.
class Filter : public Operator {
 public:
  Filter(std::unique_ptr<Operator> input,
         std::function<bool(const Row&)> predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}
  Status Open() override { return input_->Open(); }
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> input_;
  std::function<bool(const Row&)> predicate_;
};

/// Projects/computes columns.
class Project : public Operator {
 public:
  Project(std::unique_ptr<Operator> input,
          std::function<Row(const Row&)> projection)
      : input_(std::move(input)), projection_(std::move(projection)) {}
  Status Open() override { return input_->Open(); }
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> input_;
  std::function<Row(const Row&)> projection_;
};

/// Equi hash join: build on the right input, probe with the left. Output
/// rows are left ++ right.
class HashJoin : public Operator {
 public:
  HashJoin(std::unique_ptr<Operator> left, std::unique_ptr<Operator> right,
           size_t left_key, size_t right_key)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_key_(left_key),
        right_key_(right_key) {}
  Status Open() override;
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  size_t left_key_;
  size_t right_key_;
  std::unordered_multimap<std::string, Row> build_;
  Row current_left_;
  std::vector<const Row*> matches_;
  size_t match_pos_ = 0;
  bool left_open_ = false;
};

/// Nested-loop join with an arbitrary condition (theta joins — the Q11/Q12
/// shape). Materializes the right input once.
class NestedLoopJoin : public Operator {
 public:
  NestedLoopJoin(std::unique_ptr<Operator> left,
                 std::unique_ptr<Operator> right,
                 std::function<bool(const Row&, const Row&)> condition)
      : left_(std::move(left)),
        right_(std::move(right)),
        condition_(std::move(condition)) {}
  Status Open() override;
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> left_;
  std::unique_ptr<Operator> right_;
  std::function<bool(const Row&, const Row&)> condition_;
  std::vector<Row> right_rows_;
  Row current_left_;
  size_t right_pos_ = 0;
  bool left_valid_ = false;
};

/// Sorts the input by the given key columns (materializing).
class Sort : public Operator {
 public:
  struct Key {
    size_t column;
    bool descending = false;
  };
  Sort(std::unique_ptr<Operator> input, std::vector<Key> keys)
      : input_(std::move(input)), keys_(std::move(keys)) {}
  Status Open() override;
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> input_;
  std::vector<Key> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Hash group-by with COUNT/SUM/MIN/MAX aggregates.
class Aggregate : public Operator {
 public:
  enum class Func { kCount, kSum, kMin, kMax };
  struct Agg {
    Func func;
    size_t column;  // ignored for kCount
  };
  /// `group_columns` may be empty for a global aggregate.
  Aggregate(std::unique_ptr<Operator> input,
            std::vector<size_t> group_columns, std::vector<Agg> aggregates)
      : input_(std::move(input)),
        group_columns_(std::move(group_columns)),
        aggregates_(std::move(aggregates)) {}
  Status Open() override;
  StatusOr<bool> Next(Row* row) override;

 private:
  std::unique_ptr<Operator> input_;
  std::vector<size_t> group_columns_;
  std::vector<Agg> aggregates_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

/// Runs a plan to completion and collects all rows.
StatusOr<std::vector<Row>> Collect(Operator* plan);

}  // namespace xmark::rel

#endif  // XMARK_REL_OPERATORS_H_
