#ifndef XMARK_REL_TABLE_H_
#define XMARK_REL_TABLE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/status.h"

namespace xmark::rel {

/// Column types of the mini relational engine. XML shredding needs little
/// more: surrogate ids, numbers and strings (everything in the benchmark
/// document is a string at rest and cast on use, paper §2).
enum class ColumnType { kInt64, kDouble, kString };

/// A single value.
using Value = std::variant<int64_t, double, std::string>;

/// Renders a value for output/tests.
std::string ValueToString(const Value& v);

/// Total order over values (type-first, then value) used by sort and
/// group-by operators.
int CompareValues(const Value& a, const Value& b);

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// Columnar table: fixed schema, append-only rows.
class Table {
 public:
  explicit Table(std::vector<ColumnSpec> schema);

  const std::vector<ColumnSpec>& schema() const { return schema_; }
  size_t num_columns() const { return schema_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Index of the named column; -1 when absent.
  int ColumnIndex(std::string_view name) const;

  /// Appends a row; values must match the schema arity and types.
  Status AppendRow(std::vector<Value> row);

  int64_t Int64At(size_t column, size_t row) const {
    return int_cols_[col_slot_[column]][row];
  }
  double DoubleAt(size_t column, size_t row) const {
    return double_cols_[col_slot_[column]][row];
  }
  const std::string& StringAt(size_t column, size_t row) const {
    return string_cols_[col_slot_[column]][row];
  }
  Value ValueAt(size_t column, size_t row) const;

  /// Approximate memory held by the table.
  size_t MemoryBytes() const;

 private:
  std::vector<ColumnSpec> schema_;
  std::vector<size_t> col_slot_;  // column -> index within its type group
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<double>> double_cols_;
  std::vector<std::vector<std::string>> string_cols_;
  size_t num_rows_ = 0;
};

}  // namespace xmark::rel

#endif  // XMARK_REL_TABLE_H_
