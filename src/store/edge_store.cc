#include "store/edge_store.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "xml/dom.h"

namespace xmark::store {

StatusOr<std::unique_ptr<EdgeStore>> EdgeStore::Load(
    std::string_view xml, const LoadOptions& options) {
  const unsigned threads = options.EffectiveThreads();
  if (threads > 1) return LoadParallel(xml, threads);
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml));
  std::unique_ptr<EdgeStore> store(new EdgeStore());
  // Shred the parsed tree into the edge and attribute relations. NameIds
  // are re-interned into the store's own dictionary so the store is
  // self-contained once the transient DOM is dropped.
  const size_t n = doc.num_nodes();
  store->rows_.reserve(n);
  const xml::NameId id_attr = doc.names().Lookup("id");

  std::vector<uint32_t> ord_of_node(n, 0);
  for (xml::NodeId i = 0; i < n; ++i) {
    uint32_t ord = 0;
    for (xml::NodeId c = doc.first_child(i); c != xml::kInvalidNode;
         c = doc.next_sibling(c)) {
      ord_of_node[c] = ord++;
    }
  }

  for (xml::NodeId i = 0; i < n; ++i) {
    EdgeRow row{};
    row.id = i;
    row.parent = doc.parent(i) == xml::kInvalidNode ? kNoParent : doc.parent(i);
    row.ord = ord_of_node[i];
    if (doc.IsElement(i)) {
      row.tag = store->names_.Intern(doc.names().Spelling(doc.name(i)));
      row.text_begin = 0;
      row.text_len = 0;
      for (const auto& attr : doc.attributes(i)) {
        AttrRow arow{};
        arow.owner = i;
        arow.name = store->names_.Intern(doc.names().Spelling(attr.name));
        arow.value_begin = static_cast<uint32_t>(store->heap_.size());
        arow.value_len = static_cast<uint32_t>(attr.value.size());
        store->heap_.append(attr.value);
        store->attrs_.push_back(arow);
        if (attr.name == id_attr) {
          store->id_value_index_.emplace_back(std::string(attr.value), i);
        }
      }
    } else {
      row.tag = xml::kInvalidName;
      row.text_begin = static_cast<uint32_t>(store->heap_.size());
      row.text_len = static_cast<uint32_t>(doc.text(i).size());
      store->heap_.append(doc.text(i));
    }
    store->rows_.push_back(row);
  }

  // Cluster the edge relation on (parent, ord); build the PK index.
  std::sort(store->rows_.begin(), store->rows_.end(),
            [](const EdgeRow& a, const EdgeRow& b) {
              if (a.parent != b.parent) return a.parent < b.parent;
              return a.ord < b.ord;
            });
  store->pos_of_id_.resize(n);
  for (uint32_t pos = 0; pos < store->rows_.size(); ++pos) {
    store->pos_of_id_[store->rows_[pos].id] = pos;
  }
  // Dense preorder id->tag projection for the compiled-pipeline raw scans.
  store->tag_by_id_.resize(n);
  for (const EdgeRow& row : store->rows_) {
    store->tag_by_id_[row.id] = row.tag;
  }
  store->child_begin_.assign(n, static_cast<uint32_t>(store->rows_.size()));
  for (uint32_t pos = store->rows_.size(); pos-- > 0;) {
    const uint32_t parent = store->rows_[pos].parent;
    if (parent != kNoParent) store->child_begin_[parent] = pos;
  }
  // Subtree intervals: ids are preorder, so descendants of i are exactly
  // the ids in (i, subtree_end_[i]). One ascending pass: a subtree ends at
  // the node's next sibling, or where its parent's subtree ends (parents
  // precede children in preorder, so the recurrence resolves in order).
  store->subtree_end_.resize(n);
  for (xml::NodeId i = 0; i < n; ++i) {
    const xml::NodeId sib = doc.next_sibling(i);
    store->subtree_end_[i] =
        sib != xml::kInvalidNode
            ? sib
            : (doc.parent(i) == xml::kInvalidNode
                   ? static_cast<uint32_t>(n)
                   : store->subtree_end_[doc.parent(i)]);
  }
  std::stable_sort(store->attrs_.begin(), store->attrs_.end(),
            [](const AttrRow& a, const AttrRow& b) {
              return a.owner < b.owner;
            });
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  for (uint32_t pos = store->attrs_.size(); pos-- > 0;) {
    store->attr_begin_[store->attrs_[pos].owner] = pos;
  }
  std::sort(store->id_value_index_.begin(), store->id_value_index_.end());
  store->root_ = doc.root();
  return store;
}

StatusOr<std::unique_ptr<EdgeStore>> EdgeStore::LoadParallel(
    std::string_view xml, unsigned threads) {
  ThreadPool pool(threads);
  xml::ParseOptions popts;
  popts.pool = &pool;
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml, popts));
  std::unique_ptr<EdgeStore> store(new EdgeStore());
  const size_t n = doc.num_nodes();
  // The serial path interns tag and attribute spellings per node in
  // preorder — exactly the order the document's own dictionary was built
  // in — so copying it yields the identical table without a serial pass.
  store->names_ = doc.names();
  const xml::NameId id_attr = doc.names().Lookup("id");

  // Sibling ordinals: each child is written exactly once, by its parent.
  std::vector<uint32_t> ord_of_node(n, 0);
  ParallelFor(&pool, 0, n, 1024, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) {
      uint32_t ord = 0;
      for (xml::NodeId c = doc.first_child(static_cast<xml::NodeId>(i));
           c != xml::kInvalidNode; c = doc.next_sibling(c)) {
        ord_of_node[c] = ord++;
      }
    }
  });

  // Pass A: per-chunk heap bytes / attribute rows / id entries.
  const std::vector<size_t> bounds = ChunkBounds(n, threads);
  const size_t chunks = bounds.size() - 1;
  std::vector<size_t> heap_base(chunks + 1, 0);
  std::vector<size_t> attr_base(chunks + 1, 0);
  std::vector<size_t> id_base(chunks + 1, 0);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap = 0, attrs = 0, ids = 0;
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        if (doc.IsElement(node)) {
          for (const auto& attr : doc.attributes(node)) {
            heap += attr.value.size();
            ++attrs;
            if (attr.name == id_attr) ++ids;
          }
        } else {
          heap += doc.text(node).size();
        }
      }
      heap_base[k + 1] = heap;
      attr_base[k + 1] = attrs;
      id_base[k + 1] = ids;
    });
  }
  pool.Wait();
  for (size_t k = 0; k < chunks; ++k) {
    heap_base[k + 1] += heap_base[k];
    attr_base[k + 1] += attr_base[k];
    id_base[k + 1] += id_base[k];
  }

  // Pass B: fill rows, attribute rows, heap bytes and id entries at the
  // prefix-summed positions — the exact offsets the serial path produces.
  store->rows_.resize(n);
  store->attrs_.resize(attr_base[chunks]);
  store->heap_.resize(heap_base[chunks]);
  store->id_value_index_.resize(id_base[chunks]);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap_off = heap_base[k];
      size_t attr_off = attr_base[k];
      size_t id_off = id_base[k];
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        EdgeRow row{};
        row.id = static_cast<uint32_t>(i);
        row.parent = doc.parent(node) == xml::kInvalidNode
                         ? kNoParent
                         : doc.parent(node);
        row.ord = ord_of_node[i];
        if (doc.IsElement(node)) {
          row.tag = doc.name(node);
          for (const auto& attr : doc.attributes(node)) {
            AttrRow arow{};
            arow.owner = static_cast<uint32_t>(i);
            arow.name = attr.name;
            arow.value_begin = static_cast<uint32_t>(heap_off);
            arow.value_len = static_cast<uint32_t>(attr.value.size());
            std::memcpy(store->heap_.data() + heap_off, attr.value.data(),
                        attr.value.size());
            heap_off += attr.value.size();
            store->attrs_[attr_off++] = arow;
            if (attr.name == id_attr) {
              store->id_value_index_[id_off++] = {std::string(attr.value),
                                                  static_cast<uint32_t>(i)};
            }
          }
        } else {
          row.tag = xml::kInvalidName;
          row.text_begin = static_cast<uint32_t>(heap_off);
          row.text_len = static_cast<uint32_t>(doc.text(node).size());
          std::memcpy(store->heap_.data() + heap_off, doc.text(node).data(),
                      doc.text(node).size());
          heap_off += doc.text(node).size();
        }
        store->rows_[i] = row;
      }
    });
  }
  pool.Wait();

  // Cluster on (parent, ord): keys are unique, so the stable parallel
  // sort lands on the same array as the serial std::sort.
  ParallelStableSort(&pool, store->rows_.begin(), store->rows_.end(),
                     [](const EdgeRow& a, const EdgeRow& b) {
                       if (a.parent != b.parent) return a.parent < b.parent;
                       return a.ord < b.ord;
                     });

  // Index builds: disjoint writes throughout.
  store->pos_of_id_.resize(n);
  ParallelFor(&pool, 0, n, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      store->pos_of_id_[store->rows_[pos].id] = static_cast<uint32_t>(pos);
    }
  });
  // Dense preorder id->tag projection for the compiled-pipeline raw scans.
  store->tag_by_id_.resize(n);
  ParallelFor(&pool, 0, n, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      store->tag_by_id_[store->rows_[pos].id] = store->rows_[pos].tag;
    }
  });
  store->child_begin_.assign(n, static_cast<uint32_t>(n));
  ParallelFor(&pool, 0, n, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      const uint32_t parent = store->rows_[pos].parent;
      if (parent == kNoParent) continue;
      if (pos == 0 || store->rows_[pos - 1].parent != parent) {
        store->child_begin_[parent] = static_cast<uint32_t>(pos);
      }
    }
  });
  // Subtree intervals: the ascending recurrence resolves parents before
  // children, so this stays a (cheap) sequential pass.
  store->subtree_end_.resize(n);
  for (xml::NodeId i = 0; i < n; ++i) {
    const xml::NodeId sib = doc.next_sibling(i);
    store->subtree_end_[i] =
        sib != xml::kInvalidNode
            ? sib
            : (doc.parent(i) == xml::kInvalidNode
                   ? static_cast<uint32_t>(n)
                   : store->subtree_end_[doc.parent(i)]);
  }
  // Attribute rows were emitted in preorder, i.e. already owner-sorted
  // (the serial stable_sort is a no-op on the same sequence).
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  const size_t num_attrs = store->attrs_.size();
  ParallelFor(&pool, 0, num_attrs, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      const uint32_t owner = store->attrs_[pos].owner;
      if (pos == 0 || store->attrs_[pos - 1].owner != owner) {
        store->attr_begin_[owner] = static_cast<uint32_t>(pos);
      }
    }
  });
  // (value, id) pairs are unique, so stable == serial std::sort.
  ParallelStableSort(&pool, store->id_value_index_.begin(),
                     store->id_value_index_.end(),
                     [](const auto& a, const auto& b) { return a < b; });
  store->root_ = doc.root();
  return store;
}

void EdgeStore::DumpState(std::string* out) const {
  out->append("edge-store v1\n");
  out->append("names ");
  out->append(std::to_string(names_.size()));
  out->push_back('\n');
  for (xml::NameId i = 0; i < names_.size(); ++i) {
    out->append(names_.Spelling(i));
    out->push_back('\n');
  }
  out->append(StringPrintf("root %llu\n",
                           static_cast<unsigned long long>(root_)));
  out->append("rows\n");
  for (const EdgeRow& r : rows_) {
    out->append(StringPrintf("%u %u %u %u %u %u\n", r.id, r.parent, r.ord,
                             r.tag, r.text_begin, r.text_len));
  }
  out->append("pos_of_id\n");
  for (uint32_t v : pos_of_id_) out->append(std::to_string(v)), out->push_back(' ');
  out->append("\nchild_begin\n");
  for (uint32_t v : child_begin_) out->append(std::to_string(v)), out->push_back(' ');
  out->append("\nsubtree_end\n");
  for (uint32_t v : subtree_end_) out->append(std::to_string(v)), out->push_back(' ');
  out->append("\nattrs\n");
  for (const AttrRow& a : attrs_) {
    out->append(StringPrintf("%u %u %u %u\n", a.owner, a.name, a.value_begin,
                             a.value_len));
  }
  out->append("attr_begin\n");
  for (uint32_t v : attr_begin_) out->append(std::to_string(v)), out->push_back(' ');
  out->append("\nheap ");
  out->append(std::to_string(heap_.size()));
  out->push_back('\n');
  out->append(heap_);
  out->append("\nid_index\n");
  for (const auto& [value, node] : id_value_index_) {
    out->append(value);
    out->push_back(' ');
    out->append(std::to_string(node));
    out->push_back('\n');
  }
}

bool EdgeStore::IsElement(query::NodeHandle n) const {
  return RowOf(n).tag != xml::kInvalidName;
}

xml::NameId EdgeStore::NameOf(query::NodeHandle n) const {
  return RowOf(n).tag;
}

query::NodeHandle EdgeStore::Parent(query::NodeHandle n) const {
  const uint32_t p = RowOf(n).parent;
  return p == kNoParent ? query::kInvalidHandle : p;
}

query::NodeHandle EdgeStore::FirstChild(query::NodeHandle n) const {
  // Probe the clustered relation for (parent == n, ord == 0).
  const auto it = std::lower_bound(
      rows_.begin(), rows_.end(), n, [](const EdgeRow& row, uint64_t parent) {
        return row.parent < parent;
      });
  if (it == rows_.end() || it->parent != n) return query::kInvalidHandle;
  return it->id;
}

query::NodeHandle EdgeStore::NextSibling(query::NodeHandle n) const {
  const uint32_t pos = pos_of_id_[n];
  if (pos + 1 >= rows_.size()) return query::kInvalidHandle;
  const EdgeRow& next = rows_[pos + 1];
  if (next.parent != rows_[pos].parent) return query::kInvalidHandle;
  return next.id;
}

std::string_view EdgeStore::TextView(query::NodeHandle n) const {
  const EdgeRow& row = RowOf(n);
  return HeapString(row.text_begin, row.text_len);
}

void EdgeStore::AppendStringValue(query::NodeHandle n, std::string* out) const {
  const EdgeRow& row = RowOf(n);
  if (row.tag == xml::kInvalidName) {
    out->append(HeapString(row.text_begin, row.text_len));
    return;
  }
  // Scan the clustered child range directly: O(1) positioning instead of a
  // FirstChild probe plus a PK-index hop per sibling.
  const auto begin = rows_.begin() + child_begin_[n];
  for (auto it = begin; it != rows_.end() && it->parent == n; ++it) {
    if (it->tag == xml::kInvalidName) {
      out->append(HeapString(it->text_begin, it->text_len));
    } else {
      AppendStringValue(it->id, out);
    }
  }
}

std::optional<std::string_view> EdgeStore::AttributeView(
    query::NodeHandle n, std::string_view name) const {
  const xml::NameId id = names_.Lookup(name);
  if (id == xml::kInvalidName) return std::nullopt;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    if (attrs_[i].name == id) {
      return HeapString(attrs_[i].value_begin, attrs_[i].value_len);
    }
  }
  return std::nullopt;
}

void EdgeStore::OpenChildCursor(query::NodeHandle parent,
                                query::ChildFilter filter, xml::NameId tag,
                                query::ChildCursor* cur) const {
  cur->u0 = cur->Init(this, parent, filter, tag) ? child_begin_[parent]
                                                 : rows_.size();
}

void EdgeStore::OpenDescendantCursor(query::NodeHandle base,
                                     query::ChildFilter filter,
                                     xml::NameId tag,
                                     query::DescendantCursor* cur) const {
  if (cur->Init(this, base, filter, tag)) {
    cur->u0 = base + 1;
    cur->u1 = subtree_end_[base];
  }  // else u0 == u1 == 0: exhausted
}

size_t EdgeStore::AdvanceChildCursor(query::ChildCursor* cur,
                                     query::NodeHandle* out,
                                     size_t cap) const {
  const uint32_t parent = static_cast<uint32_t>(cur->parent);
  size_t pos = static_cast<size_t>(cur->u0);
  size_t n = 0;
  while (n < cap && pos < rows_.size() && rows_[pos].parent == parent) {
    const EdgeRow& row = rows_[pos++];
    if (query::MatchesChildFilter(cur->filter, row.tag, cur->tag)) {
      out[n++] = row.id;
    }
  }
  cur->u0 = pos;
  return n;
}

size_t EdgeStore::AdvanceDescendantCursor(query::DescendantCursor* cur,
                                          query::NodeHandle* out,
                                          size_t cap) const {
  size_t id = static_cast<size_t>(cur->u0);
  const size_t end = static_cast<size_t>(cur->u1);
  size_t n = 0;
  while (n < cap && id < end) {
    if (query::MatchesChildFilter(cur->filter, RowOf(id).tag, cur->tag)) {
      out[n++] = id;
    }
    ++id;
  }
  cur->u0 = id;
  return n;
}

std::vector<std::pair<std::string, std::string>> EdgeStore::Attributes(
    query::NodeHandle n) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    out.emplace_back(
        std::string(names_.Spelling(attrs_[i].name)),
        std::string(HeapString(attrs_[i].value_begin, attrs_[i].value_len)));
  }
  return out;
}

query::NodeHandle EdgeStore::NodeById(std::string_view id) const {
  const auto it = std::lower_bound(
      id_value_index_.begin(), id_value_index_.end(), id,
      [](const std::pair<std::string, uint32_t>& entry, std::string_view key) {
        return std::string_view(entry.first) < key;
      });
  if (it == id_value_index_.end() || it->first != id) {
    return query::kInvalidHandle;
  }
  return it->second;
}

size_t EdgeStore::StorageBytes() const {
  size_t bytes = rows_.capacity() * sizeof(EdgeRow) +
                 pos_of_id_.capacity() * sizeof(uint32_t) +
                 child_begin_.capacity() * sizeof(uint32_t) +
                 subtree_end_.capacity() * sizeof(uint32_t) +
                 tag_by_id_.capacity() * sizeof(xml::NameId) +
                 attrs_.capacity() * sizeof(AttrRow) +
                 attr_begin_.capacity() * sizeof(uint32_t) + heap_.capacity();
  for (const auto& [value, node] : id_value_index_) {
    bytes += value.size() + sizeof(node) + 16;
  }
  return bytes;
}

}  // namespace xmark::store
