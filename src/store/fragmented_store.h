#ifndef XMARK_STORE_FRAGMENTED_STORE_H_
#define XMARK_STORE_FRAGMENTED_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/storage.h"
#include "store/load_options.h"
#include "util/status.h"
#include "xml/names.h"

namespace xmark::store {

/// Highly fragmenting relational mapping — the architecture of the paper's
/// System B: one table per distinct root-to-node tag path (the classic
/// path-shredding schemes). Each path table holds
///
///   row(id, parent, subtree_end, text)      clustered on id (preorder)
///
/// Because a path determines its depth, the id-interval of a node's subtree
/// sliced out of a child-path table is exactly its child set — so
/// tag-specific child and descendant steps are two binary searches. The
/// price of fragmentation: generic first-child/next-sibling navigation and
/// string-value reconstruction must merge across all child tables (slow —
/// the paper's B pays heavily on construction-dominated Q10), and the
/// catalog has one entry per path, making name resolution during query
/// compilation a catalog scan (Table 2: B spends twice as much of its time
/// compiling as A).
class FragmentedStore : public query::StorageAdapter {
 public:
  /// Bulkloads the document. `options.threads == 1` is the original serial
  /// path; more threads run the parallel pipeline (path discovery stays a
  /// cheap sequential pass, the per-path table fills, heap build and index
  /// builds run concurrently) with byte-identical results.
  static StatusOr<std::unique_ptr<FragmentedStore>> Load(
      std::string_view xml, const LoadOptions& options = {});

  /// Canonical serialization of every internal structure, for the
  /// bulkload determinism test.
  void DumpState(std::string* out) const override;

  std::string_view mapping_name() const override {
    return "fragmented path tables";
  }
  const xml::NameTable& names() const override { return names_; }
  query::NodeHandle Root() const override { return root_; }
  bool IsElement(query::NodeHandle n) const override;
  xml::NameId NameOf(query::NodeHandle n) const override;
  query::NodeHandle Parent(query::NodeHandle n) const override;
  query::NodeHandle FirstChild(query::NodeHandle n) const override;
  query::NodeHandle NextSibling(query::NodeHandle n) const override;
  std::string_view TextView(query::NodeHandle n) const override;
  void AppendStringValue(query::NodeHandle n, std::string* out) const override;
  std::optional<std::string_view> AttributeView(
      query::NodeHandle n, std::string_view name) const override;
  std::vector<std::pair<std::string, std::string>> Attributes(
      query::NodeHandle n) const override;
  // Tag- and text-filtered scans are direct path-table slices; generic
  // scans fall back to the (merging) FirstChild/NextSibling chain.
  void OpenChildCursor(query::NodeHandle parent, query::ChildFilter filter,
                       xml::NameId tag,
                       query::ChildCursor* cur) const override;
  size_t AdvanceChildCursor(query::ChildCursor* cur, query::NodeHandle* out,
                            size_t cap) const override;
  // Tag/text-filtered descendant scans slice the subtree interval out of
  // the matching path tables (one slice when a single path carries the
  // tag, a document-order merge across slices otherwise); generic filters
  // fall back to the sibling/parent walk.
  void OpenDescendantCursor(query::NodeHandle base, query::ChildFilter filter,
                            xml::NameId tag,
                            query::DescendantCursor* cur) const override;
  size_t AdvanceDescendantCursor(query::DescendantCursor* cur,
                                 query::NodeHandle* out,
                                 size_t cap) const override;
  bool Before(query::NodeHandle a, query::NodeHandle b) const override {
    return a < b;
  }

  bool SupportsIdLookup() const override { return true; }
  query::NodeHandle NodeById(std::string_view id) const override;

  std::optional<std::vector<query::NodeHandle>> ChildrenByTag(
      query::NodeHandle n, xml::NameId tag) const override;
  std::optional<std::vector<query::NodeHandle>> DescendantsByTag(
      query::NodeHandle n, xml::NameId tag) const override;

  bool SupportsPathIndex() const override { return true; }
  std::optional<std::vector<query::NodeHandle>> PathExtent(
      const std::vector<xml::NameId>& path) const override;

  query::StorageCapabilities Capabilities() const override {
    query::StorageCapabilities caps;
    caps.id_lookup = true;
    caps.tag_index = true;   // realized by the per-path tables
    caps.path_index = true;  // path tables ARE the path index
    caps.children_by_tag = true;
    caps.interval_descendants = true;  // path-table slices
    return caps;
  }

  size_t ResolveName(std::string_view name) const override;

  size_t StorageBytes() const override;
  size_t CatalogEntries() const override { return paths_.size(); }
  size_t NodeCount() const override { return path_of_.size(); }

  size_t num_paths() const { return paths_.size(); }

 private:
  struct Row {
    uint32_t id;
    uint32_t parent;
    uint32_t subtree_end;  // one past the last preorder id in the subtree
    uint32_t text_begin;
    uint32_t text_len;
  };
  struct PathInfo {
    uint32_t parent_path = 0;
    xml::NameId tag = xml::kInvalidName;  // #text paths get the sentinel
    int depth = 0;
    std::vector<uint32_t> child_paths;
    std::vector<Row> rows;  // clustered on id
  };

  FragmentedStore() = default;

  static StatusOr<std::unique_ptr<FragmentedStore>> LoadParallel(
      std::string_view xml, unsigned threads);

  const Row& RowOf(query::NodeHandle n) const {
    return paths_[path_of_[n]].rows[idx_in_path_[n]];
  }
  // Rows of path `p` with id in [lo, hi) — a subtree slice.
  std::pair<size_t, size_t> Slice(const PathInfo& p, uint32_t lo,
                                  uint32_t hi) const;
  bool PathExtends(uint32_t candidate, uint32_t base) const;

  std::vector<PathInfo> paths_;  // [0] is the virtual document node
  std::vector<std::string> path_names_;  // "/site/people/person" per path
  std::vector<uint32_t> path_of_;     // id -> path
  std::vector<uint32_t> idx_in_path_; // id -> row index within path table
  std::unordered_map<xml::NameId, std::vector<uint32_t>> paths_by_tag_;
  std::string heap_;
  struct AttrRow {
    uint32_t owner;
    xml::NameId name;
    uint32_t value_begin;
    uint32_t value_len;
  };
  std::vector<AttrRow> attrs_;  // sorted by owner
  // id -> first attribute row (attrs_.size() when none): O(1) owner-row
  // location instead of a binary search per probe.
  std::vector<uint32_t> attr_begin_;
  std::vector<std::pair<std::string, uint32_t>> id_value_index_;
  xml::NameTable names_;
  xml::NameId text_tag_ = xml::kInvalidName;  // "#text" sentinel
  query::NodeHandle root_ = query::kInvalidHandle;
};

}  // namespace xmark::store

#endif  // XMARK_STORE_FRAGMENTED_STORE_H_
