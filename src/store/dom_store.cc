#include "store/dom_store.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace xmark::store {

StatusOr<std::unique_ptr<DomStore>> DomStore::Load(
    std::string_view xml, const Options& options,
    const LoadOptions& load_options) {
  const unsigned threads = load_options.EffectiveThreads();
  if (threads > 1) {
    ThreadPool pool(threads);
    xml::ParseOptions popts;
    popts.pool = &pool;
    XMARK_ASSIGN_OR_RETURN(xml::Document doc,
                           xml::Document::Parse(xml, popts));
    std::unique_ptr<DomStore> out(new DomStore(std::move(doc), options));
    out->BuildIndexesParallel(&pool, threads);
    return out;
  }
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml));
  std::unique_ptr<DomStore> out(new DomStore(std::move(doc), options));
  out->BuildIndexes();
  return out;
}

void DomStore::BuildIndexes() {
  const xml::NameId id_attr = doc_.names().Lookup("id");
  if (options_.build_path_summary) {
    summary_.clear();
    summary_.push_back(SummaryNode{});  // virtual document node
  }
  // Single DFS builds every index; summary positions are tracked with an
  // explicit stack of summary indices parallel to the element stack.
  std::vector<size_t> summary_stack{0};
  std::vector<xml::NodeId> node_stack;

  for (xml::NodeId n = 0; n < doc_.num_nodes(); ++n) {
    // Maintain the stacks: pop ancestors that do not contain n.
    while (!node_stack.empty() &&
           !(n >= node_stack.back() && n < doc_.SubtreeEnd(node_stack.back()))) {
      node_stack.pop_back();
      if (options_.build_path_summary) summary_stack.pop_back();
    }
    if (!doc_.IsElement(n)) continue;

    const xml::NameId tag = doc_.name(n);
    if (options_.build_tag_index) {
      tag_index_[tag].push_back(n);
    }
    if (options_.build_id_index && id_attr != xml::kInvalidName) {
      const auto id = doc_.attribute(n, id_attr);
      if (id.has_value()) id_index_.emplace(std::string(*id), n);
    }
    if (options_.build_path_summary) {
      SummaryNode& parent = summary_[summary_stack.back()];
      auto it = parent.children.find(tag);
      size_t idx;
      if (it == parent.children.end()) {
        idx = summary_.size();
        summary_[summary_stack.back()].children.emplace(tag, idx);
        summary_.push_back(SummaryNode{});
        summary_.back().tag = tag;
      } else {
        idx = it->second;
      }
      summary_[idx].extent.push_back(n);
      summary_stack.push_back(idx);
    }
    node_stack.push_back(n);
  }
}

void DomStore::BuildSummary() {
  // Same traversal as BuildIndexes, restricted to the structural summary
  // (its id assignment and extent order are inherently sequential — and
  // cheap next to the parse).
  summary_.clear();
  summary_.push_back(SummaryNode{});
  std::vector<size_t> summary_stack{0};
  std::vector<xml::NodeId> node_stack;
  for (xml::NodeId n = 0; n < doc_.num_nodes(); ++n) {
    while (!node_stack.empty() &&
           !(n >= node_stack.back() && n < doc_.SubtreeEnd(node_stack.back()))) {
      node_stack.pop_back();
      summary_stack.pop_back();
    }
    if (!doc_.IsElement(n)) continue;
    const xml::NameId tag = doc_.name(n);
    SummaryNode& parent = summary_[summary_stack.back()];
    auto it = parent.children.find(tag);
    size_t idx;
    if (it == parent.children.end()) {
      idx = summary_.size();
      summary_[summary_stack.back()].children.emplace(tag, idx);
      summary_.push_back(SummaryNode{});
      summary_.back().tag = tag;
    } else {
      idx = it->second;
    }
    summary_[idx].extent.push_back(n);
    summary_stack.push_back(idx);
    node_stack.push_back(n);
  }
}

void DomStore::BuildIndexesParallel(ThreadPool* pool, unsigned threads) {
  const size_t n = doc_.num_nodes();
  const size_t num_names = doc_.names().size();
  const xml::NameId id_attr = doc_.names().Lookup("id");

  // Chunked collection for the tag and id indexes; the summary runs as
  // one concurrent task. All merges happen in chunk (= document) order.
  const std::vector<size_t> bounds = ChunkBounds(n, threads);
  const size_t chunks = bounds.size() - 1;

  std::vector<std::vector<std::vector<query::NodeHandle>>> tag_parts;
  std::vector<std::vector<std::pair<std::string, query::NodeHandle>>>
      id_parts(chunks);
  if (options_.build_path_summary) {
    pool->Submit([this] { BuildSummary(); });
  }
  if (options_.build_tag_index || options_.build_id_index) {
    if (options_.build_tag_index) {
      tag_parts.assign(chunks,
                       std::vector<std::vector<query::NodeHandle>>(num_names));
    }
    for (size_t k = 0; k < chunks; ++k) {
      pool->Submit([&, k] {
        for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
          const xml::NodeId node = static_cast<xml::NodeId>(i);
          if (!doc_.IsElement(node)) continue;
          if (options_.build_tag_index) {
            tag_parts[k][doc_.name(node)].push_back(
                static_cast<query::NodeHandle>(i));
          }
          if (options_.build_id_index && id_attr != xml::kInvalidName) {
            const auto id = doc_.attribute(node, id_attr);
            if (id.has_value()) {
              id_parts[k].emplace_back(std::string(*id),
                                       static_cast<query::NodeHandle>(i));
            }
          }
        }
      });
    }
  }
  pool->Wait();
  if (options_.build_tag_index) {
    for (size_t t = 0; t < num_names; ++t) {
      size_t total = 0;
      for (size_t k = 0; k < chunks; ++k) total += tag_parts[k][t].size();
      if (total == 0) continue;
      std::vector<query::NodeHandle>& out =
          tag_index_[static_cast<xml::NameId>(t)];
      out.reserve(total);
      for (size_t k = 0; k < chunks; ++k) {
        out.insert(out.end(), tag_parts[k][t].begin(), tag_parts[k][t].end());
      }
    }
  }
  if (options_.build_id_index) {
    for (size_t k = 0; k < chunks; ++k) {
      for (auto& [id, node] : id_parts[k]) {
        id_index_.emplace(std::move(id), node);
      }
    }
  }
}

void DomStore::DumpState(std::string* out) const {
  out->append("dom-store v1\n");
  const xml::NameTable& names = doc_.names();
  out->append("names ");
  out->append(std::to_string(names.size()));
  out->push_back('\n');
  for (xml::NameId i = 0; i < names.size(); ++i) {
    out->append(names.Spelling(i));
    out->push_back('\n');
  }
  out->append("nodes ");
  out->append(std::to_string(doc_.num_nodes()));
  out->push_back('\n');
  for (xml::NodeId i = 0; i < doc_.num_nodes(); ++i) {
    out->append(StringPrintf("%u %u %u %u", doc_.IsElement(i) ? 1u : 0u,
                             doc_.name(i), doc_.parent(i),
                             doc_.first_child(i)));
    out->append(StringPrintf(" %u|", doc_.next_sibling(i)));
    out->append(doc_.text(i));
    for (const auto& attr : doc_.attributes(i)) {
      out->append(StringPrintf("|%u=", attr.name));
      out->append(attr.value);
    }
    out->push_back('\n');
  }
  out->append("tag_index\n");
  for (xml::NameId t = 0; t < names.size(); ++t) {
    const auto it = tag_index_.find(t);
    if (it == tag_index_.end()) continue;
    out->append(std::to_string(t));
    for (query::NodeHandle h : it->second) {
      out->push_back(' ');
      out->append(std::to_string(h));
    }
    out->push_back('\n');
  }
  out->append("id_index\n");
  {
    std::map<std::string, query::NodeHandle, std::less<>> sorted(
        id_index_.begin(), id_index_.end());
    for (const auto& [id, node] : sorted) {
      out->append(id);
      out->push_back(' ');
      out->append(std::to_string(node));
      out->push_back('\n');
    }
  }
  out->append("summary ");
  out->append(std::to_string(summary_.size()));
  out->push_back('\n');
  for (const SummaryNode& s : summary_) {
    out->append(StringPrintf("tag %u children", s.tag));
    std::map<xml::NameId, size_t> children(s.children.begin(),
                                           s.children.end());
    for (const auto& [tag, idx] : children) {
      out->append(StringPrintf(" %u:%zu", tag, idx));
    }
    out->append(" extent");
    for (query::NodeHandle h : s.extent) {
      out->push_back(' ');
      out->append(std::to_string(h));
    }
    out->push_back('\n');
  }
}

void DomStore::OpenChildCursor(query::NodeHandle parent,
                               query::ChildFilter filter, xml::NameId tag,
                               query::ChildCursor* cur) const {
  cur->u0 =
      cur->Init(this, parent, filter, tag)
          ? AsHandle(doc_.first_child(static_cast<xml::NodeId>(parent)))
          : query::kInvalidHandle;
}

size_t DomStore::AdvanceChildCursor(query::ChildCursor* cur,
                                    query::NodeHandle* out,
                                    size_t cap) const {
  size_t n = 0;
  query::NodeHandle c = cur->u0;
  while (n < cap && c != query::kInvalidHandle) {
    const xml::NodeId id = static_cast<xml::NodeId>(c);
    if (query::MatchesChildFilter(cur->filter, doc_.name(id), cur->tag)) {
      out[n++] = c;
    }
    c = AsHandle(doc_.next_sibling(id));
  }
  cur->u0 = c;
  return n;
}

std::vector<std::pair<std::string, std::string>> DomStore::Attributes(
    query::NodeHandle n) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& attr : doc_.attributes(static_cast<xml::NodeId>(n))) {
    out.emplace_back(std::string(doc_.names().Spelling(attr.name)),
                     std::string(attr.value));
  }
  return out;
}

query::NodeHandle DomStore::NodeById(std::string_view id) const {
  const auto it = id_index_.find(id);
  return it == id_index_.end() ? query::kInvalidHandle : it->second;
}

void DomStore::OpenDescendantCursor(query::NodeHandle base,
                                    query::ChildFilter filter, xml::NameId tag,
                                    query::DescendantCursor* cur) const {
  if (!cur->Init(this, base, filter, tag)) return;  // u0 == u1: exhausted
  const xml::NodeId end = doc_.SubtreeEnd(static_cast<xml::NodeId>(base));
  if (filter == query::ChildFilter::kTag && options_.build_tag_index) {
    // Tag-index slice: the extent entries inside the subtree interval. The
    // resolved extent vector rides along in u2 (stable for the store's
    // lifetime) so Advance never repeats the hash probe; u2 == 1 marks an
    // absent tag, whose empty u0 == u1 slice never dereferences it.
    cur->u2 = 1;
    const auto it = tag_index_.find(tag);
    if (it == tag_index_.end()) return;  // tag absent: empty slice
    const auto& handles = it->second;
    cur->u2 = reinterpret_cast<uint64_t>(&handles);
    cur->u0 = static_cast<uint64_t>(
        std::lower_bound(handles.begin(), handles.end(), base + 1) -
        handles.begin());
    cur->u1 = static_cast<uint64_t>(
        std::lower_bound(handles.begin(), handles.end(),
                         static_cast<query::NodeHandle>(end)) -
        handles.begin());
    return;
  }
  // Dense preorder scan over the node table.
  cur->u0 = base + 1;
  cur->u1 = end;
}

size_t DomStore::AdvanceDescendantCursor(query::DescendantCursor* cur,
                                         query::NodeHandle* out,
                                         size_t cap) const {
  size_t n = 0;
  if (cur->u2 != 0) {  // tag-index slice
    size_t pos = static_cast<size_t>(cur->u0);
    const size_t end = static_cast<size_t>(cur->u1);
    if (pos >= end) return 0;  // also guards the u2 == 1 absent-tag marker
    const auto& handles =
        *reinterpret_cast<const std::vector<query::NodeHandle>*>(cur->u2);
    while (n < cap && pos < end) out[n++] = handles[pos++];
    cur->u0 = pos;
    return n;
  }
  xml::NodeId id = static_cast<xml::NodeId>(cur->u0);
  const xml::NodeId end = static_cast<xml::NodeId>(cur->u1);
  while (n < cap && id < end) {
    if (query::MatchesChildFilter(cur->filter, doc_.name(id), cur->tag)) {
      out[n++] = id;
    }
    ++id;
  }
  cur->u0 = id;
  return n;
}

const std::vector<query::NodeHandle>* DomStore::NodesByTag(
    xml::NameId tag) const {
  if (!options_.build_tag_index) return nullptr;
  const auto it = tag_index_.find(tag);
  return it == tag_index_.end() ? nullptr : &it->second;
}

std::optional<std::vector<query::NodeHandle>> DomStore::DescendantsByTag(
    query::NodeHandle n, xml::NameId tag) const {
  if (!options_.build_tag_index) return std::nullopt;
  const auto it = tag_index_.find(tag);
  if (it == tag_index_.end()) return std::vector<query::NodeHandle>{};
  // Preorder ids: the subtree of n is the contiguous handle interval
  // [n+1, SubtreeEnd(n)), so a tag-index slice is exactly the answer.
  const auto& handles = it->second;
  const query::NodeHandle lo = n + 1;
  const query::NodeHandle hi =
      doc_.SubtreeEnd(static_cast<xml::NodeId>(n));
  auto begin = std::lower_bound(handles.begin(), handles.end(), lo);
  auto end = std::lower_bound(handles.begin(), handles.end(),
                              static_cast<query::NodeHandle>(hi));
  return std::vector<query::NodeHandle>(begin, end);
}

std::optional<std::vector<query::NodeHandle>> DomStore::PathExtent(
    const std::vector<xml::NameId>& path) const {
  if (!options_.build_path_summary || path.empty()) return std::nullopt;
  size_t idx = 0;  // virtual document node
  for (const xml::NameId tag : path) {
    const auto it = summary_[idx].children.find(tag);
    if (it == summary_[idx].children.end()) {
      return std::vector<query::NodeHandle>{};
    }
    idx = it->second;
  }
  return summary_[idx].extent;
}

std::optional<int64_t> DomStore::PathCount(
    const std::vector<xml::NameId>& path) const {
  const auto extent = PathExtent(path);
  if (!extent.has_value()) return std::nullopt;
  return static_cast<int64_t>(extent->size());
}

size_t DomStore::StorageBytes() const {
  size_t bytes = doc_.MemoryBytes();
  for (const auto& [tag, nodes] : tag_index_) {
    bytes += nodes.capacity() * sizeof(query::NodeHandle) + sizeof(tag);
  }
  for (const auto& [id, node] : id_index_) {
    bytes += id.size() + sizeof(node) + 32;  // hash-bucket overhead estimate
  }
  for (const SummaryNode& s : summary_) {
    bytes += sizeof(SummaryNode) +
             s.extent.capacity() * sizeof(query::NodeHandle) +
             s.children.size() * 16;
  }
  return bytes;
}

size_t DomStore::CatalogEntries() const {
  // The native store's "catalog" is its structural summary (or, without
  // one, the tag dictionary).
  if (options_.build_path_summary) return summary_.size();
  return doc_.names().size();
}

}  // namespace xmark::store
