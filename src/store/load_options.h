#ifndef XMARK_STORE_LOAD_OPTIONS_H_
#define XMARK_STORE_LOAD_OPTIONS_H_

#include <thread>

namespace xmark::store {

/// Bulkload configuration shared by every store's Load. `threads == 1`
/// runs the original single-threaded shred-then-sort path unchanged (the
/// ablation baseline for the Table 1 bench); larger values run the
/// parallel pipeline — chunked parallel parse, partitioned sorts with
/// merge, concurrent per-table fills and index builds. The loaded store is
/// byte-identical for every thread count: preorder ids, name-table
/// numbering, heap layout and table order are all deterministic.
struct LoadOptions {
  /// Worker threads for bulkload; 0 means hardware_concurrency.
  unsigned threads = 0;

  unsigned EffectiveThreads() const {
    if (threads != 0) return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
};

}  // namespace xmark::store

#endif  // XMARK_STORE_LOAD_OPTIONS_H_
