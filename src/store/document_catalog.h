#ifndef XMARK_STORE_DOCUMENT_CATALOG_H_
#define XMARK_STORE_DOCUMENT_CATALOG_H_

// Multi-document catalog: N independently bulkloaded stores keyed by a
// stable document id, presented as one corpus.
//
// Each document is a complete store instance (edge, fragmented, inlined or
// DOM — the catalog never mixes mappings), so every per-document structure
// (preorder ids, name table, indexes) stays exactly what the single-
// document bulkload produces. The catalog's own contribution is the
// corpus-level bookkeeping: a sorted-by-id entry table, prefix-summed
// global id ranges (document i's nodes occupy [base_i, base_i + n_i) in
// the corpus-wide id space), and a deterministic per-document DumpState.
//
// Ingest parallelizes ACROSS documents: each document's bulkload runs as
// one thread-pool task (itself serial or chunked-parallel per
// LoadOptions), results commit into index-ordered staging slots, and the
// snapshot assembles in sorted-id order — so the loaded catalog is
// byte-identical for any thread count and any task interleaving.
//
// Concurrency: mutations (Add/LoadCorpus/Drop) swap an immutable snapshot
// under a mutex (copy-on-write); readers grab the snapshot shared_ptr and
// never block. A query holding a snapshot keeps its stores alive across a
// concurrent DropDocument.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "query/storage.h"
#include "store/load_options.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace xmark::store {

/// One document of a corpus batch, before ingest.
struct CorpusDocument {
  std::string id;
  std::string xml;
};

/// Resource-governance hooks for corpus ingest, supplied by the serving
/// layer (which owns the ExecContext); the catalog stays below query/'s
/// execution machinery. Both are optional and must be thread-safe.
struct IngestGovernance {
  /// Cooperative checkpoint: non-OK aborts the batch (deadline, cancel,
  /// budget — sticky, so every remaining document fails fast).
  std::function<Status()> check;
  /// Charges loaded store bytes against the run's memory budget.
  std::function<void(size_t)> charge_bytes;
};

class DocumentCatalog {
 public:
  /// Builds one document's store from its XML. Supplied by the engine
  /// layer (which knows the system's mapping); the catalog itself stays
  /// below the xmark/ layer.
  using StoreBuilder =
      std::function<StatusOr<std::shared_ptr<query::StorageAdapter>>(
          std::string_view xml, const LoadOptions& options)>;

  /// One loaded document: its store plus the corpus-wide id range
  /// [base_id, base_id + node_count) assigned by prefix summation in
  /// sorted-id order.
  struct Entry {
    std::string id;
    std::shared_ptr<const query::StorageAdapter> store;
    uint64_t base_id = 0;
    size_t node_count = 0;
  };

  /// Immutable corpus view; `docs` is sorted by document id.
  struct Snapshot {
    std::vector<Entry> docs;
    uint64_t total_nodes = 0;

    const Entry* Find(std::string_view id) const;
  };

  /// Loads one document. Fails with kInvalidArgument
  /// "[duplicate-document-id]" when `id` is already present, and with
  /// kInvalidArgument "[empty-document-id]" for an empty id.
  Status AddDocument(std::string_view id, std::string_view xml,
                     const StoreBuilder& builder, const LoadOptions& options);

  /// Loads a batch, parallelizing across documents: min(threads, docs)
  /// pool workers each run one document's bulkload (which itself honors
  /// `options.threads`). All-or-nothing: duplicate ids (within the batch
  /// or against loaded documents) are rejected before any build, and on
  /// any build failure the catalog is left exactly as it was. The first
  /// failure in batch order is returned (deterministic under any
  /// interleaving). `governance` (optional) is consulted before and after
  /// every document build, so a deadline/cancel/budget violation unwinds
  /// the whole batch while prior documents stay queryable.
  Status LoadCorpus(const std::vector<CorpusDocument>& batch,
                    const StoreBuilder& builder, const LoadOptions& options,
                    const IngestGovernance* governance = nullptr);

  /// Removes a document; kNotFound "[unknown-document]" when absent.
  /// Queries holding a snapshot keep the dropped store alive.
  Status Drop(std::string_view id);

  /// Current corpus view (never null; empty catalog = empty docs).
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Document ids in sorted order.
  std::vector<std::string> ListDocuments() const;

  /// Store of one document, or null when absent.
  std::shared_ptr<const query::StorageAdapter> Find(std::string_view id) const;

  size_t size() const { return snapshot()->docs.size(); }

  /// Deterministic corpus dump: a catalog header, then one section per
  /// document in sorted-id order — id, global id range, mapping — each
  /// followed by the store's own DumpState. Byte-identical for any ingest
  /// thread count (the CI determinism gate diffs threads=1 vs threads=8).
  void DumpState(std::string* out) const;

 private:
  // Rebuilds sorted order + prefix-summed id ranges; returns the new
  // snapshot assembled from `docs`.
  static std::shared_ptr<const Snapshot> Assemble(std::vector<Entry> docs);

  mutable util::Mutex mu_;
  std::shared_ptr<const Snapshot> snapshot_ GUARDED_BY(mu_) =
      std::make_shared<const Snapshot>();
};

}  // namespace xmark::store

#endif  // XMARK_STORE_DOCUMENT_CATALOG_H_
