#include "store/document_catalog.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xmark::store {

const DocumentCatalog::Entry* DocumentCatalog::Snapshot::Find(
    std::string_view id) const {
  const auto it = std::lower_bound(
      docs.begin(), docs.end(), id,
      [](const Entry& e, std::string_view key) { return e.id < key; });
  if (it == docs.end() || it->id != id) return nullptr;
  return &*it;
}

std::shared_ptr<const DocumentCatalog::Snapshot> DocumentCatalog::Assemble(
    std::vector<Entry> docs) {
  std::sort(docs.begin(), docs.end(),
            [](const Entry& a, const Entry& b) { return a.id < b.id; });
  uint64_t base = 0;
  for (Entry& e : docs) {
    e.node_count = e.store->NodeCount();
    e.base_id = base;
    base += e.node_count;
  }
  auto snap = std::make_shared<Snapshot>();
  snap->docs = std::move(docs);
  snap->total_nodes = base;
  return snap;
}

Status DocumentCatalog::AddDocument(std::string_view id, std::string_view xml,
                                    const StoreBuilder& builder,
                                    const LoadOptions& options) {
  std::vector<CorpusDocument> batch(1);
  batch[0].id = std::string(id);
  batch[0].xml = std::string(xml);
  return LoadCorpus(batch, builder, options);
}

Status DocumentCatalog::LoadCorpus(const std::vector<CorpusDocument>& batch,
                                   const StoreBuilder& builder,
                                   const LoadOptions& options,
                                   const IngestGovernance* governance) {
  if (batch.empty()) return Status::OK();
  // Validate ids before building anything (all-or-nothing, cheap first).
  {
    std::shared_ptr<const Snapshot> current = snapshot();
    std::vector<std::string_view> ids;
    ids.reserve(batch.size());
    for (const CorpusDocument& doc : batch) {
      if (doc.id.empty()) {
        return Status::InvalidArgument(
            "[empty-document-id] document ids must be non-empty");
      }
      if (current->Find(doc.id) != nullptr) {
        return Status::InvalidArgument(
            "[duplicate-document-id] document \"" + doc.id +
            "\" is already loaded");
      }
      ids.push_back(doc.id);
    }
    std::sort(ids.begin(), ids.end());
    const auto dup = std::adjacent_find(ids.begin(), ids.end());
    if (dup != ids.end()) {
      return Status::InvalidArgument(
          "[duplicate-document-id] document \"" + std::string(*dup) +
          "\" appears twice in the batch");
    }
  }

  // Build every document as an independent pool task. Slots are written by
  // exactly one task each and read only after Wait(), so the commit below
  // is identical for any worker count or steal order.
  std::vector<StatusOr<std::shared_ptr<query::StorageAdapter>>> built(
      batch.size(), Status::Internal("document build did not run"));
  const unsigned width = static_cast<unsigned>(
      std::min<size_t>(options.EffectiveThreads(), batch.size()));
  ThreadPool pool(width);
  for (size_t i = 0; i < batch.size(); ++i) {
    pool.Submit([&, i] {
      // Governance spans the corpus load: once the shared context trips
      // (deadline, cancel, budget), remaining documents fail fast instead
      // of paying full bulkloads.
      if (governance != nullptr && governance->check) {
        Status governed = governance->check();
        if (!governed.ok()) {
          built[i] = governed;
          return;
        }
      }
      built[i] = builder(batch[i].xml, options);
      if (governance != nullptr && built[i].ok()) {
        // Loaded bytes count against the run's memory budget, so a
        // max_result_bytes limit also bounds corpus residency.
        if (governance->charge_bytes) {
          governance->charge_bytes((*built[i])->StorageBytes());
        }
        if (governance->check) {
          Status governed = governance->check();
          if (!governed.ok()) built[i] = governed;
        }
      }
    });
  }
  pool.Wait();

  // First failure in batch order wins; nothing commits.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!built[i].ok()) return built[i].status();
  }

  util::MutexLock lock(mu_);
  std::vector<Entry> docs = snapshot_->docs;
  docs.reserve(docs.size() + batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    // Re-check against concurrent mutators that won the lock first.
    for (const Entry& e : docs) {
      if (e.id == batch[i].id) {
        return Status::InvalidArgument(
            "[duplicate-document-id] document \"" + batch[i].id +
            "\" is already loaded");
      }
    }
    Entry e;
    e.id = batch[i].id;
    e.store = std::move(*built[i]);
    docs.push_back(std::move(e));
  }
  snapshot_ = Assemble(std::move(docs));
  return Status::OK();
}

Status DocumentCatalog::Drop(std::string_view id) {
  util::MutexLock lock(mu_);
  std::vector<Entry> docs = snapshot_->docs;
  const auto it =
      std::find_if(docs.begin(), docs.end(),
                   [&](const Entry& e) { return e.id == id; });
  if (it == docs.end()) {
    return Status::NotFound("[unknown-document] no document \"" +
                            std::string(id) + "\" in catalog");
  }
  docs.erase(it);
  snapshot_ = Assemble(std::move(docs));
  return Status::OK();
}

std::shared_ptr<const DocumentCatalog::Snapshot> DocumentCatalog::snapshot()
    const {
  util::MutexLock lock(mu_);
  return snapshot_;
}

std::vector<std::string> DocumentCatalog::ListDocuments() const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  std::vector<std::string> ids;
  ids.reserve(snap->docs.size());
  for (const Entry& e : snap->docs) ids.push_back(e.id);
  return ids;
}

std::shared_ptr<const query::StorageAdapter> DocumentCatalog::Find(
    std::string_view id) const {
  const Entry* e = snapshot()->Find(id);
  return e == nullptr ? nullptr : e->store;
}

void DocumentCatalog::DumpState(std::string* out) const {
  std::shared_ptr<const Snapshot> snap = snapshot();
  out->append(StringPrintf("catalog documents=%zu total-nodes=%llu\n",
                           snap->docs.size(),
                           (unsigned long long)snap->total_nodes));
  for (const Entry& e : snap->docs) {
    out->append("-- document id=" + e.id + " mapping=" +
                std::string(e.store->mapping_name()) +
                StringPrintf(" ids=[%llu,%llu)\n",
                             (unsigned long long)e.base_id,
                             (unsigned long long)(e.base_id + e.node_count)));
    e.store->DumpState(out);
  }
}

}  // namespace xmark::store
