#include "store/inlined_store.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/logging.h"
#include "xml/dom.h"

namespace xmark::store {
namespace {

// True when `child` occurs exactly once in the content model and is not
// repeatable (no '*' or '+' right after it): the DTD guarantees at most
// one such child per parent, so it can be inlined as a direct slot.
bool AtMostOnce(const std::string& model, const std::string& child) {
  size_t occurrences = 0;
  bool repeatable = false;
  size_t pos = 0;
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  };
  while ((pos = model.find(child, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_name_char(model[pos - 1]);
    const size_t end = pos + child.size();
    const bool right_ok = end >= model.size() || !is_name_char(model[end]);
    if (left_ok && right_ok) {
      ++occurrences;
      // Skip an optional '?' — optional children still inline.
      size_t after = end;
      if (after < model.size() && model[after] == '?') ++after;
      if (after < model.size() && (model[after] == '*' || model[after] == '+')) {
        repeatable = true;
      }
      // A ')' followed by * / + makes the whole group repeatable; treat any
      // group-closing star conservatively as repeatable.
    }
    pos = end;
  }
  if (occurrences != 1 || repeatable) return false;
  // Conservative group check: if the model ends with ")*" or ")+" the
  // group repeats and nothing inside may be inlined.
  const size_t last = model.find_last_of(')');
  if (last != std::string::npos && last + 1 < model.size() &&
      (model[last + 1] == '*' || model[last + 1] == '+')) {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<InlinedStore>> InlinedStore::Load(
    std::string_view xml, std::string_view dtd_text) {
  XMARK_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::Dtd::Parse(dtd_text));
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml));
  std::unique_ptr<InlinedStore> store(new InlinedStore());
  store->dtd_elements_ = dtd.elements().size();
  const size_t n = doc.num_nodes();
  const xml::NameId id_attr = doc.names().Lookup("id");

  store->parent_.resize(n);
  store->first_child_.resize(n);
  store->next_sibling_.resize(n);
  store->tag_.resize(n);
  store->row_of_.resize(n);
  store->text_span_.resize(n, {0, 0});

  auto as_handle = [](xml::NodeId id) {
    return id == xml::kInvalidNode ? query::kInvalidHandle
                                   : static_cast<query::NodeHandle>(id);
  };

  for (xml::NodeId i = 0; i < n; ++i) {
    store->parent_[i] = as_handle(doc.parent(i));
    store->first_child_[i] = as_handle(doc.first_child(i));
    store->next_sibling_[i] = as_handle(doc.next_sibling(i));
    if (doc.IsElement(i)) {
      const xml::NameId tag =
          store->names_.Intern(doc.names().Spelling(doc.name(i)));
      store->tag_[i] = tag;
      store->row_of_[i] = store->tag_cardinality_[tag]++;
      for (const auto& attr : doc.attributes(i)) {
        AttrRow arow{};
        arow.owner = i;
        arow.name = store->names_.Intern(doc.names().Spelling(attr.name));
        arow.value_begin = static_cast<uint32_t>(store->heap_.size());
        arow.value_len = static_cast<uint32_t>(attr.value.size());
        store->heap_.append(attr.value);
        store->attrs_.push_back(arow);
        if (attr.name == id_attr) {
          store->id_index_.emplace(std::string(attr.value), i);
        }
      }
    } else {
      store->tag_[i] = xml::kInvalidName;
      store->text_span_[i] = {static_cast<uint32_t>(store->heap_.size()),
                              static_cast<uint32_t>(doc.text(i).size())};
      store->heap_.append(doc.text(i));
    }
  }
  std::stable_sort(store->attrs_.begin(), store->attrs_.end(),
            [](const AttrRow& a, const AttrRow& b) {
              return a.owner < b.owner;
            });
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  for (uint32_t pos = store->attrs_.size(); pos-- > 0;) {
    store->attr_begin_[store->attrs_[pos].owner] = pos;
  }

  // Derive direct child slots from the DTD.
  std::unordered_set<uint64_t> inlineable;
  for (const xml::DtdElement& elem : dtd.elements()) {
    const xml::NameId parent_tag = store->names_.Lookup(elem.name);
    if (parent_tag == xml::kInvalidName) continue;  // tag absent from doc
    for (const std::string& child : elem.children) {
      const xml::NameId child_tag = store->names_.Lookup(child);
      if (child_tag == xml::kInvalidName) continue;
      if (AtMostOnce(elem.model, child)) {
        inlineable.insert(SlotKey(parent_tag, child_tag));
      }
    }
  }
  for (xml::NodeId i = 0; i < n; ++i) {
    if (!doc.IsElement(i)) continue;
    const xml::NameId ptag = store->tag_[i];
    for (query::NodeHandle c = store->first_child_[i];
         c != query::kInvalidHandle; c = store->next_sibling_[c]) {
      const xml::NameId ctag = store->tag_[c];
      if (ctag == xml::kInvalidName) continue;
      const uint64_t key = SlotKey(ptag, ctag);
      if (!inlineable.count(key)) continue;
      auto& slot = store->slots_[key];
      if (slot.empty()) {
        slot.assign(store->tag_cardinality_[ptag], query::kInvalidHandle);
      }
      slot[store->row_of_[i]] = c;
    }
  }

  store->root_ = doc.root();
  return store;
}

std::string_view InlinedStore::TextView(query::NodeHandle n) const {
  const auto& [begin, len] = text_span_[n];
  return std::string_view(heap_).substr(begin, len);
}

void InlinedStore::AppendStringValue(query::NodeHandle n,
                                     std::string* out) const {
  if (tag_[n] == xml::kInvalidName) {
    const auto& [begin, len] = text_span_[n];
    out->append(std::string_view(heap_).substr(begin, len));
    return;
  }
  for (query::NodeHandle c = first_child_[n]; c != query::kInvalidHandle;
       c = next_sibling_[c]) {
    AppendStringValue(c, out);
  }
}

std::optional<std::string_view> InlinedStore::AttributeView(
    query::NodeHandle n, std::string_view name) const {
  const xml::NameId id = names_.Lookup(name);
  if (id == xml::kInvalidName) return std::nullopt;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    if (attrs_[i].name == id) {
      return std::string_view(heap_).substr(attrs_[i].value_begin,
                                            attrs_[i].value_len);
    }
  }
  return std::nullopt;
}

void InlinedStore::OpenChildCursor(query::NodeHandle parent,
                                   query::ChildFilter filter, xml::NameId tag,
                                   query::ChildCursor* cur) const {
  cur->u0 = cur->Init(this, parent, filter, tag) ? first_child_[parent]
                                                 : query::kInvalidHandle;
}

size_t InlinedStore::AdvanceChildCursor(query::ChildCursor* cur,
                                        query::NodeHandle* out,
                                        size_t cap) const {
  size_t n = 0;
  query::NodeHandle c = cur->u0;
  while (n < cap && c != query::kInvalidHandle) {
    if (query::MatchesChildFilter(cur->filter, tag_[c], cur->tag)) {
      out[n++] = c;
    }
    c = next_sibling_[c];
  }
  cur->u0 = c;
  return n;
}

void InlinedStore::OpenDescendantCursor(query::NodeHandle base,
                                        query::ChildFilter filter,
                                        xml::NameId tag,
                                        query::DescendantCursor* cur) const {
  if (!cur->Init(this, base, filter, tag)) return;  // u0 == u1: exhausted
  // Subtree end: the next sibling of base or of its nearest ancestor with
  // one (preorder ids), else the end of the node table.
  query::NodeHandle end = next_sibling_[base];
  for (query::NodeHandle a = base;
       end == query::kInvalidHandle && a != query::kInvalidHandle;) {
    a = parent_[a];
    end = a == query::kInvalidHandle ? tag_.size() : next_sibling_[a];
  }
  cur->u0 = base + 1;
  cur->u1 = end;
}

size_t InlinedStore::AdvanceDescendantCursor(query::DescendantCursor* cur,
                                             query::NodeHandle* out,
                                             size_t cap) const {
  size_t id = static_cast<size_t>(cur->u0);
  const size_t end = static_cast<size_t>(cur->u1);
  size_t n = 0;
  while (n < cap && id < end) {
    if (query::MatchesChildFilter(cur->filter, tag_[id], cur->tag)) {
      out[n++] = id;
    }
    ++id;
  }
  cur->u0 = id;
  return n;
}

std::vector<std::pair<std::string, std::string>> InlinedStore::Attributes(
    query::NodeHandle n) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    out.emplace_back(std::string(names_.Spelling(attrs_[i].name)),
                     std::string(std::string_view(heap_).substr(
                         attrs_[i].value_begin, attrs_[i].value_len)));
  }
  return out;
}

query::NodeHandle InlinedStore::NodeById(std::string_view id) const {
  const auto it = id_index_.find(id);
  return it == id_index_.end() ? query::kInvalidHandle : it->second;
}

std::optional<std::vector<query::NodeHandle>> InlinedStore::ChildrenByTag(
    query::NodeHandle n, xml::NameId tag) const {
  if (tag_[n] == xml::kInvalidName) return std::vector<query::NodeHandle>{};
  const auto it = slots_.find(SlotKey(tag_[n], tag));
  if (it == slots_.end()) return std::nullopt;  // not inlined: generic walk
  const query::NodeHandle child = it->second[row_of_[n]];
  if (child == query::kInvalidHandle) {
    return std::vector<query::NodeHandle>{};
  }
  return std::vector<query::NodeHandle>{child};
}

size_t InlinedStore::StorageBytes() const {
  size_t bytes = heap_.capacity() + attrs_.capacity() * sizeof(AttrRow) +
                 attr_begin_.capacity() * sizeof(uint32_t) +
                 parent_.capacity() * sizeof(query::NodeHandle) * 3 +
                 tag_.capacity() * sizeof(xml::NameId) +
                 row_of_.capacity() * sizeof(uint32_t) +
                 text_span_.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  for (const auto& [key, slot] : slots_) {
    bytes += sizeof(key) + slot.capacity() * sizeof(query::NodeHandle);
  }
  for (const auto& [id, node] : id_index_) {
    bytes += id.size() + sizeof(node) + 32;
  }
  return bytes;
}

size_t InlinedStore::CatalogEntries() const {
  return dtd_elements_ + slots_.size();
}

}  // namespace xmark::store
