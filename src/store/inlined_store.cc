#include "store/inlined_store.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <map>
#include <unordered_set>

#include "util/logging.h"
#include "util/thread_pool.h"
#include "xml/dom.h"

namespace xmark::store {
namespace {

// True when `child` occurs exactly once in the content model and is not
// repeatable (no '*' or '+' right after it): the DTD guarantees at most
// one such child per parent, so it can be inlined as a direct slot.
bool AtMostOnce(const std::string& model, const std::string& child) {
  size_t occurrences = 0;
  bool repeatable = false;
  size_t pos = 0;
  auto is_name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == '.' || c == ':';
  };
  while ((pos = model.find(child, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_name_char(model[pos - 1]);
    const size_t end = pos + child.size();
    const bool right_ok = end >= model.size() || !is_name_char(model[end]);
    if (left_ok && right_ok) {
      ++occurrences;
      // Skip an optional '?' — optional children still inline.
      size_t after = end;
      if (after < model.size() && model[after] == '?') ++after;
      if (after < model.size() && (model[after] == '*' || model[after] == '+')) {
        repeatable = true;
      }
      // A ')' followed by * / + makes the whole group repeatable; treat any
      // group-closing star conservatively as repeatable.
    }
    pos = end;
  }
  if (occurrences != 1 || repeatable) return false;
  // Conservative group check: if the model ends with ")*" or ")+" the
  // group repeats and nothing inside may be inlined.
  const size_t last = model.find_last_of(')');
  if (last != std::string::npos && last + 1 < model.size() &&
      (model[last + 1] == '*' || model[last + 1] == '+')) {
    return false;
  }
  return true;
}

}  // namespace

StatusOr<std::unique_ptr<InlinedStore>> InlinedStore::Load(
    std::string_view xml, std::string_view dtd_text,
    const LoadOptions& options) {
  const unsigned threads = options.EffectiveThreads();
  if (threads > 1) return LoadParallel(xml, dtd_text, threads);
  XMARK_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::Dtd::Parse(dtd_text));
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml));
  std::unique_ptr<InlinedStore> store(new InlinedStore());
  store->dtd_elements_ = dtd.elements().size();
  const size_t n = doc.num_nodes();
  const xml::NameId id_attr = doc.names().Lookup("id");

  store->parent_.resize(n);
  store->first_child_.resize(n);
  store->next_sibling_.resize(n);
  store->tag_.resize(n);
  store->row_of_.resize(n);
  store->text_span_.resize(n, {0, 0});

  auto as_handle = [](xml::NodeId id) {
    return id == xml::kInvalidNode ? query::kInvalidHandle
                                   : static_cast<query::NodeHandle>(id);
  };

  for (xml::NodeId i = 0; i < n; ++i) {
    store->parent_[i] = as_handle(doc.parent(i));
    store->first_child_[i] = as_handle(doc.first_child(i));
    store->next_sibling_[i] = as_handle(doc.next_sibling(i));
    if (doc.IsElement(i)) {
      const xml::NameId tag =
          store->names_.Intern(doc.names().Spelling(doc.name(i)));
      store->tag_[i] = tag;
      store->row_of_[i] = store->tag_cardinality_[tag]++;
      for (const auto& attr : doc.attributes(i)) {
        AttrRow arow{};
        arow.owner = i;
        arow.name = store->names_.Intern(doc.names().Spelling(attr.name));
        arow.value_begin = static_cast<uint32_t>(store->heap_.size());
        arow.value_len = static_cast<uint32_t>(attr.value.size());
        store->heap_.append(attr.value);
        store->attrs_.push_back(arow);
        if (attr.name == id_attr) {
          store->id_index_.emplace(std::string(attr.value), i);
        }
      }
    } else {
      store->tag_[i] = xml::kInvalidName;
      store->text_span_[i] = {static_cast<uint32_t>(store->heap_.size()),
                              static_cast<uint32_t>(doc.text(i).size())};
      store->heap_.append(doc.text(i));
    }
  }
  std::stable_sort(store->attrs_.begin(), store->attrs_.end(),
            [](const AttrRow& a, const AttrRow& b) {
              return a.owner < b.owner;
            });
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  for (uint32_t pos = store->attrs_.size(); pos-- > 0;) {
    store->attr_begin_[store->attrs_[pos].owner] = pos;
  }

  // Derive direct child slots from the DTD.
  std::unordered_set<uint64_t> inlineable;
  for (const xml::DtdElement& elem : dtd.elements()) {
    const xml::NameId parent_tag = store->names_.Lookup(elem.name);
    if (parent_tag == xml::kInvalidName) continue;  // tag absent from doc
    for (const std::string& child : elem.children) {
      const xml::NameId child_tag = store->names_.Lookup(child);
      if (child_tag == xml::kInvalidName) continue;
      if (AtMostOnce(elem.model, child)) {
        inlineable.insert(SlotKey(parent_tag, child_tag));
      }
    }
  }
  for (xml::NodeId i = 0; i < n; ++i) {
    if (!doc.IsElement(i)) continue;
    const xml::NameId ptag = store->tag_[i];
    for (query::NodeHandle c = store->first_child_[i];
         c != query::kInvalidHandle; c = store->next_sibling_[c]) {
      const xml::NameId ctag = store->tag_[c];
      if (ctag == xml::kInvalidName) continue;
      const uint64_t key = SlotKey(ptag, ctag);
      if (!inlineable.count(key)) continue;
      auto& slot = store->slots_[key];
      if (slot.empty()) {
        slot.assign(store->tag_cardinality_[ptag], query::kInvalidHandle);
      }
      slot[store->row_of_[i]] = c;
    }
  }

  store->root_ = doc.root();
  return store;
}

StatusOr<std::unique_ptr<InlinedStore>> InlinedStore::LoadParallel(
    std::string_view xml, std::string_view dtd_text, unsigned threads) {
  XMARK_ASSIGN_OR_RETURN(xml::Dtd dtd, xml::Dtd::Parse(dtd_text));
  ThreadPool pool(threads);
  xml::ParseOptions popts;
  popts.pool = &pool;
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml, popts));
  std::unique_ptr<InlinedStore> store(new InlinedStore());
  store->dtd_elements_ = dtd.elements().size();
  const size_t n = doc.num_nodes();
  // Serial interning replays the document dictionary order, so the store
  // dictionary equals it (store NameId == doc NameId).
  store->names_ = doc.names();
  const xml::NameId id_attr = doc.names().Lookup("id");
  const size_t num_names = doc.names().size();

  store->parent_.resize(n);
  store->first_child_.resize(n);
  store->next_sibling_.resize(n);
  store->tag_.resize(n);
  store->row_of_.resize(n);
  store->text_span_.resize(n, {0, 0});

  auto as_handle = [](xml::NodeId id) {
    return id == xml::kInvalidNode ? query::kInvalidHandle
                                   : static_cast<query::NodeHandle>(id);
  };

  // Pass A: per-chunk heap bytes, attr rows, id entries and per-tag
  // element counts (the dense row_of_ numbering needs, for each chunk, how
  // many earlier elements carry the same tag).
  const std::vector<size_t> bounds = ChunkBounds(n, threads);
  const size_t chunks = bounds.size() - 1;
  std::vector<size_t> heap_base(chunks + 1, 0);
  std::vector<size_t> attr_base(chunks + 1, 0);
  std::vector<size_t> id_base(chunks + 1, 0);
  std::vector<std::vector<uint32_t>> tag_counts(
      chunks, std::vector<uint32_t>(num_names, 0));
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap = 0, attrs = 0, ids = 0;
      std::vector<uint32_t>& counts = tag_counts[k];
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        if (doc.IsElement(node)) {
          ++counts[doc.name(node)];
          for (const auto& attr : doc.attributes(node)) {
            heap += attr.value.size();
            ++attrs;
            if (attr.name == id_attr) ++ids;
          }
        } else {
          heap += doc.text(node).size();
        }
      }
      heap_base[k + 1] = heap;
      attr_base[k + 1] = attrs;
      id_base[k + 1] = ids;
    });
  }
  pool.Wait();
  for (size_t k = 0; k < chunks; ++k) {
    heap_base[k + 1] += heap_base[k];
    attr_base[k + 1] += attr_base[k];
    id_base[k + 1] += id_base[k];
  }
  // tag_counts[k] becomes the per-tag base for chunk k (exclusive prefix);
  // the final totals land in tag_cardinality_.
  std::vector<uint32_t> tag_total(num_names, 0);
  for (size_t k = 0; k < chunks; ++k) {
    for (size_t t = 0; t < num_names; ++t) {
      const uint32_t c = tag_counts[k][t];
      tag_counts[k][t] = tag_total[t];
      tag_total[t] += c;
    }
  }
  for (size_t t = 0; t < num_names; ++t) {
    if (tag_total[t] > 0) {
      store->tag_cardinality_[static_cast<xml::NameId>(t)] = tag_total[t];
    }
  }

  // Pass B: fill the dense structure arrays, heap, attribute rows and id
  // entries; collect per-chunk id pairs for the (serial) hash inserts.
  store->attrs_.resize(attr_base[chunks]);
  store->heap_.resize(heap_base[chunks]);
  std::vector<std::vector<std::pair<std::string, query::NodeHandle>>>
      id_pairs(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap_off = heap_base[k];
      size_t attr_off = attr_base[k];
      std::vector<uint32_t> next_row = tag_counts[k];
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        store->parent_[i] = as_handle(doc.parent(node));
        store->first_child_[i] = as_handle(doc.first_child(node));
        store->next_sibling_[i] = as_handle(doc.next_sibling(node));
        if (doc.IsElement(node)) {
          const xml::NameId tag = doc.name(node);
          store->tag_[i] = tag;
          store->row_of_[i] = next_row[tag]++;
          for (const auto& attr : doc.attributes(node)) {
            AttrRow arow{};
            arow.owner = static_cast<uint32_t>(i);
            arow.name = attr.name;
            arow.value_begin = static_cast<uint32_t>(heap_off);
            arow.value_len = static_cast<uint32_t>(attr.value.size());
            std::memcpy(store->heap_.data() + heap_off, attr.value.data(),
                        attr.value.size());
            heap_off += attr.value.size();
            store->attrs_[attr_off++] = arow;
            if (attr.name == id_attr) {
              id_pairs[k].emplace_back(std::string(attr.value),
                                       static_cast<query::NodeHandle>(i));
            }
          }
        } else {
          store->tag_[i] = xml::kInvalidName;
          store->text_span_[i] = {static_cast<uint32_t>(heap_off),
                                  static_cast<uint32_t>(doc.text(node).size())};
          std::memcpy(store->heap_.data() + heap_off, doc.text(node).data(),
                      doc.text(node).size());
          heap_off += doc.text(node).size();
        }
      }
    });
  }
  pool.Wait();
  for (size_t k = 0; k < chunks; ++k) {
    for (auto& [value, node] : id_pairs[k]) {
      store->id_index_.emplace(std::move(value), node);
    }
  }

  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  const size_t num_attrs = store->attrs_.size();
  ParallelFor(&pool, 0, num_attrs, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      const uint32_t owner = store->attrs_[pos].owner;
      if (pos == 0 || store->attrs_[pos - 1].owner != owner) {
        store->attr_begin_[owner] = static_cast<uint32_t>(pos);
      }
    }
  });

  // Direct child slots: the child-chain scans run per chunk; the cheap
  // slot-vector writes replay serially in chunk (= document) order.
  std::unordered_set<uint64_t> inlineable;
  for (const xml::DtdElement& elem : dtd.elements()) {
    const xml::NameId parent_tag = store->names_.Lookup(elem.name);
    if (parent_tag == xml::kInvalidName) continue;
    for (const std::string& child : elem.children) {
      const xml::NameId child_tag = store->names_.Lookup(child);
      if (child_tag == xml::kInvalidName) continue;
      if (AtMostOnce(elem.model, child)) {
        inlineable.insert(SlotKey(parent_tag, child_tag));
      }
    }
  }
  struct SlotEntry {
    uint64_t key;
    uint32_t parent_row;
    query::NodeHandle child;
  };
  std::vector<std::vector<SlotEntry>> slot_entries(chunks);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        if (!doc.IsElement(static_cast<xml::NodeId>(i))) continue;
        const xml::NameId ptag = store->tag_[i];
        for (query::NodeHandle c = store->first_child_[i];
             c != query::kInvalidHandle; c = store->next_sibling_[c]) {
          const xml::NameId ctag = store->tag_[c];
          if (ctag == xml::kInvalidName) continue;
          const uint64_t key = SlotKey(ptag, ctag);
          if (!inlineable.count(key)) continue;
          slot_entries[k].push_back(
              SlotEntry{key, store->row_of_[i], c});
        }
      }
    });
  }
  pool.Wait();
  for (size_t k = 0; k < chunks; ++k) {
    for (const SlotEntry& entry : slot_entries[k]) {
      auto& slot = store->slots_[entry.key];
      if (slot.empty()) {
        slot.assign(store->tag_cardinality_[static_cast<xml::NameId>(
                        entry.key >> 32)],
                    query::kInvalidHandle);
      }
      slot[entry.parent_row] = entry.child;
    }
  }

  store->root_ = doc.root();
  return store;
}

void InlinedStore::DumpState(std::string* out) const {
  out->append("inlined-store v1\n");
  out->append("names ");
  out->append(std::to_string(names_.size()));
  out->push_back('\n');
  for (xml::NameId i = 0; i < names_.size(); ++i) {
    out->append(names_.Spelling(i));
    out->push_back('\n');
  }
  out->append(StringPrintf("root %llu dtd_elements %zu\n",
                           static_cast<unsigned long long>(root_),
                           dtd_elements_));
  out->append("nodes\n");
  for (size_t i = 0; i < tag_.size(); ++i) {
    out->append(StringPrintf(
        "%llu %llu %llu %u %u %u %u\n",
        static_cast<unsigned long long>(parent_[i]),
        static_cast<unsigned long long>(first_child_[i]),
        static_cast<unsigned long long>(next_sibling_[i]), tag_[i],
        row_of_[i], text_span_[i].first, text_span_[i].second));
  }
  out->append("tag_cardinality\n");
  {
    std::map<xml::NameId, uint32_t> sorted(tag_cardinality_.begin(),
                                           tag_cardinality_.end());
    for (const auto& [tag, count] : sorted) {
      out->append(StringPrintf("%u %u\n", tag, count));
    }
  }
  out->append("slots\n");
  {
    std::map<uint64_t, const std::vector<query::NodeHandle>*> sorted;
    for (const auto& [key, slot] : slots_) sorted.emplace(key, &slot);
    for (const auto& [key, slot] : sorted) {
      out->append(StringPrintf("%llu:", static_cast<unsigned long long>(key)));
      for (query::NodeHandle h : *slot) {
        out->push_back(' ');
        out->append(std::to_string(h));
      }
      out->push_back('\n');
    }
  }
  out->append("attrs\n");
  for (const AttrRow& a : attrs_) {
    out->append(StringPrintf("%u %u %u %u\n", a.owner, a.name, a.value_begin,
                             a.value_len));
  }
  out->append("attr_begin\n");
  for (uint32_t v : attr_begin_) {
    out->append(std::to_string(v));
    out->push_back(' ');
  }
  out->append("\nheap ");
  out->append(std::to_string(heap_.size()));
  out->push_back('\n');
  out->append(heap_);
  out->append("\nid_index\n");
  {
    std::map<std::string, query::NodeHandle> sorted(id_index_.begin(),
                                                    id_index_.end());
    for (const auto& [value, node] : sorted) {
      out->append(value);
      out->push_back(' ');
      out->append(std::to_string(node));
      out->push_back('\n');
    }
  }
}

std::string_view InlinedStore::TextView(query::NodeHandle n) const {
  const auto& [begin, len] = text_span_[n];
  return std::string_view(heap_).substr(begin, len);
}

void InlinedStore::AppendStringValue(query::NodeHandle n,
                                     std::string* out) const {
  if (tag_[n] == xml::kInvalidName) {
    const auto& [begin, len] = text_span_[n];
    out->append(std::string_view(heap_).substr(begin, len));
    return;
  }
  for (query::NodeHandle c = first_child_[n]; c != query::kInvalidHandle;
       c = next_sibling_[c]) {
    AppendStringValue(c, out);
  }
}

std::optional<std::string_view> InlinedStore::AttributeView(
    query::NodeHandle n, std::string_view name) const {
  const xml::NameId id = names_.Lookup(name);
  if (id == xml::kInvalidName) return std::nullopt;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    if (attrs_[i].name == id) {
      return std::string_view(heap_).substr(attrs_[i].value_begin,
                                            attrs_[i].value_len);
    }
  }
  return std::nullopt;
}

void InlinedStore::OpenChildCursor(query::NodeHandle parent,
                                   query::ChildFilter filter, xml::NameId tag,
                                   query::ChildCursor* cur) const {
  cur->u0 = cur->Init(this, parent, filter, tag) ? first_child_[parent]
                                                 : query::kInvalidHandle;
}

size_t InlinedStore::AdvanceChildCursor(query::ChildCursor* cur,
                                        query::NodeHandle* out,
                                        size_t cap) const {
  size_t n = 0;
  query::NodeHandle c = cur->u0;
  while (n < cap && c != query::kInvalidHandle) {
    if (query::MatchesChildFilter(cur->filter, tag_[c], cur->tag)) {
      out[n++] = c;
    }
    c = next_sibling_[c];
  }
  cur->u0 = c;
  return n;
}

query::NodeHandle InlinedStore::RawSubtreeEnd(query::NodeHandle n) const {
  // Subtree end: the next sibling of n or of its nearest ancestor with
  // one (preorder ids), else the end of the node table.
  query::NodeHandle end = next_sibling_[n];
  for (query::NodeHandle a = n;
       end == query::kInvalidHandle && a != query::kInvalidHandle;) {
    a = parent_[a];
    end = a == query::kInvalidHandle ? tag_.size() : next_sibling_[a];
  }
  return end;
}

void InlinedStore::OpenDescendantCursor(query::NodeHandle base,
                                        query::ChildFilter filter,
                                        xml::NameId tag,
                                        query::DescendantCursor* cur) const {
  if (!cur->Init(this, base, filter, tag)) return;  // u0 == u1: exhausted
  cur->u0 = base + 1;
  cur->u1 = RawSubtreeEnd(base);
}

size_t InlinedStore::AdvanceDescendantCursor(query::DescendantCursor* cur,
                                             query::NodeHandle* out,
                                             size_t cap) const {
  size_t id = static_cast<size_t>(cur->u0);
  const size_t end = static_cast<size_t>(cur->u1);
  size_t n = 0;
  while (n < cap && id < end) {
    if (query::MatchesChildFilter(cur->filter, tag_[id], cur->tag)) {
      out[n++] = id;
    }
    ++id;
  }
  cur->u0 = id;
  return n;
}

std::vector<std::pair<std::string, std::string>> InlinedStore::Attributes(
    query::NodeHandle n) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    out.emplace_back(std::string(names_.Spelling(attrs_[i].name)),
                     std::string(std::string_view(heap_).substr(
                         attrs_[i].value_begin, attrs_[i].value_len)));
  }
  return out;
}

query::NodeHandle InlinedStore::NodeById(std::string_view id) const {
  const auto it = id_index_.find(id);
  return it == id_index_.end() ? query::kInvalidHandle : it->second;
}

std::optional<std::vector<query::NodeHandle>> InlinedStore::ChildrenByTag(
    query::NodeHandle n, xml::NameId tag) const {
  if (tag_[n] == xml::kInvalidName) return std::vector<query::NodeHandle>{};
  const auto it = slots_.find(SlotKey(tag_[n], tag));
  if (it == slots_.end()) return std::nullopt;  // not inlined: generic walk
  const query::NodeHandle child = it->second[row_of_[n]];
  if (child == query::kInvalidHandle) {
    return std::vector<query::NodeHandle>{};
  }
  return std::vector<query::NodeHandle>{child};
}

size_t InlinedStore::StorageBytes() const {
  size_t bytes = heap_.capacity() + attrs_.capacity() * sizeof(AttrRow) +
                 attr_begin_.capacity() * sizeof(uint32_t) +
                 parent_.capacity() * sizeof(query::NodeHandle) * 3 +
                 tag_.capacity() * sizeof(xml::NameId) +
                 row_of_.capacity() * sizeof(uint32_t) +
                 text_span_.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
  for (const auto& [key, slot] : slots_) {
    bytes += sizeof(key) + slot.capacity() * sizeof(query::NodeHandle);
  }
  for (const auto& [id, node] : id_index_) {
    bytes += id.size() + sizeof(node) + 32;
  }
  return bytes;
}

size_t InlinedStore::CatalogEntries() const {
  return dtd_elements_ + slots_.size();
}

}  // namespace xmark::store
