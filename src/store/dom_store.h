#ifndef XMARK_STORE_DOM_STORE_H_
#define XMARK_STORE_DOM_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/storage.h"
#include "store/load_options.h"
#include "util/status.h"
#include "util/string_util.h"
#include "xml/dom.h"

namespace xmark::store {

/// Native main-memory mapping: the document tree itself, optionally
/// augmented with access structures. This is the architecture of the
/// paper's systems D-G:
///   D — full index set (tag index, id index, structural summary);
///   E — id index only;
///   F — bare tree;
///   G — bare tree inside an embedded processor (copy semantics and
///       per-query loading are modeled at the engine layer).
class DomStore : public query::StorageAdapter {
 public:
  struct Options {
    bool build_tag_index = true;
    bool build_id_index = true;
    bool build_path_summary = true;
  };

  /// Parses `xml` and builds the selected indexes. `load_options.threads
  /// == 1` is the original serial path; more threads parse in parallel and
  /// build the tag/id/summary indexes concurrently, with byte-identical
  /// results.
  static StatusOr<std::unique_ptr<DomStore>> Load(
      std::string_view xml, const Options& options,
      const LoadOptions& load_options = {});

  /// Canonical serialization of the document and every index, for the
  /// bulkload determinism test.
  void DumpState(std::string* out) const override;

  // StorageAdapter:
  std::string_view mapping_name() const override { return "native DOM"; }
  const xml::NameTable& names() const override { return doc_.names(); }
  query::NodeHandle Root() const override { return doc_.root(); }
  bool IsElement(query::NodeHandle n) const override {
    return doc_.IsElement(static_cast<xml::NodeId>(n));
  }
  xml::NameId NameOf(query::NodeHandle n) const override {
    return doc_.name(static_cast<xml::NodeId>(n));
  }
  query::NodeHandle Parent(query::NodeHandle n) const override {
    return AsHandle(doc_.parent(static_cast<xml::NodeId>(n)));
  }
  query::NodeHandle FirstChild(query::NodeHandle n) const override {
    return AsHandle(doc_.first_child(static_cast<xml::NodeId>(n)));
  }
  query::NodeHandle NextSibling(query::NodeHandle n) const override {
    return AsHandle(doc_.next_sibling(static_cast<xml::NodeId>(n)));
  }
  std::string_view TextView(query::NodeHandle n) const override {
    return doc_.text(static_cast<xml::NodeId>(n));
  }
  void AppendStringValue(query::NodeHandle n,
                         std::string* out) const override {
    // Preorder ids make the subtree a contiguous id range; one linear scan
    // collects every descendant text node without recursion.
    const xml::NodeId end = doc_.SubtreeEnd(static_cast<xml::NodeId>(n));
    for (xml::NodeId i = static_cast<xml::NodeId>(n); i < end; ++i) {
      if (!doc_.IsElement(i)) out->append(doc_.text(i));
    }
  }
  std::optional<std::string_view> AttributeView(
      query::NodeHandle n, std::string_view name) const override {
    return doc_.attribute(static_cast<xml::NodeId>(n), name);
  }
  std::vector<std::pair<std::string, std::string>> Attributes(
      query::NodeHandle n) const override;
  // Dense-array sibling walk over the document's node table.
  void OpenChildCursor(query::NodeHandle parent, query::ChildFilter filter,
                       xml::NameId tag,
                       query::ChildCursor* cur) const override;
  size_t AdvanceChildCursor(query::ChildCursor* cur, query::NodeHandle* out,
                            size_t cap) const override;
  // Preorder ids make the subtree the id interval (n, SubtreeEnd(n)): a
  // tag-filtered scan slices the tag index when one was built, otherwise it
  // streams the dense node table across that interval.
  void OpenDescendantCursor(query::NodeHandle base, query::ChildFilter filter,
                            xml::NameId tag,
                            query::DescendantCursor* cur) const override;
  size_t AdvanceDescendantCursor(query::DescendantCursor* cur,
                                 query::NodeHandle* out,
                                 size_t cap) const override;
  // Both cursor modes (dense id interval, tag-index slice) iterate a
  // monotone [u0, u1) position space, so clamped copies partition cleanly.
  bool DescendantCursorPartitionable(
      const query::DescendantCursor& /*cur*/) const override {
    return true;
  }
  bool Before(query::NodeHandle a, query::NodeHandle b) const override {
    return a < b;
  }

  bool SupportsIdLookup() const override { return !id_index_.empty(); }
  query::NodeHandle NodeById(std::string_view id) const override;

  bool SupportsTagIndex() const override { return options_.build_tag_index; }
  const std::vector<query::NodeHandle>* NodesByTag(
      xml::NameId tag) const override;
  std::optional<std::vector<query::NodeHandle>> DescendantsByTag(
      query::NodeHandle n, xml::NameId tag) const override;

  bool SupportsPathIndex() const override {
    return options_.build_path_summary;
  }
  std::optional<std::vector<query::NodeHandle>> PathExtent(
      const std::vector<xml::NameId>& path) const override;
  std::optional<int64_t> PathCount(
      const std::vector<xml::NameId>& path) const override;

  query::StorageCapabilities Capabilities() const override {
    query::StorageCapabilities caps;
    caps.id_lookup = SupportsIdLookup();
    caps.tag_index = options_.build_tag_index;
    caps.path_index = options_.build_path_summary;
    caps.interval_descendants = true;  // dense preorder node table
    return caps;
  }

  size_t StorageBytes() const override;
  size_t CatalogEntries() const override;
  size_t NodeCount() const override { return doc_.num_nodes(); }

  /// Number of distinct root-to-node tag paths (DataGuide size).
  size_t SummaryPaths() const { return summary_.size(); }

  const xml::Document& document() const { return doc_; }

 private:
  // Structural summary (strong DataGuide): one entry per distinct
  // root-to-node tag path, with its extent in document order.
  struct SummaryNode {
    xml::NameId tag = xml::kInvalidName;
    std::unordered_map<xml::NameId, size_t> children;
    std::vector<query::NodeHandle> extent;
  };

  explicit DomStore(xml::Document doc, const Options& options)
      : doc_(std::move(doc)), options_(options) {}

  static query::NodeHandle AsHandle(xml::NodeId id) {
    return id == xml::kInvalidNode ? query::kInvalidHandle
                                   : static_cast<query::NodeHandle>(id);
  }

  void BuildIndexes();
  void BuildIndexesParallel(ThreadPool* pool, unsigned threads);
  void BuildSummary();

  xml::Document doc_;
  Options options_;
  std::unordered_map<xml::NameId, std::vector<query::NodeHandle>> tag_index_;
  // Transparent hash/eq: NodeById probes with the caller's string_view.
  std::unordered_map<std::string, query::NodeHandle, TransparentStringHash,
                     std::equal_to<>>
      id_index_;
  std::vector<SummaryNode> summary_;  // [0] is the root path
};

}  // namespace xmark::store

#endif  // XMARK_STORE_DOM_STORE_H_
