#include "store/fragmented_store.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "xml/dom.h"

namespace xmark::store {

StatusOr<std::unique_ptr<FragmentedStore>> FragmentedStore::Load(
    std::string_view xml, const LoadOptions& options) {
  const unsigned threads = options.EffectiveThreads();
  if (threads > 1) return LoadParallel(xml, threads);
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml));
  std::unique_ptr<FragmentedStore> store(new FragmentedStore());
  store->text_tag_ = store->names_.Intern("#text");
  store->path_names_.push_back("");  // virtual document node
  const size_t n = doc.num_nodes();
  store->path_of_.resize(n);
  store->idx_in_path_.resize(n);
  store->paths_.push_back(PathInfo{});  // virtual document node
  const xml::NameId id_attr = doc.names().Lookup("id");

  // DFS assigning each node to its path table. A stack of (node, path)
  // frames tracks the current path.
  std::vector<std::pair<xml::NodeId, uint32_t>> stack;  // (element, path)
  for (xml::NodeId i = 0; i < n; ++i) {
    while (!stack.empty() &&
           !(i >= stack.back().first &&
             i < doc.SubtreeEnd(stack.back().first))) {
      stack.pop_back();
    }
    const uint32_t parent_path = stack.empty() ? 0 : stack.back().second;
    const xml::NameId tag =
        doc.IsElement(i)
            ? store->names_.Intern(doc.names().Spelling(doc.name(i)))
            : store->text_tag_;
    // Find or create the child path.
    uint32_t path_id = 0;
    for (uint32_t child : store->paths_[parent_path].child_paths) {
      if (store->paths_[child].tag == tag) {
        path_id = child;
        break;
      }
    }
    if (path_id == 0) {
      path_id = static_cast<uint32_t>(store->paths_.size());
      PathInfo info;
      info.parent_path = parent_path;
      info.tag = tag;
      info.depth = store->paths_[parent_path].depth + 1;
      store->paths_.push_back(std::move(info));
      store->paths_[parent_path].child_paths.push_back(path_id);
      store->paths_by_tag_[tag].push_back(path_id);
      store->path_names_.push_back(store->path_names_[parent_path] + "/" +
                                   store->names_.Spelling(tag));
    }

    Row row{};
    row.id = i;
    row.parent =
        doc.parent(i) == xml::kInvalidNode ? 0xffffffffu : doc.parent(i);
    row.subtree_end = doc.SubtreeEnd(i);
    if (doc.IsElement(i)) {
      for (const auto& attr : doc.attributes(i)) {
        AttrRow arow{};
        arow.owner = i;
        arow.name = store->names_.Intern(doc.names().Spelling(attr.name));
        arow.value_begin = static_cast<uint32_t>(store->heap_.size());
        arow.value_len = static_cast<uint32_t>(attr.value.size());
        store->heap_.append(attr.value);
        store->attrs_.push_back(arow);
        if (attr.name == id_attr) {
          store->id_value_index_.emplace_back(std::string(attr.value), i);
        }
      }
    } else {
      row.text_begin = static_cast<uint32_t>(store->heap_.size());
      row.text_len = static_cast<uint32_t>(doc.text(i).size());
      store->heap_.append(doc.text(i));
    }
    store->path_of_[i] = path_id;
    store->idx_in_path_[i] =
        static_cast<uint32_t>(store->paths_[path_id].rows.size());
    store->paths_[path_id].rows.push_back(row);
    if (doc.IsElement(i)) stack.emplace_back(i, path_id);
  }

  std::stable_sort(store->attrs_.begin(), store->attrs_.end(),
            [](const AttrRow& a, const AttrRow& b) {
              return a.owner < b.owner;
            });
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  for (uint32_t pos = store->attrs_.size(); pos-- > 0;) {
    store->attr_begin_[store->attrs_[pos].owner] = pos;
  }
  std::sort(store->id_value_index_.begin(), store->id_value_index_.end());
  store->root_ = doc.root();
  return store;
}

StatusOr<std::unique_ptr<FragmentedStore>> FragmentedStore::LoadParallel(
    std::string_view xml, unsigned threads) {
  ThreadPool pool(threads);
  xml::ParseOptions popts;
  popts.pool = &pool;
  XMARK_ASSIGN_OR_RETURN(xml::Document doc, xml::Document::Parse(xml, popts));
  std::unique_ptr<FragmentedStore> store(new FragmentedStore());
  const size_t n = doc.num_nodes();
  // Serial interning order is "#text" first, then the document dictionary
  // in its own (first-occurrence) order: replaying the document table
  // reproduces it, and doc NameId u maps to store id u + 1.
  store->text_tag_ = store->names_.Intern("#text");
  for (xml::NameId u = 0; u < doc.names().size(); ++u) {
    store->names_.Intern(doc.names().Spelling(u));
  }
  const xml::NameId id_attr = doc.names().Lookup("id");

  // Path discovery stays sequential: path ids are assigned in order of
  // first appearance, and each node's path depends on its parent's. The
  // pass touches no heap bytes or attribute rows — just the trie walk.
  store->path_names_.push_back("");
  store->paths_.push_back(PathInfo{});
  store->path_of_.resize(n);
  store->idx_in_path_.resize(n);
  std::vector<uint32_t> path_rows;  // rows per path, for preallocation
  path_rows.push_back(0);
  {
    std::vector<std::pair<xml::NodeId, uint32_t>> stack;
    for (xml::NodeId i = 0; i < n; ++i) {
      while (!stack.empty() &&
             !(i >= stack.back().first &&
               i < doc.SubtreeEnd(stack.back().first))) {
        stack.pop_back();
      }
      const uint32_t parent_path = stack.empty() ? 0 : stack.back().second;
      const xml::NameId tag =
          doc.IsElement(i) ? doc.name(i) + 1 : store->text_tag_;
      uint32_t path_id = 0;
      for (uint32_t child : store->paths_[parent_path].child_paths) {
        if (store->paths_[child].tag == tag) {
          path_id = child;
          break;
        }
      }
      if (path_id == 0) {
        path_id = static_cast<uint32_t>(store->paths_.size());
        PathInfo info;
        info.parent_path = parent_path;
        info.tag = tag;
        info.depth = store->paths_[parent_path].depth + 1;
        store->paths_.push_back(std::move(info));
        store->paths_[parent_path].child_paths.push_back(path_id);
        store->paths_by_tag_[tag].push_back(path_id);
        store->path_names_.push_back(store->path_names_[parent_path] + "/" +
                                     store->names_.Spelling(tag));
        path_rows.push_back(0);
      }
      store->path_of_[i] = path_id;
      store->idx_in_path_[i] = path_rows[path_id]++;
      if (doc.IsElement(i)) stack.emplace_back(i, path_id);
    }
  }
  for (size_t p = 0; p < store->paths_.size(); ++p) {
    store->paths_[p].rows.resize(path_rows[p]);
  }

  // Pass A: per-chunk heap bytes / attribute rows / id entries.
  const std::vector<size_t> bounds = ChunkBounds(n, threads);
  const size_t chunks = bounds.size() - 1;
  std::vector<size_t> heap_base(chunks + 1, 0);
  std::vector<size_t> attr_base(chunks + 1, 0);
  std::vector<size_t> id_base(chunks + 1, 0);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap = 0, attrs = 0, ids = 0;
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        if (doc.IsElement(node)) {
          for (const auto& attr : doc.attributes(node)) {
            heap += attr.value.size();
            ++attrs;
            if (attr.name == id_attr) ++ids;
          }
        } else {
          heap += doc.text(node).size();
        }
      }
      heap_base[k + 1] = heap;
      attr_base[k + 1] = attrs;
      id_base[k + 1] = ids;
    });
  }
  pool.Wait();
  for (size_t k = 0; k < chunks; ++k) {
    heap_base[k + 1] += heap_base[k];
    attr_base[k + 1] += attr_base[k];
    id_base[k + 1] += id_base[k];
  }

  // Pass B: concurrent per-path table fills. Every row slot
  // (path_of_, idx_in_path_) and every heap/attr/id position is fixed by
  // the discovery pass and the prefix sums, so writes are disjoint and
  // the result matches the serial layout byte for byte.
  store->attrs_.resize(attr_base[chunks]);
  store->heap_.resize(heap_base[chunks]);
  store->id_value_index_.resize(id_base[chunks]);
  for (size_t k = 0; k < chunks; ++k) {
    pool.Submit([&, k] {
      size_t heap_off = heap_base[k];
      size_t attr_off = attr_base[k];
      size_t id_off = id_base[k];
      for (size_t i = bounds[k]; i < bounds[k + 1]; ++i) {
        const xml::NodeId node = static_cast<xml::NodeId>(i);
        Row row{};
        row.id = static_cast<uint32_t>(i);
        row.parent = doc.parent(node) == xml::kInvalidNode
                         ? 0xffffffffu
                         : doc.parent(node);
        row.subtree_end = doc.SubtreeEnd(node);
        if (doc.IsElement(node)) {
          for (const auto& attr : doc.attributes(node)) {
            AttrRow arow{};
            arow.owner = static_cast<uint32_t>(i);
            arow.name = attr.name + 1;  // doc id -> store id
            arow.value_begin = static_cast<uint32_t>(heap_off);
            arow.value_len = static_cast<uint32_t>(attr.value.size());
            std::memcpy(store->heap_.data() + heap_off, attr.value.data(),
                        attr.value.size());
            heap_off += attr.value.size();
            store->attrs_[attr_off++] = arow;
            if (attr.name == id_attr) {
              store->id_value_index_[id_off++] = {std::string(attr.value),
                                                  static_cast<uint32_t>(i)};
            }
          }
        } else {
          row.text_begin = static_cast<uint32_t>(heap_off);
          row.text_len = static_cast<uint32_t>(doc.text(node).size());
          std::memcpy(store->heap_.data() + heap_off, doc.text(node).data(),
                      doc.text(node).size());
          heap_off += doc.text(node).size();
        }
        store->paths_[store->path_of_[i]].rows[store->idx_in_path_[i]] = row;
      }
    });
  }
  pool.Wait();

  // Attribute rows were emitted in preorder (owner-sorted already).
  store->attr_begin_.assign(n, static_cast<uint32_t>(store->attrs_.size()));
  const size_t num_attrs = store->attrs_.size();
  ParallelFor(&pool, 0, num_attrs, 4096, [&](size_t b, size_t e) {
    for (size_t pos = b; pos < e; ++pos) {
      const uint32_t owner = store->attrs_[pos].owner;
      if (pos == 0 || store->attrs_[pos - 1].owner != owner) {
        store->attr_begin_[owner] = static_cast<uint32_t>(pos);
      }
    }
  });
  ParallelStableSort(&pool, store->id_value_index_.begin(),
                     store->id_value_index_.end(),
                     [](const auto& a, const auto& b) { return a < b; });
  store->root_ = doc.root();
  return store;
}

void FragmentedStore::DumpState(std::string* out) const {
  out->append("fragmented-store v1\n");
  out->append("names ");
  out->append(std::to_string(names_.size()));
  out->push_back('\n');
  for (xml::NameId i = 0; i < names_.size(); ++i) {
    out->append(names_.Spelling(i));
    out->push_back('\n');
  }
  out->append(StringPrintf("root %llu text_tag %u\n",
                           static_cast<unsigned long long>(root_), text_tag_));
  out->append("paths ");
  out->append(std::to_string(paths_.size()));
  out->push_back('\n');
  for (size_t p = 0; p < paths_.size(); ++p) {
    const PathInfo& info = paths_[p];
    out->append(StringPrintf("path %zu parent %u tag %u depth %d name %s\n",
                             p, info.parent_path, info.tag, info.depth,
                             path_names_[p].c_str()));
    out->append("children");
    for (uint32_t c : info.child_paths) {
      out->push_back(' ');
      out->append(std::to_string(c));
    }
    out->append("\nrows\n");
    for (const Row& r : info.rows) {
      out->append(StringPrintf("%u %u %u %u %u\n", r.id, r.parent,
                               r.subtree_end, r.text_begin, r.text_len));
    }
  }
  out->append("path_of\n");
  for (uint32_t v : path_of_) {
    out->append(std::to_string(v));
    out->push_back(' ');
  }
  out->append("\nidx_in_path\n");
  for (uint32_t v : idx_in_path_) {
    out->append(std::to_string(v));
    out->push_back(' ');
  }
  out->append("\npaths_by_tag\n");
  for (xml::NameId tag = 0; tag < names_.size(); ++tag) {
    const auto it = paths_by_tag_.find(tag);
    if (it == paths_by_tag_.end()) continue;
    out->append(std::to_string(tag));
    for (uint32_t p : it->second) {
      out->push_back(' ');
      out->append(std::to_string(p));
    }
    out->push_back('\n');
  }
  out->append("attrs\n");
  for (const AttrRow& a : attrs_) {
    out->append(StringPrintf("%u %u %u %u\n", a.owner, a.name, a.value_begin,
                             a.value_len));
  }
  out->append("attr_begin\n");
  for (uint32_t v : attr_begin_) {
    out->append(std::to_string(v));
    out->push_back(' ');
  }
  out->append("\nheap ");
  out->append(std::to_string(heap_.size()));
  out->push_back('\n');
  out->append(heap_);
  out->append("\nid_index\n");
  for (const auto& [value, node] : id_value_index_) {
    out->append(value);
    out->push_back(' ');
    out->append(std::to_string(node));
    out->push_back('\n');
  }
}

bool FragmentedStore::IsElement(query::NodeHandle n) const {
  return paths_[path_of_[n]].tag != text_tag_;
}

xml::NameId FragmentedStore::NameOf(query::NodeHandle n) const {
  const xml::NameId tag = paths_[path_of_[n]].tag;
  return tag == text_tag_ ? xml::kInvalidName : tag;
}

query::NodeHandle FragmentedStore::Parent(query::NodeHandle n) const {
  const uint32_t p = RowOf(n).parent;
  return p == 0xffffffffu ? query::kInvalidHandle : p;
}

std::pair<size_t, size_t> FragmentedStore::Slice(const PathInfo& p,
                                                 uint32_t lo,
                                                 uint32_t hi) const {
  const auto begin = std::lower_bound(
      p.rows.begin(), p.rows.end(), lo,
      [](const Row& row, uint32_t key) { return row.id < key; });
  const auto end = std::lower_bound(
      begin, p.rows.end(), hi,
      [](const Row& row, uint32_t key) { return row.id < key; });
  return {static_cast<size_t>(begin - p.rows.begin()),
          static_cast<size_t>(end - p.rows.begin())};
}

query::NodeHandle FragmentedStore::FirstChild(query::NodeHandle n) const {
  // Merge across every child path table: the child with the smallest id.
  const PathInfo& path = paths_[path_of_[n]];
  const Row& row = RowOf(n);
  query::NodeHandle best = query::kInvalidHandle;
  for (uint32_t child_path : path.child_paths) {
    const PathInfo& cp = paths_[child_path];
    const auto [b, e] = Slice(cp, static_cast<uint32_t>(n) + 1,
                              row.subtree_end);
    if (b != e && (best == query::kInvalidHandle || cp.rows[b].id < best)) {
      best = cp.rows[b].id;
    }
  }
  return best;
}

query::NodeHandle FragmentedStore::NextSibling(query::NodeHandle n) const {
  const uint32_t parent = RowOf(n).parent;
  if (parent == 0xffffffffu) return query::kInvalidHandle;
  const Row& parent_row = RowOf(parent);
  // The next sibling is the smallest child id greater than the end of n's
  // subtree.
  const uint32_t after = RowOf(n).subtree_end;
  const PathInfo& parent_path = paths_[path_of_[parent]];
  query::NodeHandle best = query::kInvalidHandle;
  for (uint32_t child_path : parent_path.child_paths) {
    const PathInfo& cp = paths_[child_path];
    const auto [b, e] = Slice(cp, after, parent_row.subtree_end);
    if (b != e && (best == query::kInvalidHandle || cp.rows[b].id < best)) {
      best = cp.rows[b].id;
    }
  }
  return best;
}

std::string_view FragmentedStore::TextView(query::NodeHandle n) const {
  const Row& row = RowOf(n);
  return std::string_view(heap_).substr(row.text_begin, row.text_len);
}

void FragmentedStore::AppendStringValue(query::NodeHandle n,
                                        std::string* out) const {
  if (!IsElement(n)) {
    out->append(TextView(n));
    return;
  }
  // Reconstruction: gather all #text descendants of the subtree interval.
  // Even with the interval trick this touches every text path table — the
  // fragmentation tax on reconstruction-heavy queries.
  const Row& row = RowOf(n);
  std::vector<std::pair<uint32_t, std::pair<uint32_t, uint32_t>>> pieces;
  const auto text_paths = paths_by_tag_.find(text_tag_);
  if (text_paths == paths_by_tag_.end()) return;
  for (uint32_t path_id : text_paths->second) {
    if (!PathExtends(path_id, path_of_[n])) continue;
    const PathInfo& tp = paths_[path_id];
    const auto [b, e] =
        Slice(tp, static_cast<uint32_t>(n), row.subtree_end);
    for (size_t i = b; i < e; ++i) {
      pieces.emplace_back(tp.rows[i].id,
                          std::make_pair(tp.rows[i].text_begin,
                                         tp.rows[i].text_len));
    }
  }
  std::sort(pieces.begin(), pieces.end());
  for (const auto& [id, span] : pieces) {
    out->append(std::string_view(heap_).substr(span.first, span.second));
  }
}

std::optional<std::string_view> FragmentedStore::AttributeView(
    query::NodeHandle n, std::string_view name) const {
  const xml::NameId id = names_.Lookup(name);
  if (id == xml::kInvalidName) return std::nullopt;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    if (attrs_[i].name == id) {
      return std::string_view(heap_).substr(attrs_[i].value_begin,
                                            attrs_[i].value_len);
    }
  }
  return std::nullopt;
}

void FragmentedStore::OpenChildCursor(query::NodeHandle parent,
                                      query::ChildFilter filter,
                                      xml::NameId tag,
                                      query::ChildCursor* cur) const {
  if (filter != query::ChildFilter::kTag &&
      filter != query::ChildFilter::kText) {
    // Generic scan: merge across child path tables via the default chain.
    query::StorageAdapter::OpenChildCursor(parent, filter, tag, cur);
    return;
  }
  // A filtered scan is a slice of exactly one child path table (text
  // children all live in the parent path's #text table).
  if (!cur->Init(this, parent, filter, tag)) return;  // empty slice
  const xml::NameId want = filter == query::ChildFilter::kText ? text_tag_ : tag;
  const PathInfo& path = paths_[path_of_[parent]];
  for (uint32_t child_path : path.child_paths) {
    if (paths_[child_path].tag != want) continue;
    const auto [b, e] = Slice(paths_[child_path],
                              static_cast<uint32_t>(parent) + 1,
                              RowOf(parent).subtree_end);
    cur->u0 = b;
    cur->u1 = e;
    cur->u2 = child_path;
    return;
  }
}

size_t FragmentedStore::AdvanceChildCursor(query::ChildCursor* cur,
                                           query::NodeHandle* out,
                                           size_t cap) const {
  if (cur->filter != query::ChildFilter::kTag &&
      cur->filter != query::ChildFilter::kText) {
    return query::StorageAdapter::AdvanceChildCursor(cur, out, cap);
  }
  if (cur->u0 >= cur->u1) return 0;
  const PathInfo& path = paths_[cur->u2];
  size_t n = 0;
  size_t pos = static_cast<size_t>(cur->u0);
  const size_t end = static_cast<size_t>(cur->u1);
  while (n < cap && pos < end) out[n++] = path.rows[pos++].id;
  cur->u0 = pos;
  return n;
}

void FragmentedStore::OpenDescendantCursor(
    query::NodeHandle base, query::ChildFilter filter, xml::NameId tag,
    query::DescendantCursor* cur) const {
  if (filter != query::ChildFilter::kTag &&
      filter != query::ChildFilter::kText) {
    // Generic filters merge across every child table per node; use the
    // sibling/parent preorder walk of the base class.
    query::StorageAdapter::OpenDescendantCursor(base, filter, tag, cur);
    return;
  }
  if (!cur->Init(this, base, filter, tag)) {
    cur->u2 = 1;  // single-slice mode, u0 == u1: exhausted
    return;
  }
  const xml::NameId want =
      filter == query::ChildFilter::kText ? text_tag_ : tag;
  const auto it = paths_by_tag_.find(want);
  const uint32_t lo = static_cast<uint32_t>(base) + 1;
  const uint32_t hi = RowOf(base).subtree_end;
  uint32_t only_path = 0;
  size_t candidates = 0;
  if (it != paths_by_tag_.end()) {
    for (uint32_t path_id : it->second) {
      if (!PathExtends(path_id, path_of_[base])) continue;
      ++candidates;
      only_path = path_id;
      if (candidates > 1) break;
    }
  }
  if (candidates == 1) {
    // The common case: one path table carries the tag below base — its
    // subtree slice is the whole answer, already in document order.
    const auto [b, e] = Slice(paths_[only_path], lo, hi);
    cur->u0 = b;
    cur->u1 = e;
    cur->u2 = static_cast<uint64_t>(only_path) << 1 | 1;
    return;
  }
  if (candidates == 0) {
    cur->u2 = 1;  // single-slice mode, empty
    return;
  }
  // Merge mode (u2 == 0): document-order merge across the candidate path
  // tables, tracked by the lower id bound alone.
  cur->u0 = lo;
  cur->u1 = hi;
}

size_t FragmentedStore::AdvanceDescendantCursor(query::DescendantCursor* cur,
                                                query::NodeHandle* out,
                                                size_t cap) const {
  if (cur->filter != query::ChildFilter::kTag &&
      cur->filter != query::ChildFilter::kText) {
    return query::StorageAdapter::AdvanceDescendantCursor(cur, out, cap);
  }
  if (cur->u2 != 0) {  // single-slice mode
    const PathInfo& path = paths_[cur->u2 >> 1];
    size_t pos = static_cast<size_t>(cur->u0);
    const size_t end = static_cast<size_t>(cur->u1);
    size_t n = 0;
    while (n < cap && pos < end) out[n++] = path.rows[pos++].id;
    cur->u0 = pos;
    return n;
  }
  // Merge mode: re-slice each candidate table from the current lower bound
  // and emit the smallest front id until the batch is full. The fronts are
  // per-call locals (stack-resident up to kInlineFronts candidate paths,
  // the overwhelmingly common case), so the persistent state stays within
  // the cursor words.
  if (cap == 0) return 0;  // must not conflate "no room" with "exhausted"
  const xml::NameId want =
      cur->filter == query::ChildFilter::kText ? text_tag_ : cur->tag;
  const uint32_t lo = static_cast<uint32_t>(cur->u0);
  const uint32_t hi = static_cast<uint32_t>(cur->u1);
  if (lo >= hi) return 0;
  struct Front {
    const PathInfo* path;
    size_t pos;
    size_t end;
  };
  constexpr size_t kInlineFronts = 8;
  Front inline_fronts[kInlineFronts];
  std::vector<Front> overflow_fronts;  // heap only beyond kInlineFronts
  Front* fronts = inline_fronts;
  size_t front_count = 0;
  const auto it = paths_by_tag_.find(want);
  XMARK_CHECK(it != paths_by_tag_.end());  // merge mode implies >= 2 paths
  for (uint32_t path_id : it->second) {
    if (!PathExtends(path_id, path_of_[static_cast<uint32_t>(cur->base)])) {
      continue;
    }
    const PathInfo& p = paths_[path_id];
    const auto [b, e] = Slice(p, lo, hi);
    if (b == e) continue;
    if (front_count == kInlineFronts && overflow_fronts.empty()) {
      overflow_fronts.assign(inline_fronts, inline_fronts + front_count);
    }
    if (!overflow_fronts.empty()) {
      overflow_fronts.push_back(Front{&p, b, e});
      fronts = overflow_fronts.data();
      front_count = overflow_fronts.size();
    } else {
      fronts[front_count++] = Front{&p, b, e};
    }
  }
  size_t n = 0;
  while (n < cap && front_count > 0) {
    size_t best = 0;
    for (size_t f = 1; f < front_count; ++f) {
      if (fronts[f].path->rows[fronts[f].pos].id <
          fronts[best].path->rows[fronts[best].pos].id) {
        best = f;
      }
    }
    out[n++] = fronts[best].path->rows[fronts[best].pos].id;
    if (++fronts[best].pos == fronts[best].end) {
      fronts[best] = fronts[--front_count];
    }
  }
  cur->u0 = n > 0 ? static_cast<uint64_t>(out[n - 1]) + 1 : hi;
  return n;
}

std::vector<std::pair<std::string, std::string>> FragmentedStore::Attributes(
    query::NodeHandle n) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t i = attr_begin_[n]; i < attrs_.size() && attrs_[i].owner == n;
       ++i) {
    out.emplace_back(std::string(names_.Spelling(attrs_[i].name)),
                     std::string(std::string_view(heap_).substr(
                         attrs_[i].value_begin, attrs_[i].value_len)));
  }
  return out;
}

query::NodeHandle FragmentedStore::NodeById(std::string_view id) const {
  const auto it = std::lower_bound(
      id_value_index_.begin(), id_value_index_.end(), id,
      [](const std::pair<std::string, uint32_t>& entry, std::string_view key) {
        return std::string_view(entry.first) < key;
      });
  if (it == id_value_index_.end() || it->first != id) {
    return query::kInvalidHandle;
  }
  return it->second;
}

bool FragmentedStore::PathExtends(uint32_t candidate, uint32_t base) const {
  // True when `base`'s path is a proper prefix of `candidate`'s.
  const int base_depth = paths_[base].depth;
  int depth = paths_[candidate].depth;
  uint32_t walk = candidate;
  while (depth > base_depth) {
    walk = paths_[walk].parent_path;
    --depth;
  }
  return walk == base && candidate != base;
}

std::optional<std::vector<query::NodeHandle>> FragmentedStore::ChildrenByTag(
    query::NodeHandle n, xml::NameId tag) const {
  const PathInfo& path = paths_[path_of_[n]];
  const Row& row = RowOf(n);
  for (uint32_t child_path : path.child_paths) {
    const PathInfo& cp = paths_[child_path];
    if (cp.tag != tag) continue;
    const auto [b, e] =
        Slice(cp, static_cast<uint32_t>(n) + 1, row.subtree_end);
    std::vector<query::NodeHandle> out;
    out.reserve(e - b);
    for (size_t i = b; i < e; ++i) out.push_back(cp.rows[i].id);
    return out;
  }
  return std::vector<query::NodeHandle>{};  // no such child table
}

std::optional<std::vector<query::NodeHandle>>
FragmentedStore::DescendantsByTag(query::NodeHandle n, xml::NameId tag) const {
  const auto it = paths_by_tag_.find(tag);
  if (it == paths_by_tag_.end()) return std::vector<query::NodeHandle>{};
  const Row& row = RowOf(n);
  std::vector<query::NodeHandle> out;
  for (uint32_t path_id : it->second) {
    if (!PathExtends(path_id, path_of_[n])) continue;
    const PathInfo& p = paths_[path_id];
    const auto [b, e] =
        Slice(p, static_cast<uint32_t>(n) + 1, row.subtree_end);
    for (size_t i = b; i < e; ++i) out.push_back(p.rows[i].id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<query::NodeHandle>> FragmentedStore::PathExtent(
    const std::vector<xml::NameId>& path) const {
  uint32_t idx = 0;
  for (const xml::NameId tag : path) {
    uint32_t next = 0;
    for (uint32_t child : paths_[idx].child_paths) {
      if (paths_[child].tag == tag) {
        next = child;
        break;
      }
    }
    if (next == 0) return std::vector<query::NodeHandle>{};
    idx = next;
  }
  std::vector<query::NodeHandle> out;
  out.reserve(paths_[idx].rows.size());
  for (const Row& row : paths_[idx].rows) out.push_back(row.id);
  return out;
}

size_t FragmentedStore::ResolveName(std::string_view name) const {
  // Catalog scan: every path table's name is inspected for a matching last
  // segment — the metadata-access cost of a highly fragmented schema, and
  // the driver of System B's expensive compilation phase in Table 2.
  const std::string suffix = "/" + std::string(name);
  size_t matches = 0;
  for (const std::string& path_name : path_names_) {
    if (path_name.size() >= suffix.size() &&
        path_name.compare(path_name.size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      ++matches;
    }
  }
  // Report entries inspected; fold in matches so the scan is not elided.
  return paths_.size() + (matches == 0 ? 0 : 0);
}

size_t FragmentedStore::StorageBytes() const {
  size_t bytes = heap_.capacity() +
                 path_of_.capacity() * sizeof(uint32_t) +
                 idx_in_path_.capacity() * sizeof(uint32_t) +
                 attrs_.capacity() * sizeof(AttrRow) +
                 attr_begin_.capacity() * sizeof(uint32_t);
  for (const PathInfo& p : paths_) {
    bytes += sizeof(PathInfo) + p.rows.capacity() * sizeof(Row) +
             p.child_paths.capacity() * sizeof(uint32_t);
  }
  for (const auto& [value, node] : id_value_index_) {
    bytes += value.size() + sizeof(node) + 16;
  }
  return bytes;
}

}  // namespace xmark::store
