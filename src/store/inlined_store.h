#ifndef XMARK_STORE_INLINED_STORE_H_
#define XMARK_STORE_INLINED_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/storage.h"
#include "store/load_options.h"
#include "util/status.h"
#include "util/string_util.h"
#include "xml/dtd.h"
#include "xml/names.h"

namespace xmark::store {

/// DTD-derived inlined relational mapping — the architecture of the
/// paper's System C: "reads in a DTD and lets the user generate an
/// optimized database schema" (in the spirit of Shanmugasundaram et al.).
///
/// Per-tag row groups store structure in dense arrays (O(1) navigation —
/// the payoff of schema-aware physical design), and for every
/// (parent, child) pair the DTD declares as at-most-once, a direct child
/// slot array resolves tag-specific child steps in constant time. This is
/// what makes C the best relational executor on the ordered-access queries
/// Q2/Q3 in Table 3. Text of PCDATA-only elements is inlined next to the
/// element row. No tag or path indexes exist: descendant steps scan the
/// dense preorder arrays across the subtree interval (fast, but still
/// proportional to subtree size), which is why C trails D — whose
/// structural summary answers Q6/Q7 without touching the document — there.
class InlinedStore : public query::StorageAdapter {
 public:
  /// Loads the document; `dtd_text` supplies the schema to derive the
  /// mapping from (defaults to the bundled auction DTD). `options.threads
  /// == 1` is the original serial path; more threads run the parallel
  /// pipeline with byte-identical results.
  static StatusOr<std::unique_ptr<InlinedStore>> Load(
      std::string_view xml, std::string_view dtd_text = xml::kAuctionDtd,
      const LoadOptions& options = {});

  /// Canonical serialization of every internal structure, for the
  /// bulkload determinism test.
  void DumpState(std::string* out) const override;

  std::string_view mapping_name() const override {
    return "DTD-inlined tables";
  }
  const xml::NameTable& names() const override { return names_; }
  query::NodeHandle Root() const override { return root_; }
  bool IsElement(query::NodeHandle n) const override {
    return tag_[n] != xml::kInvalidName;
  }
  xml::NameId NameOf(query::NodeHandle n) const override { return tag_[n]; }
  query::NodeHandle Parent(query::NodeHandle n) const override {
    return parent_[n];
  }
  query::NodeHandle FirstChild(query::NodeHandle n) const override {
    return first_child_[n];
  }
  query::NodeHandle NextSibling(query::NodeHandle n) const override {
    return next_sibling_[n];
  }
  std::string_view TextView(query::NodeHandle n) const override;
  void AppendStringValue(query::NodeHandle n, std::string* out) const override;
  std::optional<std::string_view> AttributeView(
      query::NodeHandle n, std::string_view name) const override;
  std::vector<std::pair<std::string, std::string>> Attributes(
      query::NodeHandle n) const override;
  // Dense-array sibling walk: no virtual dispatch per child.
  void OpenChildCursor(query::NodeHandle parent, query::ChildFilter filter,
                       xml::NameId tag,
                       query::ChildCursor* cur) const override;
  size_t AdvanceChildCursor(query::ChildCursor* cur, query::NodeHandle* out,
                            size_t cap) const override;
  // Ids are preorder, so the descendant set is one dense pass over the
  // tag_ array across the subtree interval (computed at open from the
  // sibling/parent links, O(depth)).
  void OpenDescendantCursor(query::NodeHandle base, query::ChildFilter filter,
                            xml::NameId tag,
                            query::DescendantCursor* cur) const override;
  size_t AdvanceDescendantCursor(query::DescendantCursor* cur,
                                 query::NodeHandle* out,
                                 size_t cap) const override;
  // The cursor walks the dense id interval [u0, u1): clamped copies
  // partition cleanly for morsel-parallel scans.
  bool DescendantCursorPartitionable(
      const query::DescendantCursor& /*cur*/) const override {
    return true;
  }
  bool Before(query::NodeHandle a, query::NodeHandle b) const override {
    return a < b;
  }

  // Raw preorder views for compiled pipelines: the dense tag_ array IS the
  // id->tag projection; subtree ends reuse OpenDescendantCursor's
  // ancestor-walk computation.
  const xml::NameId* RawTagArray() const override { return tag_.data(); }
  size_t RawNodeCount() const override { return tag_.size(); }
  query::NodeHandle RawSubtreeEnd(query::NodeHandle n) const override;

  bool SupportsIdLookup() const override { return true; }
  query::NodeHandle NodeById(std::string_view id) const override;

  std::optional<std::vector<query::NodeHandle>> ChildrenByTag(
      query::NodeHandle n, xml::NameId tag) const override;

  query::StorageCapabilities Capabilities() const override {
    query::StorageCapabilities caps;
    caps.id_lookup = true;
    caps.children_by_tag = true;  // DTD-inlined child slots
    caps.interval_descendants = true;  // dense preorder tag_ array
    return caps;
  }

  size_t StorageBytes() const override;
  size_t CatalogEntries() const override;

  /// Number of (parent, child) pairs inlined as direct slots.
  size_t InlinedSlots() const { return slots_.size(); }

 private:
  InlinedStore() = default;

  static StatusOr<std::unique_ptr<InlinedStore>> LoadParallel(
      std::string_view xml, std::string_view dtd_text, unsigned threads);

  static uint64_t SlotKey(xml::NameId parent_tag, xml::NameId child_tag) {
    return (static_cast<uint64_t>(parent_tag) << 32) | child_tag;
  }

  // Dense structure arrays indexed by preorder id.
  std::vector<query::NodeHandle> parent_;
  std::vector<query::NodeHandle> first_child_;
  std::vector<query::NodeHandle> next_sibling_;
  std::vector<xml::NameId> tag_;            // kInvalidName for text nodes
  std::vector<uint32_t> row_of_;            // id -> dense row within tag group
  std::vector<std::pair<uint32_t, uint32_t>> text_span_;  // into heap_
  std::string heap_;

  // Direct child slots for DTD at-most-once (parent, child) pairs:
  // slots_[key][row_of(parent)] = child id or kInvalidHandle.
  std::unordered_map<uint64_t, std::vector<query::NodeHandle>> slots_;
  std::unordered_map<xml::NameId, uint32_t> tag_cardinality_;

  struct AttrRow {
    uint32_t owner;
    xml::NameId name;
    uint32_t value_begin;
    uint32_t value_len;
  };
  std::vector<AttrRow> attrs_;  // sorted by owner
  // id -> first attribute row (attrs_.size() when none): O(1) owner-row
  // location instead of a binary search per probe.
  std::vector<uint32_t> attr_begin_;
  // Transparent hash/eq: NodeById probes with the caller's string_view.
  std::unordered_map<std::string, query::NodeHandle,
                     TransparentStringHash, std::equal_to<>>
      id_index_;
  xml::NameTable names_;
  query::NodeHandle root_ = query::kInvalidHandle;
  size_t dtd_elements_ = 0;
};

}  // namespace xmark::store

#endif  // XMARK_STORE_INLINED_STORE_H_
