#ifndef XMARK_STORE_EDGE_STORE_H_
#define XMARK_STORE_EDGE_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "query/storage.h"
#include "store/load_options.h"
#include "util/status.h"
#include "xml/names.h"

namespace xmark::store {

/// Monolithic relational mapping — the architecture of the paper's System
/// A: "basically stores all XML data on one big heap, i.e., only a single
/// relation". The document is shredded into one edge relation
///
///   edge(id, parent, ord, tag, text)     clustered on (parent, ord)
///
/// plus an attribute relation attr(owner, name, value) and a value index
/// on the ID attribute. Navigation is binary search over the clustered
/// relation with string materialization from a heap — every child step
/// costs a B-tree-style probe, which is exactly why this mapping pays more
/// per data access than the schema-aware mappings (Table 2's execution
/// percentages). The tiny catalog (two relations) is why it compiles
/// queries cheaply.
class EdgeStore : public query::StorageAdapter {
 public:
  /// Bulkloads the document. `options.threads == 1` is the original serial
  /// shred-then-sort path; more threads run the parallel pipeline with
  /// byte-identical results (see LoadOptions).
  static StatusOr<std::unique_ptr<EdgeStore>> Load(
      std::string_view xml, const LoadOptions& options = {});

  /// Canonical serialization of every internal structure, for the
  /// bulkload determinism test (threads=1 vs threads=N byte equality).
  void DumpState(std::string* out) const override;

  std::string_view mapping_name() const override { return "edge table"; }
  const xml::NameTable& names() const override { return names_; }
  query::NodeHandle Root() const override { return root_; }
  bool IsElement(query::NodeHandle n) const override;
  xml::NameId NameOf(query::NodeHandle n) const override;
  query::NodeHandle Parent(query::NodeHandle n) const override;
  query::NodeHandle FirstChild(query::NodeHandle n) const override;
  query::NodeHandle NextSibling(query::NodeHandle n) const override;
  std::string_view TextView(query::NodeHandle n) const override;
  void AppendStringValue(query::NodeHandle n, std::string* out) const override;
  std::optional<std::string_view> AttributeView(
      query::NodeHandle n, std::string_view name) const override;
  std::vector<std::pair<std::string, std::string>> Attributes(
      query::NodeHandle n) const override;
  // One binary search over the (parent, ord)-clustered relation, then a
  // linear row scan — the cursor never touches the PK index.
  void OpenChildCursor(query::NodeHandle parent, query::ChildFilter filter,
                       xml::NameId tag,
                       query::ChildCursor* cur) const override;
  size_t AdvanceChildCursor(query::ChildCursor* cur, query::NodeHandle* out,
                            size_t cap) const override;
  // Ids are preorder, so the subtree of n is the id interval
  // (n, subtree_end_[n]): the descendant scan is one pass over that
  // interval instead of a DFS of per-element child probes.
  void OpenDescendantCursor(query::NodeHandle base, query::ChildFilter filter,
                            xml::NameId tag,
                            query::DescendantCursor* cur) const override;
  size_t AdvanceDescendantCursor(query::DescendantCursor* cur,
                                 query::NodeHandle* out,
                                 size_t cap) const override;
  // The cursor walks the dense id interval [u0, u1): clamped copies
  // partition cleanly for morsel-parallel scans.
  bool DescendantCursorPartitionable(
      const query::DescendantCursor& /*cur*/) const override {
    return true;
  }
  bool Before(query::NodeHandle a, query::NodeHandle b) const override {
    return a < b;
  }

  // Raw preorder views for compiled pipelines: ids are preorder, so the
  // dense id->tag projection (built once at bulkload) plus subtree_end_
  // give the fused drains a branch-free interval scan with zero virtual
  // calls.
  const xml::NameId* RawTagArray() const override { return tag_by_id_.data(); }
  size_t RawNodeCount() const override { return tag_by_id_.size(); }
  query::NodeHandle RawSubtreeEnd(query::NodeHandle n) const override {
    return subtree_end_[n];
  }

  bool SupportsIdLookup() const override { return true; }
  query::NodeHandle NodeById(std::string_view id) const override;

  query::StorageCapabilities Capabilities() const override {
    query::StorageCapabilities caps;
    caps.id_lookup = true;
    caps.interval_descendants = true;  // subtree_end_ id intervals
    return caps;
  }

  size_t StorageBytes() const override;
  size_t CatalogEntries() const override { return 2; }  // edge + attr

  size_t num_rows() const { return rows_.size(); }

 private:
  struct EdgeRow {
    uint32_t id;
    uint32_t parent;      // kNoParent for the root
    uint32_t ord;         // position among siblings
    xml::NameId tag;      // kInvalidName for text rows
    uint32_t text_begin;  // into heap_
    uint32_t text_len;
  };
  struct AttrRow {
    uint32_t owner;
    xml::NameId name;
    uint32_t value_begin;
    uint32_t value_len;
  };

  static constexpr uint32_t kNoParent = 0xffffffffu;

  EdgeStore() = default;

  // Parallel pipeline: chunked parse, prefix-summed heap/table fills,
  // partitioned cluster sort, concurrent index builds.
  static StatusOr<std::unique_ptr<EdgeStore>> LoadParallel(
      std::string_view xml, unsigned threads);

  const EdgeRow& RowOf(query::NodeHandle n) const {
    return rows_[pos_of_id_[n]];
  }
  std::string_view HeapString(uint32_t begin, uint32_t len) const {
    return std::string_view(heap_).substr(begin, len);
  }

  std::vector<EdgeRow> rows_;       // sorted by (parent, ord)
  std::vector<uint32_t> pos_of_id_; // id -> row position (PK index)
  // id -> position of its first child row in the clustered relation
  // (rows_.size() for leaves). Gives cursors O(1) positioning; built in
  // one pass over the sorted relation during bulkload.
  std::vector<uint32_t> child_begin_;
  // id -> one past the last preorder id in its subtree; descendant scans
  // walk the id interval (n, subtree_end_[n]) directly.
  std::vector<uint32_t> subtree_end_;
  // id -> tag (kInvalidName for text rows): the dense preorder projection
  // compiled pipelines scan without going through RowOf's PK indirection.
  std::vector<xml::NameId> tag_by_id_;
  std::vector<AttrRow> attrs_;      // sorted by owner
  // id -> position of its first attribute row (attrs_.size() when none):
  // O(1) owner-row location instead of a binary search per probe.
  std::vector<uint32_t> attr_begin_;
  std::string heap_;
  std::vector<std::pair<std::string, uint32_t>> id_value_index_;  // sorted
  xml::NameTable names_;
  query::NodeHandle root_ = query::kInvalidHandle;
};

}  // namespace xmark::store

#endif  // XMARK_STORE_EDGE_STORE_H_
