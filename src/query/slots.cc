#include <string>
#include <unordered_map>
#include <vector>

#include "query/ast.h"

namespace xmark::query {
namespace {

class SlotResolver {
 public:
  explicit SlotResolver(std::vector<std::string>* names) : names_(names) {}

  int SlotOf(const std::string& name) {
    const auto it = slots_.find(name);
    if (it != slots_.end()) return it->second;
    const int slot = static_cast<int>(slots_.size());
    slots_.emplace(name, slot);
    if (names_ != nullptr) names_->push_back(name);
    return slot;
  }

  void Visit(AstNode& node) {
    if (node.kind == AstKind::kVarRef) {
      node.var_slot = SlotOf(node.str_value);
    }
    if (node.start) Visit(*node.start);
    for (Step& s : node.steps) {
      for (AstPtr& p : s.predicates) Visit(*p);
    }
    for (ForLetClause& c : node.clauses) {
      c.var_slot = SlotOf(c.var);
      if (c.expr) Visit(*c.expr);
    }
    if (node.where) Visit(*node.where);
    for (OrderSpec& o : node.order_by) Visit(*o.key);
    if (node.ret) Visit(*node.ret);
    for (AstPtr& a : node.args) Visit(*a);
    for (AttrConstructor& attr : node.attrs) {
      for (AttrPart& part : attr.parts) {
        if (part.expr) Visit(*part.expr);
      }
    }
    for (AstPtr& c : node.content) Visit(*c);
  }

  size_t slot_count() const { return slots_.size(); }

 private:
  std::unordered_map<std::string, int> slots_;
  std::vector<std::string>* names_;
};

}  // namespace

void ResolveVariableSlots(ParsedQuery& query) {
  query.var_names.clear();
  SlotResolver resolver(&query.var_names);
  for (FunctionDecl& f : query.functions) {
    f.param_slots.clear();
    for (const std::string& p : f.params) {
      f.param_slots.push_back(resolver.SlotOf(p));
    }
    if (f.body) resolver.Visit(*f.body);
  }
  if (query.body) resolver.Visit(*query.body);
  query.slots_resolved = true;
}

int ResolveVariableSlots(AstNode& root) {
  SlotResolver resolver(nullptr);
  resolver.Visit(root);
  return static_cast<int>(resolver.slot_count());
}

}  // namespace xmark::query
