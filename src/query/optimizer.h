// Optimizer layer: AST -> QueryPlan, once per run.
//
// Layer contract: this is the only place that READS StorageCapabilities
// and the EvaluatorOptions toggles to make choices — access-path
// selection, join decorrelation, band-shape recognition, invariant-path
// cacheability, constructor-template lowering. Everything it emits is an
// immutable annotation in the QueryPlan; nothing here touches documents,
// evaluates expressions or allocates executor state (BuildPlan is pure
// analysis and must stay cheap enough to run per query). The legacy
// interpreter (use_planner=false) reuses the Compute*/Analyze* helpers
// per node at runtime, which is why they are exported rather than hidden
// behind BuildPlan — keep them deterministic and side-effect-free so both
// modes decide identically.

#ifndef XMARK_QUERY_OPTIMIZER_H_
#define XMARK_QUERY_OPTIMIZER_H_

#include <functional>
#include <set>
#include <string>

#include "query/ast.h"
#include "query/plan.h"
#include "query/storage.h"

namespace xmark::query {

// ---------------------------------------------------------------------------
// Static analysis (shared by the optimizer and the legacy interpreter path)
// ---------------------------------------------------------------------------

/// Invokes `fn` on every direct child expression of `node`.
void VisitChildren(const AstNode& node,
                   const std::function<void(const AstNode&)>& fn);

/// Free variable names of an expression (respecting FLWOR/quantifier
/// scoping).
std::set<std::string> FreeVars(const AstNode& node);

/// True when evaluation depends on the dynamic focus (context item,
/// position() or last()), which makes memoization unsound.
bool DependsOnFocus(const AstNode& node);

/// document()/doc() call recognition.
bool IsDocumentCall(const AstNode& node);

/// collection()/fn:collection() call recognition (corpus-wide scan entry).
bool IsCollectionCall(const AstNode& node);

/// Either document entry point: a path starting here is rooted, so every
/// rooted-path optimization (invariant caching, path-index prefixes,
/// pipeline fusion) applies to doc() and collection() scans alike.
bool IsRootedEntryCall(const AstNode& node);

/// Document scope a query statically binds to, extracted from its entry
/// calls (doc("id")/document("id") string-literal URIs and collection()).
struct QueryScope {
  enum class Kind {
    kDefault,     // no entry call, dynamic URI, or absolute path only
    kDocument,    // every entry call names the same single document
    kCollection,  // collection(): fan out over the whole corpus
  };
  Kind kind = Kind::kDefault;
  std::string doc_uri;  // set for kDocument

  /// Plan-cache key component ("" / "doc:<uri>" / "collection").
  std::string CacheKey() const;
};

/// Walks the whole module (body + user functions). Fails with
/// kInvalidQuery "[multi-document-scope]" when entry calls disagree (two
/// distinct literal URIs, or doc() mixed with collection()) — cross-
/// document joins are not supported; a query addresses one document or
/// the uniform collection.
StatusOr<QueryScope> ExtractQueryScope(const ParsedQuery& query);

/// Rooted, variable-free, focus-free path: safe to memoize across loop
/// iterations.
bool IsCacheableInvariant(const AstNode& node);

/// `a <op> b` == `b <SwapComparison(op)> a`.
BinaryOp SwapComparison(BinaryOp op);

// ---------------------------------------------------------------------------
// Plan construction
// ---------------------------------------------------------------------------

/// Access-path choice for one step, from options x store capabilities x
/// static predicate shape.
StepPlan ComputeStepPlan(const Step& step, const EvaluatorOptions& options,
                         const StorageCapabilities& caps);

/// Plan for one kPath node (cacheability, path-index prefix, step access).
PathPlan ComputePathPlan(const AstNode& path, const EvaluatorOptions& options,
                         const StorageCapabilities& caps);

/// Join analysis for one FLWOR: detects the decorrelatable equi-join shape
/// and picks the strategy allowed by `options`. Also flags the band
/// comparison shape (strategy selection for bands happens at the enclosing
/// `let`, see AnalyzeBandLet).
void AnalyzeFlworJoin(const AstNode& flwor, const EvaluatorOptions& options,
                      FlworPlan* out);

/// True when `flwor` matches the band shape
///   for $v in <invariant> where <outer> OP <numeric inner($v)> return $v
/// (OP a non-equality comparison). Fills `out` with the normalized plan
/// (outer side on the left of `op`).
bool AnalyzeBandShape(const AstNode& flwor, BandJoinPlan* out);

/// True when clause `clause_index` of `outer_flwor` is a `let` over a
/// band-shaped FLWOR whose variable is used only as count($var) within the
/// outer FLWOR. Fills `out` on success.
bool AnalyzeBandLet(const AstNode& outer_flwor, size_t clause_index,
                    BandJoinPlan* out);

/// Compiles one kElementConstructor subtree into a ConstructPlan template:
/// the static element shell (nested constructors folded in), constant
/// attributes and constant text segments resolved at plan time, dynamic
/// holes recorded as expression pointers. Pure structure analysis — no
/// options or capabilities involved; gating on arena_construction happens
/// at registration (LowerNode) and at use (EvalConstructor).
ConstructPlan LowerConstructor(const AstNode& ctor);

/// Lowers a parsed query against one store + option set. Fills path plans,
/// FLWOR strategies, band-join lets and constructor templates into the
/// annotation set (a QueryPlan's local annotations, or a standalone
/// PlanAnnotations destined for the plan cache).
void BuildPlan(const ParsedQuery& query, const StorageAdapter& store,
               const EvaluatorOptions& options, PlanAnnotations* plan);

/// BuildPlan for a bare expression (tests, RunExpr).
void BuildExprPlan(const AstNode& expr, const StorageAdapter& store,
                   const EvaluatorOptions& options, PlanAnnotations* plan);

}  // namespace xmark::query

#endif  // XMARK_QUERY_OPTIMIZER_H_
