#ifndef XMARK_QUERY_LEXER_H_
#define XMARK_QUERY_LEXER_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace xmark::query {

enum class TokenKind {
  kEof,
  kIdent,    // name (may contain ':', '-', '.')
  kVar,      // $name (text excludes '$')
  kString,   // quoted literal, text is decoded
  kNumber,
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kSlash,
  kSlashSlash,
  kAt,
  kStar,
  kPlus,
  kMinus,
  kDot,
  kDotDot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLtLt,   // <<
  kGtGt,   // >>
  kAssign, // :=
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;     // identifier/string/number spelling
  double number = 0.0;  // for kNumber
  size_t begin = 0;     // offset of the first character in the source
  size_t end = 0;       // one past the last character
};

/// Hand-written tokenizer for the XQuery subset. The parser can read and
/// reset the cursor (position()/SetPosition()) — this is how direct element
/// constructors, which are not token-structured, are handled.
class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  /// Scans the next token starting at the cursor. kParseError on bad input.
  StatusOr<Token> Next();

  /// Raw source access for the constructor sub-parser.
  std::string_view input() const { return input_; }
  size_t position() const { return pos_; }
  void SetPosition(size_t pos) { pos_ = pos; }

  /// Skips whitespace and (: comments :) without consuming a token.
  void SkipTrivia();

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_LEXER_H_
