// Shared prepared-query cache for concurrent serving.
//
// A compiled query is (parsed AST, optimizer annotations) — both immutable
// after compilation (the AST's only mutable state, the per-Step name
// cache, is atomic and keyed by store uid). The cache shares them across
// sessions and threads: the key is (query text, store uid, options
// fingerprint), so an entry can only ever be executed against the exact
// store + option set it was compiled for, which is what lets
// Evaluator::Run adopt the annotations without revalidation.

#ifndef XMARK_QUERY_PLAN_CACHE_H_
#define XMARK_QUERY_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "query/ast.h"
#include "query/plan.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace xmark::query {

/// One cached compilation, shared immutably by every execution that hits
/// it. `annotations` carries the optimizer's plan for the (store uid,
/// options fingerprint) the entry was keyed under; `catalog_probes` /
/// `name_tests` preserve the compilation-cost statistics the benches
/// report (Table 2).
struct CachedQuery {
  ParsedQuery parsed;
  std::shared_ptr<const PlanAnnotations> annotations;
  size_t catalog_probes = 0;
  size_t name_tests = 0;
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Sharded (query text, store uid, options fingerprint) -> CachedQuery
/// map. Lookups take one shard mutex briefly; compilation of a missing
/// entry runs under the same shard lock, so concurrent first requests for
/// one query compile it once (requests hashing to other shards proceed
/// unblocked). Failed compilations are not cached — every caller sees the
/// error, and a later retry recompiles.
class PlanCache {
 public:
  using CompileFn = std::function<StatusOr<CachedQuery>()>;

  /// Returns the cached entry for the key, compiling it via `compile`
  /// under the shard lock on miss. `doc_scope` is the document-scope key
  /// component (QueryScope::CacheKey(): "" for the default document,
  /// "doc:<uri>", or "collection") — per-document entries of a collection
  /// fan-out and single-document entries never collide even when they
  /// share a store uid.
  StatusOr<std::shared_ptr<const CachedQuery>> GetOrCompile(
      std::string_view query_text, uint64_t store_uid,
      uint64_t options_fingerprint, std::string_view doc_scope,
      const CompileFn& compile);

  /// Hit/miss counters since construction (monotone; approximate ordering
  /// under concurrency, exact totals).
  PlanCacheStats stats() const {
    return {hits_.load(std::memory_order_relaxed),
            misses_.load(std::memory_order_relaxed)};
  }

  /// Number of cached entries (test hook; takes every shard lock).
  size_t size() const;

 private:
  static constexpr size_t kShards = 8;
  struct Shard {
    mutable util::Mutex mu;
    std::unordered_map<std::string, std::shared_ptr<const CachedQuery>>
        entries GUARDED_BY(mu);
  };

  Shard shards_[kShards];
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_PLAN_CACHE_H_
