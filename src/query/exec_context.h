#ifndef XMARK_QUERY_EXEC_CONTEXT_H_
#define XMARK_QUERY_EXEC_CONTEXT_H_

// Per-run resource governance for the serving layer.
//
// An ExecContext is created per Execute from RunOptions (deadline, memory
// budget, step budget) and checked *cooperatively*: physical operators and
// the evaluator call Check() at batch boundaries (never per item), so a
// governed run stops within one batch of the violation while an ungoverned
// run (null context) pays a single pointer test. Memory is charged where
// it is allocated — NodeArena blocks and Sequence heap growth in
// query/value.cc — through a thread-local budget pointer installed for the
// duration of the run (and inside every morsel worker), because allocation
// sites cannot return a Status; the overrun surfaces as kResourceExhausted
// at the next cooperative check.
//
// Violations are sticky: the first failure fixes the context's error, every
// later Check() on any thread returns the same Status, which is what stops
// sibling morsel workers deterministically.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "util/status.h"

namespace xmark::query {

/// Per-run limits. Zero means "unlimited" for every field, making the
/// default RunOptions a no-op: Engine/EngineSession skip context creation
/// entirely and execution is byte- and instruction-identical to PR 7.
struct RunOptions {
  /// Wall-clock deadline for one Execute, measured from context creation.
  int64_t deadline_ms = 0;
  /// Bytes of result memory (NodeArena blocks, interned text, Sequence
  /// heap growth) one run may allocate.
  size_t max_result_bytes = 0;
  /// Cooperative evaluation steps (one per Check()) one run may spend —
  /// a deterministic work limit, unlike the wall-clock deadline.
  int64_t max_eval_steps = 0;

  bool engaged() const {
    return deadline_ms > 0 || max_result_bytes > 0 || max_eval_steps > 0;
  }
};

/// Result-memory budget shared by every thread of one run. Charging never
/// fails (allocation sites cannot unwind); an overrun raises the exceeded
/// flag, reported by the next ExecContext::Check().
class MemoryBudget {
 public:
  MemoryBudget() = default;
  explicit MemoryBudget(size_t limit_bytes) : limit_(limit_bytes) {}

  void Charge(size_t bytes) {
    if (limit_ == 0) return;  // unlimited
    const size_t now =
        used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (now > limit_) exceeded_.store(true, std::memory_order_relaxed);
  }
  bool exceeded() const { return exceeded_.load(std::memory_order_relaxed); }
  size_t used() const { return used_.load(std::memory_order_relaxed); }
  size_t limit() const { return limit_; }

 private:
  size_t limit_ = 0;
  std::atomic<size_t> used_{0};
  std::atomic<bool> exceeded_{false};
};

class ExecContext {
 public:
  /// Ungoverned but cancellable context (all limits off).
  ExecContext() : ExecContext(RunOptions{}) {}
  explicit ExecContext(const RunOptions& options);

  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  /// Requests cooperative cancellation; thread-safe, sticky. The running
  /// query observes it at its next Check() and unwinds with kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Cooperative checkpoint, called at batch boundaries from any thread of
  /// the run. Counts one eval step; consults the cancel flag, the memory
  /// budget and the step budget every call, the clock every kCheckStride
  /// calls (and on the first, so an already-expired deadline fails
  /// immediately). Returns the sticky first violation ever after.
  Status Check();

  /// Check() variant for coarse checkpoints (one per document bulkload,
  /// not one per evaluated batch): consults the deadline clock on every
  /// call instead of every kCheckStride ticks — at millisecond-granular
  /// work a strided clock read would skip an expired deadline entirely.
  Status CheckCoarse();

  /// The budget charged by NodeArena / Sequence growth (see
  /// ScopedMemoryBudget) and by morsel workers' buffers.
  MemoryBudget* memory_budget() { return &budget_; }

  /// Checks performed so far (stats: EvalStats::governance_checks).
  int64_t checks() const { return ticks_.load(std::memory_order_relaxed); }

  const RunOptions& options() const { return options_; }

 private:
  enum class Violation : int {
    kNone = 0,
    kCancelled,
    kDeadline,
    kMemory,
    kSteps,
  };

  // Consults the deadline clock between strides.
  static constexpr uint64_t kCheckStride = 64;

  Status Fail(Violation v);
  Status ErrorFor(Violation v) const;

  RunOptions options_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  MemoryBudget budget_;
  std::atomic<uint64_t> ticks_{0};
  std::atomic<bool> cancelled_{false};
  // First violation, sticky; all threads converge on the same Status.
  std::atomic<int> violation_{static_cast<int>(Violation::kNone)};
};

/// RAII install of `budget` as this thread's allocation-charge target
/// (null = uninstall). Evaluator::Run installs the run's budget on the
/// driving thread; DrainMorsels installs it inside each pool worker.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(MemoryBudget* budget);
  ~ScopedMemoryBudget();

  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  MemoryBudget* prev_;
};

/// Charges `bytes` to the thread's installed budget; no-op without one.
/// Called from the value-layer allocation sites.
void ChargeThreadMemoryBudget(size_t bytes);

}  // namespace xmark::query

#endif  // XMARK_QUERY_EXEC_CONTEXT_H_
