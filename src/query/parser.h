#ifndef XMARK_QUERY_PARSER_H_
#define XMARK_QUERY_PARSER_H_

#include <string_view>

#include "query/ast.h"
#include "query/lexer.h"
#include "util/status.h"

namespace xmark::query {

/// Stable machine-readable categories for query rejections. Every parse
/// error Status carries `[slug] line:col: message (near '...')` where slug
/// is ParseErrorCodeSlug(code); slugs are part of the serving API and must
/// never be renamed (clients and tests dispatch on them).
enum class ParseErrorCode {
  kUnexpectedToken,          // token stream diverges from the grammar
  kTrailingInput,            // query parsed but input continues
  kNestingTooDeep,           // expression depth exceeds kMaxExprDepth
  kBadConstructor,           // malformed direct element constructor head
  kBadConstructorAttr,       // malformed constructor attribute
  kUnterminatedConstructor,  // input ends inside a constructor
  kMismatchedEndTag,         // </b> closing <a>
  kUnescapedBrace,           // bare '}' in constructor content
  kLexError,                 // tokenizer rejection (bad char, bad literal)
  kUnknown,                  // status not produced by this parser
};

/// The stable slug embedded in error messages ("unexpected-token", ...).
std::string_view ParseErrorCodeSlug(ParseErrorCode code);

/// Recovers the code from a parse-error Status (kUnknown when the message
/// does not carry a recognized "[slug]" prefix).
ParseErrorCode ParseErrorCodeOf(const Status& status);

/// Recursive-descent parser for the XQuery subset used by the twenty XMark
/// queries: FLWOR, quantifiers, path expressions with predicates, direct
/// element constructors with embedded expressions, prolog function
/// declarations, and the operator grammar (or/and/comparisons incl. `<<`
/// node order, additive, multiplicative).
class Parser {
 public:
  explicit Parser(std::string_view input);

  /// Parses a complete query module (prolog + body).
  StatusOr<ParsedQuery> ParseQuery();

  /// Parses a standalone expression (tests / interactive use).
  StatusOr<AstPtr> ParseExpression();

 private:
  // Token plumbing.
  Status Advance();
  bool CurIs(TokenKind kind) const { return cur_.kind == kind; }
  bool CurIsIdent(std::string_view text) const {
    return cur_.kind == TokenKind::kIdent && cur_.text == text;
  }
  Status Expect(TokenKind kind, const char* what);
  StatusOr<Token> PeekNext();
  // Coded rejection anchored at the current token (Fail) or at a raw input
  // offset (FailAt, used by the character-level constructor sub-parser).
  // Both render "[slug] line:col: message (near '<snippet>')" as a
  // kInvalidQuery status.
  Status Fail(ParseErrorCode code, const std::string& message) const;
  Status FailAt(ParseErrorCode code, size_t offset,
                const std::string& message) const;

  // Grammar productions.
  StatusOr<AstPtr> ParseExpr();         // Expr ::= ExprSingle ("," ...)*
  StatusOr<AstPtr> ParseExprSingle();
  StatusOr<AstPtr> ParseFlwor();
  StatusOr<AstPtr> ParseQuantified();
  StatusOr<AstPtr> ParseIf();
  StatusOr<AstPtr> ParseOr();
  StatusOr<AstPtr> ParseAnd();
  StatusOr<AstPtr> ParseComparison();
  StatusOr<AstPtr> ParseAdditive();
  StatusOr<AstPtr> ParseMultiplicative();
  StatusOr<AstPtr> ParseUnary();
  StatusOr<AstPtr> ParsePath();
  StatusOr<AstPtr> ParsePrimary();
  Status ParseStep(Axis axis, std::vector<Step>* steps);
  Status ParsePredicates(std::vector<AstPtr>* predicates);

  // Direct element constructor; scans raw source starting at `pos` (which
  // points at '<'), returns the node and sets *resume to the offset just
  // past the constructor.
  StatusOr<AstPtr> ParseConstructorAt(size_t pos, size_t* resume);
  // Parses "{ Expr }" raw-embedded at `pos` (pointing at '{').
  StatusOr<AstPtr> ParseEmbeddedExpr(size_t pos, size_t* resume);

  // RAII guard bounding expression-nesting recursion. Every recursive
  // production passes through ParseExprSingle, so one counter there
  // bounds the whole grammar; without it a hostile query of 64K open
  // parens overflows the stack (found by fuzz/fuzz_query_parser.cc —
  // queries are untrusted serving input, a crash is a DoS).
  class DepthGuard {
   public:
    explicit DepthGuard(Parser* parser) : parser_(parser) {
      ++parser_->depth_;
    }
    ~DepthGuard() { --parser_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser* parser_;
  };

  // Deep enough for any legitimate query (Q1-Q20 nest < 40 levels, and a
  // level costs ~10 recursive productions), shallow enough that the worst
  // case stays far inside an 8 MiB thread stack. Bounds AST depth too, so
  // the recursive AstNode destructor inherits the same guarantee.
  static constexpr int kMaxExprDepth = 512;

  Lexer lexer_;
  Token cur_;
  int depth_ = 0;
};

/// Convenience wrapper: parse a whole query text.
StatusOr<ParsedQuery> ParseQueryText(std::string_view text);

}  // namespace xmark::query

#endif  // XMARK_QUERY_PARSER_H_
