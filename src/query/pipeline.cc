#include "query/pipeline.h"

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "query/optimizer.h"

namespace xmark::query {
namespace {

// [@id = "literal"] shape of a step's first predicate. Mirrors the
// optimizer's file-local IdLiteralOf so the pass recognizes Q1's lookup
// step independently of whether the ID index resolves it.
const AstNode* StepIdLiteral(const Step& step) {
  if (step.predicates.empty()) return nullptr;
  const AstNode& p = *step.predicates.front();
  if (p.kind != AstKind::kBinary || p.op != BinaryOp::kEq) return nullptr;
  auto is_id_path = [](const AstNode& n) {
    return n.kind == AstKind::kPath && !n.absolute && !n.start &&
           n.steps.size() == 1 && n.steps[0].axis == Axis::kAttribute &&
           n.steps[0].name == "id";
  };
  if (is_id_path(*p.args[0]) && p.args[1]->kind == AstKind::kStringLiteral) {
    return p.args[1].get();
  }
  if (is_id_path(*p.args[1]) && p.args[0]->kind == AstKind::kStringLiteral) {
    return p.args[0].get();
  }
  return nullptr;
}

// $v, or $v followed by predicate-free child name steps with an optional
// trailing text() step — the only var-rooted shape the fused filter and
// tail walkers reproduce exactly (nested per-step walk order equals the
// evaluator's per-step batch order for a single root).
bool MatchVarPath(const AstNode& n, const std::string& var,
                  std::vector<std::string>* names, bool* text_tail) {
  names->clear();
  *text_tail = false;
  if (n.kind == AstKind::kVarRef) return n.str_value == var;
  if (n.kind != AstKind::kPath || n.absolute || n.start == nullptr) {
    return false;
  }
  if (n.start->kind != AstKind::kVarRef || n.start->str_value != var) {
    return false;
  }
  for (size_t i = 0; i < n.steps.size(); ++i) {
    const Step& s = n.steps[i];
    if (s.axis != Axis::kChild || !s.predicates.empty()) return false;
    if (s.test == Step::Test::kName) {
      names->push_back(s.name);
    } else if (s.test == Step::Test::kText && i + 1 == n.steps.size()) {
      *text_tail = true;
    } else {
      return false;
    }
  }
  return true;
}

struct DomainShape {
  CompiledPipeline::Scan scan = CompiledPipeline::Scan::kPrefixOnly;
  std::vector<std::string> prefix;
  std::string scan_name;
  bool id_filter = false;
  std::string id_value;
};

// Rooted path of predicate-free child name steps, with the last step
// optionally a descendant name step (Q14) or a child step carrying the
// [@id = "lit"] predicate (Q1). The first step always stays in the prefix
// family: rooted paths test the document root itself on step 0, which the
// prefix resolver reproduces — a descendant or predicated step 0 would
// not, so those shapes are refused.
bool MatchDomain(const AstNode& n, DomainShape* out) {
  if (n.kind != AstKind::kPath) return false;
  const bool rooted =
      n.absolute || (n.start != nullptr && IsRootedEntryCall(*n.start));
  if (!rooted || n.steps.empty()) return false;
  const size_t last = n.steps.size() - 1;
  for (size_t i = 0; i < last; ++i) {
    const Step& s = n.steps[i];
    if (s.axis != Axis::kChild || s.test != Step::Test::kName ||
        !s.predicates.empty()) {
      return false;
    }
    out->prefix.push_back(s.name);
  }
  const Step& s = n.steps[last];
  if (s.test != Step::Test::kName) return false;
  if (s.axis == Axis::kDescendant) {
    if (!s.predicates.empty() || last == 0) return false;
    out->scan = CompiledPipeline::Scan::kDescendants;
    out->scan_name = s.name;
    return true;
  }
  if (s.axis != Axis::kChild) return false;
  if (s.predicates.empty()) {
    out->prefix.push_back(s.name);
    out->scan = CompiledPipeline::Scan::kPrefixOnly;
    return true;
  }
  // A predicated last step fuses only as the one-predicate id lookup, and
  // only below a non-empty prefix (step 0 predicates apply to the root
  // test, not to a child scan).
  if (s.predicates.size() != 1 || last == 0) return false;
  const AstNode* lit = StepIdLiteral(s);
  if (lit == nullptr) return false;
  out->scan = CompiledPipeline::Scan::kChildren;
  out->scan_name = s.name;
  out->id_filter = true;
  out->id_value = lit->str_value;
  return true;
}

// The evaluator strips a leading "fn:" before its UDF lookup, so a prolog
// function named e.g. "contains" shadows both spellings of the builtin.
bool ShadowedBuiltin(const std::set<std::string>& udfs,
                     std::string_view name) {
  if (name.substr(0, 3) == "fn:") name = name.substr(3);
  return udfs.count(std::string(name)) != 0;
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLiteral(const AstNode& n) {
  return n.kind == AstKind::kStringLiteral || n.kind == AstKind::kNumberLiteral;
}

// Where clause: absent, contains/starts-with($v-path, "lit"), or the
// existential literal compare <$v-path> OP <literal> (either operand
// order; normalized literal-right via SwapComparison, which preserves the
// evaluator's CompareItems outcome exactly).
bool MatchWhere(const AstNode* where, const std::string& var,
                const std::set<std::string>& udfs, CompiledPipeline* pipe,
                std::vector<std::string>* filter_names) {
  if (where == nullptr) {
    pipe->filter = CompiledPipeline::FilterKind::kNone;
    return true;
  }
  const AstNode& w = *where;
  if (w.kind == AstKind::kFunctionCall) {
    CompiledPipeline::FilterKind kind;
    if (w.str_value == "contains" || w.str_value == "fn:contains") {
      kind = CompiledPipeline::FilterKind::kContains;
    } else if (w.str_value == "starts-with" ||
               w.str_value == "fn:starts-with") {
      kind = CompiledPipeline::FilterKind::kStartsWith;
    } else {
      return false;
    }
    if (ShadowedBuiltin(udfs, w.str_value)) return false;
    if (w.args.size() != 2) return false;
    bool text_tail = false;
    if (!MatchVarPath(*w.args[0], var, filter_names, &text_tail)) return false;
    if (w.args[1]->kind != AstKind::kStringLiteral) return false;
    pipe->filter = kind;
    pipe->filter_path_text = text_tail;
    pipe->needle = w.args[1]->str_value;
    return true;
  }
  if (w.kind != AstKind::kBinary || !IsComparison(w.op)) return false;
  const AstNode* lhs = w.args[0].get();
  const AstNode* rhs = w.args[1].get();
  BinaryOp op = w.op;
  if (IsLiteral(*lhs) && !IsLiteral(*rhs)) {
    std::swap(lhs, rhs);
    op = SwapComparison(op);
  }
  if (!IsLiteral(*rhs)) return false;
  bool text_tail = false;
  if (!MatchVarPath(*lhs, var, filter_names, &text_tail)) return false;
  pipe->filter = CompiledPipeline::FilterKind::kCompare;
  pipe->filter_path_text = text_tail;
  pipe->cmp_op = op;
  pipe->cmp_numeric = rhs->kind == AstKind::kNumberLiteral;
  pipe->cmp_number = rhs->num_value;
  pipe->cmp_str = rhs->str_value;
  return true;
}

// Return clause: $v (emit the binding), a $v-rooted child path with an
// optional trailing text() (Q1/Q14 tails), or count($v//tag) (Q6).
bool MatchRet(const AstNode& ret, const std::string& var,
              const std::set<std::string>& udfs, CompiledPipeline* pipe,
              std::vector<std::string>* tail_names, std::string* count_name) {
  bool text_tail = false;
  if (MatchVarPath(ret, var, tail_names, &text_tail)) {
    if (tail_names->empty() && !text_tail) {
      pipe->emit = CompiledPipeline::Emit::kVar;
    } else {
      pipe->emit = CompiledPipeline::Emit::kTailNodes;
      pipe->tail_text = text_tail;
    }
    return true;
  }
  if (ret.kind == AstKind::kFunctionCall &&
      (ret.str_value == "count" || ret.str_value == "fn:count") &&
      !ShadowedBuiltin(udfs, ret.str_value) && ret.args.size() == 1) {
    const AstNode& a = *ret.args[0];
    if (a.kind != AstKind::kPath || a.absolute || a.start == nullptr) {
      return false;
    }
    if (a.start->kind != AstKind::kVarRef || a.start->str_value != var) {
      return false;
    }
    if (a.steps.size() != 1) return false;
    const Step& s = a.steps[0];
    if (s.axis != Axis::kDescendant || s.test != Step::Test::kName ||
        !s.predicates.empty()) {
      return false;
    }
    *count_name = s.name;
    pipe->emit = CompiledPipeline::Emit::kCount;
    return true;
  }
  return false;
}

void TryFuse(const AstNode& flwor, const std::set<std::string>& udfs,
             const StorageAdapter& store, const EvaluatorOptions& options,
             PlanAnnotations* plan) {
  if (flwor.clauses.size() != 1 || flwor.clauses[0].is_let ||
      flwor.clauses[0].expr == nullptr) {
    return;
  }
  if (!flwor.order_by.empty() || flwor.ret == nullptr) return;
  // Only the plain nested loop fuses: a hash-join strategy already beats
  // the pipeline, and a FLWOR registered as a band-join let must keep its
  // generic fallback semantics when the band index is invalid.
  const auto fit = plan->flwors.find(&flwor);
  if (fit == plan->flwors.end() ||
      fit->second.strategy != FlworPlan::Strategy::kNestedLoop) {
    return;
  }
  if (plan->band_lets.count(&flwor) != 0) return;

  const std::string& var = flwor.clauses[0].var;
  DomainShape dom;
  if (!MatchDomain(*flwor.clauses[0].expr, &dom)) return;

  CompiledPipeline pipe;
  std::vector<std::string> filter_names;
  std::vector<std::string> tail_names;
  std::string count_name;
  if (!MatchWhere(flwor.where.get(), var, udfs, &pipe, &filter_names)) return;
  if (!MatchRet(*flwor.ret, var, udfs, &pipe, &tail_names, &count_name)) {
    return;
  }

  // Every tag resolves against the store dictionary at plan time; a name
  // the document never saw keeps the generic path (which short-circuits
  // unknown tags to empty results anyway — fusing them buys nothing).
  const auto resolve = [&store](const std::string& name, xml::NameId* out) {
    *out = store.names().Lookup(name);
    return *out != xml::kInvalidName;
  };
  pipe.prefix.reserve(dom.prefix.size());
  for (const std::string& name : dom.prefix) {
    xml::NameId id = xml::kInvalidName;
    if (!resolve(name, &id)) return;
    pipe.prefix.push_back(id);
  }
  if (!dom.scan_name.empty() && !resolve(dom.scan_name, &pipe.scan_tag)) {
    return;
  }
  pipe.filter_path.reserve(filter_names.size());
  for (const std::string& name : filter_names) {
    xml::NameId id = xml::kInvalidName;
    if (!resolve(name, &id)) return;
    pipe.filter_path.push_back(id);
  }
  pipe.tail.reserve(tail_names.size());
  for (const std::string& name : tail_names) {
    xml::NameId id = xml::kInvalidName;
    if (!resolve(name, &id)) return;
    pipe.tail.push_back(id);
  }
  if (!count_name.empty() && !resolve(count_name, &pipe.count_tag)) return;

  pipe.flwor = &flwor;
  pipe.scan = dom.scan;
  pipe.id_filter = dom.id_filter;
  pipe.id_value = std::move(dom.id_value);
  // Mirrors ComputeStepPlan's id_literal condition: the probe replaces the
  // child scan only when both the toggle and the capability agree.
  pipe.id_lookup =
      dom.id_filter && options.use_id_index && plan->caps.id_lookup;
  pipe.dispatch = PipelineDispatch(pipe.filter, pipe.cmp_op, pipe.cmp_numeric,
                                   store.RawTagArray() != nullptr);
  pipe.stages = "scan";
  if (pipe.id_filter || pipe.filter == CompiledPipeline::FilterKind::kContains ||
      pipe.filter == CompiledPipeline::FilterKind::kStartsWith) {
    pipe.stages += "|filter";
  }
  if (pipe.filter == CompiledPipeline::FilterKind::kCompare) {
    pipe.stages += "|compare";
  }
  pipe.stages +=
      pipe.emit == CompiledPipeline::Emit::kCount ? "|count" : "|emit";
  pipe.pipeline_id = plan->pipelines.size();
  plan->pipelines.emplace(&flwor, std::move(pipe));
}

void Walk(const AstNode& node, const std::set<std::string>& udfs,
          const StorageAdapter& store, const EvaluatorOptions& options,
          PlanAnnotations* plan) {
  if (node.kind == AstKind::kFlwor) {
    TryFuse(node, udfs, store, options, plan);
  }
  VisitChildren(node, [&](const AstNode& child) {
    Walk(child, udfs, store, options, plan);
  });
}

}  // namespace

void FusePipelines(const ParsedQuery* query, const AstNode& root,
                   const StorageAdapter& store,
                   const EvaluatorOptions& options, PlanAnnotations* plan) {
  std::set<std::string> udfs;
  if (query != nullptr) {
    for (const FunctionDecl& f : query->functions) udfs.insert(f.name);
  }
  Walk(root, udfs, store, options, plan);
}

}  // namespace xmark::query
