#include "query/lexer.h"

#include <cctype>

#include "util/string_util.h"

namespace xmark::query {
namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

void Lexer::SkipTrivia() {
  while (pos_ < input_.size()) {
    const char c = input_[pos_];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
      continue;
    }
    // XQuery comments: (: ... :), nestable.
    if (c == '(' && pos_ + 1 < input_.size() && input_[pos_ + 1] == ':') {
      int depth = 1;
      pos_ += 2;
      while (pos_ < input_.size() && depth > 0) {
        if (input_.compare(pos_, 2, "(:") == 0) {
          ++depth;
          pos_ += 2;
        } else if (input_.compare(pos_, 2, ":)") == 0) {
          --depth;
          pos_ += 2;
        } else {
          ++pos_;
        }
      }
      continue;
    }
    break;
  }
}

StatusOr<Token> Lexer::Next() {
  SkipTrivia();
  Token tok;
  tok.begin = pos_;
  if (pos_ >= input_.size()) {
    tok.kind = TokenKind::kEof;
    tok.end = pos_;
    return tok;
  }
  const char c = input_[pos_];

  auto single = [&](TokenKind kind) {
    tok.kind = kind;
    ++pos_;
    tok.end = pos_;
    return tok;
  };
  auto two = [&](TokenKind kind) {
    tok.kind = kind;
    pos_ += 2;
    tok.end = pos_;
    return tok;
  };

  if (IsNameStart(c)) {
    size_t p = pos_;
    while (p < input_.size() && IsNameChar(input_[p])) ++p;
    tok.kind = TokenKind::kIdent;
    tok.text = std::string(input_.substr(pos_, p - pos_));
    pos_ = p;
    tok.end = p;
    return tok;
  }
  if (c == '$') {
    size_t p = pos_ + 1;
    if (p >= input_.size() || !IsNameStart(input_[p])) {
      return Status::ParseError("expected variable name after '$'");
    }
    while (p < input_.size() && IsNameChar(input_[p])) ++p;
    tok.kind = TokenKind::kVar;
    tok.text = std::string(input_.substr(pos_ + 1, p - pos_ - 1));
    pos_ = p;
    tok.end = p;
    return tok;
  }
  if (c == '"' || c == '\'') {
    const char quote = c;
    std::string out;
    size_t p = pos_ + 1;
    while (p < input_.size()) {
      if (input_[p] == quote) {
        // Doubled quote is an escaped quote.
        if (p + 1 < input_.size() && input_[p + 1] == quote) {
          out.push_back(quote);
          p += 2;
          continue;
        }
        tok.kind = TokenKind::kString;
        tok.text = std::move(out);
        pos_ = p + 1;
        tok.end = pos_;
        return tok;
      }
      out.push_back(input_[p]);
      ++p;
    }
    return Status::ParseError("unterminated string literal");
  }
  if (std::isdigit(static_cast<unsigned char>(c)) ||
      (c == '.' && pos_ + 1 < input_.size() &&
       std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
    size_t p = pos_;
    while (p < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[p])) ||
            input_[p] == '.')) {
      ++p;
    }
    // Optional exponent.
    if (p < input_.size() && (input_[p] == 'e' || input_[p] == 'E')) {
      size_t q = p + 1;
      if (q < input_.size() && (input_[q] == '+' || input_[q] == '-')) ++q;
      if (q < input_.size() &&
          std::isdigit(static_cast<unsigned char>(input_[q]))) {
        while (q < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[q]))) {
          ++q;
        }
        p = q;
      }
    }
    tok.kind = TokenKind::kNumber;
    tok.text = std::string(input_.substr(pos_, p - pos_));
    const auto parsed = ParseDouble(tok.text);
    if (!parsed.has_value()) {
      return Status::ParseError("malformed number '" + tok.text + "'");
    }
    tok.number = *parsed;
    pos_ = p;
    tok.end = p;
    return tok;
  }

  switch (c) {
    case '(':
      return single(TokenKind::kLParen);
    case ')':
      return single(TokenKind::kRParen);
    case '[':
      return single(TokenKind::kLBracket);
    case ']':
      return single(TokenKind::kRBracket);
    case '{':
      return single(TokenKind::kLBrace);
    case '}':
      return single(TokenKind::kRBrace);
    case ',':
      return single(TokenKind::kComma);
    case ';':
      return single(TokenKind::kSemicolon);
    case '@':
      return single(TokenKind::kAt);
    case '*':
      return single(TokenKind::kStar);
    case '+':
      return single(TokenKind::kPlus);
    case '-':
      return single(TokenKind::kMinus);
    case '/':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '/') {
        return two(TokenKind::kSlashSlash);
      }
      return single(TokenKind::kSlash);
    case '.':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '.') {
        return two(TokenKind::kDotDot);
      }
      return single(TokenKind::kDot);
    case '=':
      return single(TokenKind::kEq);
    case '!':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        return two(TokenKind::kNe);
      }
      return Status::ParseError("unexpected '!'");
    case '<':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '<') {
        return two(TokenKind::kLtLt);
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        return two(TokenKind::kLe);
      }
      return single(TokenKind::kLt);
    case '>':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
        return two(TokenKind::kGtGt);
      }
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        return two(TokenKind::kGe);
      }
      return single(TokenKind::kGt);
    case ':':
      if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '=') {
        return two(TokenKind::kAssign);
      }
      return Status::ParseError("unexpected ':'");
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at offset " + std::to_string(pos_));
  }
}

}  // namespace xmark::query
