// Pipeline-fusion pass: plan-time half of compiled pipelines.
//
// Layer contract: this file is part of the PLAN layer. FusePipelines runs
// after BuildPlan has lowered every node (it consults the FLWOR strategy
// and band-let annotations) and only ADDS CompiledPipeline entries to the
// PlanAnnotations; it never executes anything and never depends on the
// physical operator layer (query/exec.h includes this header, not the
// other way around — enforced by tools/check_layering.py). The dispatch
// encoding below is the shared vocabulary between the two layers: the
// pass computes a dispatch index at plan time, exec.cc keeps a static
// table of monomorphic loop instantiations indexed by it.

#ifndef XMARK_QUERY_PIPELINE_H_
#define XMARK_QUERY_PIPELINE_H_

#include <cstdint>

#include "query/ast.h"
#include "query/plan.h"
#include "query/storage.h"

namespace xmark::query {

// ---------------------------------------------------------------------------
// Dispatch encoding
// ---------------------------------------------------------------------------
// A pipeline's inner loop is monomorphic over (access mode x filter x
// compare op x operand type): the filter slot picks one template
// instantiation of the per-candidate test, the raw bit picks the scan
// source (dense preorder tag array vs batched cursor). Store kind
// collapses into the raw bit at plan time: stores exposing RawTagArray()
// (edge, DTD-inlined) take the raw source, the rest the cursor source.

/// Filter slots: 0 = none, 1 = contains, 2 = starts-with, then one slot
/// per (comparison op, string|numeric) pair for kEq..kGe.
inline constexpr uint32_t kPipelineFilterSlots =
    3 + 2 * 6;  // none/contains/starts-with + {eq,ne,lt,le,gt,ge} x {str,num}
/// Raw-interval scan source (vs cursor batches).
inline constexpr uint32_t kPipelineRawBit = 16;
/// Size of the instantiation table exec.cc builds (dense in the encoding).
inline constexpr uint32_t kPipelineDispatchSlots = kPipelineRawBit * 2;

/// Dispatch index for one proven pipeline shape. `op` and `numeric` are
/// meaningful only for FilterKind::kCompare; `op` must be one of kEq..kGe.
constexpr uint32_t PipelineDispatch(CompiledPipeline::FilterKind filter,
                                    BinaryOp op, bool numeric, bool raw) {
  uint32_t slot = 0;
  switch (filter) {
    case CompiledPipeline::FilterKind::kNone:
      slot = 0;
      break;
    case CompiledPipeline::FilterKind::kContains:
      slot = 1;
      break;
    case CompiledPipeline::FilterKind::kStartsWith:
      slot = 2;
      break;
    case CompiledPipeline::FilterKind::kCompare:
      slot = 3 +
             2 * (static_cast<uint32_t>(op) -
                  static_cast<uint32_t>(BinaryOp::kEq)) +
             (numeric ? 1 : 0);
      break;
  }
  return slot | (raw ? kPipelineRawBit : 0);
}

// ---------------------------------------------------------------------------
// The fusion pass
// ---------------------------------------------------------------------------

/// Walks `root` in document order and adds a CompiledPipeline entry to
/// `plan->pipelines` for every FLWOR it can prove fusable (the Q1/Q5/Q6/
/// Q14 class — see CompiledPipeline in query/plan.h for the grammar).
/// Must run after LowerNode has annotated `root`'s FLWORs: the pass
/// refuses any FLWOR whose planned strategy is not the nested loop and any
/// domain registered as a band-join let. `query` (nullable) supplies the
/// prolog's function declarations so a user function shadowing contains/
/// starts-with/count refuses fusion instead of changing semantics.
/// Pipeline ids are assigned densely in walk order (deterministic Explain
/// output). Callers gate on options.compiled_pipelines && use_planner.
void FusePipelines(const ParsedQuery* query, const AstNode& root,
                   const StorageAdapter& store,
                   const EvaluatorOptions& options, PlanAnnotations* plan);

}  // namespace xmark::query

#endif  // XMARK_QUERY_PIPELINE_H_
