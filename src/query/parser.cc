#include "query/parser.h"

#include <cctype>

#include "util/fault_injection.h"
#include "util/string_util.h"

namespace xmark::query {
namespace {

AstPtr MakeNode(AstKind kind) { return std::make_unique<AstNode>(kind); }

AstPtr MakeBinary(BinaryOp op, AstPtr lhs, AstPtr rhs) {
  AstPtr node = MakeNode(AstKind::kBinary);
  node->op = op;
  node->args.push_back(std::move(lhs));
  node->args.push_back(std::move(rhs));
  return node;
}

bool IsXmlNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsXmlNameChar(char c) {
  return IsXmlNameStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.' || c == ':';
}

}  // namespace

Parser::Parser(std::string_view input) : lexer_(input) {
  // cur_ is filled by the first Advance() in the Parse* entry points.
}

Status Parser::Advance() {
  StatusOr<Token> tok = lexer_.Next();
  if (!tok.ok()) {
    return FailAt(ParseErrorCode::kLexError, lexer_.position(),
                  tok.status().message());
  }
  cur_ = *tok;
  return Status::OK();
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (cur_.kind != kind) {
    return Fail(ParseErrorCode::kUnexpectedToken, std::string("expected ") + what);
  }
  return Advance();
}

StatusOr<Token> Parser::PeekNext() {
  const size_t save = lexer_.position();
  StatusOr<Token> tok = lexer_.Next();
  lexer_.SetPosition(save);
  if (!tok.ok()) {
    return FailAt(ParseErrorCode::kLexError, save, tok.status().message());
  }
  return tok;
}

Status Parser::Fail(ParseErrorCode code, const std::string& message) const {
  return FailAt(code, cur_.begin, message);
}

Status Parser::FailAt(ParseErrorCode code, size_t offset,
                      const std::string& message) const {
  const std::string_view src = lexer_.input();
  offset = std::min(offset, src.size());
  size_t line = 1;
  size_t bol = 0;  // offset of the current line's first character
  for (size_t i = 0; i < offset; ++i) {
    if (src[i] == '\n') {
      ++line;
      bol = i + 1;
    }
  }
  std::string near(
      src.substr(offset, std::min<size_t>(20, src.size() - offset)));
  return Status::InvalidQuery(
      "[" + std::string(ParseErrorCodeSlug(code)) + "] " +
      std::to_string(line) + ":" + std::to_string(offset - bol + 1) + ": " +
      message + " (near '" + near + "')");
}

StatusOr<ParsedQuery> Parser::ParseQuery() {
  XMARK_RETURN_IF_ERROR(Advance());
  ParsedQuery query;
  // Prolog: declare function name($p, ...) { Expr };
  while (CurIsIdent("declare")) {
    XMARK_RETURN_IF_ERROR(Advance());
    if (!CurIsIdent("function")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'function'");
    XMARK_RETURN_IF_ERROR(Advance());
    if (!CurIs(TokenKind::kIdent)) return Fail(ParseErrorCode::kUnexpectedToken, "expected function name");
    FunctionDecl decl;
    decl.name = cur_.text;
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    while (!CurIs(TokenKind::kRParen)) {
      if (!CurIs(TokenKind::kVar)) return Fail(ParseErrorCode::kUnexpectedToken, "expected parameter");
      decl.params.push_back(cur_.text);
      XMARK_RETURN_IF_ERROR(Advance());
      // Optional "as type" annotations are skipped.
      if (CurIsIdent("as")) {
        XMARK_RETURN_IF_ERROR(Advance());
        if (!CurIs(TokenKind::kIdent)) return Fail(ParseErrorCode::kUnexpectedToken, "expected type name");
        XMARK_RETURN_IF_ERROR(Advance());
        if (CurIs(TokenKind::kStar)) XMARK_RETURN_IF_ERROR(Advance());
      }
      if (CurIs(TokenKind::kComma)) XMARK_RETURN_IF_ERROR(Advance());
    }
    XMARK_RETURN_IF_ERROR(Advance());  // ')'
    XMARK_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'"));
    XMARK_ASSIGN_OR_RETURN(decl.body, ParseExpr());
    XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'"));
    XMARK_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'"));
    query.functions.push_back(std::move(decl));
  }
  XMARK_ASSIGN_OR_RETURN(query.body, ParseExpr());
  if (!CurIs(TokenKind::kEof)) return Fail(ParseErrorCode::kTrailingInput, "trailing input");
  return query;
}

StatusOr<AstPtr> Parser::ParseExpression() {
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(AstPtr expr, ParseExpr());
  if (!CurIs(TokenKind::kEof)) return Fail(ParseErrorCode::kTrailingInput, "trailing input");
  return expr;
}

StatusOr<AstPtr> Parser::ParseExpr() {
  XMARK_ASSIGN_OR_RETURN(AstPtr first, ParseExprSingle());
  if (!CurIs(TokenKind::kComma)) return first;
  AstPtr seq = MakeNode(AstKind::kSequenceExpr);
  seq->args.push_back(std::move(first));
  while (CurIs(TokenKind::kComma)) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr next, ParseExprSingle());
    seq->args.push_back(std::move(next));
  }
  return seq;
}

StatusOr<AstPtr> Parser::ParseExprSingle() {
  DepthGuard depth(this);
  if (depth_ > kMaxExprDepth) {
    return Fail(ParseErrorCode::kNestingTooDeep,
                "expression nesting exceeds " +
                std::to_string(kMaxExprDepth) + " levels");
  }
  if (cur_.kind == TokenKind::kIdent) {
    // Keywords are contextual: "for" is a FLWOR only when followed by $var.
    if (cur_.text == "for" || cur_.text == "let") {
      XMARK_ASSIGN_OR_RETURN(Token next, PeekNext());
      if (next.kind == TokenKind::kVar) return ParseFlwor();
    } else if (cur_.text == "some" || cur_.text == "every") {
      XMARK_ASSIGN_OR_RETURN(Token next, PeekNext());
      if (next.kind == TokenKind::kVar) return ParseQuantified();
    } else if (cur_.text == "if") {
      XMARK_ASSIGN_OR_RETURN(Token next, PeekNext());
      if (next.kind == TokenKind::kLParen) return ParseIf();
    }
  }
  return ParseOr();
}

StatusOr<AstPtr> Parser::ParseFlwor() {
  AstPtr node = MakeNode(AstKind::kFlwor);
  while (true) {
    if (CurIsIdent("for")) {
      XMARK_RETURN_IF_ERROR(Advance());
      while (true) {
        if (!CurIs(TokenKind::kVar)) return Fail(ParseErrorCode::kUnexpectedToken, "expected $var after 'for'");
        ForLetClause clause;
        clause.is_let = false;
        clause.var = cur_.text;
        XMARK_RETURN_IF_ERROR(Advance());
        if (!CurIsIdent("in")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'in'");
        XMARK_RETURN_IF_ERROR(Advance());
        XMARK_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
        node->clauses.push_back(std::move(clause));
        if (!CurIs(TokenKind::kComma)) break;
        XMARK_RETURN_IF_ERROR(Advance());
      }
    } else if (CurIsIdent("let")) {
      XMARK_RETURN_IF_ERROR(Advance());
      while (true) {
        if (!CurIs(TokenKind::kVar)) return Fail(ParseErrorCode::kUnexpectedToken, "expected $var after 'let'");
        ForLetClause clause;
        clause.is_let = true;
        clause.var = cur_.text;
        XMARK_RETURN_IF_ERROR(Advance());
        XMARK_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "':='"));
        XMARK_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
        node->clauses.push_back(std::move(clause));
        if (!CurIs(TokenKind::kComma)) break;
        XMARK_RETURN_IF_ERROR(Advance());
      }
    } else {
      break;
    }
  }
  if (node->clauses.empty()) return Fail(ParseErrorCode::kUnexpectedToken, "FLWOR without clauses");
  if (CurIsIdent("where")) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(node->where, ParseExprSingle());
  }
  if (CurIsIdent("stable")) XMARK_RETURN_IF_ERROR(Advance());
  if (CurIsIdent("order") || CurIsIdent("sort")) {
    XMARK_RETURN_IF_ERROR(Advance());
    if (!CurIsIdent("by")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'by'");
    XMARK_RETURN_IF_ERROR(Advance());
    while (true) {
      OrderSpec spec;
      XMARK_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
      if (CurIsIdent("ascending")) {
        XMARK_RETURN_IF_ERROR(Advance());
      } else if (CurIsIdent("descending")) {
        spec.descending = true;
        XMARK_RETURN_IF_ERROR(Advance());
      }
      node->order_by.push_back(std::move(spec));
      if (!CurIs(TokenKind::kComma)) break;
      XMARK_RETURN_IF_ERROR(Advance());
    }
  }
  if (!CurIsIdent("return")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'return'");
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(node->ret, ParseExprSingle());
  return node;
}

StatusOr<AstPtr> Parser::ParseQuantified() {
  AstPtr node = MakeNode(AstKind::kQuantified);
  node->is_every = CurIsIdent("every");
  XMARK_RETURN_IF_ERROR(Advance());
  while (true) {
    if (!CurIs(TokenKind::kVar)) return Fail(ParseErrorCode::kUnexpectedToken, "expected $var in quantifier");
    ForLetClause clause;
    clause.var = cur_.text;
    XMARK_RETURN_IF_ERROR(Advance());
    if (!CurIsIdent("in")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'in'");
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(clause.expr, ParseExprSingle());
    node->clauses.push_back(std::move(clause));
    if (!CurIs(TokenKind::kComma)) break;
    XMARK_RETURN_IF_ERROR(Advance());
  }
  if (!CurIsIdent("satisfies")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'satisfies'");
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(node->where, ParseExprSingle());
  return node;
}

StatusOr<AstPtr> Parser::ParseIf() {
  XMARK_RETURN_IF_ERROR(Advance());  // 'if'
  XMARK_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
  AstPtr node = MakeNode(AstKind::kIf);
  XMARK_ASSIGN_OR_RETURN(AstPtr cond, ParseExpr());
  XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
  if (!CurIsIdent("then")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'then'");
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(AstPtr then_branch, ParseExprSingle());
  if (!CurIsIdent("else")) return Fail(ParseErrorCode::kUnexpectedToken, "expected 'else'");
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(AstPtr else_branch, ParseExprSingle());
  node->args.push_back(std::move(cond));
  node->args.push_back(std::move(then_branch));
  node->args.push_back(std::move(else_branch));
  return node;
}

StatusOr<AstPtr> Parser::ParseOr() {
  XMARK_ASSIGN_OR_RETURN(AstPtr lhs, ParseAnd());
  while (CurIsIdent("or")) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr rhs, ParseAnd());
    lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<AstPtr> Parser::ParseAnd() {
  XMARK_ASSIGN_OR_RETURN(AstPtr lhs, ParseComparison());
  while (CurIsIdent("and")) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr rhs, ParseComparison());
    lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<AstPtr> Parser::ParseComparison() {
  XMARK_ASSIGN_OR_RETURN(AstPtr lhs, ParseAdditive());
  BinaryOp op;
  bool has_op = true;
  switch (cur_.kind) {
    case TokenKind::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenKind::kNe:
      op = BinaryOp::kNe;
      break;
    case TokenKind::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenKind::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenKind::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenKind::kGe:
      op = BinaryOp::kGe;
      break;
    case TokenKind::kLtLt:
      op = BinaryOp::kBefore;
      break;
    case TokenKind::kGtGt:
      op = BinaryOp::kAfter;
      break;
    case TokenKind::kIdent:
      // Value comparison spellings map onto the general comparisons.
      if (cur_.text == "eq") {
        op = BinaryOp::kEq;
      } else if (cur_.text == "ne") {
        op = BinaryOp::kNe;
      } else if (cur_.text == "lt") {
        op = BinaryOp::kLt;
      } else if (cur_.text == "le") {
        op = BinaryOp::kLe;
      } else if (cur_.text == "gt") {
        op = BinaryOp::kGt;
      } else if (cur_.text == "ge") {
        op = BinaryOp::kGe;
      } else {
        has_op = false;
      }
      break;
    default:
      has_op = false;
  }
  if (!has_op) return lhs;
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(AstPtr rhs, ParseAdditive());
  return MakeBinary(op, std::move(lhs), std::move(rhs));
}

StatusOr<AstPtr> Parser::ParseAdditive() {
  XMARK_ASSIGN_OR_RETURN(AstPtr lhs, ParseMultiplicative());
  while (CurIs(TokenKind::kPlus) || CurIs(TokenKind::kMinus)) {
    const BinaryOp op =
        CurIs(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr rhs, ParseMultiplicative());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<AstPtr> Parser::ParseMultiplicative() {
  XMARK_ASSIGN_OR_RETURN(AstPtr lhs, ParseUnary());
  while (CurIs(TokenKind::kStar) || CurIsIdent("div") || CurIsIdent("mod")) {
    BinaryOp op = BinaryOp::kMul;
    if (CurIsIdent("div")) op = BinaryOp::kDiv;
    if (CurIsIdent("mod")) op = BinaryOp::kMod;
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr rhs, ParseUnary());
    lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

StatusOr<AstPtr> Parser::ParseUnary() {
  // Direct self-recursion ("----1") bypasses ParseExprSingle, so it
  // carries its own depth guard.
  DepthGuard depth(this);
  if (depth_ > kMaxExprDepth) {
    return Fail(ParseErrorCode::kNestingTooDeep,
                "expression nesting exceeds " +
                std::to_string(kMaxExprDepth) + " levels");
  }
  if (CurIs(TokenKind::kMinus)) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr operand, ParseUnary());
    AstPtr node = MakeNode(AstKind::kUnaryMinus);
    node->args.push_back(std::move(operand));
    return node;
  }
  return ParsePath();
}

Status Parser::ParsePredicates(std::vector<AstPtr>* predicates) {
  while (CurIs(TokenKind::kLBracket)) {
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_ASSIGN_OR_RETURN(AstPtr pred, ParseExpr());
    XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'"));
    predicates->push_back(std::move(pred));
  }
  return Status::OK();
}

Status Parser::ParseStep(Axis axis, std::vector<Step>* steps) {
  Step step;
  step.axis = axis;
  if (CurIs(TokenKind::kAt)) {
    XMARK_RETURN_IF_ERROR(Advance());
    if (!CurIs(TokenKind::kIdent)) return Fail(ParseErrorCode::kUnexpectedToken, "expected attribute name");
    step.axis = Axis::kAttribute;
    step.name = cur_.text;
    XMARK_RETURN_IF_ERROR(Advance());
  } else if (CurIs(TokenKind::kStar)) {
    step.test = Step::Test::kWildcard;
    XMARK_RETURN_IF_ERROR(Advance());
  } else if (CurIs(TokenKind::kDot)) {
    step.axis = Axis::kSelf;
    step.test = Step::Test::kAnyNode;
    XMARK_RETURN_IF_ERROR(Advance());
  } else if (CurIs(TokenKind::kIdent)) {
    if (cur_.text == "text" || cur_.text == "node") {
      XMARK_ASSIGN_OR_RETURN(Token next, PeekNext());
      if (next.kind == TokenKind::kLParen) {
        step.test =
            cur_.text == "text" ? Step::Test::kText : Step::Test::kAnyNode;
        XMARK_RETURN_IF_ERROR(Advance());
        XMARK_RETURN_IF_ERROR(Advance());  // '('
        XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
        XMARK_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
        steps->push_back(std::move(step));
        return Status::OK();
      }
    }
    step.name = cur_.text;
    XMARK_RETURN_IF_ERROR(Advance());
  } else {
    return Fail(ParseErrorCode::kUnexpectedToken, "expected a path step");
  }
  XMARK_RETURN_IF_ERROR(ParsePredicates(&step.predicates));
  steps->push_back(std::move(step));
  return Status::OK();
}

StatusOr<AstPtr> Parser::ParsePath() {
  AstPtr path = MakeNode(AstKind::kPath);

  if (CurIs(TokenKind::kSlash) || CurIs(TokenKind::kSlashSlash)) {
    path->absolute = true;
    Axis axis =
        CurIs(TokenKind::kSlashSlash) ? Axis::kDescendant : Axis::kChild;
    XMARK_RETURN_IF_ERROR(Advance());
    // A lone '/' denotes the root.
    if (axis == Axis::kChild && !CurIs(TokenKind::kIdent) &&
        !CurIs(TokenKind::kStar) && !CurIs(TokenKind::kAt) &&
        !CurIs(TokenKind::kDot)) {
      return path;
    }
    XMARK_RETURN_IF_ERROR(ParseStep(axis, &path->steps));
  } else {
    // Leading primary or name-test step.
    bool is_primary = false;
    switch (cur_.kind) {
      case TokenKind::kVar:
      case TokenKind::kString:
      case TokenKind::kNumber:
      case TokenKind::kLParen:
      case TokenKind::kLt:
        is_primary = true;
        break;
      case TokenKind::kIdent: {
        // A name followed by '(' is a function call — except the node-kind
        // tests text() / node().
        if (cur_.text != "text" && cur_.text != "node") {
          XMARK_ASSIGN_OR_RETURN(Token next, PeekNext());
          is_primary = (next.kind == TokenKind::kLParen);
        }
        break;
      }
      default:
        is_primary = false;
    }
    if (is_primary) {
      XMARK_ASSIGN_OR_RETURN(path->start, ParsePrimary());
      if (CurIs(TokenKind::kLBracket)) {
        Step self;
        self.axis = Axis::kSelf;
        self.test = Step::Test::kAnyNode;
        XMARK_RETURN_IF_ERROR(ParsePredicates(&self.predicates));
        path->steps.push_back(std::move(self));
      }
    } else {
      XMARK_RETURN_IF_ERROR(ParseStep(Axis::kChild, &path->steps));
    }
  }

  while (CurIs(TokenKind::kSlash) || CurIs(TokenKind::kSlashSlash)) {
    const Axis axis =
        CurIs(TokenKind::kSlashSlash) ? Axis::kDescendant : Axis::kChild;
    XMARK_RETURN_IF_ERROR(Advance());
    XMARK_RETURN_IF_ERROR(ParseStep(axis, &path->steps));
  }

  // Collapse trivial wrappers: a primary with no steps is just the primary.
  if (path->start != nullptr && path->steps.empty() && !path->absolute) {
    return std::move(path->start);
  }
  return path;
}

StatusOr<AstPtr> Parser::ParsePrimary() {
  switch (cur_.kind) {
    case TokenKind::kVar: {
      AstPtr node = MakeNode(AstKind::kVarRef);
      node->str_value = cur_.text;
      XMARK_RETURN_IF_ERROR(Advance());
      return node;
    }
    case TokenKind::kString: {
      AstPtr node = MakeNode(AstKind::kStringLiteral);
      node->str_value = cur_.text;
      XMARK_RETURN_IF_ERROR(Advance());
      return node;
    }
    case TokenKind::kNumber: {
      AstPtr node = MakeNode(AstKind::kNumberLiteral);
      node->num_value = cur_.number;
      XMARK_RETURN_IF_ERROR(Advance());
      return node;
    }
    case TokenKind::kLParen: {
      XMARK_RETURN_IF_ERROR(Advance());
      if (CurIs(TokenKind::kRParen)) {  // () — the empty sequence
        XMARK_RETURN_IF_ERROR(Advance());
        return MakeNode(AstKind::kSequenceExpr);
      }
      XMARK_ASSIGN_OR_RETURN(AstPtr inner, ParseExpr());
      XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return inner;
    }
    case TokenKind::kLt: {
      size_t resume = 0;
      XMARK_ASSIGN_OR_RETURN(AstPtr node,
                             ParseConstructorAt(cur_.begin, &resume));
      lexer_.SetPosition(resume);
      XMARK_RETURN_IF_ERROR(Advance());
      return node;
    }
    case TokenKind::kIdent: {
      AstPtr node = MakeNode(AstKind::kFunctionCall);
      node->str_value = cur_.text;
      XMARK_RETURN_IF_ERROR(Advance());
      XMARK_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
      while (!CurIs(TokenKind::kRParen)) {
        XMARK_ASSIGN_OR_RETURN(AstPtr arg, ParseExprSingle());
        node->args.push_back(std::move(arg));
        if (CurIs(TokenKind::kComma)) {
          XMARK_RETURN_IF_ERROR(Advance());
        } else {
          break;
        }
      }
      XMARK_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return node;
    }
    default:
      return Fail(ParseErrorCode::kUnexpectedToken, "expected a primary expression");
  }
}

StatusOr<AstPtr> Parser::ParseEmbeddedExpr(size_t pos, size_t* resume) {
  // pos points at '{'. Hand the region to the token-level parser.
  lexer_.SetPosition(pos + 1);
  XMARK_RETURN_IF_ERROR(Advance());
  XMARK_ASSIGN_OR_RETURN(AstPtr expr, ParseExpr());
  if (!CurIs(TokenKind::kRBrace)) return Fail(ParseErrorCode::kUnexpectedToken, "expected '}'");
  *resume = cur_.end;
  return expr;
}

StatusOr<AstPtr> Parser::ParseConstructorAt(size_t pos, size_t* resume) {
  // Nested constructors ("<a><a><a>…") recurse here directly, outside
  // ParseExprSingle, so this entry point guards its own depth.
  DepthGuard depth(this);
  if (depth_ > kMaxExprDepth) {
    return Fail(ParseErrorCode::kNestingTooDeep,
                "expression nesting exceeds " +
                std::to_string(kMaxExprDepth) + " levels");
  }
  const std::string_view src = lexer_.input();
  if (pos >= src.size() || src[pos] != '<') {
    return FailAt(ParseErrorCode::kBadConstructor, pos,
                  "constructor must start with '<'");
  }
  size_t p = pos + 1;
  if (p >= src.size() || !IsXmlNameStart(src[p])) {
    return FailAt(ParseErrorCode::kBadConstructor, p,
                  "expected element name in constructor");
  }
  AstPtr node = MakeNode(AstKind::kElementConstructor);
  const size_t name_start = p;
  while (p < src.size() && IsXmlNameChar(src[p])) ++p;
  node->tag = std::string(src.substr(name_start, p - name_start));

  auto skip_ws = [&] {
    while (p < src.size() && std::isspace(static_cast<unsigned char>(src[p]))) {
      ++p;
    }
  };

  // Attributes.
  bool self_closing = false;
  while (true) {
    skip_ws();
    if (p >= src.size()) {
      return FailAt(ParseErrorCode::kUnterminatedConstructor, p,
                    "unterminated constructor");
    }
    if (src[p] == '>') {
      ++p;
      break;
    }
    if (src[p] == '/' && p + 1 < src.size() && src[p + 1] == '>') {
      self_closing = true;
      p += 2;
      break;
    }
    if (!IsXmlNameStart(src[p])) {
      return FailAt(ParseErrorCode::kBadConstructorAttr, p,
                    "malformed constructor attribute");
    }
    AttrConstructor attr;
    const size_t an = p;
    while (p < src.size() && IsXmlNameChar(src[p])) ++p;
    attr.name = std::string(src.substr(an, p - an));
    skip_ws();
    if (p >= src.size() || src[p] != '=') {
      return FailAt(ParseErrorCode::kBadConstructorAttr, p,
                    "expected '=' in constructor attribute");
    }
    ++p;
    skip_ws();
    if (p >= src.size() || (src[p] != '"' && src[p] != '\'')) {
      return FailAt(ParseErrorCode::kBadConstructorAttr, p,
                    "expected quoted attribute value");
    }
    const char quote = src[p];
    ++p;
    std::string literal;
    while (true) {
      if (p >= src.size()) {
        return FailAt(ParseErrorCode::kUnterminatedConstructor, p,
                      "unterminated attribute value");
      }
      const char c = src[p];
      if (c == quote) {
        ++p;
        break;
      }
      if (c == '{') {
        if (p + 1 < src.size() && src[p + 1] == '{') {
          literal.push_back('{');
          p += 2;
          continue;
        }
        if (!literal.empty()) {
          attr.parts.push_back(AttrPart{std::move(literal), nullptr});
          literal.clear();
        }
        size_t after = 0;
        XMARK_ASSIGN_OR_RETURN(AstPtr expr, ParseEmbeddedExpr(p, &after));
        attr.parts.push_back(AttrPart{"", std::move(expr)});
        p = after;
        continue;
      }
      if (c == '}') {
        if (p + 1 < src.size() && src[p + 1] == '}') {
          literal.push_back('}');
          p += 2;
          continue;
        }
        return FailAt(ParseErrorCode::kUnescapedBrace, p,
                      "unescaped '}' in attribute value");
      }
      literal.push_back(c);
      ++p;
    }
    if (!literal.empty()) {
      attr.parts.push_back(AttrPart{std::move(literal), nullptr});
    }
    node->attrs.push_back(std::move(attr));
  }

  if (self_closing) {
    *resume = p;
    return node;
  }

  // Content: text, embedded expressions, nested constructors.
  std::string text;
  auto flush_text = [&] {
    // Boundary-space policy: whitespace-only runs between tags are dropped
    // (the XQuery default).
    if (TrimWhitespace(text).empty()) {
      text.clear();
      return;
    }
    AstPtr lit = MakeNode(AstKind::kStringLiteral);
    lit->str_value = std::move(text);
    text.clear();
    node->content.push_back(std::move(lit));
  };

  while (true) {
    if (p >= src.size()) {
      return FailAt(ParseErrorCode::kUnterminatedConstructor, p,
                    "unterminated constructor content");
    }
    const char c = src[p];
    if (c == '<') {
      if (p + 1 < src.size() && src[p + 1] == '/') {
        flush_text();
        size_t q = p + 2;
        const size_t en = q;
        while (q < src.size() && IsXmlNameChar(src[q])) ++q;
        if (src.substr(en, q - en) != node->tag) {
          return FailAt(ParseErrorCode::kMismatchedEndTag, p,
                        "mismatched constructor end tag </" +
                            std::string(src.substr(en, q - en)) + ">");
        }
        while (q < src.size() &&
               std::isspace(static_cast<unsigned char>(src[q]))) {
          ++q;
        }
        if (q >= src.size() || src[q] != '>') {
          return FailAt(ParseErrorCode::kMismatchedEndTag, q,
                        "malformed constructor end tag");
        }
        *resume = q + 1;
        return node;
      }
      flush_text();
      size_t after = 0;
      XMARK_ASSIGN_OR_RETURN(AstPtr child, ParseConstructorAt(p, &after));
      node->content.push_back(std::move(child));
      p = after;
      continue;
    }
    if (c == '{') {
      if (p + 1 < src.size() && src[p + 1] == '{') {
        text.push_back('{');
        p += 2;
        continue;
      }
      flush_text();
      size_t after = 0;
      XMARK_ASSIGN_OR_RETURN(AstPtr expr, ParseEmbeddedExpr(p, &after));
      node->content.push_back(std::move(expr));
      p = after;
      continue;
    }
    if (c == '}') {
      if (p + 1 < src.size() && src[p + 1] == '}') {
        text.push_back('}');
        p += 2;
        continue;
      }
      return FailAt(ParseErrorCode::kUnescapedBrace, p,
                    "unescaped '}' in constructor content");
    }
    text.push_back(c);
    ++p;
  }
}

std::string_view ParseErrorCodeSlug(ParseErrorCode code) {
  switch (code) {
    case ParseErrorCode::kUnexpectedToken:
      return "unexpected-token";
    case ParseErrorCode::kTrailingInput:
      return "trailing-input";
    case ParseErrorCode::kNestingTooDeep:
      return "nesting-too-deep";
    case ParseErrorCode::kBadConstructor:
      return "bad-constructor";
    case ParseErrorCode::kBadConstructorAttr:
      return "bad-constructor-attr";
    case ParseErrorCode::kUnterminatedConstructor:
      return "unterminated-constructor";
    case ParseErrorCode::kMismatchedEndTag:
      return "mismatched-end-tag";
    case ParseErrorCode::kUnescapedBrace:
      return "unescaped-brace";
    case ParseErrorCode::kLexError:
      return "lex-error";
    case ParseErrorCode::kUnknown:
      break;
  }
  return "unknown";
}

ParseErrorCode ParseErrorCodeOf(const Status& status) {
  const std::string& m = status.message();
  if (m.empty() || m[0] != '[') return ParseErrorCode::kUnknown;
  const size_t close = m.find(']');
  if (close == std::string::npos) return ParseErrorCode::kUnknown;
  const std::string_view slug(m.data() + 1, close - 1);
  for (ParseErrorCode code :
       {ParseErrorCode::kUnexpectedToken, ParseErrorCode::kTrailingInput,
        ParseErrorCode::kNestingTooDeep, ParseErrorCode::kBadConstructor,
        ParseErrorCode::kBadConstructorAttr,
        ParseErrorCode::kUnterminatedConstructor,
        ParseErrorCode::kMismatchedEndTag, ParseErrorCode::kUnescapedBrace,
        ParseErrorCode::kLexError}) {
    if (slug == ParseErrorCodeSlug(code)) return code;
  }
  return ParseErrorCode::kUnknown;
}

StatusOr<ParsedQuery> ParseQueryText(std::string_view text) {
  if (XMARK_FAULT_POINT("parser/module")) {
    return Status::InvalidQuery(
        "[fault-injection] 1:1: fault injection: parser/module (near '')");
  }
  Parser parser(text);
  XMARK_ASSIGN_OR_RETURN(ParsedQuery query, parser.ParseQuery());
  // Compile-time variable interning: bindings and references are resolved
  // to dense environment slots once, so evaluation never compares names.
  ResolveVariableSlots(query);
  return query;
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kOr:
      return "or";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kBefore:
      return "<<";
    case BinaryOp::kAfter:
      return ">>";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "div";
    case BinaryOp::kMod:
      return "mod";
  }
  return "?";
}

std::string AstToString(const AstNode& node) {
  auto join_args = [](const AstNode& n) {
    std::string out;
    for (const AstPtr& a : n.args) {
      out += " " + AstToString(*a);
    }
    return out;
  };
  switch (node.kind) {
    case AstKind::kStringLiteral:
      return "\"" + node.str_value + "\"";
    case AstKind::kNumberLiteral:
      return FormatDouble(node.num_value);
    case AstKind::kVarRef:
      return "$" + node.str_value;
    case AstKind::kContextItem:
      return ".";
    case AstKind::kPath: {
      std::string out = "(path";
      if (node.absolute) out += " /";
      if (node.start) out += " " + AstToString(*node.start);
      for (const Step& s : node.steps) {
        out += s.axis == Axis::kDescendant ? " //" : " /";
        switch (s.test) {
          case Step::Test::kName:
            out += (s.axis == Axis::kAttribute ? "@" : "") + s.name;
            break;
          case Step::Test::kWildcard:
            out += "*";
            break;
          case Step::Test::kText:
            out += "text()";
            break;
          case Step::Test::kAnyNode:
            out += "node()";
            break;
        }
        for (const AstPtr& p : s.predicates) {
          out += "[" + AstToString(*p) + "]";
        }
      }
      return out + ")";
    }
    case AstKind::kFlwor: {
      std::string out = "(flwor";
      for (const ForLetClause& c : node.clauses) {
        out += std::string(c.is_let ? " (let $" : " (for $") + c.var + " " +
               AstToString(*c.expr) + ")";
      }
      if (node.where) out += " (where " + AstToString(*node.where) + ")";
      for (const OrderSpec& o : node.order_by) {
        out += " (order " + AstToString(*o.key) +
               (o.descending ? " desc)" : ")");
      }
      out += " (return " + AstToString(*node.ret) + "))";
      return out;
    }
    case AstKind::kQuantified: {
      std::string out = node.is_every ? "(every" : "(some";
      for (const ForLetClause& c : node.clauses) {
        out += " ($" + c.var + " " + AstToString(*c.expr) + ")";
      }
      return out + " satisfies " + AstToString(*node.where) + ")";
    }
    case AstKind::kIf:
      return "(if" + join_args(node) + ")";
    case AstKind::kBinary:
      return std::string("(") + BinaryOpName(node.op) + join_args(node) + ")";
    case AstKind::kUnaryMinus:
      return "(neg" + join_args(node) + ")";
    case AstKind::kFunctionCall:
      return "(" + node.str_value + join_args(node) + ")";
    case AstKind::kElementConstructor: {
      std::string out = "(elem " + node.tag;
      for (const AttrConstructor& a : node.attrs) {
        out += " @" + a.name;
      }
      for (const AstPtr& c : node.content) {
        out += " " + AstToString(*c);
      }
      return out + ")";
    }
    case AstKind::kSequenceExpr:
      return "(seq" + join_args(node) + ")";
  }
  return "?";
}

}  // namespace xmark::query
