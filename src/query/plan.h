// Logical plan layer.
//
// Layer contract: everything in this file is decided ONCE PER RUN, before
// the first tuple flows. The optimizer (query/optimizer.cc) lowers the AST
// into a QueryPlan — per-step access paths, FLWOR join strategies,
// band-join lets, constructor templates — from a StorageCapabilities
// snapshot and the EvaluatorOptions toggles; the evaluator and the
// physical operators (query/exec.h) then only *execute* those decisions,
// never revisit them. Anything that varies per binding (predicate values,
// probe keys, dynamic constructor holes) is deliberately NOT here: it
// belongs to pull time in query/exec.h.
//
// Cache ownership rule: every per-run mutable executor state (hash-join
// tables, band domains, invariant-path memos, the construction arena)
// lives INSIDE the QueryPlan instance, and a fresh QueryPlan is built per
// Evaluator::Run. Caches therefore cannot survive into a run over a
// different document or option set by construction. Annotation maps are
// keyed by AstNode address; a plan must never outlive the AST it was
// lowered from.

#ifndef XMARK_QUERY_PLAN_H_
#define XMARK_QUERY_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/ast.h"
#include "query/storage.h"
#include "query/value.h"

namespace xmark::query {

class HashJoinExec;
class BandJoinIndex;
class ConstructExec;

/// Optimizer toggles. Each engine configuration (systems A-G) enables the
/// subset its architecture plausibly provides; the differences drive the
/// Table 3 contrasts. Historically these were interpreted per node at
/// execution time; with `use_planner` on they are resolved once per query
/// into a QueryPlan and the evaluator just executes the chosen plan.
struct EvaluatorOptions {
  /// Resolve [@id="lit"] predicates through the store's ID index.
  bool use_id_index = true;
  /// Resolve root child-paths through the structural summary.
  bool use_path_index = true;
  /// Resolve descendant steps through the tag index.
  bool use_tag_index = true;
  /// Decorrelate nested equi-join FLWORs into hash joins.
  bool hash_join = true;
  /// Rewrite the Q11/Q12 numeric band shape (`outer > k * inner`, used
  /// only under count()) into a sort-merge band join: sort the invariant
  /// join domain once, answer each probe with a binary search instead of
  /// the O(n*m) nested-loop sweep.
  bool band_join = true;
  /// Defer `let` evaluation until first use (prunes Q12's inner loop).
  bool lazy_let = true;
  /// Memoize absolute-path subexpressions across loop iterations.
  bool cache_invariant_paths = true;
  /// Deep-copy node results into constructed trees (the embedded System G
  /// returns copies, a large part of its overhead).
  bool copy_results = false;

  /// Lower the query into a QueryPlan before execution (join strategies,
  /// per-step access paths, invariant hoisting decided once per query).
  /// Off = the legacy tree-walking interpreter that re-decides per node at
  /// runtime; results are byte-identical either way.
  bool use_planner = true;

  // --- Storage-access fast paths (implementation quality, not a paper
  // system knob; on for every system, off for ablation benchmarks) -------

  /// Consume string data through zero-copy views (TextView/AttributeView/
  /// AppendStringValue) on comparison and predicate paths instead of
  /// materializing a std::string per node.
  bool zero_copy_strings = true;
  /// Walk child steps through batched, tag-filtered store cursors instead
  /// of a virtual FirstChild/NextSibling call pair per node.
  bool child_cursors = true;
  /// Walk descendant steps through batched, interval-encoded store cursors
  /// (one clustered range scan per input node) instead of the generic DFS
  /// or a materialized DescendantsByTag vector.
  bool descendant_cursors = true;
  /// Build element-constructor results through plan-time ConstructPlan
  /// templates instantiated into a per-run NodeArena (block-allocated
  /// nodes, shared text buffer) instead of one shared_ptr allocation per
  /// node and one std::string per text child. Requires use_planner
  /// (templates are plan annotations); output is byte-identical either
  /// way.
  bool arena_construction = true;
  /// Fuse hot FLWOR shapes (scan → filter → compare → emit chains) into
  /// CompiledPipeline loops: monomorphic template instantiations in
  /// exec.cc drain the underlying id interval or cursor range straight
  /// into the final result, with no intermediate Sequence per operator
  /// boundary and no per-batch virtual dispatch. Unfusable shapes run the
  /// regular operators; output is byte-identical either way. Requires
  /// use_planner (pipelines are plan annotations).
  bool compiled_pipelines = true;

  /// Intra-query morsel parallelism. Large descendant/tag-index scans are
  /// partitioned into preorder-id morsels drained by a util/thread_pool
  /// worker team, and the band-join domain sort runs partitioned. Results
  /// are byte-identical to serial execution: each morsel emits in id
  /// order and morsels are concatenated in id order, which reproduces the
  /// serial emission exactly for any chunking.
  struct ParallelExec {
    bool enabled = false;
    /// Worker count; 0 = hardware_concurrency. A resolved count of 1
    /// falls back to the serial path.
    unsigned threads = 0;
    /// Minimum cursor positions (ids or tag-index slots) before a scan is
    /// worth splitting; below this the serial drain wins. Tests set 1 to
    /// force morsels on tiny documents.
    size_t min_morsel_ids = 4096;
  };
  ParallelExec parallel_exec;
};

/// Order-independent fingerprint of every option that affects plan
/// construction or execution strategy. The plan cache keys on it: two
/// sessions share a compiled query only when their toggles agree.
uint64_t OptionsFingerprint(const EvaluatorOptions& options);

/// Statistics from one evaluator run (exposed for ablation benchmarks).
struct EvalStats {
  int64_t nodes_visited = 0;       // adapter navigation calls
  int64_t hash_joins_built = 0;    // decorrelated inner loops
  int64_t band_joins_built = 0;    // sorted band-join domains built
  int64_t band_join_rows = 0;      // rows answered by band-join probes
                                   // (matches the nested loop would emit)
  int64_t index_lookups = 0;       // id/tag/path index hits
  int64_t cursor_scans = 0;        // batched child scans opened
  int64_t descendant_scans = 0;    // batched descendant scans opened
  int64_t allocations_avoided = 0; // per-node strings skipped via views
  int64_t compare_allocs = 0;      // strings materialized on compare paths
  int64_t join_probes = 0;         // hash-join index probes
  int64_t join_probe_allocs = 0;   // probe keys that materialized a string
  int64_t sequence_heap_spills = 0;  // Sequences that outgrew the inline
                                     // buffer (SBO miss count)
  int64_t nodes_constructed = 0;     // ConstructedNodes created (both the
                                     // heap and the arena path)
  int64_t nodes_arena_allocated = 0;  // subset placed in the per-run
                                      // NodeArena (heap constructed nodes
                                      // = nodes_constructed - this)
  int64_t construct_templates_built = 0;  // ConstructPlans lowered by the
                                          // optimizer for this run
  int64_t governance_checks = 0;  // cooperative ExecContext checkpoints
                                  // performed (0 for ungoverned runs)
  int64_t pipeline_batches_fused = 0;  // batches drained inside compiled
                                       // pipeline loops (no per-batch
                                       // virtual dispatch)
  int64_t virtual_batches = 0;  // batches pulled through the virtual
                                // operator boundary (NodeScan::Fill)

  /// Accumulates `other` into this (engine-level cumulative serving
  /// stats: each run's counters are merged under the engine's mutex at
  /// query completion, so concurrent sessions never share a counter).
  void MergeFrom(const EvalStats& other) {
    nodes_visited += other.nodes_visited;
    hash_joins_built += other.hash_joins_built;
    band_joins_built += other.band_joins_built;
    band_join_rows += other.band_join_rows;
    index_lookups += other.index_lookups;
    cursor_scans += other.cursor_scans;
    descendant_scans += other.descendant_scans;
    allocations_avoided += other.allocations_avoided;
    compare_allocs += other.compare_allocs;
    join_probes += other.join_probes;
    join_probe_allocs += other.join_probe_allocs;
    sequence_heap_spills += other.sequence_heap_spills;
    nodes_constructed += other.nodes_constructed;
    nodes_arena_allocated += other.nodes_arena_allocated;
    construct_templates_built += other.construct_templates_built;
    governance_checks += other.governance_checks;
    pipeline_batches_fused += other.pipeline_batches_fused;
    virtual_batches += other.virtual_batches;
  }
};

/// Planned access path for one path step, resolved from options x store
/// capabilities x static predicate shape.
struct StepPlan {
  enum class Access : uint8_t {
    kAttribute,         // attribute axis: AttributeView probe per node
    kSelf,              // self axis: filter the input sequence
    kChildrenByTag,     // physical child slots/tables (falls back to a
                        // cursor when the store answers nullopt at runtime)
    kChildCursor,       // batched tag-filtered child cursor
    kChildChain,        // generic FirstChild/NextSibling walk
    kDescendantCursor,  // batched interval-encoded descendant cursor
    kTagIndex,          // materialized DescendantsByTag slice
    kDescendantDfs,     // generic DFS over child scans
  };
  Access access = Access::kChildChain;
  /// Non-null: the step carries an [@id = "literal"] predicate and the
  /// store supports ID lookup — resolve through NodeById first.
  const AstNode* id_literal = nullptr;
};

const char* StepAccessName(StepPlan::Access access);

/// Plan for one kPath expression.
struct PathPlan {
  /// Loop-invariant rooted path: memoize the result across iterations.
  bool cacheable = false;
  /// Number of leading child-name steps resolvable through the structural
  /// summary (PathExtent) in one probe. 0 = path index not applicable.
  size_t path_index_steps = 0;
  std::vector<StepPlan> steps;  // one entry per AST step
};

/// Decorrelated equi-join plan for a FLWOR (the Q8/Q9/Q10 shape):
/// `for $v in <invariant> where <inner_key($v)> = <outer_key> ...`.
struct HashJoinPlan {
  const AstNode* in_expr = nullptr;
  std::string var;
  int var_slot = -1;
  const AstNode* inner_key = nullptr;  // depends only on `var`
  const AstNode* outer_key = nullptr;  // independent of `var`
  std::vector<const AstNode*> residue;
};

/// Sort-merge band join plan for the Q11/Q12 shape:
///   let $l := for $v in <invariant domain>
///             where <outer> OP <numeric inner($v)> return $v
/// where every use of $l is count($l). The domain's numeric keys are
/// sorted once per run; each probe evaluates the outer side to a number
/// and answers count($l) with one binary search.
struct BandJoinPlan {
  const AstNode* flwor = nullptr;      // the inner FLWOR
  const AstNode* domain = nullptr;     // invariant domain expression
  int var_slot = -1;                   // the domain variable's slot
  const AstNode* inner_expr = nullptr; // numeric side, depends only on var
  const AstNode* outer_expr = nullptr; // probe side, independent of var
  BinaryOp op = BinaryOp::kGt;         // outer OP inner
};

/// Plan-time template for one element-constructor subtree (the Q10/Q13
/// reconstruction shape). The static shell of the constructor — nested
/// element structure, constant attributes, constant text segments — is
/// compiled once per run; only the dynamic holes (enclosed expressions)
/// and dynamic attribute values are evaluated per instantiation.
/// ConstructExec (query/exec.h) instantiates the template into the
/// per-run NodeArena: child vectors are reserved from the pre-counted
/// slot counts, constant text is interned into the arena once per run and
/// shared by every instantiation, and dynamic text is appended into the
/// arena's shared buffer instead of allocating a std::string per node.
struct ConstructPlan {
  struct Child {
    enum class Kind : uint8_t {
      kConstText,  // `index` into const_texts
      kElement,    // `index` into elements (a nested static element)
      kHole,       // `expr`: evaluated per instantiation
    };
    Kind kind = Kind::kHole;
    size_t index = 0;
    const AstNode* expr = nullptr;
  };
  struct Attr {
    std::string name;
    /// Non-null: dynamic value, evaluate `src->parts` per instantiation.
    const AttrConstructor* src = nullptr;
    /// src == nullptr: the value is this constant, folded at plan time.
    std::string const_value;
  };
  struct Element {
    std::string tag;
    std::vector<Attr> attrs;
    std::vector<Child> children;  // pre-counted child slots
  };

  const AstNode* source = nullptr;  // the kElementConstructor root
  /// Dense per-plan index assigned at registration; ConstructExec keys its
  /// per-run interned-segment cache by it (array indexing on the hot
  /// instantiation path instead of a hash lookup).
  size_t template_id = 0;
  std::vector<Element> elements;    // [0] is the root element
  std::vector<std::string> const_texts;  // deduplicated constant segments
  size_t hole_count = 0;
  size_t const_attr_count = 0;
  size_t dyn_attr_count = 0;
};

/// A fused execution plan for one hot FLWOR shape (the Q1/Q5/Q6/Q14
/// class): `for $v in <rooted path> [where <predicate($v)>] return
/// <tail($v)>`. The optimizer's pipeline pass (query/pipeline.cc) proves
/// the shape at plan time — rooted child/descendant name steps, a
/// predicate that is a literal compare or contains/starts-with over a
/// var-rooted child path, a tail that is the variable, a var-rooted path,
/// or a count() of one descendant step — and resolves every tag to a
/// NameId. PipelineExec (query/exec.h) then runs the whole chain as one
/// monomorphic loop selected from a dispatch table: the scan drains the
/// store's raw preorder interval (or a batched cursor) straight into the
/// final result, with no intermediate Sequence and no per-batch virtual
/// call. Any shape the pass cannot prove simply gets no entry here and
/// runs on the regular operators — byte-identical output by contract.
struct CompiledPipeline {
  /// How the FLWOR domain is scanned.
  enum class Scan : uint8_t {
    kPrefixOnly,    // bindings = the resolved prefix nodes (Q6's $b)
    kChildren,      // child-axis last step under each prefix node (Q1)
    kDescendants,   // descendant-axis last step: one preorder interval
                    // per prefix node (Q14's site//item)
  };
  /// The fused where-clause predicate (applied per scanned node).
  enum class FilterKind : uint8_t {
    kNone,
    kContains,    // contains(<var path>, "lit"): first path match only
    kStartsWith,  // starts-with(<var path>, "lit"): first match only
    kCompare,     // <var path> OP literal: existential over all matches
  };
  /// What each surviving binding contributes to the result.
  enum class Emit : uint8_t {
    kVar,        // the binding itself
    kTailNodes,  // var-rooted child steps (+ optional trailing text())
    kCount,      // count($v//tag): one number per binding
  };

  const AstNode* flwor = nullptr;  // the FLWOR this pipeline replaces
  size_t pipeline_id = 0;          // dense per-plan index (Explain)

  Scan scan = Scan::kPrefixOnly;
  std::vector<xml::NameId> prefix;  // resolved child-name steps from the root
  xml::NameId scan_tag = xml::kInvalidName;  // last-step tag (kChildren/kDesc...)
  /// Last step carried [@id = "lit"]: filter scanned children on it.
  bool id_filter = false;
  /// ...and the store's ID index answers it directly (one NodeById probe
  /// instead of the child scan). Mirrors ComputeStepPlan's condition.
  bool id_lookup = false;
  std::string id_value;

  FilterKind filter = FilterKind::kNone;
  std::vector<xml::NameId> filter_path;  // var-rooted child-name steps
  bool filter_path_text = false;    // trailing text() on the filter path
  std::string needle;               // contains/starts-with literal
  BinaryOp cmp_op = BinaryOp::kEq;  // compare: <path> cmp_op <literal>
  bool cmp_numeric = false;         // literal parsed as a number
  double cmp_number = 0;
  std::string cmp_str;

  Emit emit = Emit::kVar;
  std::vector<xml::NameId> tail;  // kTailNodes: var-rooted child-name steps
  bool tail_text = false;    // trailing text() on the tail
  xml::NameId count_tag = xml::kInvalidName;  // kCount: the descendant tag

  /// Monomorphic-loop selector, computed at plan time (PipelineDispatch
  /// in query/pipeline.h); exec.cc indexes its instantiation table by it.
  uint32_t dispatch = 0;
  /// Fused stage list ("scan|compare|emit", Explain + the CI gate).
  std::string stages;
};

/// Join strategy chosen for one FLWOR node.
struct FlworPlan {
  enum class Strategy : uint8_t { kNestedLoop, kHashJoin };
  Strategy strategy = Strategy::kNestedLoop;
  /// The FLWOR matches a decorrelatable join shape (even if the strategy
  /// toggle left it on the nested loop — surfaced by Explain/CI as a
  /// fallback).
  bool join_shape = false;
  /// The FLWOR matches the band comparison shape (conversion happens at
  /// the enclosing `let`; a band shape with no band_lets entry is likewise
  /// a fallback).
  bool band_shape = false;
  HashJoinPlan hash;
};

/// The compile-time half of a lowered query: strategy annotations filled
/// by the optimizer for one (query, store uid, options fingerprint)
/// triple. Immutable once built, which is what lets the plan cache hand
/// one instance to any number of concurrent runs via shared_ptr<const>.
/// Maps are keyed by AstNode address; annotations must never outlive the
/// ParsedQuery they were lowered from (the cache stores both together).
struct PlanAnnotations {
  bool built_by_optimizer = false;
  std::string store_name;       // mapping_name at plan time (Explain)
  std::string doc_scope;        // document scope ("" = default document)
  uint64_t store_uid = 0;       // store identity the plan was built for
  StorageCapabilities caps;     // capability snapshot at plan time
  EvaluatorOptions options;     // toggles the plan was built under
  std::unordered_map<const AstNode*, PathPlan> paths;
  std::unordered_map<const AstNode*, FlworPlan> flwors;
  std::unordered_map<const AstNode*, BandJoinPlan> band_lets;
  std::unordered_map<const AstNode*, ConstructPlan> constructs;
  std::unordered_map<const AstNode*, CompiledPipeline> pipelines;
};

/// A query lowered against one store + option set: per-node strategy
/// annotations plus the per-run executor state (hash-join tables, band
/// domains, invariant-path memos). One QueryPlan instance belongs to one
/// Evaluator::Run — caches cannot survive into a run over a different
/// document by construction. The annotations half may instead be ADOPTED
/// from the plan cache (shared, const); the per-run state below is always
/// exclusive to this run.
class QueryPlan {
 public:
  QueryPlan();
  ~QueryPlan();
  QueryPlan(const QueryPlan&) = delete;
  QueryPlan& operator=(const QueryPlan&) = delete;

  /// The active annotation view: the shared (cached) annotations when one
  /// was adopted, else the locally built ones.
  const PlanAnnotations& ann() const { return shared_ ? *shared_ : local_; }
  /// The locally owned annotations (optimizer output target; also the
  /// overflow target for legacy-mode lazy FLWOR entries).
  PlanAnnotations* mutable_annotations() { return &local_; }
  /// Adopts a cached compilation; Find* then consult it first.
  void AdoptShared(std::shared_ptr<const PlanAnnotations> shared) {
    shared_ = std::move(shared);
  }

  /// Non-null when the optimizer planned this path (use_planner on).
  const PathPlan* FindPath(const AstNode* node) const {
    const auto& paths = ann().paths;
    auto it = paths.find(node);
    return it == paths.end() ? nullptr : &it->second;
  }
  /// Non-null when `let_expr` (an inner FLWOR) was planned as a band join.
  const BandJoinPlan* FindBandLet(const AstNode* let_expr) const {
    const auto& band_lets = ann().band_lets;
    auto it = band_lets.find(let_expr);
    return it == band_lets.end() ? nullptr : &it->second;
  }
  /// FLWOR strategy; when absent (legacy interpreter mode) the evaluator
  /// fills the entry on first visit through the same analysis. Lazy
  /// entries land in the local overflow map, so an adopted shared plan is
  /// never written to.
  const FlworPlan* FindFlwor(const AstNode* node) const {
    const auto& flwors = ann().flwors;
    auto it = flwors.find(node);
    if (it != flwors.end()) return &it->second;
    if (shared_ != nullptr) {
      auto local_it = local_.flwors.find(node);
      if (local_it != local_.flwors.end()) return &local_it->second;
    }
    return nullptr;
  }
  /// Non-null when `node` (a FLWOR) was fused into a compiled pipeline.
  const CompiledPipeline* FindPipeline(const AstNode* node) const {
    const auto& pipelines = ann().pipelines;
    auto it = pipelines.find(node);
    return it == pipelines.end() ? nullptr : &it->second;
  }
  /// Non-null when `node` (a kElementConstructor) was lowered into a
  /// constructor template.
  const ConstructPlan* FindConstruct(const AstNode* node) const {
    const auto& constructs = ann().constructs;
    auto it = constructs.find(node);
    return it == constructs.end() ? nullptr : &it->second;
  }

  /// Renders the plan as indented text (bench --explain, golden tests).
  std::string Explain(const ParsedQuery& query) const;
  /// Explain for a bare expression (tests).
  std::string ExplainExpr(const AstNode& expr) const;

  struct Summary {
    int hash_joins = 0;
    int band_joins = 0;
    int construct_templates = 0;
    /// Join-shaped FLWORs left on the naive nested loop (strategy toggles
    /// off, or a band shape whose let is not count-only).
    int joinable_nested_loops = 0;
    /// FLWORs fused into compiled pipelines.
    int compiled_pipelines = 0;
  };
  Summary Summarize() const;

 private:
  std::shared_ptr<const PlanAnnotations> shared_;
  PlanAnnotations local_;

 public:
  // --- per-run executor state -------------------------------------------
  std::unordered_map<const AstNode*, std::unique_ptr<HashJoinExec>>
      join_state;
  std::unordered_map<const AstNode*, std::unique_ptr<BandJoinIndex>>
      band_state;
  std::unordered_map<const AstNode*, Sequence> invariant_cache;
  /// Arena backing this run's constructed results. shared_ptr because
  /// every arena-backed ConstructedPtr in a result aliases it: the arena
  /// outlives the plan for exactly as long as results reference it.
  std::shared_ptr<NodeArena> arena;
  std::unique_ptr<ConstructExec> construct_state;
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_PLAN_H_
