#include "query/plan.h"

#include <string>

#include "query/exec.h"
#include "util/string_util.h"

namespace xmark::query {

QueryPlan::QueryPlan() = default;
QueryPlan::~QueryPlan() = default;

uint64_t OptionsFingerprint(const EvaluatorOptions& o) {
  uint64_t f = 0;
  const auto bit = [&f](bool b) { f = (f << 1) | (b ? 1u : 0u); };
  bit(o.use_id_index);
  bit(o.use_path_index);
  bit(o.use_tag_index);
  bit(o.hash_join);
  bit(o.band_join);
  bit(o.lazy_let);
  bit(o.cache_invariant_paths);
  bit(o.copy_results);
  bit(o.use_planner);
  bit(o.zero_copy_strings);
  bit(o.child_cursors);
  bit(o.descendant_cursors);
  bit(o.arena_construction);
  bit(o.parallel_exec.enabled);
  bit(o.compiled_pipelines);
  // Execution-only knobs still key the cache: simpler one-key scheme, and
  // sessions with different morsel settings just compile one entry each.
  f |= static_cast<uint64_t>(o.parallel_exec.threads & 0xffffu) << 16;
  f ^= static_cast<uint64_t>(o.parallel_exec.min_morsel_ids) << 32;
  return f;
}

const char* StepAccessName(StepPlan::Access access) {
  switch (access) {
    case StepPlan::Access::kAttribute:
      return "attribute";
    case StepPlan::Access::kSelf:
      return "self-filter";
    case StepPlan::Access::kChildrenByTag:
      return "children-by-tag";
    case StepPlan::Access::kChildCursor:
      return "child-cursor";
    case StepPlan::Access::kChildChain:
      return "child-chain";
    case StepPlan::Access::kDescendantCursor:
      return "descendant-cursor";
    case StepPlan::Access::kTagIndex:
      return "tag-index";
    case StepPlan::Access::kDescendantDfs:
      return "descendant-dfs";
  }
  return "?";
}

namespace {

// Renders the AST with the plan's annotations as indented text. The format
// is pinned by golden tests (tests/query_plan_test.cc) and parsed by the
// CI nested-loop-fallback check, so keep the `strategy=` / `summary:` line
// shapes stable.
class ExplainPrinter {
 public:
  explicit ExplainPrinter(const QueryPlan& plan) : plan_(plan) {}

  std::string Render(const ParsedQuery& query) {
    Header();
    for (const FunctionDecl& f : query.functions) {
      Line(0, "function " + f.name);
      Node(*f.body, 1);
    }
    Node(*query.body, 0);
    Footer();
    return std::move(out_);
  }

  std::string RenderExpr(const AstNode& expr) {
    Header();
    Node(expr, 0);
    Footer();
    return std::move(out_);
  }

 private:
  void Header() {
    const PlanAnnotations& a = plan_.ann();
    const EvaluatorOptions& o = a.options;
    out_ += "plan store=" + (a.store_name.empty() ? std::string("?")
                                                  : a.store_name) +
            " planner=" + (a.built_by_optimizer ? "on" : "off") + "\n";
    out_ += "scope: " +
            (a.doc_scope.empty() ? std::string("default-document")
                                 : a.doc_scope) +
            "\n";
    out_ += StringPrintf(
        "options: id-index=%d path-index=%d tag-index=%d hash-join=%d "
        "band-join=%d lazy-let=%d invariant-cache=%d child-cursors=%d "
        "descendant-cursors=%d arena-construct=%d\n",
        o.use_id_index, o.use_path_index, o.use_tag_index, o.hash_join,
        o.band_join, o.lazy_let, o.cache_invariant_paths, o.child_cursors,
        o.descendant_cursors, o.arena_construction);
    const StorageCapabilities& c = a.caps;
    out_ += StringPrintf(
        "capabilities: id-lookup=%d tag-index=%d path-index=%d "
        "children-by-tag=%d interval-descendants=%d\n",
        c.id_lookup, c.tag_index, c.path_index, c.children_by_tag,
        c.interval_descendants);
  }

  void Footer() {
    const QueryPlan::Summary s = plan_.Summarize();
    out_ += StringPrintf(
        "summary: hash-join=%d band-count-join=%d construct-template=%d "
        "joinable-nested-loop=%d compiled-pipeline=%d\n",
        s.hash_joins, s.band_joins, s.construct_templates,
        s.joinable_nested_loops, s.compiled_pipelines);
  }

  void Line(int depth, const std::string& text) {
    out_.append(static_cast<size_t>(depth) * 2, ' ');
    out_ += text;
    out_ += '\n';
  }

  static std::string StepSpec(const Step& s) {
    std::string spec;
    switch (s.axis) {
      case Axis::kChild:
        spec = "/";
        break;
      case Axis::kDescendant:
        spec = "//";
        break;
      case Axis::kAttribute:
        spec = "/@";
        break;
      case Axis::kSelf:
        spec = "/self::";
        break;
    }
    switch (s.test) {
      case Step::Test::kName:
        spec += s.name;
        break;
      case Step::Test::kWildcard:
        spec += "*";
        break;
      case Step::Test::kText:
        spec += "text()";
        break;
      case Step::Test::kAnyNode:
        spec += "node()";
        break;
    }
    if (!s.predicates.empty()) {
      spec += StringPrintf("[%zu pred]", s.predicates.size());
    }
    return spec;
  }

  // One-line spelling of a path expression: "$v/a//b[1 pred]/text()".
  static std::string PathSpec(const AstNode& n) {
    std::string spec;
    if (n.start != nullptr) {
      if (n.start->kind == AstKind::kVarRef) {
        spec += "$" + n.start->str_value;
      } else if (IsCollectionCallName(*n.start)) {
        spec += "collection()";
      } else if (IsDocCallName(*n.start)) {
        spec += "document()";
      } else {
        spec += "(...)";
      }
    }
    for (const Step& s : n.steps) spec += StepSpec(s);
    if (spec.empty()) spec = n.absolute ? "/" : ".";
    return spec;
  }

  static bool IsDocCallName(const AstNode& n) {
    return n.kind == AstKind::kFunctionCall &&
           (n.str_value == "document" || n.str_value == "doc" ||
            n.str_value == "fn:doc" || n.str_value == "collection" ||
            n.str_value == "fn:collection");
  }

  static bool IsCollectionCallName(const AstNode& n) {
    return n.kind == AstKind::kFunctionCall &&
           (n.str_value == "collection" || n.str_value == "fn:collection");
  }

  void Path(const AstNode& n, int depth) {
    std::string line = "path " + PathSpec(n);
    const PathPlan* pp = plan_.FindPath(&n);
    if (pp != nullptr) {
      line += " access=[";
      for (size_t i = 0; i < pp->steps.size(); ++i) {
        if (i > 0) line += ",";
        line += i < pp->path_index_steps
                    ? "path-index"
                    : StepAccessName(pp->steps[i].access);
        if (pp->steps[i].id_literal != nullptr) line += "+id-index";
      }
      line += "]";
      if (pp->cacheable) line += " invariant-cached";
    }
    Line(depth, line);
    if (n.start != nullptr && n.start->kind != AstKind::kVarRef &&
        !IsDocCallName(*n.start)) {
      Node(*n.start, depth + 1);
    }
    for (const Step& s : n.steps) {
      for (const AstPtr& p : s.predicates) Node(*p, depth + 1);
    }
  }

  void Flwor(const AstNode& n, int depth) {
    std::string line = "flwor strategy=";
    const FlworPlan* fp = plan_.FindFlwor(&n);
    if (fp != nullptr && fp->strategy == FlworPlan::Strategy::kHashJoin) {
      line += "hash-join key=" + PathSpecOf(fp->hash.inner_key) +
              " probe=" + PathSpecOf(fp->hash.outer_key);
      if (!fp->hash.residue.empty()) {
        line += StringPrintf(" residue=%zu", fp->hash.residue.size());
      }
    } else {
      line += "nested-loop";
      if (fp != nullptr && fp->join_shape) line += " (joinable!)";
      if (fp != nullptr && fp->band_shape &&
          plan_.ann().band_lets.find(&n) == plan_.ann().band_lets.end()) {
        line += " (band-shape)";
      }
    }
    Line(depth, line);
    const CompiledPipeline* pipe = plan_.FindPipeline(&n);
    if (pipe != nullptr) {
      Line(depth + 1, StringPrintf("pipeline %zu fused=[%s]",
                                   pipe->pipeline_id, pipe->stages.c_str()));
    }
    for (const ForLetClause& c : n.clauses) {
      const BandJoinPlan* band =
          c.is_let && c.expr ? plan_.FindBandLet(c.expr.get()) : nullptr;
      if (band != nullptr) {
        Line(depth + 1,
             "let $" + c.var + " := band-count-join op=" +
                 BinaryOpName(band->op) +
                 " domain=" + PathSpecOf(band->domain) +
                 " [sort domain keys once, binary-search each probe]");
        Node(*c.expr, depth + 2);
        continue;
      }
      Line(depth + 1, (c.is_let ? "let $" : "for $") + c.var + " :=");
      if (c.expr) Node(*c.expr, depth + 2);
    }
    if (n.where) {
      Line(depth + 1, "where");
      Node(*n.where, depth + 2);
    }
    for (const OrderSpec& o : n.order_by) {
      Line(depth + 1, o.descending ? "order-by descending" : "order-by");
      Node(*o.key, depth + 2);
    }
    if (n.ret) {
      Line(depth + 1, "return");
      Node(*n.ret, depth + 2);
    }
  }

  static std::string PathSpecOf(const AstNode* n) {
    if (n == nullptr) return "?";
    if (n->kind == AstKind::kPath) return PathSpec(*n);
    if (n->kind == AstKind::kVarRef) return "$" + n->str_value;
    if (n->kind == AstKind::kBinary) {
      return std::string("(") + PathSpecOf(n->args[0].get()) + " " +
             BinaryOpName(n->op) + " " + PathSpecOf(n->args[1].get()) + ")";
    }
    if (n->kind == AstKind::kNumberLiteral) {
      return StringPrintf("%g", n->num_value);
    }
    if (n->kind == AstKind::kStringLiteral) return "\"" + n->str_value + "\"";
    return "(...)";
  }

  void Node(const AstNode& n, int depth) {
    switch (n.kind) {
      case AstKind::kPath:
        Path(n, depth);
        return;
      case AstKind::kFlwor:
        Flwor(n, depth);
        return;
      case AstKind::kQuantified: {
        Line(depth, n.is_every ? "every" : "some");
        for (const ForLetClause& c : n.clauses) {
          Line(depth + 1, "for $" + c.var + " in");
          if (c.expr) Node(*c.expr, depth + 2);
        }
        if (n.where) {
          Line(depth + 1, "satisfies");
          Node(*n.where, depth + 2);
        }
        return;
      }
      case AstKind::kBinary: {
        Line(depth, std::string("op ") + BinaryOpName(n.op));
        for (const AstPtr& a : n.args) Node(*a, depth + 1);
        return;
      }
      case AstKind::kFunctionCall: {
        Line(depth, "call " + n.str_value);
        for (const AstPtr& a : n.args) Node(*a, depth + 1);
        return;
      }
      case AstKind::kElementConstructor: {
        std::string line = "constructor <" + n.tag + ">";
        const ConstructPlan* cp = plan_.FindConstruct(&n);
        if (cp != nullptr) {
          // Arena template: the static shell (nested elements, constant
          // attrs/text) is instantiated per binding from one per-run
          // compiled form; only the holes are evaluated dynamically.
          line += StringPrintf(
              " template=[elements=%zu const-text=%zu holes=%zu "
              "const-attrs=%zu dyn-attrs=%zu]",
              cp->elements.size(), cp->const_texts.size(), cp->hole_count,
              cp->const_attr_count, cp->dyn_attr_count);
        }
        Line(depth, line);
        for (const AttrConstructor& attr : n.attrs) {
          for (const AttrPart& part : attr.parts) {
            if (part.expr) Node(*part.expr, depth + 1);
          }
        }
        for (const AstPtr& c : n.content) Node(*c, depth + 1);
        return;
      }
      case AstKind::kIf: {
        Line(depth, "if");
        for (const AstPtr& a : n.args) Node(*a, depth + 1);
        return;
      }
      case AstKind::kSequenceExpr: {
        Line(depth, "sequence");
        for (const AstPtr& a : n.args) Node(*a, depth + 1);
        return;
      }
      case AstKind::kUnaryMinus: {
        Line(depth, "negate");
        Node(*n.args[0], depth + 1);
        return;
      }
      case AstKind::kVarRef:
        Line(depth, "var $" + n.str_value);
        return;
      case AstKind::kStringLiteral:
        Line(depth, "literal \"" + n.str_value + "\"");
        return;
      case AstKind::kNumberLiteral:
        Line(depth, StringPrintf("literal %g", n.num_value));
        return;
      case AstKind::kContextItem:
        Line(depth, "context-item");
        return;
    }
    Line(depth, "expr");
  }

  const QueryPlan& plan_;
  std::string out_;
};

}  // namespace

std::string QueryPlan::Explain(const ParsedQuery& query) const {
  return ExplainPrinter(*this).Render(query);
}

std::string QueryPlan::ExplainExpr(const AstNode& expr) const {
  return ExplainPrinter(*this).RenderExpr(expr);
}

QueryPlan::Summary QueryPlan::Summarize() const {
  const PlanAnnotations& a = ann();
  Summary s;
  s.band_joins = static_cast<int>(a.band_lets.size());
  s.construct_templates = static_cast<int>(a.constructs.size());
  s.compiled_pipelines = static_cast<int>(a.pipelines.size());
  for (const auto& [node, fp] : a.flwors) {
    if (fp.strategy == FlworPlan::Strategy::kHashJoin) {
      ++s.hash_joins;
    } else if (fp.join_shape) {
      ++s.joinable_nested_loops;  // decorrelatable but toggled off
    } else if (fp.band_shape &&
               a.band_lets.find(node) == a.band_lets.end()) {
      ++s.joinable_nested_loops;  // band shape not converted
    }
  }
  return s;
}

}  // namespace xmark::query
