#include "query/exec.h"

#include <algorithm>
#include <cmath>

#include "util/string_util.h"

namespace xmark::query {

// ---------------------------------------------------------------------------
// NodeScan
// ---------------------------------------------------------------------------

void NodeScan::Open(const StorageAdapter* store, NodeHandle base,
                    StepPlan::Access access, ChildFilter filter,
                    xml::NameId tag, bool child_cursors, EvalStats* stats) {
  store_ = store;
  stats_ = stats;
  child_cursors_ = child_cursors;
  filter_ = filter;
  tag_ = tag;
  materialized_.clear();
  materialized_pos_ = 0;
  switch (access) {
    case StepPlan::Access::kChildrenByTag: {
      auto direct = store->ChildrenByTag(base, tag);
      if (direct.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*direct);
        mode_ = Mode::kMaterialized;
        return;
      }
      // The physical layout does not cover this node: scan its children
      // the way the options allow.
      if (!child_cursors_) {
        chain_ = store->FirstChild(base);
        mode_ = Mode::kChildChain;
        return;
      }
      [[fallthrough]];
    }
    case StepPlan::Access::kChildCursor:
      store->OpenChildCursor(base, filter, tag, &child_cursor_);
      ++stats->cursor_scans;
      mode_ = Mode::kChildCursor;
      return;
    case StepPlan::Access::kChildChain:
      chain_ = store->FirstChild(base);
      mode_ = Mode::kChildChain;
      return;
    case StepPlan::Access::kDescendantCursor:
      store->OpenDescendantCursor(base, filter, tag, &descendant_cursor_);
      ++stats->descendant_scans;
      mode_ = Mode::kDescendantCursor;
      return;
    case StepPlan::Access::kTagIndex: {
      auto from_index = store->DescendantsByTag(base, tag);
      if (from_index.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*from_index);
        mode_ = Mode::kMaterialized;
        return;
      }
      OpenDfs(base);
      return;
    }
    case StepPlan::Access::kDescendantDfs:
      OpenDfs(base);
      return;
    case StepPlan::Access::kAttribute:
    case StepPlan::Access::kSelf:
      mode_ = Mode::kDone;
      return;
  }
  mode_ = Mode::kDone;
}

// Children of `parent` in document order, gathered with one batched
// cursor scan when cursors are enabled (no virtual call pair per child),
// otherwise with the generic sibling chain.
void NodeScan::CollectChildren(NodeHandle parent,
                               std::vector<NodeHandle>* out) {
  if (child_cursors_) {
    ChildCursor cur;
    store_->OpenChildCursor(parent, ChildFilter::kAll, xml::kInvalidName,
                            &cur);
    ++stats_->cursor_scans;
    constexpr size_t kBatch = 64;
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      out->insert(out->end(), buf, buf + n);
    }
  } else {
    for (NodeHandle c = store_->FirstChild(parent); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      out->push_back(c);
    }
  }
}

void NodeScan::OpenDfs(NodeHandle base) {
  mode_ = Mode::kDescendantDfs;
  dfs_stack_.clear();
  dfs_kids_.clear();
  // Seed with the base's children in reverse so popping emits document
  // order.
  CollectChildren(base, &dfs_stack_);
  std::reverse(dfs_stack_.begin(), dfs_stack_.end());
}

size_t NodeScan::FillDfs(NodeHandle* out, size_t cap) {
  size_t n = 0;
  while (n < cap && !dfs_stack_.empty()) {
    const NodeHandle node = dfs_stack_.back();
    dfs_stack_.pop_back();
    ++stats_->nodes_visited;
    const xml::NameId node_tag = store_->NameOf(node);
    if (MatchesChildFilter(filter_, node_tag, tag_)) out[n++] = node;
    if (node_tag == xml::kInvalidName) continue;  // text leaf
    // Push children in reverse so the DFS emits document order.
    dfs_kids_.clear();
    CollectChildren(node, &dfs_kids_);
    for (auto it = dfs_kids_.rbegin(); it != dfs_kids_.rend(); ++it) {
      dfs_stack_.push_back(*it);
    }
  }
  if (dfs_stack_.empty() && n == 0) mode_ = Mode::kDone;
  return n;
}

size_t NodeScan::Fill(NodeHandle* out, size_t cap) {
  switch (mode_) {
    case Mode::kDone:
      return 0;
    case Mode::kChildCursor: {
      const size_t n = child_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantCursor: {
      const size_t n = descendant_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kChildChain: {
      size_t n = 0;
      NodeHandle c = chain_;
      while (n < cap && c != kInvalidHandle) {
        ++stats_->nodes_visited;
        if (MatchesChildFilter(filter_, store_->NameOf(c), tag_)) {
          out[n++] = c;
        }
        c = store_->NextSibling(c);
      }
      chain_ = c;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantDfs:
      return FillDfs(out, cap);
    case Mode::kMaterialized: {
      const size_t n =
          std::min(cap, materialized_.size() - materialized_pos_);
      std::copy_n(materialized_.begin() + materialized_pos_, n, out);
      materialized_pos_ += n;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// HashJoinExec
// ---------------------------------------------------------------------------

Status HashJoinExec::Build(const HashJoinPlan& plan, size_t slot_count,
                           const EvalFn& eval, EvalStats* stats) {
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence bindings,
                         eval(*plan.in_expr, inner_env, nullptr));
  bindings_ = std::move(bindings);
  for (size_t i = 0; i < bindings_.size(); ++i) {
    inner_env.Push(plan.var_slot, Sequence{bindings_[i]});
    XMARK_ASSIGN_OR_RETURN(Sequence keys,
                           eval(*plan.inner_key, inner_env, nullptr));
    inner_env.Pop();
    for (const Item& k : keys) {
      index_.emplace(ItemStringValue(k), i);
    }
  }
  ++stats->hash_joins_built;
  return Status::OK();
}

void HashJoinExec::Probe(std::string_view key,
                         std::vector<size_t>* rows) const {
  auto [begin, end] = index_.equal_range(key);
  for (auto m = begin; m != end; ++m) rows->push_back(m->second);
}

// ---------------------------------------------------------------------------
// BandJoinIndex
// ---------------------------------------------------------------------------

std::optional<double> BandNumericValue(const Item& item,
                                       std::string* scratch) {
  if (item.is_number()) return item.number();
  if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
  return ParseDouble(ItemStringView(item, scratch));
}

Status BandJoinIndex::Build(const BandJoinPlan& plan, size_t slot_count,
                            const EvalFn& eval, EvalStats* stats) {
  valid_ = false;
  keys_.clear();
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence domain,
                         eval(*plan.domain, inner_env, nullptr));
  raw_domain_size_ = domain.size();
  keys_.reserve(domain.size());
  std::string scratch;
  for (const Item& binding : domain) {
    inner_env.Push(plan.var_slot, Sequence{binding});
    auto value = eval(*plan.inner_expr, inner_env, nullptr);
    inner_env.Pop();
    if (!value.ok()) return Status::OK();  // invalid: nested-loop fallback
    if (value->empty()) continue;  // empty inner side never matches
    const auto num = BandNumericValue(value->front(), &scratch);
    if (!num.has_value()) return Status::OK();  // non-numeric: fall back
    if (std::isnan(*num)) continue;  // NaN compares false against anything
    keys_.push_back(*num);
  }
  std::sort(keys_.begin(), keys_.end());
  valid_ = true;
  ++stats->band_joins_built;
  return Status::OK();
}

int64_t BandJoinIndex::ProbeCount(double probe, BinaryOp op) const {
  if (std::isnan(probe)) return 0;
  const auto lower =
      std::lower_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto upper =
      std::upper_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto n = static_cast<int64_t>(keys_.size());
  switch (op) {
    case BinaryOp::kGt:  // probe > key: keys strictly below the probe
      return lower;
    case BinaryOp::kGe:
      return upper;
    case BinaryOp::kLt:  // probe < key: keys strictly above the probe
      return n - upper;
    case BinaryOp::kLe:
      return n - lower;
    default:
      return 0;
  }
}

}  // namespace xmark::query
