#include "query/exec.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <utility>

#include "query/pipeline.h"
#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xmark::query {
namespace {

// Morsel dispatch backs off to a serial drain once this many tasks are
// already in flight on the pool: far above anything a healthy run reaches
// (one drain submits ~4 chunks per worker), low enough that a pathological
// fan-out degrades instead of queueing unboundedly.
constexpr size_t kMaxPendingMorselTasks = 1024;

}  // namespace

// ---------------------------------------------------------------------------
// NodeScan
// ---------------------------------------------------------------------------

Status NodeScan::Open(const StorageAdapter* store, NodeHandle base,
                      StepPlan::Access access, ChildFilter filter,
                      xml::NameId tag, bool child_cursors, EvalStats* stats,
                      ThreadPool* pool, size_t min_morsel_ids,
                      ExecContext* ctx) {
  store_ = store;
  stats_ = stats;
  child_cursors_ = child_cursors;
  filter_ = filter;
  tag_ = tag;
  materialized_.clear();
  materialized_pos_ = 0;
  switch (access) {
    case StepPlan::Access::kChildrenByTag: {
      auto direct = store->ChildrenByTag(base, tag);
      if (direct.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*direct);
        mode_ = Mode::kMaterialized;
        return Status::OK();
      }
      // The physical layout does not cover this node: scan its children
      // the way the options allow.
      if (!child_cursors_) {
        chain_ = store->FirstChild(base);
        mode_ = Mode::kChildChain;
        return Status::OK();
      }
      [[fallthrough]];
    }
    case StepPlan::Access::kChildCursor:
      store->OpenChildCursor(base, filter, tag, &child_cursor_);
      ++stats->cursor_scans;
      mode_ = Mode::kChildCursor;
      return Status::OK();
    case StepPlan::Access::kChildChain:
      chain_ = store->FirstChild(base);
      mode_ = Mode::kChildChain;
      return Status::OK();
    case StepPlan::Access::kDescendantCursor: {
      store->OpenDescendantCursor(base, filter, tag, &descendant_cursor_);
      ++stats->descendant_scans;
      mode_ = Mode::kDescendantCursor;
      const uint64_t span = descendant_cursor_.u1 > descendant_cursor_.u0
                                ? descendant_cursor_.u1 - descendant_cursor_.u0
                                : 0;
      if (pool != nullptr && pool->worker_count() > 1 &&
          min_morsel_ids > 0 && span >= min_morsel_ids &&
          store->DescendantCursorPartitionable(descendant_cursor_)) {
        return DrainMorsels(pool, span, ctx);
      }
      return Status::OK();
    }
    case StepPlan::Access::kTagIndex: {
      auto from_index = store->DescendantsByTag(base, tag);
      if (from_index.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*from_index);
        mode_ = Mode::kMaterialized;
        return Status::OK();
      }
      OpenDfs(base);
      return Status::OK();
    }
    case StepPlan::Access::kDescendantDfs:
      OpenDfs(base);
      return Status::OK();
    case StepPlan::Access::kAttribute:
    case StepPlan::Access::kSelf:
      mode_ = Mode::kDone;
      return Status::OK();
  }
  mode_ = Mode::kDone;
  return Status::OK();
}

// Morsel-parallel drain of a partitionable descendant cursor: split the
// cursor's [u0, u1) position interval into deterministic chunks
// (ChunkBounds depends only on span and worker count), drain each chunk
// through a clamped COPY of the open cursor into a private buffer, then
// concatenate the buffers in chunk order. Because the store declared the
// cursor partitionable, every chunk emits exactly the serial scan's
// matches for its sub-range, in order — so the concatenation is
// byte-identical to the serial drain for any chunking. Workers touch no
// shared state beyond the per-chunk status/abort slots (stats are settled
// once below), and the scan converts to kMaterialized so Fill never
// consults the cursor again.
//
// Error path: a worker that fails (governance check, injected fault)
// records its Status in its chunk slot and raises the shared abort flag;
// sibling morsels observe the flag at their next batch and stop early.
// After the barrier the first non-OK slot in chunk order is returned —
// deterministic because a governed failure is sticky on the ExecContext
// (every failing chunk reports the same Status) and an injected fault
// fires in exactly one chunk.
Status NodeScan::DrainMorsels(ThreadPool* pool, uint64_t span,
                              ExecContext* ctx) {
  const std::vector<size_t> bounds =
      ChunkBounds(static_cast<size_t>(span), pool->worker_count());
  const size_t chunks = bounds.size() - 1;
  std::vector<std::vector<NodeHandle>> parts(chunks);
  std::vector<Status> statuses(chunks);
  std::atomic<bool> abort{false};
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  auto drain_chunk = [this, &bounds, &parts, &statuses, &abort, ctx,
                      budget](size_t k) {
    if (abort.load(std::memory_order_relaxed)) return;  // sibling failed
    // Workers charge their private buffers to the run's shared budget.
    ScopedMemoryBudget install(budget);
    DescendantCursor cur = descendant_cursor_;  // clamped copy
    const uint64_t origin = descendant_cursor_.u0;
    cur.u0 = origin + bounds[k];
    cur.u1 = origin + bounds[k + 1];
    std::vector<NodeHandle>& out = parts[k];
    constexpr size_t kBatch = 256;
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      if (XMARK_FAULT_POINT("exec/morsel_drain")) {
        statuses[k] =
            Status::ResourceExhausted("fault injection: exec/morsel_drain");
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      out.insert(out.end(), buf, buf + n);
      if (budget != nullptr) budget->Charge(n * sizeof(NodeHandle));
      if (ctx != nullptr) {
        Status st = ctx->Check();
        if (!st.ok()) {
          statuses[k] = std::move(st);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (abort.load(std::memory_order_relaxed)) return;
    }
  };
  for (size_t k = 0; k < chunks; ++k) {
    if (bounds[k] == bounds[k + 1]) continue;
    std::function<void()> task = [&drain_chunk, k] { drain_chunk(k); };
    // Admission-controlled dispatch: a saturated (or fault-injected) pool
    // degrades to draining the chunk on the caller — same chunk-order
    // concatenation, so the output is identical, just less parallel.
    if (!pool->TrySubmit(task, kMaxPendingMorselTasks)) drain_chunk(k);
  }
  pool->Wait();
  for (size_t k = 0; k < chunks; ++k) {
    XMARK_RETURN_IF_ERROR(statuses[k]);
  }
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  materialized_.clear();
  materialized_.reserve(total);
  for (const auto& p : parts) {
    materialized_.insert(materialized_.end(), p.begin(), p.end());
  }
  // Serial parity: the serial descendant drain counts one visited node per
  // emitted match (cursor Fill adds the match count per batch).
  stats_->nodes_visited += static_cast<int64_t>(total);
  materialized_pos_ = 0;
  mode_ = Mode::kMaterialized;
  return Status::OK();
}

// Children of `parent` in document order, gathered with one batched
// cursor scan when cursors are enabled (no virtual call pair per child),
// otherwise with the generic sibling chain.
void NodeScan::CollectChildren(NodeHandle parent,
                               std::vector<NodeHandle>* out) {
  if (child_cursors_) {
    ChildCursor cur;
    store_->OpenChildCursor(parent, ChildFilter::kAll, xml::kInvalidName,
                            &cur);
    ++stats_->cursor_scans;
    constexpr size_t kBatch = 64;
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      out->insert(out->end(), buf, buf + n);
    }
  } else {
    for (NodeHandle c = store_->FirstChild(parent); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      out->push_back(c);
    }
  }
}

void NodeScan::OpenDfs(NodeHandle base) {
  mode_ = Mode::kDescendantDfs;
  dfs_stack_.clear();
  dfs_kids_.clear();
  // Seed with the base's children in reverse so popping emits document
  // order.
  CollectChildren(base, &dfs_stack_);
  std::reverse(dfs_stack_.begin(), dfs_stack_.end());
}

size_t NodeScan::FillDfs(NodeHandle* out, size_t cap) {
  size_t n = 0;
  while (n < cap && !dfs_stack_.empty()) {
    const NodeHandle node = dfs_stack_.back();
    dfs_stack_.pop_back();
    ++stats_->nodes_visited;
    const xml::NameId node_tag = store_->NameOf(node);
    if (MatchesChildFilter(filter_, node_tag, tag_)) out[n++] = node;
    if (node_tag == xml::kInvalidName) continue;  // text leaf
    // Push children in reverse so the DFS emits document order.
    dfs_kids_.clear();
    CollectChildren(node, &dfs_kids_);
    for (auto it = dfs_kids_.rbegin(); it != dfs_kids_.rend(); ++it) {
      dfs_stack_.push_back(*it);
    }
  }
  if (dfs_stack_.empty() && n == 0) mode_ = Mode::kDone;
  return n;
}

size_t NodeScan::Fill(NodeHandle* out, size_t cap) {
  const size_t n = FillBatch(out, cap);
  // Every non-empty generic batch counts: virtual_batches is the
  // denominator the bench reports against pipeline_batches_fused.
  if (n > 0) ++stats_->virtual_batches;
  return n;
}

size_t NodeScan::FillBatch(NodeHandle* out, size_t cap) {
  switch (mode_) {
    case Mode::kDone:
      return 0;
    case Mode::kChildCursor: {
      const size_t n = child_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantCursor: {
      const size_t n = descendant_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kChildChain: {
      size_t n = 0;
      NodeHandle c = chain_;
      while (n < cap && c != kInvalidHandle) {
        ++stats_->nodes_visited;
        if (MatchesChildFilter(filter_, store_->NameOf(c), tag_)) {
          out[n++] = c;
        }
        c = store_->NextSibling(c);
      }
      chain_ = c;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantDfs:
      return FillDfs(out, cap);
    case Mode::kMaterialized: {
      const size_t n =
          std::min(cap, materialized_.size() - materialized_pos_);
      std::copy_n(materialized_.begin() + materialized_pos_, n, out);
      materialized_pos_ += n;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// PipelineExec
// ---------------------------------------------------------------------------
//
// The executor half of compiled pipelines. The plan-time pass
// (query/pipeline.cc) proved the FLWOR equivalent to scan → [id filter] →
// [where predicate] → emit over child-name walks, so everything here is
// written against that grammar only — and every semantic choice below
// replicates the generic evaluator exactly:
//   - string-values come from TextView for text nodes and a reused
//     AppendStringValue scratch for elements (ItemStringView's node
//     branch);
//   - the fused comparison is the evaluator's untyped general comparison:
//     existential over all predicate-path matches, numeric when the
//     literal is a number (ParseDouble failure → that pair is false),
//     lexicographic string compare otherwise;
//   - contains/starts-with consume only the FIRST predicate-path match
//     (arg_view takes seq.front(); an empty result is the empty string);
//   - all walks enumerate child levels in cursor order, which equals the
//     generic level-by-level batch order (child steps expand each node's
//     matches contiguously, so last-level concatenation IS the DFS order).

namespace {

// Per-drain state: the pipeline, the store, and the element string-value
// scratch buffer. One instance per thread — morsel workers get their own
// (the scratch must never be shared across chunks).
struct PipeCtx {
  const CompiledPipeline* pipe;
  const StorageAdapter* store;
  std::string scratch;
};

// Serial-drain stat deltas, settled into the shared EvalStats once per
// drain (morsel workers must not touch the shared struct).
struct PipeDrainStats {
  int64_t batches = 0;     // fused batches flushed
  int64_t candidates = 0;  // tag-matched nodes through the fused loop
};

// String-value of one stored node, mirroring ItemStringView's node branch.
std::string_view PipeNodeView(const StorageAdapter* store, NodeHandle n,
                              std::string* scratch) {
  if (!store->IsElement(n)) return store->TextView(n);
  scratch->clear();
  store->AppendStringValue(n, scratch);
  return *scratch;
}

// Invokes `fn` on every node the pipeline's predicate path selects from
// `node`, in document order; `fn` returns true to stop early (existential
// short-circuit / first-match). Returns whether a call stopped the walk.
template <typename Fn>
bool ForEachPathNode(const StorageAdapter* store,
                     const std::vector<xml::NameId>& path, bool text_tail,
                     NodeHandle node, size_t depth, const Fn& fn) {
  constexpr size_t kBatch = 16;
  NodeHandle buf[kBatch];
  size_t n;
  if (depth == path.size()) {
    if (!text_tail) return fn(node);
    ChildCursor cur;
    store->OpenChildCursor(node, ChildFilter::kText, xml::kInvalidName, &cur);
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        if (fn(buf[i])) return true;
      }
    }
    return false;
  }
  ChildCursor cur;
  store->OpenChildCursor(node, ChildFilter::kTag, path[depth], &cur);
  while ((n = cur.Fill(buf, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) {
      if (ForEachPathNode(store, path, text_tail, buf[i], depth + 1, fn)) {
        return true;
      }
    }
  }
  return false;
}

// First predicate-path value of `cand`, or the empty string when the path
// selects nothing (the evaluator's arg_view of an empty sequence).
std::string_view FirstPathValue(PipeCtx& cx, NodeHandle cand) {
  std::string_view view{};
  ForEachPathNode(cx.store, cx.pipe->filter_path, cx.pipe->filter_path_text,
                  cand, 0, [&](NodeHandle v) {
                    view = PipeNodeView(cx.store, v, &cx.scratch);
                    return true;
                  });
  return view;
}

// CompareResult twin (the evaluator's copy is file-local to evaluator.cc).
bool PipeCompareResult(int cmp, BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

// --- Per-candidate filter policies (the monomorphic loop bodies) --------

struct AlwaysMatch {
  static bool Match(PipeCtx&, NodeHandle) { return true; }
};

struct ContainsMatch {
  static bool Match(PipeCtx& cx, NodeHandle cand) {
    return Contains(FirstPathValue(cx, cand), cx.pipe->needle);
  }
};

struct StartsWithMatch {
  static bool Match(PipeCtx& cx, NodeHandle cand) {
    return StartsWith(FirstPathValue(cx, cand), cx.pipe->needle);
  }
};

// `<path> OP literal`, existential over every path match, with the
// evaluator's untyped coercion: numeric when the literal is a number
// (non-numeric path values make that pair false, never an error), string
// comparison otherwise.
template <BinaryOp OP, bool NUMERIC>
struct CompareMatch {
  static bool Match(PipeCtx& cx, NodeHandle cand) {
    return ForEachPathNode(
        cx.store, cx.pipe->filter_path, cx.pipe->filter_path_text, cand, 0,
        [&](NodeHandle v) {
          const std::string_view view = PipeNodeView(cx.store, v, &cx.scratch);
          int cmp;
          if constexpr (NUMERIC) {
            const std::optional<double> num = ParseDouble(view);
            if (!num.has_value()) return false;  // pair is false; keep going
            const double b = cx.pipe->cmp_number;
            cmp = (*num < b) ? -1 : (*num > b ? 1 : 0);
          } else {
            cmp = static_cast<int>(view.compare(cx.pipe->cmp_str));
          }
          return PipeCompareResult(cmp, OP);
        });
  }
};

// --- Emission -----------------------------------------------------------

// Emits the pipeline's tail path (kTailNodes) from one surviving binding,
// in the generic path's order (see the order note atop this section).
void EmitTail(PipeCtx& cx, NodeHandle node, size_t depth, Sequence* out) {
  const std::vector<xml::NameId>& tail = cx.pipe->tail;
  constexpr size_t kBatch = 16;
  NodeHandle buf[kBatch];
  size_t n;
  if (depth == tail.size()) {
    if (!cx.pipe->tail_text) {
      out->emplace_back(NodeRef{cx.store, node});
      return;
    }
    ChildCursor cur;
    cx.store->OpenChildCursor(node, ChildFilter::kText, xml::kInvalidName,
                              &cur);
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      for (size_t i = 0; i < n; ++i) {
        out->emplace_back(NodeRef{cx.store, buf[i]});
      }
    }
    return;
  }
  ChildCursor cur;
  cx.store->OpenChildCursor(node, ChildFilter::kTag, tail[depth], &cur);
  while ((n = cur.Fill(buf, kBatch)) > 0) {
    for (size_t i = 0; i < n; ++i) EmitTail(cx, buf[i], depth + 1, out);
  }
}

// One surviving binding's contribution to the result. RAW selects the
// dense-preorder count loop for kCount (the store advertised RawTagArray
// at plan time, and plan + execution see the same store).
template <bool RAW>
void EmitOne(PipeCtx& cx, NodeHandle cand, Sequence* out) {
  const CompiledPipeline& pipe = *cx.pipe;
  switch (pipe.emit) {
    case CompiledPipeline::Emit::kVar:
      out->emplace_back(NodeRef{cx.store, cand});
      return;
    case CompiledPipeline::Emit::kTailNodes:
      EmitTail(cx, cand, 0, out);
      return;
    case CompiledPipeline::Emit::kCount: {
      int64_t count = 0;
      if constexpr (RAW) {
        const xml::NameId* tags = cx.store->RawTagArray();
        const NodeHandle end = cx.store->RawSubtreeEnd(cand);
        for (NodeHandle i = cand + 1; i < end; ++i) {
          count += tags[i] == pipe.count_tag ? 1 : 0;
        }
      } else {
        DescendantCursor cur;
        cx.store->OpenDescendantCursor(cand, ChildFilter::kTag, pipe.count_tag,
                                       &cur);
        constexpr size_t kBatch = 256;
        NodeHandle buf[kBatch];
        size_t n;
        while ((n = cur.Fill(buf, kBatch)) > 0) {
          count += static_cast<int64_t>(n);
        }
      }
      out->emplace_back(static_cast<double>(count));
      return;
    }
  }
}

// The fused filter → emit loop over one batch of tag-matched candidates:
// one monomorphic instantiation per dispatch slot, selected once per run
// from the table below — no virtual call, no branch on filter kind, no
// intermediate Sequence.
using EmitBatchFn = void (*)(PipeCtx&, const NodeHandle*, size_t, Sequence*);

template <typename Policy, bool RAW>
void EmitBatch(PipeCtx& cx, const NodeHandle* batch, size_t n,
               Sequence* out) {
  for (size_t i = 0; i < n; ++i) {
    if (Policy::Match(cx, batch[i])) EmitOne<RAW>(cx, batch[i], out);
  }
}

// Maps a filter slot of the dispatch word to its policy type. Slots 3+ are
// the (comparison op, string|numeric) grid laid out by PipelineDispatch.
template <uint32_t SLOT>
struct PipeFilterPolicy {
  static_assert(SLOT >= 3 && SLOT < kPipelineRawBit);
  using Type = CompareMatch<
      static_cast<BinaryOp>(static_cast<uint32_t>(BinaryOp::kEq) +
                            (SLOT - 3) / 2),
      (SLOT - 3) % 2 == 1>;
};
template <>
struct PipeFilterPolicy<0> {
  using Type = AlwaysMatch;
};
template <>
struct PipeFilterPolicy<1> {
  using Type = ContainsMatch;
};
template <>
struct PipeFilterPolicy<2> {
  using Type = StartsWithMatch;
};

template <uint32_t... SLOT>
constexpr std::array<EmitBatchFn, kPipelineDispatchSlots> MakeEmitTable(
    std::integer_sequence<uint32_t, SLOT...>) {
  return {{&EmitBatch<
      typename PipeFilterPolicy<SLOT & (kPipelineRawBit - 1)>::Type,
      (SLOT & kPipelineRawBit) != 0>...}};
}

// The plan-time dispatch table: pipeline.cc computed an index into this
// array when it proved the shape; Run picks the instantiation with one
// load. (Slot 15 of each half is padding — PipelineDispatch never
// produces it.)
constexpr std::array<EmitBatchFn, kPipelineDispatchSlots> kEmitTable =
    MakeEmitTable(std::make_integer_sequence<uint32_t,
                                             kPipelineDispatchSlots>{});

// Flushes one candidate batch through the fused loop, with the same
// per-batch cooperation the generic drain has: the pipeline fault site,
// the governance check, the fused-batch accounting.
Status FlushFused(PipeCtx& cx, EmitBatchFn emit, const NodeHandle* buf,
                  size_t n, Sequence* out, ExecContext* ctx,
                  PipeDrainStats* ds) {
  if (n == 0) return Status::OK();
  if (XMARK_FAULT_POINT("exec/pipeline_drain")) {
    return Status::ResourceExhausted("fault injection: exec/pipeline_drain");
  }
  ++ds->batches;
  ds->candidates += static_cast<int64_t>(n);
  emit(cx, buf, n, out);
  if (ctx != nullptr) return ctx->Check();
  return Status::OK();
}

// Serial fused drain over a raw preorder id interval: the tag compare runs
// directly against the store's dense tag array; matches flush in batches.
// `abort` (nullable) is the sibling-failure flag of a morsel drain.
Status DrainDescRaw(PipeCtx& cx, EmitBatchFn emit, NodeHandle from,
                    NodeHandle to, Sequence* out, ExecContext* ctx,
                    PipeDrainStats* ds, const std::atomic<bool>* abort) {
  const xml::NameId* tags = cx.store->RawTagArray();
  const xml::NameId want = cx.pipe->scan_tag;
  constexpr size_t kBatch = 256;
  // Forces a governance check at least this often even through long
  // match-free id runs (matches alone would starve the check cadence).
  constexpr uint64_t kCheckStride = 4096;
  NodeHandle buf[kBatch];
  size_t n = 0;
  uint64_t since_check = 0;
  for (NodeHandle i = from; i < to; ++i) {
    if (tags[i] == want) {
      buf[n++] = i;
      if (n == kBatch) {
        XMARK_RETURN_IF_ERROR(FlushFused(cx, emit, buf, n, out, ctx, ds));
        n = 0;
        since_check = 0;
        if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
          return Status::OK();
        }
      }
    }
    if (++since_check >= kCheckStride) {
      since_check = 0;
      if (ctx != nullptr) XMARK_RETURN_IF_ERROR(ctx->Check());
      if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
        return Status::OK();
      }
    }
  }
  return FlushFused(cx, emit, buf, n, out, ctx, ds);
}

// Serial fused drain of an open descendant cursor.
Status DrainDescCursor(PipeCtx& cx, EmitBatchFn emit, DescendantCursor* cur,
                       Sequence* out, ExecContext* ctx, PipeDrainStats* ds,
                       const std::atomic<bool>* abort) {
  constexpr size_t kBatch = 256;
  NodeHandle buf[kBatch];
  size_t n;
  while ((n = cur->Fill(buf, kBatch)) > 0) {
    XMARK_RETURN_IF_ERROR(FlushFused(cx, emit, buf, n, out, ctx, ds));
    if (abort != nullptr && abort->load(std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
  return Status::OK();
}

// Morsel-parallel fused descendant drain, mirroring NodeScan::DrainMorsels
// chunk for chunk: deterministic ChunkBounds over the id span, one private
// PipeCtx + result Sequence per chunk (scratch buffers and emission never
// cross threads), admission-controlled TrySubmit with inline fallback,
// abort flag + sticky-context convergence for deterministic first failure,
// chunk-order concatenation (= serial order, since chunks cover ascending
// id ranges and each candidate's emission is contiguous). Stat deltas are
// settled on the caller after the barrier.
Status DrainDescMorsels(const CompiledPipeline& pipe,
                        const StorageAdapter* store, EmitBatchFn emit,
                        bool raw, NodeHandle raw_from,
                        const DescendantCursor* proto, uint64_t span,
                        ThreadPool* pool, ExecContext* ctx, Sequence* out,
                        PipeDrainStats* ds) {
  const std::vector<size_t> bounds =
      ChunkBounds(static_cast<size_t>(span), pool->worker_count());
  const size_t chunks = bounds.size() - 1;
  std::vector<Sequence> parts(chunks);
  std::vector<PipeDrainStats> part_stats(chunks);
  std::vector<Status> statuses(chunks);
  std::atomic<bool> abort{false};
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  auto drain_chunk = [&pipe, store, emit, raw, raw_from, proto, &bounds,
                      &parts, &part_stats, &statuses, &abort, ctx,
                      budget](size_t k) {
    if (abort.load(std::memory_order_relaxed)) return;  // sibling failed
    ScopedMemoryBudget install(budget);
    PipeCtx cx{&pipe, store, {}};
    Status st;
    if (raw) {
      st = DrainDescRaw(cx, emit, raw_from + bounds[k],
                        raw_from + bounds[k + 1], &parts[k], ctx,
                        &part_stats[k], &abort);
    } else {
      DescendantCursor cur = *proto;  // clamped copy
      const uint64_t origin = proto->u0;
      cur.u0 = origin + bounds[k];
      cur.u1 = origin + bounds[k + 1];
      st = DrainDescCursor(cx, emit, &cur, &parts[k], ctx, &part_stats[k],
                           &abort);
    }
    if (!st.ok()) {
      statuses[k] = std::move(st);
      abort.store(true, std::memory_order_relaxed);
    }
  };
  for (size_t k = 0; k < chunks; ++k) {
    if (bounds[k] == bounds[k + 1]) continue;
    std::function<void()> task = [&drain_chunk, k] { drain_chunk(k); };
    // Saturated (or fault-injected) pool: run the chunk on the caller —
    // identical bytes, just less parallel.
    if (!pool->TrySubmit(task, kMaxPendingMorselTasks)) drain_chunk(k);
  }
  pool->Wait();
  for (size_t k = 0; k < chunks; ++k) {
    XMARK_RETURN_IF_ERROR(statuses[k]);
  }
  size_t total = 0;
  for (const Sequence& p : parts) total += p.size();
  out->reserve(out->size() + total);
  for (Sequence& p : parts) {
    out->insert(out->end(), std::make_move_iterator(p.begin()),
                std::make_move_iterator(p.end()));
  }
  for (const PipeDrainStats& p : part_stats) {
    ds->batches += p.batches;
    ds->candidates += p.candidates;
  }
  return Status::OK();
}

}  // namespace

StatusOr<Sequence> PipelineExec::Run(const CompiledPipeline& pipe,
                                     const StorageAdapter* store,
                                     EvalStats* stats, ExecContext* ctx,
                                     ThreadPool* pool,
                                     size_t min_morsel_ids) {
  const bool raw = (pipe.dispatch & kPipelineRawBit) != 0;
  const EmitBatchFn emit = kEmitTable[pipe.dispatch % kPipelineDispatchSlots];
  PipeCtx cx{&pipe, store, {}};
  PipeDrainStats ds;
  Sequence out;

  // Resolve the prefix: a rooted path's first step tests the root element
  // itself (EvalPath's rooted semantics), later steps are child-name scans
  // drained level by level in batch order.
  std::vector<NodeHandle> level;
  std::vector<NodeHandle> next;
  if (!pipe.prefix.empty() && store->NameOf(store->Root()) == pipe.prefix[0]) {
    level.push_back(store->Root());
  }
  for (size_t d = 1; d < pipe.prefix.size() && !level.empty(); ++d) {
    next.clear();
    for (NodeHandle p : level) {
      ChildCursor cur;
      store->OpenChildCursor(p, ChildFilter::kTag, pipe.prefix[d], &cur);
      ++stats->cursor_scans;
      constexpr size_t kBatch = 64;
      NodeHandle buf[kBatch];
      size_t n;
      while ((n = cur.Fill(buf, kBatch)) > 0) {
        next.insert(next.end(), buf, buf + n);
        if (ctx != nullptr) {
          Status st = ctx->Check();
          if (!st.ok()) {
            stats->pipeline_batches_fused += ds.batches;
            return st;
          }
        }
      }
    }
    level.swap(next);
  }

  Status st = Status::OK();
  switch (pipe.scan) {
    case CompiledPipeline::Scan::kPrefixOnly: {
      // The bindings ARE the resolved prefix nodes.
      constexpr size_t kBatch = 256;
      for (size_t off = 0; st.ok() && off < level.size(); off += kBatch) {
        const size_t n = std::min(kBatch, level.size() - off);
        st = FlushFused(cx, emit, level.data() + off, n, &out, ctx, &ds);
      }
      break;
    }
    case CompiledPipeline::Scan::kChildren: {
      std::vector<NodeHandle> cands;
      if (pipe.id_lookup) {
        // One ID-index probe answers the whole step (ApplyStep's id-literal
        // path): the probed node must carry the step's tag and sit under
        // one of the prefix nodes.
        ++stats->index_lookups;
        const NodeHandle hit = store->NodeById(pipe.id_value);
        if (hit != kInvalidHandle && store->NameOf(hit) == pipe.scan_tag) {
          const NodeHandle parent = store->Parent(hit);
          for (NodeHandle p : level) {
            if (p == parent) {
              cands.push_back(hit);
              break;
            }
          }
        }
      } else {
        for (NodeHandle p : level) {
          ChildCursor cur;
          store->OpenChildCursor(p, ChildFilter::kTag, pipe.scan_tag, &cur);
          ++stats->cursor_scans;
          constexpr size_t kBatch = 64;
          NodeHandle buf[kBatch];
          size_t n;
          while ((n = cur.Fill(buf, kBatch)) > 0) {
            for (size_t i = 0; i < n; ++i) {
              if (pipe.id_filter) {
                // TryAttributeCompare semantics: a missing attribute never
                // matches; the literal compares as a string.
                const std::optional<std::string_view> attr =
                    store->AttributeView(buf[i], "id");
                if (!attr.has_value() || *attr != pipe.id_value) continue;
              }
              cands.push_back(buf[i]);
            }
            if (ctx != nullptr) {
              st = ctx->Check();
              if (!st.ok()) break;
            }
          }
          if (!st.ok()) break;
        }
      }
      constexpr size_t kBatch = 256;
      for (size_t off = 0; st.ok() && off < cands.size(); off += kBatch) {
        const size_t n = std::min(kBatch, cands.size() - off);
        st = FlushFused(cx, emit, cands.data() + off, n, &out, ctx, &ds);
      }
      break;
    }
    case CompiledPipeline::Scan::kDescendants: {
      for (NodeHandle p : level) {
        const bool parallel_ok = pool != nullptr &&
                                 pool->worker_count() > 1 &&
                                 min_morsel_ids > 0;
        if (raw) {
          const NodeHandle from = p + 1;
          const NodeHandle to = store->RawSubtreeEnd(p);
          const uint64_t span = to > from ? to - from : 0;
          ++stats->descendant_scans;
          if (parallel_ok && span >= min_morsel_ids) {
            st = DrainDescMorsels(pipe, store, emit, /*raw=*/true, from,
                                  nullptr, span, pool, ctx, &out, &ds);
          } else {
            st = DrainDescRaw(cx, emit, from, to, &out, ctx, &ds, nullptr);
          }
        } else {
          DescendantCursor cur;
          store->OpenDescendantCursor(p, ChildFilter::kTag, pipe.scan_tag,
                                      &cur);
          ++stats->descendant_scans;
          const uint64_t span = cur.u1 > cur.u0 ? cur.u1 - cur.u0 : 0;
          if (parallel_ok && span >= min_morsel_ids &&
              store->DescendantCursorPartitionable(cur)) {
            st = DrainDescMorsels(pipe, store, emit, /*raw=*/false,
                                  kInvalidHandle, &cur, span, pool, ctx,
                                  &out, &ds);
          } else {
            st = DrainDescCursor(cx, emit, &cur, &out, ctx, &ds, nullptr);
          }
        }
        if (!st.ok()) break;
      }
      break;
    }
  }

  stats->pipeline_batches_fused += ds.batches;
  stats->nodes_visited += ds.candidates;
  if (pipe.emit == CompiledPipeline::Emit::kCount) {
    // Each emitted count is one batched interval scan of its binding's
    // subtree (raw tag-array walk or descendant cursor drain).
    stats->descendant_scans += static_cast<int64_t>(out.size());
  }
  if (!st.ok()) return st;
  return out;
}

// ---------------------------------------------------------------------------
// HashJoinExec
// ---------------------------------------------------------------------------

Status HashJoinExec::Build(const HashJoinPlan& plan, size_t slot_count,
                           const EvalFn& eval, EvalStats* stats) {
  if (XMARK_FAULT_POINT("exec/hash_join_build")) {
    return Status::ResourceExhausted("fault injection: exec/hash_join_build");
  }
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence bindings,
                         eval(*plan.in_expr, inner_env, nullptr));
  bindings_ = std::move(bindings);
  for (size_t i = 0; i < bindings_.size(); ++i) {
    inner_env.Push(plan.var_slot, Sequence{bindings_[i]});
    XMARK_ASSIGN_OR_RETURN(Sequence keys,
                           eval(*plan.inner_key, inner_env, nullptr));
    inner_env.Pop();
    for (const Item& k : keys) {
      index_.emplace(ItemStringValue(k), i);
    }
  }
  ++stats->hash_joins_built;
  return Status::OK();
}

void HashJoinExec::Probe(std::string_view key,
                         std::vector<size_t>* rows) const {
  auto [begin, end] = index_.equal_range(key);
  for (auto m = begin; m != end; ++m) rows->push_back(m->second);
}

// ---------------------------------------------------------------------------
// BandJoinIndex
// ---------------------------------------------------------------------------

std::optional<double> BandNumericValue(const Item& item,
                                       std::string* scratch) {
  if (item.is_number()) return item.number();
  if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
  return ParseDouble(ItemStringView(item, scratch));
}

Status BandJoinIndex::Build(const BandJoinPlan& plan, size_t slot_count,
                            const EvalFn& eval, EvalStats* stats,
                            ThreadPool* pool) {
  if (XMARK_FAULT_POINT("exec/band_join_build")) {
    return Status::ResourceExhausted("fault injection: exec/band_join_build");
  }
  valid_ = false;
  keys_.clear();
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence domain,
                         eval(*plan.domain, inner_env, nullptr));
  raw_domain_size_ = domain.size();
  keys_.reserve(domain.size());
  std::string scratch;
  for (const Item& binding : domain) {
    inner_env.Push(plan.var_slot, Sequence{binding});
    auto value = eval(*plan.inner_expr, inner_env, nullptr);
    inner_env.Pop();
    if (!value.ok()) return Status::OK();  // invalid: nested-loop fallback
    if (value->empty()) continue;  // empty inner side never matches
    const auto num = BandNumericValue(value->front(), &scratch);
    if (!num.has_value()) return Status::OK();  // non-numeric: fall back
    if (std::isnan(*num)) continue;  // NaN compares false against anything
    keys_.push_back(*num);
  }
  // Keys are plain doubles (NaNs already dropped), so a stable sort orders
  // them identically to std::sort; ParallelStableSort is deterministic for
  // any worker count, making the parallel build byte-identical to serial.
  ParallelStableSort(pool, keys_.begin(), keys_.end(), std::less<double>());
  valid_ = true;
  ++stats->band_joins_built;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ConstructExec
// ---------------------------------------------------------------------------

namespace {

// Separator between adjacent atomics of one enclosed expression (XQuery
// construction rules). Static storage: safe as a text_ref forever.
constexpr std::string_view kAtomicSeparator = " ";

// Non-owning ConstructedPtr for INTERIOR edges of one template instance:
// the parent chain up to the instance root keeps the arena alive, so the
// per-child refcount would be pure overhead (two atomic RMWs per node).
// Only the instance root returned from Instantiate carries the owning
// arena-aliasing pointer; children must never be detached from a dead
// root (the engine never does — navigation inside constructed nodes is
// unsupported, and consumers walk trees through a live root item).
ConstructedPtr InteriorRef(const ConstructedNode* node) {
  return ConstructedPtr(std::shared_ptr<const ConstructedNode>(), node);
}

}  // namespace

ConstructedNode* ConstructExec::NewNode(EvalStats* stats) {
  ++stats->nodes_constructed;
  ++stats->nodes_arena_allocated;
  return arena_->AllocateNode();
}

ConstructedNode* ConstructExec::NewTextNode(std::string_view interned_text,
                                            EvalStats* stats) {
  ConstructedNode* node = NewNode(stats);
  node->text_ref = interned_text;
  return node;
}

const std::vector<std::string_view>& ConstructExec::ConstTexts(
    const ConstructPlan& plan) {
  if (plan.template_id >= const_texts_.size()) {
    const_texts_.resize(plan.template_id + 1);
  }
  std::unique_ptr<std::vector<std::string_view>>& slot =
      const_texts_[plan.template_id];
  if (slot == nullptr) {
    // First instantiation of this template this run: intern every constant
    // segment once; all instantiations share the arena copies. (Views must
    // point into the arena, never into the ConstructPlan — results outlive
    // the plan.)
    slot = std::make_unique<std::vector<std::string_view>>();
    slot->reserve(plan.const_texts.size());
    for (const std::string& text : plan.const_texts) {
      slot->push_back(arena_->InternText(text));
    }
  }
  return *slot;
}

StatusOr<ConstructedNode*> ConstructExec::BuildElement(
    const ConstructPlan& plan, size_t element_index,
    const std::vector<std::string_view>& const_texts, Environment& env,
    const Focus* focus, const EvalFn& eval, EvalStats* stats,
    bool copy_results) {
  const ConstructPlan::Element& el = plan.elements[element_index];
  if (XMARK_FAULT_POINT("exec/construct")) {
    return Status::ResourceExhausted("fault injection: exec/construct");
  }
  ConstructedNode* node = NewNode(stats);
  // Tags are copied, not viewed: the template's strings die with the plan,
  // and XMark tags fit std::string's inline buffer anyway.
  node->tag = el.tag;

  if (!el.attrs.empty()) node->attributes.reserve(el.attrs.size());
  for (const ConstructPlan::Attr& attr : el.attrs) {
    if (attr.src == nullptr) {
      node->attributes.emplace_back(attr.name, attr.const_value);
      continue;
    }
    std::string value;
    for (const AttrPart& part : attr.src->parts) {
      if (part.expr == nullptr) {
        value += part.text;
        continue;
      }
      XMARK_ASSIGN_OR_RETURN(Sequence items, eval(*part.expr, env, focus));
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) value += ' ';
        value += ItemStringValue(items[i]);
      }
    }
    node->attributes.emplace_back(attr.name, std::move(value));
  }

  node->children.reserve(el.children.size());
  for (const ConstructPlan::Child& child : el.children) {
    switch (child.kind) {
      case ConstructPlan::Child::Kind::kConstText:
        node->children.emplace_back(
            InteriorRef(NewTextNode(const_texts[child.index], stats)));
        break;
      case ConstructPlan::Child::Kind::kElement: {
        XMARK_ASSIGN_OR_RETURN(
            ConstructedNode * nested,
            BuildElement(plan, child.index, const_texts, env, focus, eval,
                         stats, copy_results));
        node->children.emplace_back(InteriorRef(nested));
        break;
      }
      case ConstructPlan::Child::Kind::kHole: {
        XMARK_ASSIGN_OR_RETURN(Sequence items,
                               eval(*child.expr, env, focus));
        // Reserve for the hole's actual cardinality (plus the remaining
        // static slots): the pool's deallocate is a no-op, so every
        // outgrown intermediate buffer would stay dead in the arena.
        node->children.reserve(node->children.size() + items.size() +
                               (el.children.size() - 1 -
                                static_cast<size_t>(&child -
                                                    el.children.data())));
        bool prev_atomic = false;
        for (Item& item : items) {
          if (item.is_atomic()) {
            // Adjacent atomics from one enclosed expression merge into
            // space-separated text nodes, exactly as the legacy path does;
            // the text bytes land in the arena's shared buffer instead of
            // a std::string per node.
            if (prev_atomic) {
              node->children.emplace_back(
                  InteriorRef(NewTextNode(kAtomicSeparator, stats)));
            }
            const std::string_view text = ItemStringView(item, &scratch_);
            node->children.emplace_back(
                InteriorRef(NewTextNode(arena_->InternText(text), stats)));
            prev_atomic = true;
            continue;
          }
          prev_atomic = false;
          if (item.is_node() && copy_results) {
            node->children.emplace_back(DeepCopyNode(item.node()));
          } else if (item.is_constructed() &&
                     item.constructed()->owner_arena == arena_.get()) {
            // A nested instance of this same arena (e.g. Q10's {$p}
            // personne items): strip the owning arena-aliasing pointer to
            // a non-owning interior ref. Storing an owning pointer inside
            // an arena node would cycle the arena's refcount and leak
            // every node of the run.
            node->children.emplace_back(InteriorRef(item.constructed().get()));
          } else {
            node->children.push_back(std::move(item));
          }
        }
        break;
      }
    }
  }
  return node;
}

StatusOr<Item> ConstructExec::Instantiate(const ConstructPlan& plan,
                                          Environment& env,
                                          const Focus* focus,
                                          const EvalFn& eval,
                                          EvalStats* stats,
                                          bool copy_results) {
  const std::vector<std::string_view>& const_texts = ConstTexts(plan);
  XMARK_ASSIGN_OR_RETURN(
      ConstructedNode * root,
      BuildElement(plan, 0, const_texts, env, focus, eval, stats,
                   copy_results));
  return Item(ConstructedPtr(arena_, root));
}

int64_t BandJoinIndex::ProbeCount(double probe, BinaryOp op) const {
  if (std::isnan(probe)) return 0;
  const auto lower =
      std::lower_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto upper =
      std::upper_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto n = static_cast<int64_t>(keys_.size());
  switch (op) {
    case BinaryOp::kGt:  // probe > key: keys strictly below the probe
      return lower;
    case BinaryOp::kGe:
      return upper;
    case BinaryOp::kLt:  // probe < key: keys strictly above the probe
      return n - upper;
    case BinaryOp::kLe:
      return n - lower;
    default:
      return 0;
  }
}

}  // namespace xmark::query
