#include "query/exec.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/fault_injection.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xmark::query {
namespace {

// Morsel dispatch backs off to a serial drain once this many tasks are
// already in flight on the pool: far above anything a healthy run reaches
// (one drain submits ~4 chunks per worker), low enough that a pathological
// fan-out degrades instead of queueing unboundedly.
constexpr size_t kMaxPendingMorselTasks = 1024;

}  // namespace

// ---------------------------------------------------------------------------
// NodeScan
// ---------------------------------------------------------------------------

Status NodeScan::Open(const StorageAdapter* store, NodeHandle base,
                      StepPlan::Access access, ChildFilter filter,
                      xml::NameId tag, bool child_cursors, EvalStats* stats,
                      ThreadPool* pool, size_t min_morsel_ids,
                      ExecContext* ctx) {
  store_ = store;
  stats_ = stats;
  child_cursors_ = child_cursors;
  filter_ = filter;
  tag_ = tag;
  materialized_.clear();
  materialized_pos_ = 0;
  switch (access) {
    case StepPlan::Access::kChildrenByTag: {
      auto direct = store->ChildrenByTag(base, tag);
      if (direct.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*direct);
        mode_ = Mode::kMaterialized;
        return Status::OK();
      }
      // The physical layout does not cover this node: scan its children
      // the way the options allow.
      if (!child_cursors_) {
        chain_ = store->FirstChild(base);
        mode_ = Mode::kChildChain;
        return Status::OK();
      }
      [[fallthrough]];
    }
    case StepPlan::Access::kChildCursor:
      store->OpenChildCursor(base, filter, tag, &child_cursor_);
      ++stats->cursor_scans;
      mode_ = Mode::kChildCursor;
      return Status::OK();
    case StepPlan::Access::kChildChain:
      chain_ = store->FirstChild(base);
      mode_ = Mode::kChildChain;
      return Status::OK();
    case StepPlan::Access::kDescendantCursor: {
      store->OpenDescendantCursor(base, filter, tag, &descendant_cursor_);
      ++stats->descendant_scans;
      mode_ = Mode::kDescendantCursor;
      const uint64_t span = descendant_cursor_.u1 > descendant_cursor_.u0
                                ? descendant_cursor_.u1 - descendant_cursor_.u0
                                : 0;
      if (pool != nullptr && pool->worker_count() > 1 &&
          min_morsel_ids > 0 && span >= min_morsel_ids &&
          store->DescendantCursorPartitionable(descendant_cursor_)) {
        return DrainMorsels(pool, span, ctx);
      }
      return Status::OK();
    }
    case StepPlan::Access::kTagIndex: {
      auto from_index = store->DescendantsByTag(base, tag);
      if (from_index.has_value()) {
        ++stats->index_lookups;
        materialized_ = std::move(*from_index);
        mode_ = Mode::kMaterialized;
        return Status::OK();
      }
      OpenDfs(base);
      return Status::OK();
    }
    case StepPlan::Access::kDescendantDfs:
      OpenDfs(base);
      return Status::OK();
    case StepPlan::Access::kAttribute:
    case StepPlan::Access::kSelf:
      mode_ = Mode::kDone;
      return Status::OK();
  }
  mode_ = Mode::kDone;
  return Status::OK();
}

// Morsel-parallel drain of a partitionable descendant cursor: split the
// cursor's [u0, u1) position interval into deterministic chunks
// (ChunkBounds depends only on span and worker count), drain each chunk
// through a clamped COPY of the open cursor into a private buffer, then
// concatenate the buffers in chunk order. Because the store declared the
// cursor partitionable, every chunk emits exactly the serial scan's
// matches for its sub-range, in order — so the concatenation is
// byte-identical to the serial drain for any chunking. Workers touch no
// shared state beyond the per-chunk status/abort slots (stats are settled
// once below), and the scan converts to kMaterialized so Fill never
// consults the cursor again.
//
// Error path: a worker that fails (governance check, injected fault)
// records its Status in its chunk slot and raises the shared abort flag;
// sibling morsels observe the flag at their next batch and stop early.
// After the barrier the first non-OK slot in chunk order is returned —
// deterministic because a governed failure is sticky on the ExecContext
// (every failing chunk reports the same Status) and an injected fault
// fires in exactly one chunk.
Status NodeScan::DrainMorsels(ThreadPool* pool, uint64_t span,
                              ExecContext* ctx) {
  const std::vector<size_t> bounds =
      ChunkBounds(static_cast<size_t>(span), pool->worker_count());
  const size_t chunks = bounds.size() - 1;
  std::vector<std::vector<NodeHandle>> parts(chunks);
  std::vector<Status> statuses(chunks);
  std::atomic<bool> abort{false};
  MemoryBudget* budget = ctx != nullptr ? ctx->memory_budget() : nullptr;
  auto drain_chunk = [this, &bounds, &parts, &statuses, &abort, ctx,
                      budget](size_t k) {
    if (abort.load(std::memory_order_relaxed)) return;  // sibling failed
    // Workers charge their private buffers to the run's shared budget.
    ScopedMemoryBudget install(budget);
    DescendantCursor cur = descendant_cursor_;  // clamped copy
    const uint64_t origin = descendant_cursor_.u0;
    cur.u0 = origin + bounds[k];
    cur.u1 = origin + bounds[k + 1];
    std::vector<NodeHandle>& out = parts[k];
    constexpr size_t kBatch = 256;
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      if (XMARK_FAULT_POINT("exec/morsel_drain")) {
        statuses[k] =
            Status::ResourceExhausted("fault injection: exec/morsel_drain");
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      out.insert(out.end(), buf, buf + n);
      if (budget != nullptr) budget->Charge(n * sizeof(NodeHandle));
      if (ctx != nullptr) {
        Status st = ctx->Check();
        if (!st.ok()) {
          statuses[k] = std::move(st);
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
      if (abort.load(std::memory_order_relaxed)) return;
    }
  };
  for (size_t k = 0; k < chunks; ++k) {
    if (bounds[k] == bounds[k + 1]) continue;
    std::function<void()> task = [&drain_chunk, k] { drain_chunk(k); };
    // Admission-controlled dispatch: a saturated (or fault-injected) pool
    // degrades to draining the chunk on the caller — same chunk-order
    // concatenation, so the output is identical, just less parallel.
    if (!pool->TrySubmit(task, kMaxPendingMorselTasks)) drain_chunk(k);
  }
  pool->Wait();
  for (size_t k = 0; k < chunks; ++k) {
    XMARK_RETURN_IF_ERROR(statuses[k]);
  }
  size_t total = 0;
  for (const auto& p : parts) total += p.size();
  materialized_.clear();
  materialized_.reserve(total);
  for (const auto& p : parts) {
    materialized_.insert(materialized_.end(), p.begin(), p.end());
  }
  // Serial parity: the serial descendant drain counts one visited node per
  // emitted match (cursor Fill adds the match count per batch).
  stats_->nodes_visited += static_cast<int64_t>(total);
  materialized_pos_ = 0;
  mode_ = Mode::kMaterialized;
  return Status::OK();
}

// Children of `parent` in document order, gathered with one batched
// cursor scan when cursors are enabled (no virtual call pair per child),
// otherwise with the generic sibling chain.
void NodeScan::CollectChildren(NodeHandle parent,
                               std::vector<NodeHandle>* out) {
  if (child_cursors_) {
    ChildCursor cur;
    store_->OpenChildCursor(parent, ChildFilter::kAll, xml::kInvalidName,
                            &cur);
    ++stats_->cursor_scans;
    constexpr size_t kBatch = 64;
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = cur.Fill(buf, kBatch)) > 0) {
      out->insert(out->end(), buf, buf + n);
    }
  } else {
    for (NodeHandle c = store_->FirstChild(parent); c != kInvalidHandle;
         c = store_->NextSibling(c)) {
      out->push_back(c);
    }
  }
}

void NodeScan::OpenDfs(NodeHandle base) {
  mode_ = Mode::kDescendantDfs;
  dfs_stack_.clear();
  dfs_kids_.clear();
  // Seed with the base's children in reverse so popping emits document
  // order.
  CollectChildren(base, &dfs_stack_);
  std::reverse(dfs_stack_.begin(), dfs_stack_.end());
}

size_t NodeScan::FillDfs(NodeHandle* out, size_t cap) {
  size_t n = 0;
  while (n < cap && !dfs_stack_.empty()) {
    const NodeHandle node = dfs_stack_.back();
    dfs_stack_.pop_back();
    ++stats_->nodes_visited;
    const xml::NameId node_tag = store_->NameOf(node);
    if (MatchesChildFilter(filter_, node_tag, tag_)) out[n++] = node;
    if (node_tag == xml::kInvalidName) continue;  // text leaf
    // Push children in reverse so the DFS emits document order.
    dfs_kids_.clear();
    CollectChildren(node, &dfs_kids_);
    for (auto it = dfs_kids_.rbegin(); it != dfs_kids_.rend(); ++it) {
      dfs_stack_.push_back(*it);
    }
  }
  if (dfs_stack_.empty() && n == 0) mode_ = Mode::kDone;
  return n;
}

size_t NodeScan::Fill(NodeHandle* out, size_t cap) {
  switch (mode_) {
    case Mode::kDone:
      return 0;
    case Mode::kChildCursor: {
      const size_t n = child_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantCursor: {
      const size_t n = descendant_cursor_.Fill(out, cap);
      stats_->nodes_visited += static_cast<int64_t>(n);
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kChildChain: {
      size_t n = 0;
      NodeHandle c = chain_;
      while (n < cap && c != kInvalidHandle) {
        ++stats_->nodes_visited;
        if (MatchesChildFilter(filter_, store_->NameOf(c), tag_)) {
          out[n++] = c;
        }
        c = store_->NextSibling(c);
      }
      chain_ = c;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
    case Mode::kDescendantDfs:
      return FillDfs(out, cap);
    case Mode::kMaterialized: {
      const size_t n =
          std::min(cap, materialized_.size() - materialized_pos_);
      std::copy_n(materialized_.begin() + materialized_pos_, n, out);
      materialized_pos_ += n;
      if (n == 0) mode_ = Mode::kDone;
      return n;
    }
  }
  return 0;
}

// ---------------------------------------------------------------------------
// HashJoinExec
// ---------------------------------------------------------------------------

Status HashJoinExec::Build(const HashJoinPlan& plan, size_t slot_count,
                           const EvalFn& eval, EvalStats* stats) {
  if (XMARK_FAULT_POINT("exec/hash_join_build")) {
    return Status::ResourceExhausted("fault injection: exec/hash_join_build");
  }
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence bindings,
                         eval(*plan.in_expr, inner_env, nullptr));
  bindings_ = std::move(bindings);
  for (size_t i = 0; i < bindings_.size(); ++i) {
    inner_env.Push(plan.var_slot, Sequence{bindings_[i]});
    XMARK_ASSIGN_OR_RETURN(Sequence keys,
                           eval(*plan.inner_key, inner_env, nullptr));
    inner_env.Pop();
    for (const Item& k : keys) {
      index_.emplace(ItemStringValue(k), i);
    }
  }
  ++stats->hash_joins_built;
  return Status::OK();
}

void HashJoinExec::Probe(std::string_view key,
                         std::vector<size_t>* rows) const {
  auto [begin, end] = index_.equal_range(key);
  for (auto m = begin; m != end; ++m) rows->push_back(m->second);
}

// ---------------------------------------------------------------------------
// BandJoinIndex
// ---------------------------------------------------------------------------

std::optional<double> BandNumericValue(const Item& item,
                                       std::string* scratch) {
  if (item.is_number()) return item.number();
  if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
  return ParseDouble(ItemStringView(item, scratch));
}

Status BandJoinIndex::Build(const BandJoinPlan& plan, size_t slot_count,
                            const EvalFn& eval, EvalStats* stats,
                            ThreadPool* pool) {
  if (XMARK_FAULT_POINT("exec/band_join_build")) {
    return Status::ResourceExhausted("fault injection: exec/band_join_build");
  }
  valid_ = false;
  keys_.clear();
  Environment inner_env(slot_count);
  XMARK_ASSIGN_OR_RETURN(Sequence domain,
                         eval(*plan.domain, inner_env, nullptr));
  raw_domain_size_ = domain.size();
  keys_.reserve(domain.size());
  std::string scratch;
  for (const Item& binding : domain) {
    inner_env.Push(plan.var_slot, Sequence{binding});
    auto value = eval(*plan.inner_expr, inner_env, nullptr);
    inner_env.Pop();
    if (!value.ok()) return Status::OK();  // invalid: nested-loop fallback
    if (value->empty()) continue;  // empty inner side never matches
    const auto num = BandNumericValue(value->front(), &scratch);
    if (!num.has_value()) return Status::OK();  // non-numeric: fall back
    if (std::isnan(*num)) continue;  // NaN compares false against anything
    keys_.push_back(*num);
  }
  // Keys are plain doubles (NaNs already dropped), so a stable sort orders
  // them identically to std::sort; ParallelStableSort is deterministic for
  // any worker count, making the parallel build byte-identical to serial.
  ParallelStableSort(pool, keys_.begin(), keys_.end(), std::less<double>());
  valid_ = true;
  ++stats->band_joins_built;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ConstructExec
// ---------------------------------------------------------------------------

namespace {

// Separator between adjacent atomics of one enclosed expression (XQuery
// construction rules). Static storage: safe as a text_ref forever.
constexpr std::string_view kAtomicSeparator = " ";

// Non-owning ConstructedPtr for INTERIOR edges of one template instance:
// the parent chain up to the instance root keeps the arena alive, so the
// per-child refcount would be pure overhead (two atomic RMWs per node).
// Only the instance root returned from Instantiate carries the owning
// arena-aliasing pointer; children must never be detached from a dead
// root (the engine never does — navigation inside constructed nodes is
// unsupported, and consumers walk trees through a live root item).
ConstructedPtr InteriorRef(const ConstructedNode* node) {
  return ConstructedPtr(std::shared_ptr<const ConstructedNode>(), node);
}

}  // namespace

ConstructedNode* ConstructExec::NewNode(EvalStats* stats) {
  ++stats->nodes_constructed;
  ++stats->nodes_arena_allocated;
  return arena_->AllocateNode();
}

ConstructedNode* ConstructExec::NewTextNode(std::string_view interned_text,
                                            EvalStats* stats) {
  ConstructedNode* node = NewNode(stats);
  node->text_ref = interned_text;
  return node;
}

const std::vector<std::string_view>& ConstructExec::ConstTexts(
    const ConstructPlan& plan) {
  if (plan.template_id >= const_texts_.size()) {
    const_texts_.resize(plan.template_id + 1);
  }
  std::unique_ptr<std::vector<std::string_view>>& slot =
      const_texts_[plan.template_id];
  if (slot == nullptr) {
    // First instantiation of this template this run: intern every constant
    // segment once; all instantiations share the arena copies. (Views must
    // point into the arena, never into the ConstructPlan — results outlive
    // the plan.)
    slot = std::make_unique<std::vector<std::string_view>>();
    slot->reserve(plan.const_texts.size());
    for (const std::string& text : plan.const_texts) {
      slot->push_back(arena_->InternText(text));
    }
  }
  return *slot;
}

StatusOr<ConstructedNode*> ConstructExec::BuildElement(
    const ConstructPlan& plan, size_t element_index,
    const std::vector<std::string_view>& const_texts, Environment& env,
    const Focus* focus, const EvalFn& eval, EvalStats* stats,
    bool copy_results) {
  const ConstructPlan::Element& el = plan.elements[element_index];
  if (XMARK_FAULT_POINT("exec/construct")) {
    return Status::ResourceExhausted("fault injection: exec/construct");
  }
  ConstructedNode* node = NewNode(stats);
  // Tags are copied, not viewed: the template's strings die with the plan,
  // and XMark tags fit std::string's inline buffer anyway.
  node->tag = el.tag;

  if (!el.attrs.empty()) node->attributes.reserve(el.attrs.size());
  for (const ConstructPlan::Attr& attr : el.attrs) {
    if (attr.src == nullptr) {
      node->attributes.emplace_back(attr.name, attr.const_value);
      continue;
    }
    std::string value;
    for (const AttrPart& part : attr.src->parts) {
      if (part.expr == nullptr) {
        value += part.text;
        continue;
      }
      XMARK_ASSIGN_OR_RETURN(Sequence items, eval(*part.expr, env, focus));
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) value += ' ';
        value += ItemStringValue(items[i]);
      }
    }
    node->attributes.emplace_back(attr.name, std::move(value));
  }

  node->children.reserve(el.children.size());
  for (const ConstructPlan::Child& child : el.children) {
    switch (child.kind) {
      case ConstructPlan::Child::Kind::kConstText:
        node->children.emplace_back(
            InteriorRef(NewTextNode(const_texts[child.index], stats)));
        break;
      case ConstructPlan::Child::Kind::kElement: {
        XMARK_ASSIGN_OR_RETURN(
            ConstructedNode * nested,
            BuildElement(plan, child.index, const_texts, env, focus, eval,
                         stats, copy_results));
        node->children.emplace_back(InteriorRef(nested));
        break;
      }
      case ConstructPlan::Child::Kind::kHole: {
        XMARK_ASSIGN_OR_RETURN(Sequence items,
                               eval(*child.expr, env, focus));
        // Reserve for the hole's actual cardinality (plus the remaining
        // static slots): the pool's deallocate is a no-op, so every
        // outgrown intermediate buffer would stay dead in the arena.
        node->children.reserve(node->children.size() + items.size() +
                               (el.children.size() - 1 -
                                static_cast<size_t>(&child -
                                                    el.children.data())));
        bool prev_atomic = false;
        for (Item& item : items) {
          if (item.is_atomic()) {
            // Adjacent atomics from one enclosed expression merge into
            // space-separated text nodes, exactly as the legacy path does;
            // the text bytes land in the arena's shared buffer instead of
            // a std::string per node.
            if (prev_atomic) {
              node->children.emplace_back(
                  InteriorRef(NewTextNode(kAtomicSeparator, stats)));
            }
            const std::string_view text = ItemStringView(item, &scratch_);
            node->children.emplace_back(
                InteriorRef(NewTextNode(arena_->InternText(text), stats)));
            prev_atomic = true;
            continue;
          }
          prev_atomic = false;
          if (item.is_node() && copy_results) {
            node->children.emplace_back(DeepCopyNode(item.node()));
          } else if (item.is_constructed() &&
                     item.constructed()->owner_arena == arena_.get()) {
            // A nested instance of this same arena (e.g. Q10's {$p}
            // personne items): strip the owning arena-aliasing pointer to
            // a non-owning interior ref. Storing an owning pointer inside
            // an arena node would cycle the arena's refcount and leak
            // every node of the run.
            node->children.emplace_back(InteriorRef(item.constructed().get()));
          } else {
            node->children.push_back(std::move(item));
          }
        }
        break;
      }
    }
  }
  return node;
}

StatusOr<Item> ConstructExec::Instantiate(const ConstructPlan& plan,
                                          Environment& env,
                                          const Focus* focus,
                                          const EvalFn& eval,
                                          EvalStats* stats,
                                          bool copy_results) {
  const std::vector<std::string_view>& const_texts = ConstTexts(plan);
  XMARK_ASSIGN_OR_RETURN(
      ConstructedNode * root,
      BuildElement(plan, 0, const_texts, env, focus, eval, stats,
                   copy_results));
  return Item(ConstructedPtr(arena_, root));
}

int64_t BandJoinIndex::ProbeCount(double probe, BinaryOp op) const {
  if (std::isnan(probe)) return 0;
  const auto lower =
      std::lower_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto upper =
      std::upper_bound(keys_.begin(), keys_.end(), probe) - keys_.begin();
  const auto n = static_cast<int64_t>(keys_.size());
  switch (op) {
    case BinaryOp::kGt:  // probe > key: keys strictly below the probe
      return lower;
    case BinaryOp::kGe:
      return upper;
    case BinaryOp::kLt:  // probe < key: keys strictly above the probe
      return n - upper;
    case BinaryOp::kLe:
      return n - lower;
    default:
      return 0;
  }
}

}  // namespace xmark::query
