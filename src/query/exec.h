// Physical operator layer: pull-time execution of planned decisions.
//
// Layer contract: operators here run WITHIN one Evaluator::Run and only
// execute what the plan layer already decided — a NodeScan never chooses
// its access path (it receives a StepPlan::Access), ConstructExec never
// analyzes constructor structure (it instantiates a ConstructPlan), the
// join operators never detect join shapes (they Build from a
// HashJoinPlan/BandJoinPlan). Runtime adaptivity is limited to safety
// fallbacks the plan explicitly allows (ChildrenByTag answering nullopt,
// an invalid band domain). Operators evaluate subexpressions only through
// the EvalFn callback, so this layer never depends on the Evaluator class.
//
// Cache ownership rule: operator instances that carry per-run state
// (HashJoinExec tables, BandJoinIndex domains, ConstructExec's arena and
// interned const-text segments) are owned by the QueryPlan of the current
// run — never by the Evaluator, never static — so state cannot leak
// across runs or documents. NodeScan instances are transient (stack-owned
// by the evaluator loop) and hold no cross-run state.

#ifndef XMARK_QUERY_EXEC_H_
#define XMARK_QUERY_EXEC_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "query/ast.h"
#include "query/exec_context.h"
#include "query/plan.h"
#include "query/storage.h"
#include "query/value.h"
#include "util/status.h"
#include "util/string_util.h"

namespace xmark {
class ThreadPool;
}

namespace xmark::query {

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// Dynamic focus of a predicate/step evaluation (context item, position()
/// and last()).
struct Focus {
  Item item;
  int64_t position = 1;
  int64_t size = 1;
};

/// Slot-indexed variable frame: ResolveVariableSlots interned every variable
/// name of the query into a dense slot space at compile time, so binding and
/// lookup are vector indexing instead of a linear string-keyed search over a
/// binding stack. Shadowing (nested FLWORs, UDF recursion) is handled by
/// saving the previous slot content on a side stack and restoring it on Pop.
struct Environment {
  struct Binding {
    Sequence value;
    const AstNode* lazy_expr = nullptr;  // unevaluated `let`
    /// Non-null: count-only band-join binding. count($var) probes the
    /// sorted band domain instead of materializing the inner loop;
    /// `lazy_expr` stays set so any other use falls back to the generic
    /// nested-loop materialization.
    const BandJoinPlan* band = nullptr;
    int64_t band_count = -1;  // cached probe result (-1 = not probed)
    bool evaluated = false;
    bool bound = false;
  };
  std::vector<Binding> slots;
  std::vector<std::pair<int, Binding>> saved;  // LIFO scope-restore stack

  explicit Environment(size_t slot_count) : slots(slot_count) {}

  void Push(int slot, Sequence value) {
    saved.emplace_back(slot, std::move(slots[slot]));
    Binding& b = slots[slot];
    b.value = std::move(value);
    b.lazy_expr = nullptr;
    b.band = nullptr;
    b.band_count = -1;
    b.evaluated = true;
    b.bound = true;
  }
  void PushLazy(int slot, const AstNode* expr) {
    saved.emplace_back(slot, std::move(slots[slot]));
    Binding& b = slots[slot];
    b.value.clear();
    b.lazy_expr = expr;
    b.band = nullptr;
    b.band_count = -1;
    b.evaluated = false;
    b.bound = true;
  }
  void PushBand(int slot, const AstNode* expr, const BandJoinPlan* band) {
    PushLazy(slot, expr);
    slots[slot].band = band;
  }
  void Pop() {
    auto& [slot, binding] = saved.back();
    slots[slot] = std::move(binding);
    saved.pop_back();
  }

  Binding* Find(int slot) {
    if (slot < 0 || static_cast<size_t>(slot) >= slots.size() ||
        !slots[slot].bound) {
      return nullptr;
    }
    return &slots[slot];
  }
};

/// Callback into the expression evaluator; physical operators use it to
/// evaluate key/domain subexpressions without depending on the Evaluator
/// class.
using EvalFn =
    std::function<StatusOr<Sequence>(const AstNode&, Environment&,
                                     const Focus*)>;

// ---------------------------------------------------------------------------
// NodeScan: batch-pull scan over one physical access path
// ---------------------------------------------------------------------------

/// Physical operator producing the nodes a planned step access selects
/// from one base node, drained in batches. One NodeScan instance is reused
/// across the input sequence of a step, so the DFS stack / materialized
/// buffer allocations amortize.
class NodeScan {
 public:
  /// Positions the scan on `base` for the given access path. Access kinds
  /// kAttribute/kSelf are not scans and must not be passed here.
  /// kChildrenByTag falls back to a child scan when the store answers
  /// nullopt for this node; kTagIndex falls back to a DFS.
  /// `child_cursors` mirrors EvaluatorOptions::child_cursors: it selects
  /// the batched cursor (vs the virtual sibling chain) for that fallback
  /// and for the per-element child collection inside the DFS.
  /// `pool` (optional) enables morsel-parallel draining of descendant
  /// scans whose cursor spans at least `min_morsel_ids` positions and
  /// whose store declares the cursor partitionable: the position interval
  /// is split into deterministic chunks, each drained by a worker into a
  /// private buffer, and the buffers are concatenated in chunk order —
  /// byte-identical to the serial scan for any chunking, since every
  /// morsel emits in id order and chunks cover ascending id ranges.
  /// `ctx` (optional) is the run's governance context: morsel workers
  /// check it per batch, so Open fails with the context's Status when the
  /// run is cancelled or over budget mid-drain. A failing morsel aborts
  /// its siblings and the first failure in chunk order is returned.
  Status Open(const StorageAdapter* store, NodeHandle base,
              StepPlan::Access access, ChildFilter filter, xml::NameId tag,
              bool child_cursors, EvalStats* stats, ThreadPool* pool = nullptr,
              size_t min_morsel_ids = 0, ExecContext* ctx = nullptr);

  /// Copies up to `cap` matching handles into `out` in document order;
  /// returns the number written. 0 signals exhaustion. Every non-empty
  /// batch counts toward EvalStats::virtual_batches — the generic-path
  /// denominator of the compiled-pipeline fusion ratio.
  size_t Fill(NodeHandle* out, size_t cap);

 private:
  enum class Mode : uint8_t {
    kDone,
    kChildCursor,
    kChildChain,
    kDescendantCursor,
    kDescendantDfs,
    kMaterialized,
  };

  /// The mode dispatch behind Fill (kept separate so the public wrapper is
  /// the single place virtual_batches accounting happens).
  size_t FillBatch(NodeHandle* out, size_t cap);
  void OpenDfs(NodeHandle base);
  size_t FillDfs(NodeHandle* out, size_t cap);
  void CollectChildren(NodeHandle parent, std::vector<NodeHandle>* out);
  /// Drains the open descendant cursor (spanning `span` positions) in
  /// parallel chunks and converts the scan to kMaterialized. Chunks
  /// refused by pool admission control run serially on the caller
  /// (graceful degradation — identical output either way). Returns the
  /// first failing worker Status in chunk order.
  Status DrainMorsels(ThreadPool* pool, uint64_t span, ExecContext* ctx);

  const StorageAdapter* store_ = nullptr;
  EvalStats* stats_ = nullptr;
  Mode mode_ = Mode::kDone;
  bool child_cursors_ = true;
  ChildFilter filter_ = ChildFilter::kAll;
  xml::NameId tag_ = xml::kInvalidName;
  ChildCursor child_cursor_;
  DescendantCursor descendant_cursor_;
  NodeHandle chain_ = kInvalidHandle;  // kChildChain position
  std::vector<NodeHandle> materialized_;
  size_t materialized_pos_ = 0;
  std::vector<NodeHandle> dfs_stack_;
  std::vector<NodeHandle> dfs_kids_;
};

// ---------------------------------------------------------------------------
// PipelineExec: compiled-pipeline driver
// ---------------------------------------------------------------------------

/// Runs one CompiledPipeline (see query/plan.h): the fused scan → filter →
/// compare → emit loop the plan-time pass proved equivalent to the FLWOR
/// it annotates. The loop body is selected from a static table of
/// monomorphic instantiations indexed by the pipeline's plan-time
/// `dispatch` word — one instantiation per (filter kind × compare op ×
/// operand type × raw/cursor scan source) — so the hot loop pays no
/// per-batch virtual call and drains straight into the result Sequence
/// with no intermediate materialization. Byte-identical to the generic
/// nested-loop evaluation by construction (the fusion pass refuses any
/// shape it cannot prove).
///
/// Cooperates with governance and morsel parallelism exactly like
/// NodeScan: every batch checks `ctx` (when non-null), descendant scans
/// spanning at least `min_morsel_ids` ids split into deterministic chunks
/// on `pool` (admission-controlled via TrySubmit, private per-chunk
/// buffers concatenated in chunk order), and the "exec/pipeline_drain"
/// fault site covers the fused drain. Stateless: safe to call from any
/// number of concurrent runs sharing the plan.
class PipelineExec {
 public:
  static StatusOr<Sequence> Run(const CompiledPipeline& pipe,
                                const StorageAdapter* store, EvalStats* stats,
                                ExecContext* ctx, ThreadPool* pool,
                                size_t min_morsel_ids);
};

// ---------------------------------------------------------------------------
// Hash join
// ---------------------------------------------------------------------------

/// Built hash-join table for one decorrelated FLWOR: the invariant inner
/// bindings plus a transparent-hash index from key string to binding rows.
/// Owned by the QueryPlan of the current run.
class HashJoinExec {
 public:
  /// Evaluates the invariant domain and indexes every binding by its inner
  /// key string(s).
  Status Build(const HashJoinPlan& plan, size_t slot_count,
               const EvalFn& eval, EvalStats* stats);

  /// Appends the distinct binding rows whose key equals `key`, in build
  /// order, to `*rows`.
  void Probe(std::string_view key, std::vector<size_t>* rows) const;

  const Sequence& bindings() const { return bindings_; }

 private:
  Sequence bindings_;
  // Transparent hash/eq: probes pass the key as a string_view straight out
  // of the store heap, so no per-probe std::string is built.
  std::unordered_multimap<std::string, size_t, TransparentStringHash,
                          std::equal_to<>>
      index_;
};

// ---------------------------------------------------------------------------
// Sort-merge band join
// ---------------------------------------------------------------------------

/// Built band-join domain: the numeric keys of the invariant inner side,
/// sorted ascending. A probe answers `count of domain items matching
/// (v OP key)` with one binary search — the sort + sweep that replaces the
/// Q11/Q12 O(n*m) nested loop. Owned by the QueryPlan of the current run.
class BandJoinIndex {
 public:
  /// Evaluates the domain and the numeric inner side per binding. When any
  /// binding's inner side fails to evaluate or yields a non-number, the
  /// index is marked invalid and the caller falls back to the nested loop
  /// (which reproduces the interpreter's behavior, including its errors).
  /// `pool` (optional) runs the domain-key sort partitioned
  /// (ParallelStableSort); probe results are identical either way.
  Status Build(const BandJoinPlan& plan, size_t slot_count,
               const EvalFn& eval, EvalStats* stats,
               ThreadPool* pool = nullptr);

  bool valid() const { return valid_; }
  size_t domain_size() const { return keys_.size(); }
  /// Domain cardinality before unmatchable items were dropped. 0 means
  /// the interpreter would never have evaluated the predicate at all.
  size_t raw_domain_size() const { return raw_domain_size_; }

  /// Number of domain items whose key satisfies `probe OP key`, where OP
  /// is the plan's comparison with the outer value on the left.
  int64_t ProbeCount(double probe, BinaryOp op) const;

 private:
  bool valid_ = false;
  size_t raw_domain_size_ = 0;
  std::vector<double> keys_;  // sorted ascending; unmatchable items omitted
};

/// Numeric value of an item under the evaluator's untyped comparison rules
/// (numbers pass through, booleans become 0/1, everything else parses its
/// string value; nullopt when the lexical form is not a number). Shared by
/// the band-join probe and build so both sides cast identically.
std::optional<double> BandNumericValue(const Item& item,
                                       std::string* scratch);

// ---------------------------------------------------------------------------
// Arena-backed result construction
// ---------------------------------------------------------------------------

/// Instantiates ConstructPlan templates into the per-run NodeArena: one
/// batch of block-allocated nodes per instantiation, constant text
/// segments interned into the arena once per run (shared by every
/// instantiation of the template), dynamic text appended into the arena's
/// shared buffer. Every produced ConstructedPtr aliases the arena's
/// shared_ptr, so results stay valid for as long as anything references
/// them, without a per-node control block. Owned by the QueryPlan of the
/// current run; byte-identical to the evaluator's legacy per-shared_ptr
/// constructor path.
class ConstructExec {
 public:
  explicit ConstructExec(std::shared_ptr<NodeArena> arena)
      : arena_(std::move(arena)) {}

  /// Builds one instance of `plan` under the given bindings/focus.
  /// `copy_results` mirrors EvaluatorOptions::copy_results: stored nodes
  /// produced by holes are deep-copied into constructed trees.
  StatusOr<Item> Instantiate(const ConstructPlan& plan, Environment& env,
                             const Focus* focus, const EvalFn& eval,
                             EvalStats* stats, bool copy_results);

  const NodeArena& arena() const { return *arena_; }

 private:
  StatusOr<ConstructedNode*> BuildElement(
      const ConstructPlan& plan, size_t element_index,
      const std::vector<std::string_view>& const_texts, Environment& env,
      const Focus* focus, const EvalFn& eval, EvalStats* stats,
      bool copy_results);
  ConstructedNode* NewNode(EvalStats* stats);
  ConstructedNode* NewTextNode(std::string_view interned_text,
                               EvalStats* stats);
  /// The template's constant segments, interned into the arena on first
  /// use of the template this run.
  const std::vector<std::string_view>& ConstTexts(const ConstructPlan& plan);

  std::shared_ptr<NodeArena> arena_;
  // Indexed by ConstructPlan::template_id. unique_ptr values: Instantiate
  // re-enters through hole evaluation, and growth must not invalidate the
  // vector a caller still iterates.
  std::vector<std::unique_ptr<std::vector<std::string_view>>> const_texts_;
  std::string scratch_;
};

}  // namespace xmark::query

#endif  // XMARK_QUERY_EXEC_H_
