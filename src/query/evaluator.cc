#include "query/evaluator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "query/optimizer.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace xmark::query {

namespace {

// SortDedupNodes lives in query/value.cc since the arena-construction
// work: it orders constructed items by their stable node_id (never by
// shared_ptr identity, which aliasing arena pointers would break), so it
// is shared with tests and any future operator that merges node sets.

struct SortKey {
  bool empty = true;
  bool numeric = false;
  double num = 0.0;
  std::string str;
};

int CompareSortKeys(const SortKey& a, const SortKey& b) {
  if (a.empty || b.empty) {
    if (a.empty && b.empty) return 0;
    return a.empty ? -1 : 1;  // empty least
  }
  if (a.numeric && b.numeric) {
    if (a.num < b.num) return -1;
    if (a.num > b.num) return 1;
    return 0;
  }
  return a.str.compare(b.str);
}

// Resolves a step's element name against the store dictionary through the
// per-step cache. The cache fields are atomics: the id is published before
// the uid (release), and a reader that observes the uid (acquire) is
// guaranteed the matching id — safe for any number of threads evaluating
// one AST against a single store (the plan-cache arrangement).
xml::NameId ResolvedStepName(const Step& step, const StorageAdapter* store) {
  const uint64_t uid = store->store_uid();
  if (step.name_cache_uid.load(std::memory_order_acquire) == uid) {
    return step.name_cache_id.load(std::memory_order_relaxed);
  }
  const xml::NameId id = store->names().Lookup(step.name);
  step.name_cache_id.store(id, std::memory_order_relaxed);
  step.name_cache_uid.store(uid, std::memory_order_release);
  return id;
}

}  // namespace

// ---------------------------------------------------------------------------
// Evaluator
// ---------------------------------------------------------------------------

Evaluator::Evaluator(const StorageAdapter* store,
                     const EvaluatorOptions& options)
    : store_(store),
      options_(options),
      caps_(store->Capabilities()),
      eval_fn_([this](const AstNode& n, Environment& e, const Focus* f) {
        return Eval(n, e, f);
      }) {}

Evaluator::~Evaluator() = default;

ThreadPool* Evaluator::ExecPool() {
  if (!options_.parallel_exec.enabled) return nullptr;
  if (exec_pool_ == nullptr) {
    unsigned threads = options_.parallel_exec.threads;
    if (threads == 0) threads = std::thread::hardware_concurrency();
    if (threads <= 1) return nullptr;  // a 1-worker pool is just overhead
    exec_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return exec_pool_->worker_count() > 1 ? exec_pool_.get() : nullptr;
}

StatusOr<Sequence> Evaluator::Run(
    const ParsedQuery& query,
    std::shared_ptr<const PlanAnnotations> shared_annotations) {
  current_query_ = &query;
  // Resolve slots only once per parsed module: ParseQueryText resolves
  // before returning (setting slots_resolved), so a module shared by
  // concurrent runs through the plan cache is never mutated here. Only
  // hand-built queries that bypassed the parser still resolve lazily —
  // those are single-threaded by construction (tests). ASTs are never
  // genuinely const objects in this codebase, so writing through the
  // const reference is defined.
  if (!query.slots_resolved) {
    ResolveVariableSlots(const_cast<ParsedQuery&>(query));
  }
  slot_count_ = query.var_names.size();
  functions_.clear();
  for (const FunctionDecl& f : query.functions) {
    functions_[f.name] = &f;
    const size_t colon = f.name.find(':');
    if (colon != std::string::npos) {
      functions_[f.name.substr(colon + 1)] = &f;
    }
  }
  // A fresh plan per run owns every cache (hash-join tables, band domains,
  // invariant memos), so state can never leak across documents. The
  // compile-time annotations may be adopted from the plan cache instead
  // of rebuilt — but only when they were lowered for this exact store and
  // option fingerprint.
  plan_ = std::make_unique<QueryPlan>();
  PlanAnnotations* local = plan_->mutable_annotations();
  local->store_name = std::string(store_->mapping_name());
  local->store_uid = store_->store_uid();
  local->caps = caps_;
  local->options = options_;
  if (options_.use_planner) {
    if (shared_annotations != nullptr &&
        shared_annotations->store_uid == store_->store_uid() &&
        OptionsFingerprint(shared_annotations->options) ==
            OptionsFingerprint(options_)) {
      plan_->AdoptShared(std::move(shared_annotations));
    } else {
      BuildPlan(query, *store_, options_, local);
    }
  }
  stats_ = Stats{};
  stats_.construct_templates_built =
      static_cast<int64_t>(plan_->ann().constructs.size());
  udf_depth_ = 0;

  Environment env(slot_count_);
  const int64_t spills_before = SequenceHeapSpills();
  // Governed runs charge NodeArena / Sequence allocations on this thread
  // to the run's budget (morsel workers install it themselves).
  ScopedMemoryBudget charge(ctx_ != nullptr ? ctx_->memory_budget()
                                            : nullptr);
  auto result = Eval(*query.body, env, nullptr);
  stats_.sequence_heap_spills = SequenceHeapSpills() - spills_before;
  if (ctx_ != nullptr) stats_.governance_checks = ctx_->checks();
  if (!result.ok()) return result.status();
  if (options_.copy_results) {
    for (Item& item : *result) {
      if (item.is_node()) item = Item(DeepCopyNode(item.node()));
    }
  }
  return result;
}

StatusOr<Sequence> Evaluator::RunExpr(const AstNode& expr) {
  // Borrow the expression without owning it.
  current_query_ = nullptr;
  functions_.clear();
  slot_count_ = static_cast<size_t>(
      ResolveVariableSlots(const_cast<AstNode&>(expr)));
  plan_ = std::make_unique<QueryPlan>();
  PlanAnnotations* local = plan_->mutable_annotations();
  local->store_name = std::string(store_->mapping_name());
  local->store_uid = store_->store_uid();
  local->caps = caps_;
  local->options = options_;
  if (options_.use_planner) {
    BuildExprPlan(expr, *store_, options_, local);
  }
  stats_ = Stats{};
  stats_.construct_templates_built =
      static_cast<int64_t>(plan_->ann().constructs.size());
  Environment env(slot_count_);
  const int64_t spills_before = SequenceHeapSpills();
  ScopedMemoryBudget charge(ctx_ != nullptr ? ctx_->memory_budget()
                                            : nullptr);
  auto result = Eval(expr, env, nullptr);
  stats_.sequence_heap_spills = SequenceHeapSpills() - spills_before;
  if (ctx_ != nullptr) stats_.governance_checks = ctx_->checks();
  return result;
}

StatusOr<Sequence> Evaluator::Eval(const AstNode& node, Environment& env,
                                   const Focus* focus) {
  // Cooperative governance checkpoint: every expression dispatch counts
  // one step; the context turns it into kDeadlineExceeded / kCancelled /
  // kResourceExhausted at the first violation. One pointer test when
  // ungoverned.
  if (ctx_ != nullptr) {
    Status st = ctx_->Check();
    if (!st.ok()) return st;
  }
  switch (node.kind) {
    case AstKind::kStringLiteral:
      return Sequence{Item(node.str_value)};
    case AstKind::kNumberLiteral:
      return Sequence{Item(node.num_value)};
    case AstKind::kVarRef: {
      Environment::Binding* binding = env.Find(node.var_slot);
      if (binding == nullptr) {
        return Status::InvalidArgument("unbound variable $" + node.str_value);
      }
      if (!binding->evaluated) {
        // Band bindings land here only when a use other than count($var)
        // slipped past the optimizer's analysis: materialize through the
        // generic nested loop, which is always correct.
        const AstNode* expr = binding->lazy_expr;
        XMARK_ASSIGN_OR_RETURN(Sequence value, Eval(*expr, env, nullptr));
        // Re-find: evaluating the lazy expression may have shadowed and
        // restored this slot, so re-read it before writing the result.
        binding = env.Find(node.var_slot);
        XMARK_CHECK(binding != nullptr);
        binding->value = std::move(value);
        binding->evaluated = true;
      }
      return binding->value;
    }
    case AstKind::kContextItem:
      if (focus == nullptr) {
        return Status::InvalidArgument("no context item");
      }
      return Sequence{focus->item};
    case AstKind::kPath:
      return EvalPath(node, env, focus);
    case AstKind::kFlwor:
      return EvalFlwor(node, env, focus);
    case AstKind::kQuantified:
      return EvalQuantified(node, env, focus);
    case AstKind::kIf: {
      XMARK_ASSIGN_OR_RETURN(Sequence cond, Eval(*node.args[0], env, focus));
      return Eval(EffectiveBooleanValue(cond) ? *node.args[1] : *node.args[2],
                  env, focus);
    }
    case AstKind::kBinary:
      return EvalBinary(node, env, focus);
    case AstKind::kUnaryMinus: {
      XMARK_ASSIGN_OR_RETURN(Sequence v, Eval(*node.args[0], env, focus));
      if (v.empty()) return Sequence{};
      const auto num = ItemNumberValue(v.front());
      if (!num.has_value()) {
        return Status::InvalidArgument("unary minus on non-number");
      }
      return Sequence{Item(-*num)};
    }
    case AstKind::kFunctionCall:
      return EvalFunction(node, env, focus);
    case AstKind::kElementConstructor:
      return EvalConstructor(node, env, focus);
    case AstKind::kSequenceExpr: {
      if (node.args.size() == 1) return Eval(*node.args[0], env, focus);
      // Evaluate every part first, then concatenate behind one exact
      // reservation instead of growing the output per part.
      std::vector<Sequence> parts;
      parts.reserve(node.args.size());
      size_t total = 0;
      for (const AstPtr& arg : node.args) {
        XMARK_ASSIGN_OR_RETURN(Sequence part, Eval(*arg, env, focus));
        total += part.size();
        parts.push_back(std::move(part));
      }
      Sequence out;
      out.reserve(total);
      for (Sequence& part : parts) {
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
  }
  return Status::Internal("unhandled AST kind");
}

// ---------------------------------------------------------------------------
// Paths
// ---------------------------------------------------------------------------

Status Evaluator::ApplyPredicates(const std::vector<AstPtr>& predicates,
                                  Environment& env, Sequence* group) {
  for (const AstPtr& pred : predicates) {
    Sequence kept;
    const int64_t size = static_cast<int64_t>(group->size());
    for (int64_t i = 0; i < size; ++i) {
      Focus focus{(*group)[i], i + 1, size};
      XMARK_ASSIGN_OR_RETURN(Sequence value, Eval(*pred, env, &focus));
      bool keep;
      if (value.size() == 1 && value.front().is_number()) {
        keep = (value.front().number() == static_cast<double>(i + 1));
      } else {
        keep = EffectiveBooleanValue(value);
      }
      if (keep) kept.push_back((*group)[i]);
    }
    *group = std::move(kept);
  }
  return Status::OK();
}

Status Evaluator::ApplyStep(const Step& step, const StepPlan* planned,
                            const Sequence& input, Environment& env,
                            Sequence* output) {
  // Legacy interpreter mode: no precomputed plan — make the same decision
  // the optimizer would, per call.
  StepPlan local;
  if (planned == nullptr) {
    local = ComputeStepPlan(step, options_, caps_);
    planned = &local;
  }

  xml::NameId want = xml::kInvalidName;
  if (step.test == Step::Test::kName && step.axis != Axis::kAttribute) {
    want = ResolvedStepName(step, store_);
    if (want == xml::kInvalidName) {
      // Tag never occurs in the document: result is empty. (The paper's
      // closing remark — warning about path expressions with non-existing
      // tags — would hook in here.)
      return Status::OK();
    }
  }

  if (step.axis == Axis::kAttribute) {
    for (const Item& item : input) {
      if (!item.is_node()) continue;
      if (options_.zero_copy_strings) {
        const auto view =
            store_->AttributeView(item.node().handle, step.name);
        if (view.has_value()) {
          // The Item still owns one string copy; what's avoided is the
          // wrapper's intermediate optional<std::string> (the seed
          // allocated twice per attribute access, this path once).
          ++stats_.allocations_avoided;
          output->push_back(Item(std::string(*view)));
        }
      } else {
        // Ablation path: materialize through the wrapper, as the seed did.
        const auto value = store_->Attribute(item.node().handle, step.name);
        if (value.has_value()) output->push_back(Item(*value));
      }
    }
    // Attribute strings support no further predicates groupings; apply
    // predicates over the whole output.
    if (!step.predicates.empty()) {
      XMARK_RETURN_IF_ERROR(ApplyPredicates(step.predicates, env, output));
    }
    return Status::OK();
  }

  if (step.axis == Axis::kSelf) {
    // Predicates over the whole input sequence (primary[pred] form).
    Sequence group = input;
    if (step.test == Step::Test::kName) {
      Sequence filtered;
      for (const Item& item : group) {
        if (item.is_node() && store_->IsElement(item.node().handle) &&
            store_->NameOf(item.node().handle) == want) {
          filtered.push_back(item);
        }
      }
      group = std::move(filtered);
    }
    XMARK_RETURN_IF_ERROR(ApplyPredicates(step.predicates, env, &group));
    output->insert(output->end(), std::make_move_iterator(group.begin()),
                   std::make_move_iterator(group.end()));
    return Status::OK();
  }

  // ID-index fast path: step[...@id = "literal"...] resolved without
  // scanning the child list (query Q1's lookup). The literal shape was
  // recognized at plan time.
  if (planned->id_literal != nullptr) {
    const NodeHandle candidate =
        store_->NodeById(planned->id_literal->str_value);
    ++stats_.index_lookups;
    if (candidate == kInvalidHandle) return Status::OK();
    if (store_->NameOf(candidate) != want) return Status::OK();
    std::unordered_set<NodeHandle> parents;
    parents.reserve(input.size());
    for (const Item& item : input) {
      if (item.is_node()) parents.insert(item.node().handle);
    }
    if (!parents.count(store_->Parent(candidate))) return Status::OK();
    Sequence group{Item(NodeRef{store_, candidate})};
    // The remaining predicates (beyond the id test) still apply; re-running
    // the id predicate itself is a cheap no-op on one node.
    XMARK_RETURN_IF_ERROR(ApplyPredicates(step.predicates, env, &group));
    output->insert(output->end(), std::make_move_iterator(group.begin()),
                   std::make_move_iterator(group.end()));
    return Status::OK();
  }

  // Node-test → child filter, applied store-side by the physical scan.
  // NameOf returns kInvalidName exactly for text nodes, so one virtual
  // call answers every node test.
  ChildFilter filter = ChildFilter::kAll;
  switch (step.test) {
    case Step::Test::kName:
      filter = ChildFilter::kTag;  // want != kInvalidName (checked above)
      break;
    case Step::Test::kWildcard:
      filter = ChildFilter::kElements;
      break;
    case Step::Test::kText:
      filter = ChildFilter::kText;
      break;
    case Step::Test::kAnyNode:
      filter = ChildFilter::kAll;
      break;
  }
  constexpr size_t kBatch = 64;

  const bool multi_input = input.size() > 1;
  // With no predicates the per-item group sequence is unnecessary: matches
  // are appended straight to the output, saving one vector per input node.
  // The same holds for the dominant single-input case with predicates
  // (every FLWOR binding): the predicates filter the output in place, so
  // the group-to-output copy disappears as well.
  const bool has_predicates = !step.predicates.empty();
  const bool group_in_output =
      !has_predicates || (input.size() == 1 && output->empty());
  Sequence group_storage;
  NodeScan scan;  // reused across the input: DFS/buffer state amortizes
  for (const Item& item : input) {
    if (!item.is_node()) {
      if (item.is_constructed()) {
        return Status::Unimplemented(
            "navigation inside constructed elements");
      }
      continue;  // atomics have no children
    }
    const NodeHandle base = item.node().handle;
    Sequence& group = group_in_output ? *output : group_storage;
    if (!group_in_output) group.clear();
    XMARK_RETURN_IF_ERROR(scan.Open(store_, base, planned->access, filter,
                                    want, options_.child_cursors, &stats_,
                                    ExecPool(),
                                    options_.parallel_exec.min_morsel_ids,
                                    ctx_));
    NodeHandle buf[kBatch];
    size_t n;
    while ((n = scan.Fill(buf, kBatch)) > 0) {
      // Batch-boundary checkpoint: large scans yield to the deadline /
      // budget between batches, not only between expressions.
      if (ctx_ != nullptr) XMARK_RETURN_IF_ERROR(ctx_->Check());
      for (size_t i = 0; i < n; ++i) {
        group.push_back(Item(NodeRef{store_, buf[i]}));
      }
    }
    if (has_predicates) {
      XMARK_RETURN_IF_ERROR(ApplyPredicates(step.predicates, env, &group));
      if (!group_in_output) {
        output->insert(output->end(), std::make_move_iterator(group.begin()),
                       std::make_move_iterator(group.end()));
      }
    }
  }
  if (step.axis == Axis::kDescendant && multi_input) {
    SortDedupNodes(output);
  }
  return Status::OK();
}

StatusOr<Sequence> Evaluator::EvalPath(const AstNode& node, Environment& env,
                                       const Focus* focus) {
  const PathPlan* pp = plan_->FindPath(&node);
  PathPlan local;
  if (pp == nullptr) {
    // Legacy interpreter mode: derive the plan per call.
    local = ComputePathPlan(node, options_, caps_);
    pp = &local;
  }

  // Memoize loop-invariant rooted paths (real systems materialize these
  // once; naive engines re-walk them per outer-loop iteration).
  if (pp->cacheable) {
    auto it = plan_->invariant_cache.find(&node);
    if (it != plan_->invariant_cache.end()) return it->second;
  }

  const bool rooted =
      node.absolute || (node.start && IsRootedEntryCall(*node.start));
  Sequence current;
  // Input of the next step; aliases a variable binding's sequence when the
  // path is rooted at an evaluated variable, so `$v/a/b` never copies the
  // binding (hot in nested-loop joins like Q11/Q12).
  const Sequence* input = &current;
  size_t step_index = 0;

  if (rooted) {
    const NodeHandle root = store_->Root();
    // Structural summary fast path: the longest prefix of predicate-free
    // child name steps resolves through PathExtent (System D).
    if (pp->path_index_steps > 0) {
      std::vector<xml::NameId> prefix;
      prefix.reserve(pp->path_index_steps);
      for (size_t i = 0; i < pp->path_index_steps; ++i) {
        const xml::NameId id = store_->names().Lookup(node.steps[i].name);
        if (id == xml::kInvalidName) {
          if (pp->cacheable) {
            plan_->invariant_cache.emplace(&node, Sequence{});
          }
          return Sequence{};  // unknown tag: empty result
        }
        prefix.push_back(id);
      }
      auto extent = store_->PathExtent(prefix);
      if (extent.has_value()) {
        ++stats_.index_lookups;
        current.reserve(extent->size());
        for (NodeHandle h : *extent) {
          current.push_back(Item(NodeRef{store_, h}));
        }
        step_index = pp->path_index_steps;
      }
    }
    if (step_index == 0) {
      if (node.steps.empty()) {
        Sequence result{Item(NodeRef{store_, root})};
        return result;
      }
      // The first step matches against the virtual document node: a child
      // step tests the root element itself; a descendant step covers the
      // root and all its descendants.
      const Step& first = node.steps[0];
      const StepPlan* first_plan = pp->steps.empty() ? nullptr : &pp->steps[0];
      Sequence group;
      if (first.axis == Axis::kChild) {
        if (first.test == Step::Test::kWildcard ||
            (first.test == Step::Test::kName &&
             store_->names().Lookup(first.name) != xml::kInvalidName &&
             store_->NameOf(root) == store_->names().Lookup(first.name))) {
          group.push_back(Item(NodeRef{store_, root}));
        }
        XMARK_RETURN_IF_ERROR(ApplyPredicates(first.predicates, env, &group));
        current = std::move(group);
      } else {
        // Descendant-or-self from the document node.
        Sequence self_and_below{Item(NodeRef{store_, root})};
        if (first.test == Step::Test::kName &&
            store_->names().Lookup(first.name) != xml::kInvalidName &&
            store_->NameOf(root) == store_->names().Lookup(first.name)) {
          Sequence group_root{Item(NodeRef{store_, root})};
          XMARK_RETURN_IF_ERROR(
              ApplyPredicates(first.predicates, env, &group_root));
          current.insert(current.end(), group_root.begin(), group_root.end());
        }
        Sequence below;
        XMARK_RETURN_IF_ERROR(
            ApplyStep(first, first_plan, self_and_below, env, &below));
        current.insert(current.end(), below.begin(), below.end());
        SortDedupNodes(&current);
      }
      step_index = 1;
    }
  } else if (node.start) {
    Environment::Binding* binding =
        node.start->kind == AstKind::kVarRef
            ? env.Find(node.start->var_slot)
            : nullptr;
    if (binding != nullptr && binding->evaluated) {
      input = &binding->value;
    } else {
      XMARK_ASSIGN_OR_RETURN(current, Eval(*node.start, env, focus));
    }
  } else {
    if (focus == nullptr) {
      return Status::InvalidArgument("relative path without context");
    }
    current.push_back(focus->item);
  }

  for (; step_index < node.steps.size(); ++step_index) {
    Sequence next;
    XMARK_RETURN_IF_ERROR(ApplyStep(node.steps[step_index],
                                    &pp->steps[step_index], *input, env,
                                    &next));
    current = std::move(next);
    input = &current;
    if (current.empty()) break;
  }
  if (input != &current) current = *input;  // step-less path over a binding

  if (pp->cacheable) plan_->invariant_cache.emplace(&node, current);
  return current;
}

// ---------------------------------------------------------------------------
// FLWOR
// ---------------------------------------------------------------------------

const FlworPlan& Evaluator::FlworPlanFor(const AstNode& flwor) {
  const FlworPlan* existing = plan_->FindFlwor(&flwor);
  if (existing != nullptr) return *existing;
  // Legacy interpreter mode: analyze on first visit, cache for the run.
  // The entry lands in the plan's local annotations — an adopted shared
  // plan is immutable (and already complete for planner mode anyway).
  FlworPlan computed;
  AnalyzeFlworJoin(flwor, options_, &computed);
  return plan_->mutable_annotations()
      ->flwors.emplace(&flwor, std::move(computed))
      .first->second;
}

StatusOr<Sequence> Evaluator::EvalHashJoin(const AstNode& node,
                                           const HashJoinPlan& plan,
                                           Environment& env,
                                           const Focus* focus) {
  HashJoinExec* cache;
  auto it = plan_->join_state.find(&node);
  if (it == plan_->join_state.end()) {
    auto built = std::make_unique<HashJoinExec>();
    XMARK_RETURN_IF_ERROR(built->Build(plan, slot_count_, eval_fn_,
                                       &stats_));
    cache = built.get();
    plan_->join_state.emplace(&node, std::move(built));
  } else {
    cache = it->second.get();
  }

  XMARK_ASSIGN_OR_RETURN(Sequence probe_keys,
                         Eval(*plan.outer_key, env, focus));
  std::vector<size_t> matches;
  for (const Item& k : probe_keys) {
    // Allocation-free probe: the key is consumed as a view (text nodes and
    // attribute strings never materialize; element string-values reuse the
    // member scratch buffer) and hashed transparently.
    bool materialized = false;
    const std::string_view key = ItemStringView(k, &cmp_scratch_a_,
                                                &materialized);
    ++stats_.join_probes;
    if (materialized) {
      ++stats_.join_probe_allocs;
    } else {
      ++stats_.allocations_avoided;
    }
    cache->Probe(key, &matches);
  }
  std::sort(matches.begin(), matches.end());
  matches.erase(std::unique(matches.begin(), matches.end()), matches.end());

  Sequence out;
  for (size_t idx : matches) {
    env.Push(plan.var_slot, Sequence{cache->bindings()[idx]});
    bool pass = true;
    for (const AstNode* residue : plan.residue) {
      XMARK_ASSIGN_OR_RETURN(Sequence v, Eval(*residue, env, focus));
      if (!EffectiveBooleanValue(v)) {
        pass = false;
        break;
      }
    }
    if (pass) {
      XMARK_ASSIGN_OR_RETURN(Sequence items, Eval(*node.ret, env, focus));
      out.insert(out.end(), std::make_move_iterator(items.begin()),
                 std::make_move_iterator(items.end()));
    }
    env.Pop();
  }
  return out;
}

StatusOr<int64_t> Evaluator::BandCount(int slot, Environment& env,
                                       const Focus* focus) {
  Environment::Binding* binding = env.Find(slot);
  XMARK_CHECK(binding != nullptr && binding->band != nullptr);
  if (binding->band_count >= 0) return binding->band_count;
  const BandJoinPlan band = *binding->band;

  BandJoinIndex* index;
  auto it = plan_->band_state.find(band.flwor);
  if (it == plan_->band_state.end()) {
    auto built = std::make_unique<BandJoinIndex>();
    XMARK_RETURN_IF_ERROR(built->Build(band, slot_count_, eval_fn_,
                                       &stats_, ExecPool()));
    index = built.get();
    plan_->band_state.emplace(band.flwor, std::move(built));
  } else {
    index = it->second.get();
  }

  if (!index->valid()) {
    // The domain keys could not be computed (evaluation error or a
    // non-numeric inner side): materialize the binding through the generic
    // nested loop, which reproduces the interpreter exactly.
    const AstNode* expr = binding->lazy_expr;
    XMARK_ASSIGN_OR_RETURN(Sequence value, Eval(*expr, env, nullptr));
    binding = env.Find(slot);
    XMARK_CHECK(binding != nullptr);
    binding->value = std::move(value);
    binding->evaluated = true;
    binding->band_count = static_cast<int64_t>(binding->value.size());
    return binding->band_count;
  }

  if (index->raw_domain_size() == 0) {
    // Empty domain: the interpreter would never have evaluated the where
    // clause, so skip the outer side entirely.
    binding->band_count = 0;
    return 0;
  }

  // Probe: under existential comparison semantics the outer sequence
  // matches a key iff its extreme numeric value does (max for >/>=, min
  // for </<=), so one binary search answers the count.
  XMARK_ASSIGN_OR_RETURN(Sequence outer, Eval(*band.outer_expr, env, focus));
  const bool want_max =
      band.op == BinaryOp::kGt || band.op == BinaryOp::kGe;
  bool have = false;
  double best = 0;
  for (const Item& item : outer) {
    const auto num = BandNumericValue(item, &cmp_scratch_a_);
    if (!num.has_value() || std::isnan(*num)) continue;
    if (!have || (want_max ? *num > best : *num < best)) best = *num;
    have = true;
  }
  const int64_t count = have ? index->ProbeCount(best, band.op) : 0;
  stats_.band_join_rows += count;
  binding = env.Find(slot);
  XMARK_CHECK(binding != nullptr);
  binding->band_count = count;
  return count;
}

StatusOr<Sequence> Evaluator::EvalFlwor(const AstNode& node, Environment& env,
                                        const Focus* focus) {
  // Compiled pipeline: the plan-time fusion pass proved this FLWOR
  // equivalent to a fused monomorphic loop (which reads nothing from env
  // or focus — fusable shapes are self-contained by construction), so the
  // whole nested-loop evaluation collapses into one PipelineExec drain.
  if (options_.compiled_pipelines) {
    const CompiledPipeline* pipe = plan_->FindPipeline(&node);
    if (pipe != nullptr) {
      return PipelineExec::Run(*pipe, store_, &stats_, ctx_, ExecPool(),
                               options_.parallel_exec.min_morsel_ids);
    }
  }

  const FlworPlan& fp = FlworPlanFor(node);
  if (fp.strategy == FlworPlan::Strategy::kHashJoin) {
    return EvalHashJoin(node, fp.hash, env, focus);
  }

  Sequence out;
  struct OrderedResult {
    std::vector<SortKey> keys;
    Sequence items;
  };
  std::vector<OrderedResult> ordered;

  // Recursive tuple generation over the clause list.
  std::function<Status(size_t)> emit = [&](size_t ci) -> Status {
    if (ci == node.clauses.size()) {
      if (node.where != nullptr) {
        XMARK_ASSIGN_OR_RETURN(Sequence cond, Eval(*node.where, env, focus));
        if (!EffectiveBooleanValue(cond)) return Status::OK();
      }
      if (node.order_by.empty()) {
        XMARK_ASSIGN_OR_RETURN(Sequence items, Eval(*node.ret, env, focus));
        out.insert(out.end(), std::make_move_iterator(items.begin()),
                   std::make_move_iterator(items.end()));
        return Status::OK();
      }
      OrderedResult result;
      for (const OrderSpec& spec : node.order_by) {
        XMARK_ASSIGN_OR_RETURN(Sequence key, Eval(*spec.key, env, focus));
        SortKey sk;
        if (!key.empty()) {
          sk.empty = false;
          if (key.front().is_number()) {
            sk.numeric = true;
            sk.num = key.front().number();
          } else {
            sk.str = ItemStringValue(key.front());
          }
        }
        result.keys.push_back(std::move(sk));
      }
      XMARK_ASSIGN_OR_RETURN(result.items, Eval(*node.ret, env, focus));
      ordered.push_back(std::move(result));
      return Status::OK();
    }
    const ForLetClause& clause = node.clauses[ci];
    if (clause.is_let) {
      const BandJoinPlan* band =
          clause.expr ? plan_->FindBandLet(clause.expr.get()) : nullptr;
      if (band != nullptr) {
        // Sort-merge band join: count($var) probes the sorted domain, any
        // other use falls back to materializing lazy_expr. Under eager-let
        // semantics the probe runs at bind time, matching the
        // interpreter's evaluation point.
        env.PushBand(clause.var_slot, clause.expr.get(), band);
        if (!options_.lazy_let) {
          StatusOr<int64_t> eager = BandCount(clause.var_slot, env, focus);
          if (!eager.ok()) {
            env.Pop();
            return eager.status();
          }
        }
      } else if (options_.lazy_let) {
        env.PushLazy(clause.var_slot, clause.expr.get());
      } else {
        XMARK_ASSIGN_OR_RETURN(Sequence value, Eval(*clause.expr, env, focus));
        env.Push(clause.var_slot, std::move(value));
      }
      Status st = emit(ci + 1);
      env.Pop();
      return st;
    }
    XMARK_ASSIGN_OR_RETURN(Sequence domain, Eval(*clause.expr, env, focus));
    for (Item& item : domain) {
      env.Push(clause.var_slot, Sequence{std::move(item)});
      Status st = emit(ci + 1);
      env.Pop();
      XMARK_RETURN_IF_ERROR(st);
    }
    return Status::OK();
  };
  XMARK_RETURN_IF_ERROR(emit(0));

  if (!node.order_by.empty()) {
    std::vector<size_t> perm(ordered.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < node.order_by.size(); ++k) {
        int cmp = CompareSortKeys(ordered[a].keys[k], ordered[b].keys[k]);
        if (node.order_by[k].descending) cmp = -cmp;
        if (cmp != 0) return cmp < 0;
      }
      return false;
    });
    size_t total = 0;
    for (const OrderedResult& result : ordered) total += result.items.size();
    out.reserve(out.size() + total);
    for (size_t idx : perm) {
      out.insert(out.end(),
                 std::make_move_iterator(ordered[idx].items.begin()),
                 std::make_move_iterator(ordered[idx].items.end()));
    }
  }
  return out;
}

StatusOr<Sequence> Evaluator::EvalQuantified(const AstNode& node,
                                             Environment& env,
                                             const Focus* focus) {
  bool result = node.is_every;
  std::function<Status(size_t)> scan = [&](size_t ci) -> Status {
    if ((node.is_every && !result) || (!node.is_every && result)) {
      return Status::OK();  // short-circuit
    }
    if (ci == node.clauses.size()) {
      XMARK_ASSIGN_OR_RETURN(Sequence v, Eval(*node.where, env, focus));
      const bool sat = EffectiveBooleanValue(v);
      if (node.is_every) {
        result = result && sat;
      } else {
        result = result || sat;
      }
      return Status::OK();
    }
    XMARK_ASSIGN_OR_RETURN(Sequence domain,
                           Eval(*node.clauses[ci].expr, env, focus));
    for (Item& item : domain) {
      env.Push(node.clauses[ci].var_slot, Sequence{std::move(item)});
      Status st = scan(ci + 1);
      env.Pop();
      XMARK_RETURN_IF_ERROR(st);
      if ((node.is_every && !result) || (!node.is_every && result)) break;
    }
    return Status::OK();
  };
  XMARK_RETURN_IF_ERROR(scan(0));
  return Sequence{Item(result)};
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

namespace {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool CompareResult(int cmp, BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return cmp == 0;
    case BinaryOp::kNe:
      return cmp != 0;
    case BinaryOp::kLt:
      return cmp < 0;
    case BinaryOp::kLe:
      return cmp <= 0;
    case BinaryOp::kGt:
      return cmp > 0;
    case BinaryOp::kGe:
      return cmp >= 0;
    default:
      return false;
  }
}

bool SequenceHasConstructed(const Sequence& seq) {
  for (const Item& item : seq) {
    if (item.is_constructed()) return true;
  }
  return false;
}

// The streamable path shape: `$v/a/b/text()`-style — variable-rooted,
// child-axis-only, predicate-free name or text() steps. Such a path can be
// walked with nested tag-filtered cursors without materializing any
// intermediate sequence.
bool IsStreamablePath(const AstNode& n) {
  if (n.kind != AstKind::kPath || n.absolute || n.start == nullptr ||
      n.start->kind != AstKind::kVarRef || n.steps.empty()) {
    return false;
  }
  for (const Step& s : n.steps) {
    if (s.axis != Axis::kChild || !s.predicates.empty()) return false;
    if (s.test != Step::Test::kName && s.test != Step::Test::kText) {
      return false;
    }
  }
  return true;
}

// Streams the nodes selected by a streamable path from `base` in document
// order, calling `fn` on each until it returns true (short-circuit).
// Returns whether fn ever returned true.
template <typename Fn>
bool StreamSteps(const StorageAdapter* store, EvalStats* stats,
                 NodeHandle base, const std::vector<Step>& steps, size_t idx,
                 Fn&& fn) {
  const Step& step = steps[idx];
  ChildFilter filter = ChildFilter::kText;
  xml::NameId want = xml::kInvalidName;
  if (step.test == Step::Test::kName) {
    want = ResolvedStepName(step, store);
    if (want == xml::kInvalidName) return false;  // tag absent: empty result
    filter = ChildFilter::kTag;
  }
  ChildCursor cur;
  store->OpenChildCursor(base, filter, want, &cur);
  ++stats->cursor_scans;
  constexpr size_t kBatch = 64;
  NodeHandle buf[kBatch];
  size_t n;
  while ((n = cur.Fill(buf, kBatch)) > 0) {
    stats->nodes_visited += static_cast<int64_t>(n);
    for (size_t i = 0; i < n; ++i) {
      if (idx + 1 == steps.size()) {
        if (fn(buf[i])) return true;
      } else if (StreamSteps(store, stats, buf[i], steps, idx + 1, fn)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

// General comparison between two items under XQuery's untyped rules:
// untyped values compared with a number are cast to numbers, otherwise
// compared as strings. With zero_copy_strings the operands are consumed
// through views (text nodes and string atomics never materialize; element
// string-values reuse the member scratch buffers).
bool Evaluator::CompareItems(const Item& a, const Item& b, BinaryOp op) {
  const bool numeric = a.is_number() || b.is_number();
  int cmp;
  if (!options_.zero_copy_strings) {
    // Ablation path: materialize a std::string per operand, the way the
    // seed evaluator did.
    if (numeric) {
      auto to_num = [&](const Item& item) -> std::optional<double> {
        if (item.is_number()) return item.number();
        if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
        ++stats_.compare_allocs;
        return ParseDouble(ItemStringValue(item));
      };
      const auto na = to_num(a);
      const auto nb = to_num(b);
      if (!na.has_value() || !nb.has_value()) return false;
      cmp = (*na < *nb) ? -1 : (*na > *nb ? 1 : 0);
    } else if (a.is_boolean() || b.is_boolean()) {
      const bool ba = a.is_boolean() ? a.boolean()
                                     : EffectiveBooleanValue(Sequence{a});
      const bool bb = b.is_boolean() ? b.boolean()
                                     : EffectiveBooleanValue(Sequence{b});
      cmp = (ba == bb) ? 0 : (ba < bb ? -1 : 1);
    } else {
      stats_.compare_allocs += 2;
      cmp = ItemStringValue(a).compare(ItemStringValue(b));
    }
    return CompareResult(cmp, op);
  }

  auto view_of = [&](const Item& item, std::string* scratch) {
    bool materialized = false;
    const std::string_view v = ItemStringView(item, scratch, &materialized);
    if (materialized) {
      ++stats_.compare_allocs;
    } else {
      ++stats_.allocations_avoided;
    }
    return v;
  };
  if (numeric) {
    auto to_num = [&](const Item& item,
                      std::string* scratch) -> std::optional<double> {
      if (item.is_number()) return item.number();
      if (item.is_boolean()) return item.boolean() ? 1.0 : 0.0;
      return ParseDouble(view_of(item, scratch));
    };
    const auto na = to_num(a, &cmp_scratch_a_);
    const auto nb = to_num(b, &cmp_scratch_b_);
    if (!na.has_value() || !nb.has_value()) return false;
    cmp = (*na < *nb) ? -1 : (*na > *nb ? 1 : 0);
  } else if (a.is_boolean() || b.is_boolean()) {
    const bool ba = a.is_boolean() ? a.boolean()
                                   : EffectiveBooleanValue(Sequence{a});
    const bool bb = b.is_boolean() ? b.boolean()
                                   : EffectiveBooleanValue(Sequence{b});
    cmp = (ba == bb) ? 0 : (ba < bb ? -1 : 1);
  } else {
    cmp = view_of(a, &cmp_scratch_a_).compare(view_of(b, &cmp_scratch_b_));
  }
  return CompareResult(cmp, op);
}

// Recognizes `@name <op> literal` (either operand order) against the focus
// node and answers it with a single AttributeView probe — no sequence
// construction, no per-node string. This is the shape of Q1/Q4/Q10-style
// attribute predicates.
std::optional<bool> Evaluator::TryAttributeCompare(const AstNode& node,
                                                   const Focus* focus) {
  if (!options_.zero_copy_strings || focus == nullptr) return std::nullopt;
  if (!IsComparisonOp(node.op)) return std::nullopt;
  auto is_attr_path = [](const AstNode& n) {
    return n.kind == AstKind::kPath && !n.absolute && n.start == nullptr &&
           n.steps.size() == 1 && n.steps[0].axis == Axis::kAttribute &&
           n.steps[0].predicates.empty();
  };
  auto is_literal = [](const AstNode& n) {
    return n.kind == AstKind::kStringLiteral ||
           n.kind == AstKind::kNumberLiteral;
  };
  const AstNode* attr = nullptr;
  const AstNode* lit = nullptr;
  bool swapped = false;
  if (is_attr_path(*node.args[0]) && is_literal(*node.args[1])) {
    attr = node.args[0].get();
    lit = node.args[1].get();
  } else if (is_attr_path(*node.args[1]) && is_literal(*node.args[0])) {
    attr = node.args[1].get();
    lit = node.args[0].get();
    swapped = true;
  } else {
    return std::nullopt;
  }
  if (!focus->item.is_node()) return std::nullopt;
  const auto view =
      store_->AttributeView(focus->item.node().handle, attr->steps[0].name);
  if (!view.has_value()) return false;  // empty sequence: existentially false
  ++stats_.allocations_avoided;
  int cmp;
  if (lit->kind == AstKind::kNumberLiteral) {
    const auto num = ParseDouble(*view);
    if (!num.has_value()) return false;
    cmp = (*num < lit->num_value) ? -1 : (*num > lit->num_value ? 1 : 0);
  } else {
    cmp = view->compare(lit->str_value);
  }
  if (swapped) cmp = -cmp;
  return CompareResult(cmp, node.op);
}

StatusOr<Sequence> Evaluator::EvalBinary(const AstNode& node, Environment& env,
                                         const Focus* focus) {
  const BinaryOp op = node.op;
  if (op == BinaryOp::kOr || op == BinaryOp::kAnd) {
    XMARK_ASSIGN_OR_RETURN(Sequence lhs, Eval(*node.args[0], env, focus));
    const bool lv = EffectiveBooleanValue(lhs);
    if (op == BinaryOp::kOr && lv) return Sequence{Item(true)};
    if (op == BinaryOp::kAnd && !lv) return Sequence{Item(false)};
    XMARK_ASSIGN_OR_RETURN(Sequence rhs, Eval(*node.args[1], env, focus));
    return Sequence{Item(EffectiveBooleanValue(rhs))};
  }

  // Attribute-predicate fast path: answered from the store heap without
  // evaluating either operand into a sequence.
  {
    const auto fast = TryAttributeCompare(node, focus);
    if (fast.has_value()) return Sequence{Item(*fast)};
  }

  const bool stream_ok =
      options_.zero_copy_strings && options_.child_cursors;

  // Streaming comparison: `$v/a/b <op> expr` walks the path with nested
  // tag-filtered cursors and compares each selected node through views,
  // short-circuiting on the first existential match — no sequence is built
  // for the path side. This is the hot shape of the Q11/Q12 theta joins.
  if (stream_ok && IsComparisonOp(op)) {
    const AstNode* stream = nullptr;
    const AstNode* other = nullptr;
    bool swapped = false;
    if (IsStreamablePath(*node.args[0])) {
      stream = node.args[0].get();
      other = node.args[1].get();
    } else if (IsStreamablePath(*node.args[1])) {
      stream = node.args[1].get();
      other = node.args[0].get();
      swapped = true;
    }
    if (stream != nullptr) {
      Environment::Binding* binding = env.Find(stream->start->var_slot);
      // Constructed nodes must take the generic path so navigation inside
      // them raises the same Unimplemented error as with fast paths off.
      if (binding != nullptr && binding->evaluated &&
          !SequenceHasConstructed(binding->value)) {
        XMARK_ASSIGN_OR_RETURN(Sequence other_seq, Eval(*other, env, focus));
        bool found = false;
        if (!other_seq.empty()) {
          const BinaryOp eff = swapped ? SwapComparison(op) : op;
          for (const Item& start : binding->value) {
            if (!start.is_node()) continue;
            if (StreamSteps(store_, &stats_, start.node().handle,
                            stream->steps, 0, [&](NodeHandle h) {
                              const Item item(NodeRef{store_, h});
                              for (const Item& o : other_seq) {
                                if (CompareItems(item, o, eff)) return true;
                              }
                              return false;
                            })) {
              found = true;
              break;
            }
          }
        }
        return Sequence{Item(found)};
      }
    }
  }

  // Streaming arithmetic: `literal <op> $v/a/text()` (Q11's `5000 *
  // $i/text()`) resolves both scalars without intermediate sequences.
  if (stream_ok &&
      (op == BinaryOp::kAdd || op == BinaryOp::kSub || op == BinaryOp::kMul ||
       op == BinaryOp::kDiv || op == BinaryOp::kMod)) {
    struct Scalar {
      bool handled = false;
      bool empty = false;
      double value = 0;
    };
    auto scalar_of = [&](const AstNode& arg) -> Scalar {
      if (arg.kind == AstKind::kNumberLiteral) {
        return {true, false, arg.num_value};
      }
      if (!IsStreamablePath(arg)) return {};
      Environment::Binding* b = env.Find(arg.start->var_slot);
      if (b == nullptr || !b->evaluated ||
          SequenceHasConstructed(b->value)) {
        return {};  // generic path (errors on constructed-node navigation)
      }
      NodeHandle first = kInvalidHandle;
      for (const Item& start : b->value) {
        if (!start.is_node()) continue;
        if (StreamSteps(store_, &stats_, start.node().handle, arg.steps, 0,
                        [&](NodeHandle h) {
                          first = h;
                          return true;
                        })) {
          break;
        }
      }
      if (first == kInvalidHandle) return {true, true, 0};
      const Item item(NodeRef{store_, first});
      bool materialized = false;
      const auto num =
          ParseDouble(ItemStringView(item, &cmp_scratch_a_, &materialized));
      if (materialized) {
        ++stats_.compare_allocs;
      } else {
        ++stats_.allocations_avoided;
      }
      if (!num.has_value()) return {};  // non-numeric: generic error path
      return {true, false, *num};
    };
    const Scalar sa = scalar_of(*node.args[0]);
    if (sa.handled) {
      const Scalar sb = scalar_of(*node.args[1]);
      if (sb.handled) {
        if (sa.empty || sb.empty) return Sequence{};
        double result = 0;
        switch (op) {
          case BinaryOp::kAdd:
            result = sa.value + sb.value;
            break;
          case BinaryOp::kSub:
            result = sa.value - sb.value;
            break;
          case BinaryOp::kMul:
            result = sa.value * sb.value;
            break;
          case BinaryOp::kDiv:
            result = sa.value / sb.value;
            break;
          default:
            result = std::fmod(sa.value, sb.value);
            break;
        }
        return Sequence{Item(result)};
      }
    }
  }

  XMARK_ASSIGN_OR_RETURN(Sequence lhs, Eval(*node.args[0], env, focus));
  XMARK_ASSIGN_OR_RETURN(Sequence rhs, Eval(*node.args[1], env, focus));

  if (op == BinaryOp::kBefore || op == BinaryOp::kAfter) {
    if (lhs.empty() || rhs.empty()) return Sequence{};
    if (!lhs.front().is_node() || !rhs.front().is_node()) {
      return Status::InvalidArgument("<< / >> require nodes");
    }
    const bool before = store_->Before(lhs.front().node().handle,
                                       rhs.front().node().handle);
    return Sequence{Item(op == BinaryOp::kBefore ? before : !before)};
  }

  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      // Existential semantics over both sequences.
      for (const Item& a : lhs) {
        for (const Item& b : rhs) {
          if (CompareItems(a, b, op)) return Sequence{Item(true)};
        }
      }
      return Sequence{Item(false)};
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod: {
      if (lhs.empty() || rhs.empty()) return Sequence{};
      const auto la = ItemNumberValue(lhs.front());
      const auto rb = ItemNumberValue(rhs.front());
      if (!la.has_value() || !rb.has_value()) {
        return Status::InvalidArgument(
            std::string("non-numeric operand to '") + BinaryOpName(op) + "'");
      }
      double result = 0;
      switch (op) {
        case BinaryOp::kAdd:
          result = *la + *rb;
          break;
        case BinaryOp::kSub:
          result = *la - *rb;
          break;
        case BinaryOp::kMul:
          result = *la * *rb;
          break;
        case BinaryOp::kDiv:
          result = *la / *rb;
          break;
        case BinaryOp::kMod:
          result = std::fmod(*la, *rb);
          break;
        default:
          break;
      }
      return Sequence{Item(result)};
    }
    default:
      return Status::Internal("unhandled binary operator");
  }
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

StatusOr<Sequence> Evaluator::EvalFunction(const AstNode& node,
                                           Environment& env,
                                           const Focus* focus) {
  std::string name = node.str_value;
  if (StartsWith(name, "fn:")) name = name.substr(3);

  // Context-dependent zero-argument functions first.
  if (name == "position" || name == "last") {
    if (focus == nullptr) {
      return Status::InvalidArgument(name + "() outside a predicate");
    }
    return Sequence{Item(static_cast<double>(
        name == "position" ? focus->position : focus->size))};
  }
  if (name == "true") return Sequence{Item(true)};
  if (name == "false") return Sequence{Item(false)};

  // User-defined functions.
  const auto udf = functions_.find(name);
  if (udf != functions_.end()) {
    const FunctionDecl& decl = *udf->second;
    if (decl.params.size() != node.args.size()) {
      return Status::InvalidArgument("wrong arity for " + name);
    }
    if (++udf_depth_ > 128) {
      --udf_depth_;
      return Status::InvalidArgument("UDF recursion too deep");
    }
    std::vector<Sequence> actuals;
    for (const AstPtr& arg : node.args) {
      XMARK_ASSIGN_OR_RETURN(Sequence v, Eval(*arg, env, focus));
      actuals.push_back(std::move(v));
    }
    for (size_t i = 0; i < decl.params.size(); ++i) {
      env.Push(decl.param_slots[i], std::move(actuals[i]));
    }
    StatusOr<Sequence> result = Eval(*decl.body, env, nullptr);
    for (size_t i = 0; i < decl.params.size(); ++i) env.Pop();
    --udf_depth_;
    return result;
  }

  // Band-join fast path: count($var) over a band binding is answered with
  // one binary search against the sorted domain — the sequence is never
  // materialized. (Reached only when `count` is not shadowed by a UDF.)
  if (name == "count" && node.args.size() == 1 &&
      node.args[0]->kind == AstKind::kVarRef) {
    Environment::Binding* binding = env.Find(node.args[0]->var_slot);
    if (binding != nullptr && binding->band != nullptr &&
        !binding->evaluated) {
      XMARK_ASSIGN_OR_RETURN(
          int64_t count, BandCount(node.args[0]->var_slot, env, focus));
      return Sequence{Item(static_cast<double>(count))};
    }
  }

  // Builtins: evaluate arguments eagerly.
  std::vector<Sequence> args;
  for (const AstPtr& arg : node.args) {
    XMARK_ASSIGN_OR_RETURN(Sequence v, Eval(*arg, env, focus));
    args.push_back(std::move(v));
  }
  auto require_args = [&](size_t n) -> Status {
    if (args.size() != n) {
      return Status::InvalidArgument(name + "() expects " +
                                     std::to_string(n) + " argument(s)");
    }
    return Status::OK();
  };

  if (name == "document" || name == "doc") {
    // The benchmark binds the single auction document regardless of URI
    // (paper §5 takes the document() syntax literally). Multi-document
    // routing happens above this layer: the engine resolves the query's
    // document scope and hands this evaluator the right store.
    return Sequence{Item(NodeRef{store_, store_->Root()})};
  }
  if (name == "collection") {
    // Corpus scan entry point: within one per-document run this is the
    // document root; the engine fans the query out across the catalog and
    // concatenates per-document results in document-id order.
    return Sequence{Item(NodeRef{store_, store_->Root()})};
  }
  if (name == "count") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(static_cast<double>(args[0].size()))};
  }
  if (name == "empty") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(args[0].empty())};
  }
  if (name == "exists") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(!args[0].empty())};
  }
  if (name == "not") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(!EffectiveBooleanValue(args[0]))};
  }
  if (name == "boolean") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return Sequence{Item(EffectiveBooleanValue(args[0]))};
  }
  if (name == "string") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(std::string())};
    return Sequence{Item(ItemStringValue(args[0].front()))};
  }
  if (name == "data") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    Sequence out;
    for (const Item& item : args[0]) {
      if (item.is_atomic()) {
        out.push_back(item);
      } else {
        out.push_back(Item(ItemStringValue(item)));
      }
    }
    return out;
  }
  if (name == "number") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) {
      return Sequence{Item(std::nan(""))};
    }
    const auto num = ItemNumberValue(args[0].front());
    return Sequence{Item(num.value_or(std::nan("")))};
  }
  if (name == "sum") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    double total = 0;
    for (const Item& item : args[0]) {
      const auto num = ItemNumberValue(item);
      if (!num.has_value()) {
        return Status::InvalidArgument("sum() over non-numeric value");
      }
      total += *num;
    }
    return Sequence{Item(total)};
  }
  if (name == "avg") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{};
    double total = 0;
    for (const Item& item : args[0]) {
      const auto num = ItemNumberValue(item);
      if (!num.has_value()) {
        return Status::InvalidArgument("avg() over non-numeric value");
      }
      total += *num;
    }
    return Sequence{Item(total / static_cast<double>(args[0].size()))};
  }
  if (name == "min" || name == "max") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{};
    double best = 0;
    bool first = true;
    for (const Item& item : args[0]) {
      const auto num = ItemNumberValue(item);
      if (!num.has_value()) {
        return Status::InvalidArgument(name + "() over non-numeric value");
      }
      if (first || (name == "min" ? *num < best : *num > best)) best = *num;
      first = false;
    }
    return Sequence{Item(best)};
  }
  // String predicates consume their operands through zero-copy views: a
  // text-node operand (the common Q14 `contains` shape) reads straight
  // from the store heap; element string-values reuse the scratch buffers.
  auto arg_view = [&](const Sequence& arg, std::string* scratch) {
    if (arg.empty()) return std::string_view();
    if (!options_.zero_copy_strings) {
      ++stats_.compare_allocs;
      *scratch = ItemStringValue(arg.front());
      return std::string_view(*scratch);
    }
    bool materialized = false;
    const std::string_view v =
        ItemStringView(arg.front(), scratch, &materialized);
    if (materialized) {
      ++stats_.compare_allocs;
    } else {
      ++stats_.allocations_avoided;
    }
    return v;
  };
  if (name == "contains") {
    XMARK_RETURN_IF_ERROR(require_args(2));
    const std::string_view hay = arg_view(args[0], &cmp_scratch_a_);
    const std::string_view needle = arg_view(args[1], &cmp_scratch_b_);
    return Sequence{Item(Contains(hay, needle))};
  }
  if (name == "starts-with") {
    XMARK_RETURN_IF_ERROR(require_args(2));
    const std::string_view s = arg_view(args[0], &cmp_scratch_a_);
    const std::string_view prefix = arg_view(args[1], &cmp_scratch_b_);
    return Sequence{Item(StartsWith(s, prefix))};
  }
  if (name == "string-length") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    const std::string_view s = arg_view(args[0], &cmp_scratch_a_);
    return Sequence{Item(static_cast<double>(s.size()))};
  }
  if (name == "concat") {
    std::string out;
    for (const Sequence& arg : args) {
      if (!arg.empty()) out += ItemStringValue(arg.front());
    }
    return Sequence{Item(std::move(out))};
  }
  if (name == "distinct-values") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    Sequence out;
    std::unordered_set<std::string> seen;
    for (const Item& item : args[0]) {
      std::string v = ItemStringValue(item);
      if (seen.insert(v).second) out.push_back(Item(std::move(v)));
    }
    return out;
  }
  if (name == "name" || name == "local-name") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{Item(std::string())};
    const Item& item = args[0].front();
    if (item.is_node() && store_->IsElement(item.node().handle)) {
      return Sequence{Item(std::string(
          store_->names().Spelling(store_->NameOf(item.node().handle))))};
    }
    if (item.is_constructed()) {
      return Sequence{Item(std::string(item.constructed()->tag_view()))};
    }
    return Sequence{Item(std::string())};
  }
  if (name == "round") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{};
    const auto num = ItemNumberValue(args[0].front());
    if (!num.has_value()) return Status::InvalidArgument("round() non-number");
    return Sequence{Item(std::round(*num))};
  }
  if (name == "floor" || name == "ceiling") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    if (args[0].empty()) return Sequence{};
    const auto num = ItemNumberValue(args[0].front());
    if (!num.has_value()) {
      return Status::InvalidArgument(name + "() non-number");
    }
    return Sequence{
        Item(name == "floor" ? std::floor(*num) : std::ceil(*num))};
  }
  if (name == "zero-or-one" || name == "exactly-one" || name == "exact-one" ||
      name == "one-or-more") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    return args[0];  // cardinality assertions are relaxed to pass-through
  }
  if (name == "id") {
    XMARK_RETURN_IF_ERROR(require_args(1));
    Sequence out;
    if (store_->SupportsIdLookup()) {
      for (const Item& item : args[0]) {
        const NodeHandle h = store_->NodeById(ItemStringValue(item));
        ++stats_.index_lookups;
        if (h != kInvalidHandle) out.push_back(Item(NodeRef{store_, h}));
      }
      SortDedupNodes(&out);
      return out;
    }
    return Status::Unimplemented("id() without an ID index");
  }
  return Status::InvalidArgument("unknown function " + name);
}

// ---------------------------------------------------------------------------
// Constructors
// ---------------------------------------------------------------------------

StatusOr<Sequence> Evaluator::EvalConstructor(const AstNode& node,
                                              Environment& env,
                                              const Focus* focus) {
  // Arena path: the optimizer lowered this constructor into a template —
  // instantiate it batch-at-a-time into the per-run NodeArena instead of
  // allocating a shared_ptr node per element and a std::string per text
  // child. Only plan annotations reach here, so use_planner off (or
  // arena_construction off) falls through to the legacy path below;
  // results are byte-identical either way.
  const ConstructPlan* cp =
      options_.arena_construction ? plan_->FindConstruct(&node) : nullptr;
  if (cp != nullptr) {
    if (plan_->construct_state == nullptr) {
      plan_->arena = std::make_shared<NodeArena>();
      plan_->construct_state =
          std::make_unique<ConstructExec>(plan_->arena);
    }
    XMARK_ASSIGN_OR_RETURN(
        Item item,
        plan_->construct_state->Instantiate(*cp, env, focus, eval_fn_,
                                            &stats_,
                                            options_.copy_results));
    return Sequence{std::move(item)};
  }

  auto out = std::make_shared<ConstructedNode>();
  ++stats_.nodes_constructed;
  out->tag = node.tag;
  for (const AttrConstructor& attr : node.attrs) {
    std::string value;
    for (const AttrPart& part : attr.parts) {
      if (part.expr == nullptr) {
        value += part.text;
        continue;
      }
      XMARK_ASSIGN_OR_RETURN(Sequence items, Eval(*part.expr, env, focus));
      for (size_t i = 0; i < items.size(); ++i) {
        if (i > 0) value += ' ';
        value += ItemStringValue(items[i]);
      }
    }
    out->attributes.emplace_back(attr.name, std::move(value));
  }
  for (const AstPtr& content : node.content) {
    if (content->kind == AstKind::kStringLiteral) {
      auto text = std::make_shared<ConstructedNode>();
      ++stats_.nodes_constructed;
      text->text = content->str_value;
      out->children.emplace_back(std::move(text));
      continue;
    }
    XMARK_ASSIGN_OR_RETURN(Sequence items, Eval(*content, env, focus));
    bool prev_atomic = false;
    for (Item& item : items) {
      if (item.is_atomic()) {
        // Adjacent atomics from one enclosed expression merge into one
        // text node separated by spaces (XQuery construction rules).
        if (prev_atomic) {
          auto text = std::make_shared<ConstructedNode>();
          ++stats_.nodes_constructed;
          text->text = " ";
          out->children.emplace_back(std::move(text));
        }
        auto text = std::make_shared<ConstructedNode>();
        ++stats_.nodes_constructed;
        text->text = ItemStringValue(item);
        out->children.emplace_back(std::move(text));
        prev_atomic = true;
        continue;
      }
      prev_atomic = false;
      if (item.is_node() && options_.copy_results) {
        out->children.emplace_back(DeepCopyNode(item.node()));
      } else {
        out->children.push_back(std::move(item));
      }
    }
  }
  return Sequence{Item(ConstructedPtr(std::move(out)))};
}

}  // namespace xmark::query
