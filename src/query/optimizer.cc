#include "query/optimizer.h"

#include <algorithm>
#include <vector>

#include "query/pipeline.h"

namespace xmark::query {

// ---------------------------------------------------------------------------
// Static analysis
// ---------------------------------------------------------------------------

void VisitChildren(const AstNode& node,
                   const std::function<void(const AstNode&)>& fn) {
  if (node.start) fn(*node.start);
  for (const Step& s : node.steps) {
    for (const AstPtr& p : s.predicates) fn(*p);
  }
  for (const ForLetClause& c : node.clauses) {
    if (c.expr) fn(*c.expr);
  }
  if (node.where) fn(*node.where);
  for (const OrderSpec& o : node.order_by) fn(*o.key);
  if (node.ret) fn(*node.ret);
  for (const AstPtr& a : node.args) fn(*a);
  for (const AttrConstructor& attr : node.attrs) {
    for (const AttrPart& part : attr.parts) {
      if (part.expr) fn(*part.expr);
    }
  }
  for (const AstPtr& c : node.content) fn(*c);
}

namespace {

void CollectFreeVars(const AstNode& node, std::set<std::string>& bound,
                     std::set<std::string>* free_vars) {
  if (node.kind == AstKind::kVarRef) {
    if (!bound.count(node.str_value)) free_vars->insert(node.str_value);
    return;
  }
  if (node.kind == AstKind::kFlwor || node.kind == AstKind::kQuantified) {
    // Clauses bind sequentially; later clause expressions see earlier vars.
    std::vector<std::string> introduced;
    for (const ForLetClause& c : node.clauses) {
      if (c.expr) CollectFreeVars(*c.expr, bound, free_vars);
      if (!bound.count(c.var)) {
        bound.insert(c.var);
        introduced.push_back(c.var);
      }
    }
    if (node.where) CollectFreeVars(*node.where, bound, free_vars);
    for (const OrderSpec& o : node.order_by) {
      CollectFreeVars(*o.key, bound, free_vars);
    }
    if (node.ret) CollectFreeVars(*node.ret, bound, free_vars);
    for (const std::string& v : introduced) bound.erase(v);
    return;
  }
  VisitChildren(node,
                [&](const AstNode& child) {
                  CollectFreeVars(child, bound, free_vars);
                });
}

}  // namespace

std::set<std::string> FreeVars(const AstNode& node) {
  std::set<std::string> bound, free_vars;
  CollectFreeVars(node, bound, &free_vars);
  return free_vars;
}

bool IsDocumentCall(const AstNode& node) {
  return node.kind == AstKind::kFunctionCall &&
         (node.str_value == "document" || node.str_value == "doc" ||
          node.str_value == "fn:doc");
}

bool IsCollectionCall(const AstNode& node) {
  return node.kind == AstKind::kFunctionCall &&
         (node.str_value == "collection" ||
          node.str_value == "fn:collection");
}

bool IsRootedEntryCall(const AstNode& node) {
  return IsDocumentCall(node) || IsCollectionCall(node);
}

std::string QueryScope::CacheKey() const {
  switch (kind) {
    case Kind::kDefault:
      return "";
    case Kind::kDocument:
      return "doc:" + doc_uri;
    case Kind::kCollection:
      return "collection";
  }
  return "";
}

namespace {

// Folds one entry call into the scope; reports conflicts.
Status MergeScope(const AstNode& node, QueryScope* scope) {
  if (IsCollectionCall(node)) {
    if (scope->kind == QueryScope::Kind::kDocument) {
      return Status::InvalidQuery(
          "[multi-document-scope] collection() cannot be combined with "
          "doc(\"" + scope->doc_uri + "\")");
    }
    scope->kind = QueryScope::Kind::kCollection;
    return Status::OK();
  }
  // doc()/document() with a non-literal (or absent) URI keeps the legacy
  // "bind the default document, ignore the URI" semantics.
  if (node.args.size() != 1 ||
      node.args[0]->kind != AstKind::kStringLiteral) {
    return Status::OK();
  }
  const std::string& uri = node.args[0]->str_value;
  if (scope->kind == QueryScope::Kind::kCollection) {
    return Status::InvalidQuery(
        "[multi-document-scope] doc(\"" + uri +
        "\") cannot be combined with collection()");
  }
  if (scope->kind == QueryScope::Kind::kDocument && scope->doc_uri != uri) {
    return Status::InvalidQuery(
        "[multi-document-scope] query addresses both \"" + scope->doc_uri +
        "\" and \"" + uri + "\"; cross-document joins are not supported");
  }
  scope->kind = QueryScope::Kind::kDocument;
  scope->doc_uri = uri;
  return Status::OK();
}

Status CollectScope(const AstNode& node, QueryScope* scope) {
  if (node.kind == AstKind::kFunctionCall && IsRootedEntryCall(node)) {
    XMARK_RETURN_IF_ERROR(MergeScope(node, scope));
  }
  Status status = Status::OK();
  VisitChildren(node, [&](const AstNode& child) {
    if (!status.ok()) return;
    status = CollectScope(child, scope);
  });
  return status;
}

}  // namespace

StatusOr<QueryScope> ExtractQueryScope(const ParsedQuery& query) {
  QueryScope scope;
  for (const FunctionDecl& f : query.functions) {
    XMARK_RETURN_IF_ERROR(CollectScope(*f.body, &scope));
  }
  XMARK_RETURN_IF_ERROR(CollectScope(*query.body, &scope));
  return scope;
}

bool DependsOnFocus(const AstNode& node) {
  if (node.kind == AstKind::kContextItem) return true;
  if (node.kind == AstKind::kFunctionCall &&
      (node.str_value == "position" || node.str_value == "last")) {
    return true;
  }
  if (node.kind == AstKind::kPath && !node.absolute && !node.start) {
    return true;  // relative path starts at the context item
  }
  bool found = false;
  VisitChildren(node, [&](const AstNode& child) {
    // Predicates establish their own focus, so focus uses inside step
    // predicates do not leak out; recursing everywhere is conservative
    // but safe — a false positive only disables a cache.
    if (!found && DependsOnFocus(child)) found = true;
  });
  return found;
}

bool IsCacheableInvariant(const AstNode& node) {
  if (node.kind != AstKind::kPath) return false;
  const bool rooted =
      node.absolute || (node.start && IsRootedEntryCall(*node.start));
  if (!rooted) return false;
  if (!FreeVars(node).empty()) return false;
  if (DependsOnFocus(node)) return false;
  return true;
}

BinaryOp SwapComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;
  }
}

// ---------------------------------------------------------------------------
// Step / path plans
// ---------------------------------------------------------------------------

namespace {

// [@id = "literal"] shape of the step's first predicate (Q1's lookup).
const AstNode* IdLiteralOf(const Step& step) {
  if (step.predicates.empty()) return nullptr;
  const AstNode& p = *step.predicates.front();
  if (p.kind != AstKind::kBinary || p.op != BinaryOp::kEq) return nullptr;
  auto is_id_path = [](const AstNode& n) {
    return n.kind == AstKind::kPath && !n.absolute && !n.start &&
           n.steps.size() == 1 && n.steps[0].axis == Axis::kAttribute &&
           n.steps[0].name == "id";
  };
  if (is_id_path(*p.args[0]) && p.args[1]->kind == AstKind::kStringLiteral) {
    return p.args[1].get();
  }
  if (is_id_path(*p.args[1]) && p.args[0]->kind == AstKind::kStringLiteral) {
    return p.args[0].get();
  }
  return nullptr;
}

}  // namespace

StepPlan ComputeStepPlan(const Step& step, const EvaluatorOptions& options,
                         const StorageCapabilities& caps) {
  StepPlan plan;
  if (step.axis == Axis::kAttribute) {
    plan.access = StepPlan::Access::kAttribute;
    return plan;
  }
  if (step.axis == Axis::kSelf) {
    plan.access = StepPlan::Access::kSelf;
    return plan;
  }
  if (step.axis == Axis::kChild) {
    if (options.use_id_index && caps.id_lookup &&
        step.test == Step::Test::kName) {
      plan.id_literal = IdLiteralOf(step);
    }
    if (step.test == Step::Test::kName && caps.children_by_tag) {
      plan.access = StepPlan::Access::kChildrenByTag;
    } else if (options.child_cursors) {
      plan.access = StepPlan::Access::kChildCursor;
    } else {
      plan.access = StepPlan::Access::kChildChain;
    }
    return plan;
  }
  // Descendant axis. A store advertising interval_descendants answers the
  // cursor with a clustered range scan — always the best path. Without an
  // interval encoding the cursor is a generic per-node walk, so a
  // materialized tag-index slice wins when one is available.
  const bool tag_index_ok = options.use_tag_index && caps.tag_index &&
                            step.test == Step::Test::kName;
  if (options.descendant_cursors && caps.interval_descendants) {
    plan.access = StepPlan::Access::kDescendantCursor;
  } else if (tag_index_ok) {
    plan.access = StepPlan::Access::kTagIndex;
  } else if (options.descendant_cursors) {
    plan.access = StepPlan::Access::kDescendantCursor;  // generic walk
  } else {
    plan.access = StepPlan::Access::kDescendantDfs;
  }
  return plan;
}

PathPlan ComputePathPlan(const AstNode& path, const EvaluatorOptions& options,
                         const StorageCapabilities& caps) {
  PathPlan plan;
  plan.cacheable =
      options.cache_invariant_paths && IsCacheableInvariant(path);
  const bool rooted =
      path.absolute || (path.start && IsRootedEntryCall(*path.start));
  if (rooted && options.use_path_index && caps.path_index) {
    for (const Step& s : path.steps) {
      if (s.axis != Axis::kChild || s.test != Step::Test::kName ||
          !s.predicates.empty()) {
        break;
      }
      ++plan.path_index_steps;
    }
  }
  plan.steps.reserve(path.steps.size());
  for (const Step& s : path.steps) {
    plan.steps.push_back(ComputeStepPlan(s, options, caps));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Join analysis
// ---------------------------------------------------------------------------

void AnalyzeFlworJoin(const AstNode& flwor, const EvaluatorOptions& options,
                      FlworPlan* out) {
  *out = FlworPlan{};
  out->band_shape = AnalyzeBandShape(flwor, nullptr);

  do {
    if (flwor.clauses.size() != 1 || flwor.clauses[0].is_let) break;
    if (flwor.where == nullptr || !flwor.order_by.empty()) break;
    const ForLetClause& clause = flwor.clauses[0];
    if (!FreeVars(*clause.expr).empty()) break;
    if (DependsOnFocus(*clause.expr)) break;

    // Flatten top-level `and` conjuncts.
    std::vector<const AstNode*> conjuncts;
    std::vector<const AstNode*> pending{flwor.where.get()};
    while (!pending.empty()) {
      const AstNode* n = pending.back();
      pending.pop_back();
      if (n->kind == AstKind::kBinary && n->op == BinaryOp::kAnd) {
        pending.push_back(n->args[0].get());
        pending.push_back(n->args[1].get());
      } else {
        conjuncts.push_back(n);
      }
    }

    HashJoinPlan& hash = out->hash;
    for (const AstNode* c : conjuncts) {
      if (hash.inner_key == nullptr && c->kind == AstKind::kBinary &&
          c->op == BinaryOp::kEq) {
        const AstNode* lhs = c->args[0].get();
        const AstNode* rhs = c->args[1].get();
        auto only_var = [&](const AstNode* n) {
          const auto fv = FreeVars(*n);
          return fv.size() == 1 && *fv.begin() == clause.var &&
                 !DependsOnFocus(*n);
        };
        auto without_var = [&](const AstNode* n) {
          return FreeVars(*n).count(clause.var) == 0 && !DependsOnFocus(*n);
        };
        if (only_var(lhs) && without_var(rhs)) {
          hash.inner_key = lhs;
          hash.outer_key = rhs;
          continue;
        }
        if (only_var(rhs) && without_var(lhs)) {
          hash.inner_key = rhs;
          hash.outer_key = lhs;
          continue;
        }
      }
      hash.residue.push_back(c);
    }
    if (hash.inner_key == nullptr) break;
    out->join_shape = true;
    hash.in_expr = clause.expr.get();
    hash.var = clause.var;
    hash.var_slot = clause.var_slot;
    if (options.hash_join) out->strategy = FlworPlan::Strategy::kHashJoin;
  } while (false);
}

bool AnalyzeBandShape(const AstNode& flwor, BandJoinPlan* out) {
  if (flwor.kind != AstKind::kFlwor) return false;
  if (flwor.clauses.size() != 1 || flwor.clauses[0].is_let) return false;
  if (flwor.where == nullptr || !flwor.order_by.empty()) return false;
  const ForLetClause& clause = flwor.clauses[0];
  // The return must emit exactly the loop variable so the match count
  // equals the result cardinality.
  if (flwor.ret == nullptr || flwor.ret->kind != AstKind::kVarRef ||
      flwor.ret->str_value != clause.var) {
    return false;
  }
  if (!FreeVars(*clause.expr).empty()) return false;
  if (DependsOnFocus(*clause.expr)) return false;

  const AstNode& where = *flwor.where;
  if (where.kind != AstKind::kBinary) return false;
  BinaryOp op = where.op;
  if (op != BinaryOp::kLt && op != BinaryOp::kLe && op != BinaryOp::kGt &&
      op != BinaryOp::kGe) {
    return false;
  }
  // The inner side must be guaranteed numeric (top-level arithmetic or a
  // number literal) so the band comparison is a double ordering, never the
  // string ordering the generic comparison would fall back to.
  auto numeric_shape = [](const AstNode& n) {
    if (n.kind == AstKind::kNumberLiteral ||
        n.kind == AstKind::kUnaryMinus) {
      return true;
    }
    if (n.kind != AstKind::kBinary) return false;
    switch (n.op) {
      case BinaryOp::kAdd:
      case BinaryOp::kSub:
      case BinaryOp::kMul:
      case BinaryOp::kDiv:
      case BinaryOp::kMod:
        return true;
      default:
        return false;
    }
  };
  auto only_var = [&](const AstNode& n) {
    const auto fv = FreeVars(n);
    return fv.size() == 1 && *fv.begin() == clause.var &&
           !DependsOnFocus(n);
  };
  auto without_var = [&](const AstNode& n) {
    return FreeVars(n).count(clause.var) == 0 && !DependsOnFocus(n);
  };

  const AstNode* lhs = where.args[0].get();
  const AstNode* rhs = where.args[1].get();
  const AstNode* inner = nullptr;
  const AstNode* outer = nullptr;
  if (only_var(*rhs) && numeric_shape(*rhs) && without_var(*lhs)) {
    inner = rhs;
    outer = lhs;  // already outer OP inner
  } else if (only_var(*lhs) && numeric_shape(*lhs) && without_var(*rhs)) {
    inner = lhs;
    outer = rhs;
    op = SwapComparison(op);  // normalize to outer OP inner
  } else {
    return false;
  }
  if (out != nullptr) {
    out->flwor = &flwor;
    out->domain = clause.expr.get();
    out->var_slot = clause.var_slot;
    out->inner_expr = inner;
    out->outer_expr = outer;
    out->op = op;
  }
  return true;
}

namespace {

// Every reference to `var` inside `node` appears as the sole argument of a
// count() call. Shadowing rebinds of the same name bail out conservatively.
bool CountOnlyUses(const AstNode& node, const std::string& var) {
  if (node.kind == AstKind::kVarRef) return node.str_value != var;
  if (node.kind == AstKind::kFunctionCall &&
      (node.str_value == "count" || node.str_value == "fn:count") &&
      node.args.size() == 1 && node.args[0]->kind == AstKind::kVarRef) {
    return true;  // count($x) — the one permitted use site
  }
  if (node.kind == AstKind::kFlwor || node.kind == AstKind::kQuantified) {
    for (const ForLetClause& c : node.clauses) {
      if (c.var == var) return false;  // shadowing: give up
    }
  }
  bool ok = true;
  VisitChildren(node, [&](const AstNode& child) {
    if (ok && !CountOnlyUses(child, var)) ok = false;
  });
  return ok;
}

}  // namespace

bool AnalyzeBandLet(const AstNode& outer_flwor, size_t clause_index,
                    BandJoinPlan* out) {
  if (outer_flwor.kind != AstKind::kFlwor) return false;
  const ForLetClause& clause = outer_flwor.clauses[clause_index];
  if (!clause.is_let || clause.expr == nullptr) return false;
  if (!AnalyzeBandShape(*clause.expr, out)) return false;
  // The probe may run as late as the count() site, so later clauses must
  // not rebind anything the band FLWOR reads (its free variables are the
  // probe side's inputs). The let variable itself must be consumed only
  // through count() in the rest of the outer FLWOR's scope: later
  // clauses, where, order by, return.
  const std::set<std::string> inner_free = FreeVars(*clause.expr);
  for (size_t i = clause_index + 1; i < outer_flwor.clauses.size(); ++i) {
    const ForLetClause& later = outer_flwor.clauses[i];
    if (later.var == clause.var) return false;  // rebind: give up
    if (inner_free.count(later.var)) return false;  // probe input rebound
    if (later.expr && !CountOnlyUses(*later.expr, clause.var)) return false;
  }
  if (outer_flwor.where && !CountOnlyUses(*outer_flwor.where, clause.var)) {
    return false;
  }
  for (const OrderSpec& o : outer_flwor.order_by) {
    if (!CountOnlyUses(*o.key, clause.var)) return false;
  }
  if (outer_flwor.ret && !CountOnlyUses(*outer_flwor.ret, clause.var)) {
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Constructor templates
// ---------------------------------------------------------------------------

namespace {

// Appends the template element for `ctor` (and, recursively, its nested
// static constructors) to `plan->elements`; returns its index.
size_t LowerConstructorElement(const AstNode& ctor, ConstructPlan* plan) {
  const size_t index = plan->elements.size();
  plan->elements.emplace_back();
  plan->elements[index].tag = ctor.tag;

  std::vector<ConstructPlan::Attr> attrs;
  attrs.reserve(ctor.attrs.size());
  for (const AttrConstructor& attr : ctor.attrs) {
    ConstructPlan::Attr out;
    out.name = attr.name;
    const bool constant =
        std::all_of(attr.parts.begin(), attr.parts.end(),
                    [](const AttrPart& p) { return p.expr == nullptr; });
    if (constant) {
      for (const AttrPart& p : attr.parts) out.const_value += p.text;
      ++plan->const_attr_count;
    } else {
      out.src = &attr;
      ++plan->dyn_attr_count;
    }
    attrs.push_back(std::move(out));
  }

  std::vector<ConstructPlan::Child> children;
  children.reserve(ctor.content.size());
  for (const AstPtr& content : ctor.content) {
    ConstructPlan::Child child;
    if (content->kind == AstKind::kStringLiteral) {
      child.kind = ConstructPlan::Child::Kind::kConstText;
      // Intern equal constant segments once per template: every
      // instantiation then shares one arena copy per distinct segment.
      const auto found =
          std::find(plan->const_texts.begin(), plan->const_texts.end(),
                    content->str_value);
      child.index = static_cast<size_t>(found - plan->const_texts.begin());
      if (found == plan->const_texts.end()) {
        plan->const_texts.push_back(content->str_value);
      }
    } else if (content->kind == AstKind::kElementConstructor) {
      child.kind = ConstructPlan::Child::Kind::kElement;
      child.index = LowerConstructorElement(*content, plan);
    } else {
      child.kind = ConstructPlan::Child::Kind::kHole;
      child.expr = content.get();
      ++plan->hole_count;
    }
    children.push_back(child);
  }
  // The recursion above may have grown plan->elements; write through the
  // index, not a reference captured before the loop.
  plan->elements[index].attrs = std::move(attrs);
  plan->elements[index].children = std::move(children);
  return index;
}

}  // namespace

ConstructPlan LowerConstructor(const AstNode& ctor) {
  ConstructPlan plan;
  plan.source = &ctor;
  LowerConstructorElement(ctor, &plan);
  return plan;
}

// ---------------------------------------------------------------------------
// Whole-query lowering
// ---------------------------------------------------------------------------

namespace {

void LowerNode(const AstNode& node, const EvaluatorOptions& options,
               const StorageCapabilities& caps, PlanAnnotations* plan) {
  if (node.kind == AstKind::kPath) {
    plan->paths.emplace(&node, ComputePathPlan(node, options, caps));
  } else if (node.kind == AstKind::kFlwor) {
    FlworPlan fp;
    AnalyzeFlworJoin(node, options, &fp);
    plan->flwors.emplace(&node, fp);
    if (options.band_join) {
      for (size_t i = 0; i < node.clauses.size(); ++i) {
        BandJoinPlan band;
        if (AnalyzeBandLet(node, i, &band)) {
          plan->band_lets.emplace(node.clauses[i].expr.get(), band);
        }
      }
    }
  } else if (node.kind == AstKind::kElementConstructor &&
             options.arena_construction) {
    // The template folds the whole static shell (nested constructors
    // included), so recursion continues only into the dynamic parts:
    // hole expressions and dynamic attribute value parts. A constructor
    // inside a hole gets its own template when the recursion reaches it.
    ConstructPlan lowered = LowerConstructor(node);
    lowered.template_id = plan->constructs.size();
    const auto [it, inserted] =
        plan->constructs.emplace(&node, std::move(lowered));
    const ConstructPlan& cp = it->second;
    for (const ConstructPlan::Element& element : cp.elements) {
      for (const ConstructPlan::Attr& attr : element.attrs) {
        if (attr.src == nullptr) continue;
        for (const AttrPart& part : attr.src->parts) {
          if (part.expr) LowerNode(*part.expr, options, caps, plan);
        }
      }
      for (const ConstructPlan::Child& child : element.children) {
        if (child.kind == ConstructPlan::Child::Kind::kHole) {
          LowerNode(*child.expr, options, caps, plan);
        }
      }
    }
    return;
  }
  VisitChildren(node, [&](const AstNode& child) {
    LowerNode(child, options, caps, plan);
  });
}

}  // namespace

void BuildPlan(const ParsedQuery& query, const StorageAdapter& store,
               const EvaluatorOptions& options, PlanAnnotations* plan) {
  plan->built_by_optimizer = true;
  plan->store_name = std::string(store.mapping_name());
  plan->store_uid = store.store_uid();
  plan->caps = store.Capabilities();
  plan->options = options;
  // Scope is a rendering annotation here (Explain's "scope:" line); the
  // engine routes execution. Scope conflicts surface at Prepare, so a
  // failed extraction just leaves the default label.
  if (StatusOr<QueryScope> scope = ExtractQueryScope(query); scope.ok()) {
    switch (scope->kind) {
      case QueryScope::Kind::kDefault:
        break;
      case QueryScope::Kind::kDocument:
        plan->doc_scope = "doc(" + scope->doc_uri + ")";
        break;
      case QueryScope::Kind::kCollection:
        plan->doc_scope = "collection";
        break;
    }
  }
  for (const FunctionDecl& f : query.functions) {
    LowerNode(*f.body, options, plan->caps, plan);
  }
  LowerNode(*query.body, options, plan->caps, plan);
  // Pipeline fusion runs after lowering: it consults the FLWOR strategies
  // and band-let registrations decided above.
  if (options.compiled_pipelines) {
    for (const FunctionDecl& f : query.functions) {
      FusePipelines(&query, *f.body, store, options, plan);
    }
    FusePipelines(&query, *query.body, store, options, plan);
  }
}

void BuildExprPlan(const AstNode& expr, const StorageAdapter& store,
                   const EvaluatorOptions& options, PlanAnnotations* plan) {
  plan->built_by_optimizer = true;
  plan->store_name = std::string(store.mapping_name());
  plan->store_uid = store.store_uid();
  plan->caps = store.Capabilities();
  plan->options = options;
  LowerNode(expr, options, plan->caps, plan);
  if (options.compiled_pipelines) {
    FusePipelines(nullptr, expr, store, options, plan);
  }
}

}  // namespace xmark::query
